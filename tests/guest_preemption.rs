//! Preemptive multitasking as guest code (paper §2.6: the RTOS primitives
//! also implement "preemptive multitasking, with proper switching of
//! compartment contexts").
//!
//! A timer ISR — hand-written guest assembly running through MTCC with the
//! SR permission — saves the full capability register file of the
//! interrupted thread into a TCB context block (reached through
//! MScratchC), switches to the other thread's context, re-arms the timer,
//! and `mret`s. Two threads increment private counters; preemption is
//! observable as both counters advancing.

use cheriot::asm::Asm;
use cheriot::cap::Capability;
use cheriot::core::insn::{Reg, ScrId};
use cheriot::core::{layout, CoreModel, Machine, MachineConfig};

const QUANTUM: i32 = 400;

/// TCB memory layout: header (timer capability at +0), context A at +16,
/// context B at +144. Each context: 14 saved registers (everything except
/// x0 and t0) + user t0 at +112 + mepcc at +120 = 128 bytes.
const TCB: u32 = layout::SRAM_BASE + 0x100;
const CTX_A: u32 = TCB + 16;
const CTX_STRIDE: i32 = 128;

fn build_isr() -> Vec<cheriot::core::insn::Instr> {
    let mut a = Asm::new();
    // Swap t0 with the context pointer held in mscratchc.
    a.cspecialrw(Reg::T0, ScrId::MScratchC, Reg::T0);
    // Save the interrupted thread's registers.
    for (i, r) in [
        Reg::RA,
        Reg::SP,
        Reg::GP,
        Reg::TP,
        Reg::T1,
        Reg::T2,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
    ]
    .iter()
    .enumerate()
    {
        a.csc(*r, (i as i32) * 8, Reg::T0);
    }
    // User t0 currently parked in mscratchc; stash it in the context.
    a.cspecialrw(Reg::T1, ScrId::MScratchC, Reg::ZERO);
    a.csc(Reg::T1, 112, Reg::T0);
    // Interrupted PC.
    a.cspecialrw(Reg::T1, ScrId::Mepcc, Reg::ZERO);
    a.csc(Reg::T1, 120, Reg::T0);

    // Flip to the other context (the two blocks are 128 bytes apart).
    a.cgetaddr(Reg::T1, Reg::T0);
    a.xori(Reg::T1, Reg::T1, CTX_STRIDE);
    a.csetaddr(Reg::T0, Reg::T0, Reg::T1);

    // Restore the next thread's PC.
    a.clc(Reg::T1, 120, Reg::T0);
    a.cspecialrw(Reg::ZERO, ScrId::Mepcc, Reg::T1);

    // Re-arm the timer: mtimecmp = mtime + QUANTUM (header holds the
    // timer MMIO capability).
    a.cgetbase(Reg::T2, Reg::T0);
    a.csetaddr(Reg::T2, Reg::T0, Reg::T2);
    a.clc(Reg::T2, 0, Reg::T2);
    a.lw(Reg::T1, 0, Reg::T2); // mtime lo
    a.addi(Reg::T1, Reg::T1, QUANTUM);
    a.sw(Reg::T1, 8, Reg::T2); // mtimecmp lo
    a.sw(Reg::ZERO, 12, Reg::T2); // mtimecmp hi

    // Restore the next thread's registers.
    for (i, r) in [
        Reg::RA,
        Reg::SP,
        Reg::GP,
        Reg::TP,
        Reg::S0, // t1/t2 restored last (still in use)
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
    ]
    .iter()
    .enumerate()
    {
        // Skip the t1 (idx 4) and t2 (idx 5) slots in this pass.
        let slot = if i < 4 { i } else { i + 2 };
        a.clc(*r, (slot as i32) * 8, Reg::T0);
    }
    // New thread's t0 goes to mscratchc for the final swap.
    a.clc(Reg::T2, 112, Reg::T0);
    a.cspecialrw(Reg::ZERO, ScrId::MScratchC, Reg::T2);
    a.clc(Reg::T2, 40, Reg::T0);
    a.clc(Reg::T1, 32, Reg::T0);
    // Final swap: t0 = new thread's t0, mscratchc = new context pointer.
    a.cspecialrw(Reg::T0, ScrId::MScratchC, Reg::T0);
    a.mret();
    a.assemble()
}

/// A thread body: increments its counter word forever (a0 = counter cap).
fn build_thread() -> Vec<cheriot::core::insn::Instr> {
    let mut a = Asm::new();
    let top = a.here();
    a.lw(Reg::T1, 0, Reg::A0);
    a.addi(Reg::T1, Reg::T1, 1);
    a.sw(Reg::T1, 0, Reg::A0);
    a.j(top);
    a.assemble()
}

#[test]
fn timer_isr_preempts_between_two_guest_threads() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));

    let isr = m.load_program(&build_isr());
    let thread_a = m.load_program(&build_thread());
    let thread_b = m.load_program(&build_thread());

    let root = Capability::root_mem_rw();
    let code = m.boot_pcc(isr);

    // TCB block: timer capability + two contexts.
    let tcb_cap = root.with_address(TCB).set_bounds(16 + 256).unwrap();
    let timer_cap = root
        .with_address(layout::TIMER_BASE)
        .set_bounds(u64::from(layout::MMIO_SIZE))
        .unwrap();
    m.meter().store_cap(tcb_cap, TCB, timer_cap).unwrap();

    // Counters for each thread.
    let cnt_a = root
        .with_address(layout::SRAM_BASE + 0x40)
        .set_bounds(4)
        .unwrap();
    let cnt_b = root
        .with_address(layout::SRAM_BASE + 0x48)
        .set_bounds(4)
        .unwrap();

    // Thread B's initial context: pc + a0; everything else null.
    let ctx_b = CTX_A + CTX_STRIDE as u32;
    m.meter()
        .store_cap(tcb_cap, ctx_b + 64, cnt_b) // a0 slot (index 8)
        .unwrap();
    m.meter()
        .store_cap(tcb_cap, ctx_b + 120, code.with_address(thread_b))
        .unwrap();

    // The machine starts in thread A.
    m.cpu.mtcc = code.with_address(isr);
    m.cpu.mscratchc = tcb_cap.with_address(CTX_A);
    m.cpu.write(Reg::A0, cnt_a);
    m.cpu.interrupts_enabled = true;
    m.mtimecmp = QUANTUM as u64;
    m.set_entry(thread_a);

    m.run(40_000);

    let a = m.sram.read_scalar(cnt_a.base(), 4).unwrap();
    let b = m.sram.read_scalar(cnt_b.base(), 4).unwrap();
    assert!(a > 100, "thread A starved: {a}");
    assert!(b > 100, "thread B starved: {b}");
    // Fair-ish round robin: equal quanta, same work per iteration.
    let ratio = f64::from(a.max(b)) / f64::from(a.min(b).max(1));
    assert!(ratio < 1.5, "unfair schedule: a={a} b={b}");
    // Many context switches happened.
    assert!(m.stats.interrupts > 20, "{:?}", m.stats);
}

#[test]
fn preempted_thread_state_is_fully_preserved() {
    // Same setup, but thread A computes a checksum sensitive to every
    // register the ISR must save/restore.
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let isr = m.load_program(&build_isr());

    // Thread A: rotate values through many registers while accumulating.
    let mut a = Asm::new();
    a.li(Reg::T1, 1);
    a.li(Reg::T2, 2);
    a.li(Reg::S0, 3);
    a.li(Reg::S1, 4);
    a.li(Reg::A1, 5);
    a.li(Reg::A2, 6);
    let top = a.here();
    a.add(Reg::T1, Reg::T1, Reg::T2);
    a.add(Reg::T2, Reg::S0, Reg::S1);
    a.add(Reg::S0, Reg::A1, Reg::A2);
    a.xor(Reg::S1, Reg::T1, Reg::T2);
    a.andi(Reg::T1, Reg::T1, 0xffff);
    a.andi(Reg::T2, Reg::T2, 0xffff);
    a.andi(Reg::S0, Reg::S0, 0xffff);
    a.lw(Reg::A1, 0, Reg::A0);
    a.addi(Reg::A1, Reg::A1, 1);
    a.sw(Reg::A1, 0, Reg::A0);
    a.li(Reg::A2, 20_000);
    a.blt(Reg::A1, Reg::A2, top);
    a.mv(Reg::A0, Reg::S1);
    a.halt();
    let thread_a = m.load_program(&a.assemble());
    let thread_b = m.load_program(&build_thread());

    let root = Capability::root_mem_rw();
    let code = m.boot_pcc(isr);
    let tcb_cap = root.with_address(TCB).set_bounds(16 + 256).unwrap();
    let timer_cap = root
        .with_address(layout::TIMER_BASE)
        .set_bounds(u64::from(layout::MMIO_SIZE))
        .unwrap();
    m.meter().store_cap(tcb_cap, TCB, timer_cap).unwrap();
    let cnt_a = root
        .with_address(layout::SRAM_BASE + 0x40)
        .set_bounds(4)
        .unwrap();
    let cnt_b = root
        .with_address(layout::SRAM_BASE + 0x48)
        .set_bounds(4)
        .unwrap();
    let ctx_b = CTX_A + CTX_STRIDE as u32;
    m.meter().store_cap(tcb_cap, ctx_b + 64, cnt_b).unwrap();
    m.meter()
        .store_cap(tcb_cap, ctx_b + 120, code.with_address(thread_b))
        .unwrap();

    // Reference run WITHOUT preemption.
    let mut quiet = m.clone();
    quiet.cpu.write(Reg::A0, cnt_a);
    quiet.set_entry(thread_a);
    let reference = quiet.run(2_000_000);

    // Preempted run.
    m.cpu.mtcc = code.with_address(isr);
    m.cpu.mscratchc = tcb_cap.with_address(CTX_A);
    m.cpu.write(Reg::A0, cnt_a);
    m.cpu.interrupts_enabled = true;
    m.mtimecmp = QUANTUM as u64;
    // Reset the counter dirtied by the quiet run.
    m.meter().store(cnt_a, cnt_a.base(), 4, 0).unwrap();
    m.set_entry(thread_a);
    let preempted = m.run(4_000_000);

    assert_eq!(
        preempted, reference,
        "preemption must be transparent to the computation"
    );
    assert!(m.stats.interrupts > 50, "preemption actually happened");
}
