//! Guest-code integration tests: programs running on the simulated CPU
//! exercising the architectural features — sentry-based interrupt control
//! (§3.1.2), traps and `mret`, the load filter (§3.3.2), the stack
//! high-water-mark CSRs (§5.2.1), W^X, and unforgeability.

use cheriot::asm::Asm;
use cheriot::cap::{CapFault, Capability, OType, Permissions};
use cheriot::core::insn::{CsrId, Reg};
use cheriot::core::{layout, CoreModel, ExitReason, Machine, MachineConfig, TrapCause};

fn machine() -> Machine {
    Machine::new(MachineConfig::new(CoreModel::ibex()))
}

fn sram_cap(off: u32, len: u64) -> Capability {
    Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE + off)
        .set_bounds(len)
        .unwrap()
}

#[test]
fn bounds_violation_traps() {
    let mut m = machine();
    let mut a = Asm::new();
    a.lw(Reg::A1, 64, Reg::A0); // one past the 64-byte object in a0
    a.halt();
    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    m.cpu.write(Reg::A0, sram_cap(0, 64));
    let r = m.run(1000);
    assert!(
        matches!(
            r,
            ExitReason::Fault(TrapCause::Cheri {
                fault: CapFault::BoundsViolation { .. },
                ..
            })
        ),
        "{r:?}"
    );
}

#[test]
fn trap_handler_resumes_with_mret() {
    let mut m = machine();
    let mut a = Asm::new();
    // Main: fault once, then (resumed past the load) halt with a0 = 7.
    a.li(Reg::A0, 0);
    a.lw(Reg::A1, 0, Reg::A0); // tag violation (a0 is an integer)
    a.li(Reg::A0, 7);
    a.halt();
    // Handler: skip the faulting instruction (mepcc += 4) and return.
    let handler = a.here();
    a.cspecialrw(Reg::T0, cheriot::core::insn::ScrId::Mepcc, Reg::ZERO);
    a.cincaddrimm(Reg::T0, Reg::T0, 4);
    a.cspecialrw(Reg::ZERO, cheriot::core::insn::ScrId::Mepcc, Reg::T0);
    a.mret();
    let handler_off = a.byte_offset(handler).unwrap();
    let prog = a.assemble();
    let entry = m.load_program(&prog);
    m.set_entry(entry);
    m.cpu.mtcc = m.boot_pcc(entry + handler_off);
    let r = m.run(10_000);
    assert_eq!(r, ExitReason::Halted(7));
    assert_eq!(m.stats.traps, 1);
}

#[test]
fn sentries_control_interrupt_posture() {
    let mut m = machine();
    // Globals: flag at +0. Timer MMIO cap in a3.
    let globals = sram_cap(0, 64);
    let timer = Capability::root_mem_rw()
        .with_address(layout::TIMER_BASE)
        .set_bounds(u64::from(layout::MMIO_SIZE))
        .unwrap();

    let mut a = Asm::new();
    // entry: enable interrupts by calling main through an enabling sentry
    // (a5); a4 holds a disabling sentry for the critical section.
    a.cjalr(Reg::RA, Reg::A5); // -> main (interrupts on)
    a.halt(); // never reached

    let main = a.here();
    a.cjalr(Reg::RA, Reg::A4); // -> critical (interrupts off)
                               // Back with interrupts re-enabled: the pending timer interrupt fires
                               // here. Spin until the handler sets the flag.
    let spin = a.here();
    a.lw(Reg::T0, 0, Reg::A2);
    a.beqz(Reg::T0, spin);
    // a0 = s0 * 100 + flag: s0 must still be zero (no interrupt during the
    // critical section).
    a.li(Reg::T1, 100);
    a.mul(Reg::S0, Reg::S0, Reg::T1);
    a.add(Reg::A0, Reg::S0, Reg::T0);
    a.halt();

    let critical = a.here();
    a.li(Reg::T2, 150); // long enough to blow past mtimecmp
    let loop_ = a.here();
    a.lw(Reg::T0, 0, Reg::A2); // watch the flag
    a.add(Reg::S0, Reg::S0, Reg::T0); // accumulate (stays 0 if no handler ran)
    a.addi(Reg::T2, Reg::T2, -1);
    a.bnez(Reg::T2, loop_);
    a.cret();

    let handler = a.here();
    a.li(Reg::T0, 1);
    a.sw(Reg::T0, 0, Reg::A2); // flag = 1
    a.li(Reg::T0, -1);
    a.sw(Reg::T0, 8, Reg::A3); // mtimecmp lo = 0xffff_ffff
    a.sw(Reg::T0, 12, Reg::A3); // mtimecmp hi = 0xffff_ffff
    a.mret();

    let main_i = a.position(main).unwrap() as u32;
    let critical_i = a.position(critical).unwrap() as u32;
    let handler_i = a.position(handler).unwrap() as u32;
    let prog = a.assemble();
    let entry = m.load_program(&prog);
    m.set_entry(entry);

    let code = m.boot_pcc(entry);
    let main_cap = code.with_address(entry + 4 * main_i);
    let crit_cap = code.with_address(entry + 4 * critical_i);
    m.cpu.write(
        Reg::A5,
        main_cap.seal_as_sentry(OType::SENTRY_ENABLE).unwrap(),
    );
    m.cpu.write(
        Reg::A4,
        crit_cap.seal_as_sentry(OType::SENTRY_DISABLE).unwrap(),
    );
    m.cpu.write(Reg::A2, globals);
    m.cpu.write(Reg::A3, timer);
    m.cpu.mtcc = code.with_address(entry + 4 * handler_i);
    m.mtimecmp = 120; // fires while the critical section runs

    let r = m.run(1_000_000);
    assert_eq!(
        r,
        ExitReason::Halted(1),
        "interrupt must be deferred to after the critical section; stats: {:?}",
        m.stats
    );
    assert_eq!(m.stats.interrupts, 1);
}

#[test]
fn wx_enforced_in_guest() {
    let mut m = machine();
    let mut a = Asm::new();
    // Derive a pointer from PCC and try to store through it.
    a.auipcc(Reg::T0, 0);
    a.sw(Reg::ZERO, 0, Reg::T0);
    a.halt();
    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    let r = m.run(1000);
    assert!(
        matches!(
            r,
            ExitReason::Fault(TrapCause::Cheri {
                fault: CapFault::PermissionViolation { .. },
                ..
            })
        ),
        "{r:?}"
    );
}

#[test]
fn forgery_impossible_in_guest() {
    let mut m = machine();
    let mut a = Asm::new();
    // Build the target address as an integer and try to use it.
    a.lui(Reg::T0, 0x20000); // 0x2000_0000
    a.csetaddr(Reg::T1, Reg::T0, Reg::T0); // t0 is untagged: result untagged
    a.cgettag(Reg::A0, Reg::T1);
    a.halt();
    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    assert_eq!(m.run(1000), ExitReason::Halted(0));
}

#[test]
fn load_filter_strips_in_guest() {
    let mut m = machine();
    let heap_base = m.cfg.heap_base();
    // Plant a capability to a heap object in a global slot, then revoke it.
    let obj = Capability::root_mem_rw()
        .with_address(heap_base + 64)
        .set_bounds(32)
        .unwrap();
    let slot = sram_cap(16, 8);
    m.meter().store_cap(slot, slot.base(), obj).unwrap();
    m.bitmap.set_range(heap_base + 64, 32);

    let mut a = Asm::new();
    a.clc(Reg::T0, 0, Reg::A0);
    a.cgettag(Reg::A0, Reg::T0);
    a.halt();
    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    m.cpu.write(Reg::A0, slot);
    assert_eq!(m.run(1000), ExitReason::Halted(0));
    assert_eq!(m.stats.filter_strips, 1);
}

#[test]
fn stack_hwm_csr_tracks_stores() {
    let mut m = machine();
    let stack = sram_cap(0x1000, 0x1000); // [base+0x1000, base+0x2000)
    let top = layout::SRAM_BASE + 0x2000;
    let base = layout::SRAM_BASE + 0x1000;

    let mut a = Asm::new();
    // Set mshwmb = base, mshwm = top (the switcher does this per thread).
    a.li(Reg::T0, base as i32);
    a.csrrw(Reg::ZERO, CsrId::Mshwmb, Reg::T0);
    a.li(Reg::T0, top as i32);
    a.csrrw(Reg::ZERO, CsrId::Mshwm, Reg::T0);
    // Store at top-0x100 and top-0x40: the mark tracks the lowest.
    a.sw(Reg::ZERO, -0x100, Reg::A0);
    a.sw(Reg::ZERO, -0x40, Reg::A0);
    a.csrr(Reg::A0, CsrId::Mshwm);
    a.halt();
    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    m.cpu.write(Reg::A0, stack.with_address(top));
    let r = m.run(1000);
    assert_eq!(r, ExitReason::Halted(top - 0x100));
}

#[test]
fn seal_and_unseal_in_guest() {
    let mut m = machine();
    let mut a = Asm::new();
    // a0 = object cap, a1 = sealing authority at otype 3.
    a.cseal(Reg::T0, Reg::A0, Reg::A1);
    // Access through the sealed cap must trap, so first verify the type.
    a.raw(cheriot::core::insn::Instr::CGet {
        field: cheriot::core::insn::CapField::Type,
        rd: Reg::T1,
        rs1: Reg::T0,
    });
    a.cunseal(Reg::T2, Reg::T0, Reg::A1);
    a.cgettag(Reg::A0, Reg::T2);
    a.add(Reg::A0, Reg::A0, Reg::T1); // tag(1) + otype(3) = 4
    a.halt();
    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    m.cpu.write(Reg::A0, sram_cap(0, 64));
    m.cpu
        .write(Reg::A1, Capability::root_sealing().with_address(3));
    assert_eq!(m.run(1000), ExitReason::Halted(4));
}

#[test]
fn store_local_enforced_in_guest() {
    let mut m = machine();
    // a0 = globals (no SL), a1 = local capability.
    let globals = sram_cap(0, 64).and_perms(!Permissions::SL);
    let local = sram_cap(0x100, 32).and_perms(!Permissions::GL);
    let mut a = Asm::new();
    a.csc(Reg::A1, 0, Reg::A0);
    a.halt();
    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    m.cpu.write(Reg::A0, globals);
    m.cpu.write(Reg::A1, local);
    let r = m.run(1000);
    assert!(
        matches!(
            r,
            ExitReason::Fault(TrapCause::Cheri {
                fault: CapFault::PermissionViolation { needed },
                ..
            }) if needed == Permissions::SL
        ),
        "{r:?}"
    );
}

#[test]
fn return_sentry_restores_posture() {
    // A function called with interrupts enabled, through a disabling
    // sentry, returns with interrupts enabled again — the link register's
    // return sentry carries the caller's posture.
    let mut m = machine();
    let mut a = Asm::new();
    a.cjalr(Reg::RA, Reg::A4); // into the disabled function
    a.halt(); // a0 set by callee path below? No: fall through here.
    let f = a.here();
    a.nop();
    a.cret();
    let idx_f = 2; // f starts after cjalr+halt
    let _ = f;
    let prog = a.assemble();
    let entry = m.load_program(&prog);
    m.set_entry(entry);
    let code = m.boot_pcc(entry);
    m.cpu.write(
        Reg::A4,
        code.with_address(entry + 4 * idx_f)
            .seal_as_sentry(OType::SENTRY_DISABLE)
            .unwrap(),
    );
    m.cpu.interrupts_enabled = true;
    // Step: cjalr (disables), nop, cret (re-enables), halt.
    for _ in 0..2 {
        m.step();
    }
    assert!(!m.cpu.interrupts_enabled, "disabled inside the function");
    for _ in 0..2 {
        m.step();
    }
    assert!(m.cpu.interrupts_enabled, "restored by the return sentry");
}

#[test]
fn guest_console_and_gpio_devices() {
    let mut m = machine();
    let console = Capability::root_mem_rw()
        .with_address(layout::CONSOLE_BASE)
        .set_bounds(u64::from(layout::MMIO_SIZE))
        .unwrap();
    let gpio = Capability::root_mem_rw()
        .with_address(layout::GPIO_BASE)
        .set_bounds(u64::from(layout::MMIO_SIZE))
        .unwrap();
    let mut a = Asm::new();
    // Print "OK" then light LEDs 0b1010 and read the register back.
    a.li(Reg::T0, 'O' as i32);
    a.sw(Reg::T0, 0, Reg::A1);
    a.li(Reg::T0, 'K' as i32);
    a.sw(Reg::T0, 0, Reg::A1);
    a.li(Reg::T0, 0b1010);
    a.sw(Reg::T0, 0, Reg::A2);
    a.lw(Reg::A0, 0, Reg::A2);
    a.halt();
    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    m.cpu.write(Reg::A1, console);
    m.cpu.write(Reg::A2, gpio);
    assert_eq!(m.run(1000), ExitReason::Halted(0b1010));
    assert_eq!(m.console, b"OK");
    assert_eq!(m.gpio_out, 0b1010);
    assert_eq!(m.gpio_writes, 1);
}

#[test]
fn guest_needs_a_capability_to_reach_devices() {
    // No ambient MMIO: a compartment without a device capability cannot
    // touch the console, even knowing its address.
    let mut m = machine();
    let mut a = Asm::new();
    a.lui(Reg::T0, 0x82000); // console address as an integer
    a.sw(Reg::ZERO, 0, Reg::T0);
    a.halt();
    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    let r = m.run(1000);
    assert!(
        matches!(
            r,
            ExitReason::Fault(TrapCause::Cheri {
                fault: CapFault::TagViolation,
                ..
            })
        ),
        "{r:?}"
    );
    assert!(m.console.is_empty());
}

#[test]
fn guest_reads_the_cycle_timer() {
    let mut m = machine();
    let timer = Capability::root_mem_rw()
        .with_address(layout::TIMER_BASE)
        .set_bounds(u64::from(layout::MMIO_SIZE))
        .unwrap();
    let mut a = Asm::new();
    a.lw(Reg::T0, 0, Reg::A1); // mtime lo
    for _ in 0..10 {
        a.nop();
    }
    a.lw(Reg::T1, 0, Reg::A1);
    a.sub(Reg::A0, Reg::T1, Reg::T0);
    a.halt();
    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    m.cpu.write(Reg::A1, timer);
    let r = m.run(1000);
    let ExitReason::Halted(delta) = r else {
        panic!("{r:?}")
    };
    assert!((10..30).contains(&delta), "elapsed {delta}");
}
