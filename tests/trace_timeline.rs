//! End-to-end timeline test: replay the compartmentalised IoT application
//! (paper §7.2.3) under the tracing subsystem and validate the recorded
//! timeline's structure — span nesting per thread, cycle-attribution
//! totals against the machine's cycle counter, event ordering, and the
//! Chrome / CSV export shapes.

use cheriot::trace::EventKind;
use cheriot::workloads::iot::{run_iot_app_traced, IotConfig, CLOCK_HZ};
use std::collections::HashMap;

fn traced_run() -> (
    cheriot::workloads::iot::IotReport,
    Box<cheriot::trace::Tracer>,
) {
    run_iot_app_traced(&IotConfig {
        duration_cycles: CLOCK_HZ / 10, // 100 simulated ms
        ..IotConfig::default()
    })
}

#[test]
fn events_are_ordered_against_the_cycle_counter() {
    let (report, tracer) = traced_run();
    let events = tracer.events();
    assert!(events.len() > 100, "expected a busy timeline");
    assert!(
        events.windows(2).all(|w| w[0].cycles <= w[1].cycles),
        "timestamps must be nondecreasing"
    );
    assert!(
        events.last().unwrap().cycles <= report.cycles,
        "no event may postdate the machine's final cycle count"
    );
    // The unbounded sink kept everything, and the metrics counted every
    // structural event the sink recorded.
    assert_eq!(tracer.recorded(), events.len() as u64);
    let enters = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CompartmentEnter { .. }))
        .count() as u64;
    assert_eq!(tracer.metrics.counter("compartment_enter"), enters);
}

#[test]
fn compartment_spans_nest_per_thread() {
    // Replay the Enter/Exit stream with one stack per thread: every exit
    // must match the innermost open span, and at the end of the run every
    // stack must be empty (cross-compartment calls are synchronous).
    let (_, tracer) = traced_run();
    let mut stacks: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
    let mut spans = 0u64;
    for ev in tracer.events() {
        match ev.kind {
            EventKind::CompartmentEnter { thread, from, to } => {
                stacks.entry(thread).or_default().push((from, to));
                spans += 1;
            }
            EventKind::CompartmentExit { thread, from, to } => {
                let top = stacks
                    .entry(thread)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("exit with no open span on thread {thread}"));
                assert_eq!(top, (from, to), "exit must close the innermost span");
            }
            _ => {}
        }
    }
    assert!(spans > 50, "expected many cross-compartment calls");
    for (thread, stack) in &stacks {
        assert!(
            stack.is_empty(),
            "thread {thread} ended with open spans: {stack:?}"
        );
    }
    // Both application threads made cross-compartment calls.
    assert!(stacks.len() >= 2, "expected spans on net and js threads");
}

#[test]
fn cycle_attribution_sums_to_machine_cycles() {
    let (report, tracer) = traced_run();
    let m = &tracer.metrics;
    assert_eq!(
        m.attributed_cycles() + m.unattributed_cycles(),
        report.cycles,
        "every machine cycle lands in exactly one bucket"
    );
    // All five compartments of the application ran: the RTOS services
    // (allocator) and the app pipeline (netstack, tls, mqtt, microvium).
    let by_name: HashMap<String, u64> = m
        .compartment_cycles()
        .iter()
        .map(|&(id, cycles)| (m.comp_name(id), cycles))
        .collect();
    for comp in ["allocator", "netstack", "tls", "mqtt", "microvium"] {
        let cycles = by_name.get(comp).copied().unwrap_or(0);
        assert!(cycles > 0, "compartment {comp} got no cycles: {by_name:?}");
    }
    // Both threads accumulated time.
    let threads = m.thread_cycles();
    assert!(threads.len() >= 2, "{threads:?}");
    assert!(threads.iter().all(|&(_, c)| c > 0));
}

#[test]
fn exports_are_well_formed() {
    let (_, tracer) = traced_run();

    let json = tracer.chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    // Span begin/end markers balance and the compartment names label them.
    let begins = json.matches("\"ph\":\"B\"").count();
    let ends = json.matches("\"ph\":\"E\"").count();
    assert!(begins > 0);
    assert_eq!(begins, ends, "unbalanced B/E span markers");
    for name in ["netstack", "tls", "mqtt", "microvium", "allocator"] {
        assert!(json.contains(name), "missing span/metadata name {name}");
    }

    let csv = tracer.csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("cycles,event,args"));
    let mut rows = 0u64;
    for line in lines {
        let mut cols = line.splitn(3, ',');
        let cycles = cols.next().unwrap();
        assert!(
            cycles.chars().all(|c| c.is_ascii_digit()),
            "bad cycles column in {line:?}"
        );
        let event = cols.next().expect("event column");
        assert!(!event.is_empty());
        rows += 1;
    }
    assert_eq!(rows, tracer.recorded(), "one CSV row per recorded event");
}
