//! Differential smoke at the workspace level. The heavy lifting now
//! lives in `cheriot::diff` (golden interpreter + lockstep comparator,
//! DESIGN.md §15); this file keeps a thin end-to-end check in the
//! umbrella test suite plus the cross-cutting properties that predate
//! the fuzzer: binary-codec transparency, cost-model sanity, and
//! mid-run resumability.

use cheriot::asm::Asm;
use cheriot::core::insn::Reg;
use cheriot::core::{CoreModel, Machine};
use cheriot::diff::{build_engine, generate, run_fuzz, DiffConfig, Profile};

/// A small all-features campaign must find zero divergences across all
/// three dispatch modes and both core models. (CI runs the same check
/// at 256 seeds through the release binary.)
#[test]
fn cores_and_dispatch_modes_agree_architecturally() {
    let report = run_fuzz(&DiffConfig {
        seed_base: 7_000,
        count: 12,
        threads: 4,
        ..DiffConfig::default()
    });
    assert!(
        report.passed(),
        "differential divergences:\n{}",
        report.render_text()
    );
    assert_eq!(report.pairs_run, 12 * 6, "6 engine configs per seed");
}

fn run_to_halt(core: CoreModel, prog: &[cheriot::core::insn::Instr]) -> Machine {
    let mut m = build_engine(prog, core, (false, false), None);
    m.run(1_000_000);
    assert!(m.exit_status().is_some(), "program must terminate");
    m
}

/// Programs from the binary-safe generator profile survive the binary
/// codec round trip with identical architectural results. (Cycle counts
/// may differ: the encoder lowers wide `li` into lui+addi pairs, so the
/// encoded program is allowed to be longer — which is exactly why the
/// binary-safe profile keeps generated code off the cycle counters.)
#[test]
fn binary_round_trip_agrees_with_direct_execution() {
    for seed in 2_000..2_010u64 {
        let prog = generate(seed, &Profile::binary_safe()).instrs();
        let words = cheriot::core::encoding::encode_program(&prog).expect("encodes");
        let decoded = cheriot::core::encoding::decode_program(&words).expect("decodes");
        let direct = run_to_halt(CoreModel::ibex(), &prog);
        let binary = run_to_halt(CoreModel::ibex(), &decoded);
        assert_eq!(direct.exit_status(), binary.exit_status(), "seed {seed}");
        for i in 0..16 {
            assert_eq!(
                direct.cpu.read(Reg(i)),
                binary.cpu.read(Reg(i)),
                "seed {seed}: x{i} differs after codec round trip"
            );
        }
    }
}

/// Sanity on the cost models: the same instruction stream does
/// identical architectural work on both cores, in different time.
/// (Generated programs won't do here: they deliberately read `mcycle`,
/// which is core-dependent by design — the fuzzer always pairs golden
/// and engine on the *same* core model.)
#[test]
fn cycle_counts_differ_but_instruction_counts_match() {
    let mut a = Asm::new();
    a.li(Reg::A0, 0x1234);
    a.li(Reg::A1, 77);
    a.li(Reg::T0, 9);
    let top = a.here();
    a.mul(Reg::A0, Reg::A0, Reg::A1);
    a.xor(Reg::A2, Reg::A0, Reg::T0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.halt();
    let prog = a.assemble();
    let ibex = run_to_halt(CoreModel::ibex(), &prog);
    let flute = run_to_halt(CoreModel::flute(), &prog);
    assert_eq!(
        ibex.stats.instructions, flute.stats.instructions,
        "identical instruction streams"
    );
    assert_ne!(ibex.cycles, flute.cycles, "different microarchitectures");
    for i in 0..16 {
        assert_eq!(ibex.cpu.read(Reg(i)), flute.cpu.read(Reg(i)), "x{i}");
    }
}

/// Clone a machine mid-run; both copies must finish identically — the
/// simulator has no hidden nondeterminism (a §2.1 property and what
/// makes every number in EXPERIMENTS.md reproducible). The generated
/// program here exercises traps, sentries and timer interrupts.
#[test]
fn execution_is_deterministic_and_resumable() {
    let prog = generate(4_000, &Profile::full()).instrs();
    let mut m = build_engine(&prog, CoreModel::ibex(), (false, false), None);
    for _ in 0..50 {
        m.step();
    }
    let mut fork = m.clone();
    let r1 = m.run(1_000_000);
    let r2 = fork.run(1_000_000);
    assert_eq!(r1, r2);
    assert_eq!(m.cycles, fork.cycles);
    assert_eq!(m.stats, fork.stats);
    for i in 0..16 {
        assert_eq!(m.cpu.read(Reg(i)), fork.cpu.read(Reg(i)));
    }
}
