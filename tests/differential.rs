//! Differential testing: the two cores (and the binary codec) must agree
//! on *architectural* results for arbitrary well-formed programs — only
//! cycle counts may differ. Random straight-line programs plus bounded
//! loops are generated, run on Ibex and Flute, direct and through
//! encode/decode, and the final register files are compared.

use cheriot::asm::Asm;
use cheriot::cap::Capability;
use cheriot::core::insn::Reg;
use cheriot::core::{layout, CoreModel, ExitReason, Machine, MachineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random but safe program: ALU soup over a0..a5, some memory
/// traffic through a bounded buffer in t2, and a bounded counting loop.
fn random_program(rng: &mut StdRng) -> Vec<cheriot::core::insn::Instr> {
    let mut a = Asm::new();
    let regs = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];
    let pick = |rng: &mut StdRng| regs[rng.gen_range(0..regs.len())];

    // Seed registers.
    for (i, r) in regs.iter().enumerate() {
        a.li(*r, (i as i32 + 1) * 1000 + 7);
    }
    // A bounded loop with a random body.
    a.li(Reg::T0, rng.gen_range(2..10));
    let top = a.here();
    for _ in 0..rng.gen_range(3..12) {
        let (rd, rs1, rs2) = (pick(rng), pick(rng), pick(rng));
        match rng.gen_range(0..12) {
            0 => {
                a.add(rd, rs1, rs2);
            }
            1 => {
                a.sub(rd, rs1, rs2);
            }
            2 => {
                a.xor(rd, rs1, rs2);
            }
            3 => {
                a.mul(rd, rs1, rs2);
            }
            4 => {
                a.slli(rd, rs1, rng.gen_range(0..31));
            }
            5 => {
                a.sltu(rd, rs1, rs2);
            }
            6 => {
                // Store then load through the bounded buffer.
                let off = rng.gen_range(0..15) * 4;
                a.sw(rs1, off, Reg::T2);
                a.lw(rd, off, Reg::T2);
            }
            7 => {
                a.divu(rd, rs1, rs2);
            }
            8 => {
                // Capability derivation chain over the buffer, folded back
                // to integers via field readers.
                let len = rng.gen_range(1..64);
                a.li(rd, len);
                a.csetbounds(Reg::T1, Reg::T2, rd);
                a.cgetlen(rd, Reg::T1);
            }
            9 => {
                a.cincaddrimm(Reg::T1, Reg::T2, rng.gen_range(0..32));
                a.cgetaddr(rd, Reg::T1);
            }
            10 => {
                // Capability store/load round trip through the buffer.
                a.csc(Reg::T2, 32, Reg::T2);
                a.clc(Reg::T1, 32, Reg::T2);
                a.cgettag(rd, Reg::T1);
            }
            _ => {
                a.cram(rd, rs1);
            }
        }
    }
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    // Fold everything into a0.
    for r in &regs[1..] {
        a.xor(Reg::A0, Reg::A0, *r);
    }
    a.halt();
    a.assemble()
}

fn run_on(core: CoreModel, prog: &[cheriot::core::insn::Instr]) -> (ExitReason, Vec<u32>) {
    let mut m = Machine::new(MachineConfig::new(core));
    let entry = m.load_program(prog);
    m.set_entry(entry);
    let buf = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE + 0x100)
        .set_bounds(64)
        .unwrap();
    m.cpu.write(Reg::T2, buf);
    let r = m.run(1_000_000);
    let regs = (0..16).map(|i| m.cpu.read_int(Reg(i))).collect();
    (r, regs)
}

#[test]
fn cores_agree_architecturally() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for case in 0..60 {
        let prog = random_program(&mut rng);
        let (r_ibex, regs_ibex) = run_on(CoreModel::ibex(), &prog);
        let (r_flute, regs_flute) = run_on(CoreModel::flute(), &prog);
        assert_eq!(r_ibex, r_flute, "case {case}: exit reasons differ");
        assert_eq!(regs_ibex, regs_flute, "case {case}: register files differ");
        assert!(matches!(r_ibex, ExitReason::Halted(_)), "case {case}");
    }
}

#[test]
fn binary_round_trip_agrees_with_direct_execution() {
    let mut rng = StdRng::seed_from_u64(0xB1AB);
    for case in 0..40 {
        let prog = random_program(&mut rng);
        let words = cheriot::core::encoding::encode_program(&prog).expect("encodes");
        let decoded = cheriot::core::encoding::decode_program(&words).expect("decodes");
        let (r_direct, regs_direct) = run_on(CoreModel::ibex(), &prog);
        let (r_binary, regs_binary) = run_on(CoreModel::ibex(), &decoded);
        assert_eq!(r_direct, r_binary, "case {case}");
        assert_eq!(regs_direct, regs_binary, "case {case}");
    }
}

#[test]
fn cycle_counts_differ_but_instruction_counts_match() {
    // Sanity on the cost models: same architectural work, different time.
    let mut rng = StdRng::seed_from_u64(7);
    let prog = random_program(&mut rng);
    let count = |core: CoreModel| {
        let mut m = Machine::new(MachineConfig::new(core));
        let e = m.load_program(&prog);
        m.set_entry(e);
        let buf = Capability::root_mem_rw()
            .with_address(layout::SRAM_BASE + 0x100)
            .set_bounds(64)
            .unwrap();
        m.cpu.write(Reg::T2, buf);
        m.run(1_000_000);
        (m.cycles, m.stats.instructions)
    };
    let (cyc_i, ins_i) = count(CoreModel::ibex());
    let (cyc_f, ins_f) = count(CoreModel::flute());
    assert_eq!(ins_i, ins_f, "identical instruction streams");
    assert_ne!(cyc_i, cyc_f, "different microarchitectures");
}

#[test]
fn execution_is_deterministic_and_resumable() {
    // Clone a machine mid-run; both copies must finish identically — the
    // simulator has no hidden nondeterminism (a §2.1 property and what
    // makes every number in EXPERIMENTS.md reproducible).
    let mut rng = StdRng::seed_from_u64(42);
    let prog = random_program(&mut rng);
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let entry = m.load_program(&prog);
    m.set_entry(entry);
    let buf = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE + 0x100)
        .set_bounds(64)
        .unwrap();
    m.cpu.write(Reg::T2, buf);
    for _ in 0..50 {
        m.step();
    }
    let mut fork = m.clone();
    let r1 = m.run(1_000_000);
    let r2 = fork.run(1_000_000);
    assert_eq!(r1, r2);
    assert_eq!(m.cycles, fork.cycles);
    assert_eq!(m.stats, fork.stats);
    for i in 0..16 {
        assert_eq!(m.cpu.read(Reg(i)), fork.cpu.read(Reg(i)));
    }
}
