//! Fault containment: compartmentalization "limits the blast radius of a
//! compromise" (paper §2.2). A compartment that faults is unwound by the
//! switcher; the caller gets an error, every other compartment keeps
//! working, and no state leaks out of the dead invocation.

use cheriot::alloc::{RevokerKind, TemporalPolicy};
use cheriot::cap::{CapFault, Permissions};
use cheriot::core::{CoreModel, Machine, MachineConfig, TrapCause};
use cheriot::rtos::Rtos;

fn rtos() -> Rtos {
    Rtos::new(
        Machine::new(MachineConfig::new(CoreModel::ibex())),
        TemporalPolicy::Quarantine(RevokerKind::Hardware),
    )
}

#[test]
fn faulting_callee_returns_error_to_caller() {
    let mut r = rtos();
    let app = r.add_compartment("app", 64);
    let buggy = r.add_compartment("buggy-driver", 64);
    let t = r.spawn_thread(1, 1024, app);

    let result: Result<u32, TrapCause> = r.try_call(t, buggy, 64, |env| {
        // The driver walks off the end of its globals.
        let g = env.cgp;
        let oob = g.base() + g.length() as u32;
        env.machine.meter().store(g, oob, 4, 0xbad)?;
        Ok(0)
    });
    assert!(matches!(
        result,
        Err(TrapCause::Cheri {
            fault: CapFault::BoundsViolation { .. },
            ..
        })
    ));
    assert_eq!(r.switcher.forced_unwinds, 1);

    // The thread is intact: compartment restored, stack pointer restored,
    // trusted stack empty.
    assert_eq!(r.thread(t).compartment, app);
    assert_eq!(r.thread(t).frames.len(), 0);
    assert_eq!(r.thread(t).sp, r.thread(t).stack_top);
}

#[test]
fn system_keeps_running_after_a_compartment_fault() {
    let mut r = rtos();
    let app = r.add_compartment("app", 64);
    let buggy = r.add_compartment("buggy", 64);
    let healthy = r.add_compartment("healthy", 64);
    let t = r.spawn_thread(1, 1024, app);

    for round in 0..20 {
        // The buggy compartment faults every time...
        let bad: Result<(), _> = r.try_call(t, buggy, 64, |env| {
            let g = env.cgp;
            env.machine
                .meter()
                .store(g.and_perms(!Permissions::SD), g.base(), 4, 0)?;
            Ok(())
        });
        assert!(bad.is_err(), "round {round}");
        // ...while the healthy one, and the allocator, keep working.
        let sum = r
            .try_call(t, healthy, 64, |env| {
                let mut m = env.machine.meter();
                let g = env.cgp;
                m.store(g, g.base(), 4, round)?;
                m.load(g, g.base(), 4)
            })
            .expect("healthy compartment unaffected");
        assert_eq!(sum, round);
        let buf = r.malloc(t, 64).expect("allocator unaffected");
        r.free(t, buf).expect("free");
    }
    assert_eq!(r.switcher.forced_unwinds, 20);
    r.heap.check_consistency(&r.machine).expect("heap intact");
}

#[test]
fn faulting_callee_leaves_no_stack_residue() {
    let mut r = rtos();
    let app = r.add_compartment("app", 64);
    let buggy = r.add_compartment("buggy", 64);
    let t = r.spawn_thread(1, 1024, app);
    let secret_obj = r.malloc(t, 32).unwrap();

    let _: Result<(), _> = r.try_call(t, buggy, 128, |env| {
        // The callee spills a capability and a secret to its stack, then
        // faults.
        let slot = env.stack_cap.address() - 16;
        env.machine
            .meter()
            .store_cap(env.stack_cap, slot, secret_obj)?;
        env.machine
            .meter()
            .store(env.stack_cap, slot - 8, 4, 0x5ec2e7)?;
        Err(TrapCause::IllegalInstruction)
    });
    // The unwind zeroed everything the callee touched.
    let (base, top) = (r.thread(t).stack_base, r.thread(t).sp);
    let mut addr = base;
    while addr < top {
        let (word, tag) = r.machine.sram.read_cap_word(addr).unwrap();
        assert!(!tag, "no capability residue at {addr:#x}");
        assert_eq!(word, 0, "no data residue at {addr:#x}");
        addr += 8;
    }
}

#[test]
fn nested_fault_unwinds_one_level() {
    let mut r = rtos();
    let a = r.add_compartment("a", 64);
    let b = r.add_compartment("b", 64);
    let c = r.add_compartment("c", 64);
    let t = r.spawn_thread(1, 2048, a);

    // a calls b; b calls c; c faults; b catches and recovers.
    let out = r
        .cross_call(t, b, 64, |_env| "b-before")
        .and_then(|_| {
            let inner: Result<(), _> =
                r.try_call(t, c, 64, |_env| Err(TrapCause::IllegalInstruction));
            assert!(inner.is_err());
            r.cross_call(t, b, 64, |_env| "b-recovered")
        })
        .unwrap();
    assert_eq!(out, "b-recovered");
    assert_eq!(r.thread(t).frames.len(), 0);
}
