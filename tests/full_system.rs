//! Full-system guest integration: everything at once, in guest code.
//!
//! A single trap vector — as in the real RTOS — dispatches on `mcause`:
//! timer interrupts go to a context-switching ISR (preemptive
//! multitasking between two threads), and synchronous CHERI faults go to
//! the compartment switcher's unwind path. Thread A makes
//! cross-compartment calls through the guest switcher into a compartment
//! that faults on every third input; thread B crunches a counter. The
//! paper's co-design story, end to end, executed instruction by
//! instruction:
//!
//! * sentries carry interrupt posture (the switcher is never preempted),
//! * a fault's blast radius is one invocation (A sees `-1` and moves on),
//! * preemption is transparent (B makes progress throughout),
//! * the trusted stack and register files stay consistent across all of it.
//!
//! (One simplification vs. the real RTOS: a single trusted stack, so only
//! thread A performs cross-compartment calls; the real switcher banks the
//! trusted-stack pointer per thread in the context-switch path.)

use cheriot::asm::Asm;
use cheriot::cap::Capability;
use cheriot::core::insn::{CsrId, Instr, Reg, ScrId};
use cheriot::core::{layout, CoreModel, ExitReason, Machine, MachineConfig};
use cheriot::rtos::guest_switcher::{guest_compartment, GuestSwitcher};

const QUANTUM: i32 = 600;
const TCB_CTX: u32 = layout::SRAM_BASE + 0x900; // timer cap + 2 contexts
const CTX_A: u32 = TCB_CTX + 16;
const CTX_STRIDE: i32 = 128;

/// The combined trap vector + context-switch ISR. `fault_addr` is the
/// guest switcher's unwind path.
fn build_vector(fault_addr: u32) -> Vec<Instr> {
    let mut a = Asm::new();
    // Free t0 (swap with the context pointer), save t1, read the cause.
    a.cspecialrw(Reg::T0, ScrId::MScratchC, Reg::T0);
    a.csc(Reg::T1, 32, Reg::T0);
    a.csrr(Reg::T1, CsrId::Mcause);
    let isr = a.label();
    a.blt(Reg::T1, Reg::ZERO, isr); // bit 31 set: interrupt
                                    // --- synchronous fault: restore mscratchc, tail-call the unwinder ---
    a.cspecialrw(Reg::T0, ScrId::MScratchC, Reg::T0);
    a.li(Reg::T1, fault_addr as i32);
    a.auipcc(Reg::T2, 0);
    a.csetaddr(Reg::T2, Reg::T2, Reg::T1);
    a.cjr(Reg::T2);

    // --- timer interrupt: switch thread contexts ---
    a.bind(isr);
    for (i, r) in [
        Reg::RA,
        Reg::SP,
        Reg::GP,
        Reg::TP,
        // t1 already saved at slot 4 (offset 32)
        Reg::T2,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
    ]
    .iter()
    .enumerate()
    {
        let slot = if i < 4 { i } else { i + 1 }; // skip slot 4 (t1)
        a.csc(*r, (slot as i32) * 8, Reg::T0);
    }
    a.cspecialrw(Reg::T1, ScrId::MScratchC, Reg::ZERO); // user t0
    a.csc(Reg::T1, 112, Reg::T0);
    a.cspecialrw(Reg::T1, ScrId::Mepcc, Reg::ZERO);
    a.csc(Reg::T1, 120, Reg::T0);
    // Flip contexts.
    a.cgetaddr(Reg::T1, Reg::T0);
    a.xori(Reg::T1, Reg::T1, CTX_STRIDE);
    a.csetaddr(Reg::T0, Reg::T0, Reg::T1);
    // Restore next thread's pc.
    a.clc(Reg::T1, 120, Reg::T0);
    a.cspecialrw(Reg::ZERO, ScrId::Mepcc, Reg::T1);
    // Re-arm the timer (capability in the TCB header).
    a.cgetbase(Reg::T2, Reg::T0);
    a.csetaddr(Reg::T2, Reg::T0, Reg::T2);
    a.clc(Reg::T2, 0, Reg::T2);
    a.lw(Reg::T1, 0, Reg::T2);
    a.addi(Reg::T1, Reg::T1, QUANTUM);
    a.sw(Reg::T1, 8, Reg::T2);
    a.sw(Reg::ZERO, 12, Reg::T2);
    // Restore the next thread.
    for (i, r) in [
        Reg::RA,
        Reg::SP,
        Reg::GP,
        Reg::TP,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
    ]
    .iter()
    .enumerate()
    {
        let slot = if i < 4 { i } else { i + 2 }; // skip t1/t2 slots
        a.clc(*r, (slot as i32) * 8, Reg::T0);
    }
    a.clc(Reg::T2, 112, Reg::T0);
    a.cspecialrw(Reg::ZERO, ScrId::MScratchC, Reg::T2);
    a.clc(Reg::T2, 40, Reg::T0);
    a.clc(Reg::T1, 32, Reg::T0);
    a.cspecialrw(Reg::T0, ScrId::MScratchC, Reg::T0);
    a.mret();
    a.assemble()
}

#[test]
fn everything_at_once() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));

    // --- the guest switcher (also installs its fault path in mtcc) ---
    let mut sw = GuestSwitcher::install(&mut m, layout::SRAM_BASE + 0x200, 512);
    let fault_addr = m.cpu.mtcc.address();

    // --- compartment C: doubles its argument, but faults when the
    // argument is divisible by three (an input-dependent bug) ---
    let mut c = Asm::new();
    let boom = c.label();
    c.li(Reg::T0, 3);
    c.remu(Reg::T1, Reg::A0, Reg::T0);
    c.beqz(Reg::T1, boom);
    c.slli(Reg::A0, Reg::A0, 1);
    c.cret();
    c.bind(boom);
    c.lw(Reg::T0, 0x100, Reg::GP); // out of bounds: globals are 0x100 long
    c.cret(); // never reached
    let c_prog = c.assemble();
    let c_base = m.load_program(&c_prog);
    let c_globals = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE + 0x1200)
        .set_bounds(0x100)
        .unwrap();
    let c_comp = guest_compartment(c_base, 4 * c_prog.len() as u32, c_globals);
    let c_export = sw.make_export(&mut m, &c_comp, 0);

    // --- thread A: calls C with 1..=N, accumulating results (-1 on the
    // faulting inputs), then reports ---
    const N: i32 = 12;
    let mut ta = Asm::new();
    ta.li(Reg::S0, 1); // i
    ta.li(Reg::S1, 0); // acc
    let loop_a = ta.here();
    ta.cincaddrimm(Reg::SP, Reg::SP, -16);
    ta.csc(Reg::RA, 0, Reg::SP);
    ta.clc(Reg::T0, 0, Reg::GP); // C's export
    ta.clc(Reg::T1, 8, Reg::GP); // switcher sentry
    ta.mv(Reg::A0, Reg::S0);
    ta.cjalr(Reg::RA, Reg::T1);
    ta.add(Reg::S1, Reg::S1, Reg::A0);
    ta.clc(Reg::RA, 0, Reg::SP);
    ta.cincaddrimm(Reg::SP, Reg::SP, 16);
    ta.addi(Reg::S0, Reg::S0, 1);
    ta.li(Reg::T2, N + 1);
    ta.blt(Reg::S0, Reg::T2, loop_a);
    // Publish the result and spin (B still needs the core). The results
    // capability lives in A's globals: argument registers do not survive
    // cross-compartment returns (the switcher clears them).
    ta.clc(Reg::T1, 16, Reg::GP);
    ta.sw(Reg::S1, 0, Reg::T1);
    let spin = ta.here();
    ta.j(spin);
    let ta_prog = ta.assemble();
    let ta_base = m.load_program(&ta_prog);
    let a_globals = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE + 0x1000)
        .set_bounds(0x100)
        .unwrap();
    let a_comp = guest_compartment(ta_base, 4 * ta_prog.len() as u32, a_globals);

    // --- thread B: a counter loop ---
    let mut tb = Asm::new();
    let loop_b = tb.here();
    tb.lw(Reg::T1, 0, Reg::A0);
    tb.addi(Reg::T1, Reg::T1, 1);
    tb.sw(Reg::T1, 0, Reg::A0);
    tb.j(loop_b);
    let tb_prog = tb.assemble();
    let tb_base = m.load_program(&tb_prog);

    // --- the combined trap vector ---
    let vec_prog = build_vector(fault_addr);
    let vec_base = m.load_program(&vec_prog);

    // --- wiring ---
    let root = Capability::root_mem_rw();
    let code = m.boot_pcc(vec_base);
    // A's import table.
    m.meter()
        .store_cap(
            root.with_address(layout::SRAM_BASE + 0x1000)
                .set_bounds(16)
                .unwrap(),
            layout::SRAM_BASE + 0x1000,
            c_export,
        )
        .unwrap();
    m.meter()
        .store_cap(
            root.with_address(layout::SRAM_BASE + 0x1008)
                .set_bounds(8)
                .unwrap(),
            layout::SRAM_BASE + 0x1008,
            sw.call_sentry,
        )
        .unwrap();
    // TCB contexts + timer capability.
    let tcb = root.with_address(TCB_CTX).set_bounds(16 + 256).unwrap();
    let timer = root
        .with_address(layout::TIMER_BASE)
        .set_bounds(u64::from(layout::MMIO_SIZE))
        .unwrap();
    m.meter().store_cap(tcb, TCB_CTX, timer).unwrap();
    // Thread B's initial context.
    let cnt_b = root
        .with_address(layout::SRAM_BASE + 0x1100)
        .set_bounds(4)
        .unwrap();
    let ctx_b = CTX_A + CTX_STRIDE as u32;
    m.meter().store_cap(tcb, ctx_b + 64, cnt_b).unwrap(); // a0 slot (idx 8)
    m.meter()
        .store_cap(tcb, ctx_b + 120, code.with_address(tb_base))
        .unwrap();

    // Results area for A, linked into its globals at +16.
    let results = root
        .with_address(layout::SRAM_BASE + 0x1300)
        .set_bounds(32)
        .unwrap();
    m.meter()
        .store_cap(
            root.with_address(layout::SRAM_BASE + 0x1010)
                .set_bounds(8)
                .unwrap(),
            layout::SRAM_BASE + 0x1010,
            results,
        )
        .unwrap();

    // Thread A's stack.
    let stack = root
        .with_address(layout::SRAM_BASE + 0x2000)
        .set_bounds(0x200)
        .unwrap()
        .and_perms(!cheriot::cap::Permissions::GL)
        .with_address(layout::SRAM_BASE + 0x2200);

    // Boot state: thread A running, everything armed.
    m.cpu.mtcc = code.with_address(vec_base); // the combined vector
    m.cpu.mscratchc = tcb.with_address(CTX_A);
    m.cpu.pcc = a_comp.code.with_address(ta_base);
    m.cpu.write(Reg::GP, a_comp.globals);
    m.cpu.write(Reg::SP, stack);
    m.cpu.mshwmb = layout::SRAM_BASE + 0x2000;
    m.cpu.mshwm = layout::SRAM_BASE + 0x2200;
    m.cpu.interrupts_enabled = true;
    m.mtimecmp = QUANTUM as u64;

    let r = m.run(400_000);
    assert_eq!(r, ExitReason::CycleLimit, "both threads run forever");

    // A's accumulated result: sum over 1..=12 of (2i if i%3!=0 else -1).
    let expected: i32 = (1..=N).map(|i| if i % 3 == 0 { -1 } else { 2 * i }).sum();
    let got = m.sram.read_scalar(layout::SRAM_BASE + 0x1300, 4).unwrap();
    assert_eq!(
        got as i32, expected,
        "A's cross-compartment results (with faults contained)"
    );
    // B made progress under preemption the whole time.
    let b_count = m.sram.read_scalar(layout::SRAM_BASE + 0x1100, 4).unwrap();
    assert!(b_count > 500, "thread B starved: {b_count}");
    // Exactly four faults (i = 3, 6, 9, 12) plus many timer interrupts.
    assert_eq!(m.stats.traps, 4, "{:?}", m.stats);
    assert!(m.stats.interrupts > 50);
    // The trusted stack is balanced.
    assert_eq!(m.cpu.mtdc.address(), layout::SRAM_BASE + 0x200 + 24);
}
