//! Real-time properties (paper §2.1): "the latency of operations is
//! bounded and can be reasoned about", "none of the hardware operations
//! have nondeterministic latency". These tests measure interrupt latency
//! under random workloads and check cycle-level determinism of the
//! security mechanisms.

use cheriot::asm::Asm;
use cheriot::cap::Capability;
use cheriot::core::insn::Reg;
use cheriot::core::{layout, CoreModel, Machine, MachineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Worst-case interrupt latency: the longest single instruction (divide)
/// plus the trap-entry flush. Nothing in the machine may exceed this.
const WCET_IRQ_CYCLES: u64 = 37 + 8;

fn random_busy_program(rng: &mut StdRng) -> Vec<cheriot::core::insn::Instr> {
    let mut a = Asm::new();
    a.li(Reg::A1, 123);
    a.li(Reg::A2, 7);
    let top = a.here();
    for _ in 0..rng.gen_range(4..20) {
        match rng.gen_range(0..6) {
            0 => {
                a.add(Reg::A1, Reg::A1, Reg::A2);
            }
            1 => {
                a.mul(Reg::A1, Reg::A1, Reg::A2);
            }
            2 => {
                a.divu(Reg::A3, Reg::A1, Reg::A2);
            }
            3 => {
                a.lw(Reg::A3, 0, Reg::T2);
            }
            4 => {
                a.sw(Reg::A1, 4, Reg::T2);
            }
            _ => {
                a.clc(Reg::A4, 8, Reg::T2);
            }
        }
    }
    a.j(top);
    a.assemble()
}

#[test]
fn interrupt_latency_is_bounded_under_any_workload() {
    let mut rng = StdRng::seed_from_u64(0x3EA1);
    for case in 0..30 {
        let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
        let prog = random_busy_program(&mut rng);
        let entry = m.load_program(&prog);
        // Trap vector: a separate one-instruction handler (halt).
        let mut h = Asm::new();
        h.halt();
        let handler = m.load_program(&h.assemble());
        m.set_entry(entry);
        m.cpu.mtcc = m.boot_pcc(handler);
        m.cpu.interrupts_enabled = true;
        let buf = Capability::root_mem_rw()
            .with_address(layout::SRAM_BASE + 0x40)
            .set_bounds(64)
            .unwrap();
        m.cpu.write(Reg::T2, buf);
        let arm_at = rng.gen_range(100..2000);
        m.mtimecmp = arm_at;
        m.run(100_000);
        // The handler halts immediately, so cycles-at-halt bounds the
        // latency from timer fire to handler completion.
        let latency = m.cycles.saturating_sub(arm_at);
        assert!(
            latency <= WCET_IRQ_CYCLES,
            "case {case}: latency {latency} exceeds WCET bound"
        );
        assert_eq!(m.stats.interrupts, 1);
    }
}

#[test]
fn security_checks_have_constant_latency() {
    // A bounds-checked load costs exactly the same whether the access is
    // at the base, the middle, or the last byte of its object, and whether
    // the capability is freshly derived or heavily re-derived — no caches,
    // no variable paths (§2.1).
    let run_one = |addr_off: i32, rederive: bool| -> u64 {
        let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
        let mut a = Asm::new();
        if rederive {
            for _ in 0..5 {
                a.cincaddrimm(Reg::A1, Reg::A1, 1);
                a.cincaddrimm(Reg::A1, Reg::A1, -1);
            }
        } else {
            for _ in 0..5 {
                a.nop();
                a.nop();
            }
        }
        let t0 = a.len();
        a.lw(Reg::A0, addr_off, Reg::A1);
        let _ = t0;
        a.halt();
        let entry = m.load_program(&a.assemble());
        m.set_entry(entry);
        let obj = Capability::root_mem_rw()
            .with_address(layout::SRAM_BASE + 0x100)
            .set_bounds(256)
            .unwrap();
        m.cpu.write(Reg::A1, obj);
        m.run(10_000);
        m.cycles
    };
    let base = run_one(0, false);
    assert_eq!(run_one(128, false), base, "middle of object");
    assert_eq!(run_one(252, false), base, "end of object");
    assert_eq!(run_one(0, true), base, "re-derived capability");
}

#[test]
fn cross_compartment_call_cost_is_deterministic() {
    // The same call, performed twice in identical state, costs the same
    // cycles — WCET of the switcher is exact, not statistical.
    use cheriot::alloc::TemporalPolicy;
    use cheriot::rtos::Rtos;
    let mut r = Rtos::new(
        Machine::new(MachineConfig::new(CoreModel::ibex())),
        TemporalPolicy::None,
    );
    let app = r.add_compartment("app", 64);
    let t = r.spawn_thread(1, 512, app);
    // Warm-up to reach steady HWM state.
    r.cross_call(t, app, 64, |_| ()).unwrap();
    let mut costs = Vec::new();
    for _ in 0..5 {
        let c0 = r.machine.cycles;
        r.cross_call(t, app, 64, |_| ()).unwrap();
        costs.push(r.machine.cycles - c0);
    }
    assert!(
        costs.windows(2).all(|w| w[0] == w[1]),
        "nondeterministic switcher: {costs:?}"
    );
}

#[test]
fn revoker_steals_only_idle_slots() {
    // §3.3.3: the background revoker must not slow the main pipeline. The
    // same memory-free workload runs in the same cycles whether or not a
    // sweep is in progress.
    let run_with = |kick: bool| -> u64 {
        let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
        let mut a = Asm::new();
        a.li(Reg::T0, 2000);
        let top = a.here();
        a.addi(Reg::T0, Reg::T0, -1); // pure ALU loop: LSU idle
        a.bnez(Reg::T0, top);
        a.halt();
        let entry = m.load_program(&a.assemble());
        m.set_entry(entry);
        if kick {
            use cheriot::core::revocation::revoker_reg;
            m.revoker.mmio_write(revoker_reg::START, layout::SRAM_BASE);
            m.revoker
                .mmio_write(revoker_reg::END, layout::SRAM_BASE + 64 * 1024);
            m.revoker.mmio_write(revoker_reg::KICK, 1);
        }
        m.run(1_000_000);
        m.cycles
    };
    let quiet = run_with(false);
    let sweeping = run_with(true);
    assert_eq!(
        quiet, sweeping,
        "the revoker must be invisible to the main pipeline"
    );
}
