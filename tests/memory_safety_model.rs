//! The eight inter-compartment memory-safety guarantees of paper §2.3,
//! each expressed as an attack that must fail.
//!
//! "For any object owned by compartment A, compartment B must not be able
//! to: ① access it without being passed a pointer; ② access outside its
//! bounds given a valid pointer; ③ access it (or its former memory) after
//! free; ④ hold a pointer to an on-stack object after the call ends;
//! ⑤ hold a temporarily delegated pointer beyond a single call; ⑥ modify
//! an object passed via immutable reference; ⑦ modify anything reachable
//! from a deeply immutable reference; ⑧ tamper with an object passed via
//! opaque reference."

use cheriot::alloc::{RevokerKind, TemporalPolicy};
use cheriot::cap::{CapFault, Capability, Permissions};
use cheriot::core::{layout, CoreModel, Machine, MachineConfig};
use cheriot::rtos::Rtos;

fn rtos() -> Rtos {
    Rtos::new(
        Machine::new(MachineConfig::new(CoreModel::ibex())),
        TemporalPolicy::Quarantine(RevokerKind::Hardware),
    )
}

#[test]
fn g1_no_access_without_a_pointer() {
    // B knows the address of A's object but holds no capability to it.
    let mut r = rtos();
    let a = r.add_compartment("a", 64);
    let b = r.add_compartment("b", 64);
    let t = r.spawn_thread(1, 1024, a);
    let secret = r.malloc(t, 64).unwrap();
    let addr = secret.base();
    r.cross_call(t, b, 64, |env| {
        // B's total authority: its globals, its stack. Neither reaches A's
        // object even with the address in hand.
        let via_globals = env.cgp.with_address(addr);
        assert!(!via_globals.tag(), "address swing must detag");
        let via_stack = env.stack_cap.with_address(addr);
        assert!(!via_stack.tag());
        // Conjuring from integers is impossible by construction: the only
        // constructors are roots, and B has none.
        let forged = Capability::null().with_address(addr);
        assert_eq!(
            forged.check_access(addr, 1, Permissions::LD),
            Err(CapFault::TagViolation)
        );
    })
    .unwrap();
}

#[test]
fn g2_no_out_of_bounds_via_valid_pointer() {
    let mut r = rtos();
    let a = r.add_compartment("a", 64);
    let b = r.add_compartment("b", 64);
    let t = r.spawn_thread(1, 1024, a);
    // Two adjacent heap objects; B receives a pointer to the first.
    let obj1 = r.malloc(t, 32).unwrap();
    let obj2 = r.malloc(t, 32).unwrap();
    r.cross_call(t, b, 64, |env| {
        // Walk off the end towards obj2.
        for off in 32..128i32 {
            let probe = obj1.incremented(off);
            let ok = probe.check_access(probe.address(), 1, Permissions::LD);
            assert!(ok.is_err(), "escaped bounds at +{off}");
        }
        let _ = env;
    })
    .unwrap();
    let _ = obj2;
}

#[test]
fn g3_no_use_after_free() {
    let mut r = rtos();
    let a = r.add_compartment("a", 64);
    let b = r.add_compartment("b", 64);
    let t = r.spawn_thread(1, 1024, a);
    let obj = r.malloc(t, 48).unwrap();

    // B stashes the pointer in its globals during a call.
    let stash = r.compartment(b).cgp;
    let stash_addr = stash.base();
    r.cross_call(t, b, 64, |env| {
        env.machine
            .meter()
            .store_cap(env.cgp, stash_addr, obj)
            .unwrap();
    })
    .unwrap();

    // A frees the object. From this instant UAF is impossible: the
    // revocation bits are painted before free() returns.
    r.free(t, obj).unwrap();

    // B retrieves its stashed pointer: the load filter strips the tag.
    let stale = r
        .cross_call(t, b, 64, |env| {
            env.machine.meter().load_cap(env.cgp, stash_addr).unwrap()
        })
        .unwrap();
    assert!(!stale.tag(), "guarantee 3: stale pointer must be dead");

    // Even the still-tagged register copy cannot reach *reused* memory:
    // the chunk stays quarantined until a sweep invalidates all copies.
    r.heap.start_revocation(&mut r.machine).unwrap();
    r.heap.wait_revocation_complete(&mut r.machine).unwrap();
    let reuse = r.malloc(t, 48).unwrap();
    if reuse.base() == obj.base() {
        // Memory was reused: every in-memory copy of the old pointer has
        // been invalidated by the sweep.
        let reloaded = r
            .cross_call(t, b, 64, |env| {
                env.machine.meter().load_cap(env.cgp, stash_addr).unwrap()
            })
            .unwrap();
        assert!(!reloaded.tag());
    }
}

#[test]
fn g4_no_stack_pointer_survives_the_call() {
    // A passes B a pointer to an on-stack object; B tries to keep it.
    let mut r = rtos();
    let a = r.add_compartment("a", 64);
    let b = r.add_compartment("b", 64);
    let t = r.spawn_thread(1, 1024, a);

    // A's on-stack object: derived from the (local, SL) stack capability.
    let sp = r.thread(t).sp;
    let on_stack = r
        .thread(t)
        .stack_cap
        .with_address(sp - 64)
        .set_bounds(32)
        .unwrap();
    assert!(!on_stack.is_global(), "stack derivations are local");

    let b_globals = r.compartment(b).cgp;
    let capture_attempt = r
        .cross_call(t, b, 64, |env| {
            // Storing a local capability to globals requires SL, which no
            // globals capability has.
            env.machine
                .meter()
                .store_cap(b_globals, b_globals.base(), on_stack)
        })
        .unwrap();
    assert!(
        capture_attempt.is_err(),
        "guarantee 4: stack pointers cannot be captured off-stack"
    );

    // B *can* spill it to its own stack frame — but the switcher zeroes
    // that on return, so nothing survives the call.
    r.cross_call(t, b, 64, |env| {
        let slot = env.stack_cap.address() - 16;
        env.machine
            .meter()
            .store_cap(env.stack_cap, slot, on_stack)
            .unwrap();
    })
    .unwrap();
    let (base, top) = (r.thread(t).stack_base, r.thread(t).sp);
    let mut a_ = base;
    while a_ < top {
        let (_, tag) = r.machine.sram.read_cap_word(a_).unwrap();
        assert!(!tag, "guarantee 4: no capability survives below sp");
        a_ += 8;
    }
    let _ = a;
}

#[test]
fn g5_no_delegation_beyond_a_single_call() {
    // A delegates a heap object for one call by stripping GL (§5.2).
    let mut r = rtos();
    let a = r.add_compartment("a", 64);
    let b = r.add_compartment("b", 64);
    let t = r.spawn_thread(1, 1024, a);
    let obj = r.malloc(t, 64).unwrap();
    let ephemeral = obj.and_perms(!Permissions::GL);

    let b_globals = r.compartment(b).cgp;
    r.cross_call(t, b, 64, |env| {
        // Off-stack capture fails (no SL on globals)...
        assert!(env
            .machine
            .meter()
            .store_cap(b_globals, b_globals.base(), ephemeral)
            .is_err());
        // ...and the heap is equally off-limits: heap caps lack SL too.
        let heap_obj = env.heap.malloc(env.machine, 16).unwrap();
        assert!(env
            .machine
            .meter()
            .store_cap(heap_obj, heap_obj.base(), ephemeral)
            .is_err());
        env.heap.free(env.machine, heap_obj).unwrap();
        // The stack works, but dies at return (zeroed by the switcher).
        let slot = env.stack_cap.address() - 8;
        env.machine
            .meter()
            .store_cap(env.stack_cap, slot, ephemeral)
            .unwrap();
    })
    .unwrap();
    // After return, nothing below sp holds a tag.
    let (base, top) = (r.thread(t).stack_base, r.thread(t).sp);
    let mut addr = base;
    while addr < top {
        let (_, tag) = r.machine.sram.read_cap_word(addr).unwrap();
        assert!(!tag, "guarantee 5: delegation must not outlive the call");
        addr += 8;
    }
}

#[test]
fn g6_immutable_reference_cannot_modify() {
    let mut r = rtos();
    let a = r.add_compartment("a", 64);
    let b = r.add_compartment("b", 64);
    let t = r.spawn_thread(1, 1024, a);
    let obj = r.malloc(t, 64).unwrap();
    let ro = obj.and_perms(!Permissions::SD & !Permissions::LM);
    r.cross_call(t, b, 64, |env| {
        assert_eq!(
            env.machine.meter().store(ro, ro.base(), 4, 0xbad),
            Err(cheriot::core::TrapCause::Cheri {
                fault: CapFault::PermissionViolation {
                    needed: Permissions::SD
                },
                reg: 0xff
            })
        );
        // And write permission cannot be regrown.
        let w = ro.and_perms(Permissions::ROOT_MEM);
        assert!(!w.perms().contains(Permissions::SD));
    })
    .unwrap();
}

#[test]
fn g7_deep_immutability_via_load_mutable() {
    // A shares a structure root without LM: everything loaded through it
    // becomes read-only, recursively (§3.1.1).
    let mut r = rtos();
    let a = r.add_compartment("a", 64);
    let b = r.add_compartment("b", 64);
    let t = r.spawn_thread(1, 1024, a);

    // A two-node structure in the heap: root -> inner.
    let root = r.malloc(t, 16).unwrap();
    let inner = r.malloc(t, 32).unwrap();
    let aug = r.compartment(a).cgp; // anything with MC+SD to write the link
    let _ = aug;
    let heap_view = root;
    r.machine
        .meter()
        .store_cap(heap_view, root.base(), inner)
        .unwrap();

    let deep_ro = root.and_perms(!Permissions::LM);
    let loaded = r
        .cross_call(t, b, 64, |env| {
            env.machine.meter().load_cap(deep_ro, root.base()).unwrap()
        })
        .unwrap();
    // The loaded inner pointer lost SD and LM.
    assert!(loaded.tag());
    assert!(!loaded.perms().contains(Permissions::SD));
    assert!(!loaded.perms().contains(Permissions::LM));
    assert!(loaded
        .check_access(inner.base(), 4, Permissions::SD)
        .is_err());
}

#[test]
fn g8_opaque_references_cannot_be_tampered() {
    // A hands B a sealed ("opaque") reference to its object.
    let mut r = rtos();
    let a = r.add_compartment("a", 64);
    let b = r.add_compartment("b", 64);
    let t = r.spawn_thread(1, 1024, a);
    let obj = r.malloc(t, 64).unwrap();
    // A seals with a data otype it owns (the RTOS virtualizes these; here
    // we use the architectural sealing root directly as the TCB would).
    let seal_auth = Capability::root_sealing().with_address(5);
    let opaque = obj.seal_with(seal_auth).unwrap();

    r.cross_call(t, b, 64, |env| {
        // No access through a sealed capability.
        assert_eq!(
            opaque.check_access(opaque.address(), 1, Permissions::LD),
            Err(CapFault::SealViolation)
        );
        // No mutation: every manipulation detags.
        assert!(!opaque.incremented(4).tag());
        assert!(!opaque.and_perms(Permissions::NONE).tag());
        assert!(!opaque.set_bounds(8).unwrap().tag());
        // No unsealing without the authority: B forging an authority fails
        // because it cannot conjure SE/US permissions.
        let fake_auth = env.cgp.with_address(5);
        assert!(opaque.unseal_with(fake_auth).is_err());
    })
    .unwrap();

    // A, holding the real authority, gets its object back intact.
    let unsealed = opaque.unseal_with(seal_auth).unwrap();
    assert_eq!(unsealed, obj);
}

#[test]
fn defense_in_depth_within_a_compartment() {
    // §2.3: the same facilities give intra-compartment hardening — bounds
    // on private globals hold even against the compartment's own code.
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let globals = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE)
        .set_bounds(256)
        .unwrap();
    let field = globals
        .with_address(layout::SRAM_BASE + 8)
        .set_bounds(4)
        .unwrap();
    assert!(m.meter().store(field, field.base(), 4, 1).is_ok());
    assert!(
        m.meter().store(field, field.base() + 4, 4, 2).is_err(),
        "sub-object overflow caught"
    );
}
