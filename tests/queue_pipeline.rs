//! Producer/consumer integration: two threads in different compartments
//! connected by a capability-carrying message queue, scheduled
//! preemptively, with every message a heap allocation — the communication
//! pattern of the §7.2.3 application, reduced to its essentials.

use cheriot::alloc::{RevokerKind, TemporalPolicy};
use cheriot::cap::Capability;
use cheriot::core::{layout, CoreModel, Machine, MachineConfig};
use cheriot::rtos::{MessageQueue, QueueError, Rtos, Slice, ThreadBody, ThreadId};
use std::cell::RefCell;
use std::rc::Rc;

struct Producer {
    queue: Rc<RefCell<MessageQueue>>,
    sent: u32,
    target: u32,
}

impl ThreadBody for Producer {
    fn run_slice(&mut self, rtos: &mut Rtos, me: ThreadId) -> Slice {
        if self.sent == self.target {
            return Slice::Done;
        }
        // Produce one message: a heap buffer with a payload.
        let Ok(buf) = rtos.malloc(me, 64) else {
            return Slice::Sleep(2_000); // heap pressure: back off
        };
        rtos.machine
            .meter()
            .store(buf, buf.base(), 4, 0xfeed_0000 | self.sent)
            .unwrap();
        match self.queue.borrow_mut().try_send(&mut rtos.machine, buf) {
            Ok(()) => {
                self.sent += 1;
                Slice::Sleep(500)
            }
            Err(QueueError::Full) => {
                // Queue full: free the buffer and retry later.
                rtos.free(me, buf).unwrap();
                Slice::Sleep(1_000)
            }
            Err(e) => panic!("{e}"),
        }
    }
}

struct Consumer {
    queue: Rc<RefCell<MessageQueue>>,
    received: Rc<RefCell<Vec<u32>>>,
    expected: u32,
}

impl ThreadBody for Consumer {
    fn run_slice(&mut self, rtos: &mut Rtos, me: ThreadId) -> Slice {
        if self.received.borrow().len() as u32 == self.expected {
            return Slice::Done;
        }
        match self.queue.borrow_mut().try_recv(&mut rtos.machine) {
            Ok(msg) => {
                assert!(msg.tag(), "live message arrives tagged");
                let v = rtos.machine.meter().load(msg, msg.base(), 4).unwrap();
                self.received.borrow_mut().push(v);
                // The consumer owns the buffer now and frees it.
                rtos.free(me, msg).unwrap();
                Slice::Yield
            }
            Err(QueueError::Empty) => Slice::Sleep(800),
            Err(e) => panic!("{e}"),
        }
    }
}

#[test]
fn producer_consumer_pipeline_over_a_capability_queue() {
    const N: u32 = 40;
    let machine = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let mut rtos = Rtos::new(machine, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    let prod_comp = rtos.add_compartment("producer", 64);
    let cons_comp = rtos.add_compartment("consumer", 64);
    let t_prod = rtos.spawn_thread(2, 512, prod_comp);
    let t_cons = rtos.spawn_thread(2, 512, cons_comp);

    // The queue ring lives in TCB SRAM; its buffer capability has SL so
    // even local capabilities could be delegated through it.
    let ring = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE + 0x80)
        .set_bounds(8 * 8)
        .unwrap();
    let queue = Rc::new(RefCell::new(MessageQueue::new(ring, 8)));
    let received = Rc::new(RefCell::new(Vec::new()));

    let mut bodies: Vec<(ThreadId, Box<dyn ThreadBody>)> = vec![
        (
            t_prod,
            Box::new(Producer {
                queue: queue.clone(),
                sent: 0,
                target: N,
            }),
        ),
        (
            t_cons,
            Box::new(Consumer {
                queue: queue.clone(),
                received: received.clone(),
                expected: N,
            }),
        ),
    ];
    rtos.run_threads(&mut bodies, 50_000_000);

    let got = received.borrow();
    assert_eq!(got.len() as u32, N, "all messages delivered");
    for (i, v) in got.iter().enumerate() {
        assert_eq!(*v, 0xfeed_0000 | i as u32, "in order, uncorrupted");
    }
    // Every buffer was freed; the heap is clean and consistent.
    assert_eq!(rtos.heap.live_allocations(), 0);
    rtos.heap.check_consistency(&rtos.machine).unwrap();
    let stats = rtos.heap.stats();
    assert_eq!(stats.allocs, stats.frees);
}
