//! # cheriot — a Rust reproduction of the CHERIoT platform
//!
//! This umbrella crate re-exports the whole system described in
//! *CHERIoT: Complete Memory Safety for Embedded Devices* (MICRO 2023):
//!
//! * [`cap`] — the 64-bit compressed capability model (§3.1–§3.2),
//! * [`core`] — the ISA simulator with tagged SRAM, load filter and
//!   background revoker (§3.3, §4),
//! * [`asm`] — the program builder for guest code,
//! * [`alloc`] — the quarantining heap allocator (§5.1),
//! * [`rtos`] — compartments, the trusted switcher, threads (§2.6, §5.2),
//! * [`fault`] — deterministic fault injection, invariant checking, and
//!   campaign classification (DESIGN.md §10),
//! * [`diff`] — the differential ISA fuzzer: weighted program generator,
//!   naive golden interpreter, and lockstep comparator with automatic
//!   shrinking (DESIGN.md §15),
//! * [`soc`] — manifest-driven SoC platform: MMIO devices (UART, timer,
//!   DMA, network loopback) on the device bus (DESIGN.md §14),
//! * [`farm`] — the fleet-scale device farm: thousands of instances
//!   forked from one warm snapshot, quantum-scheduled under live
//!   cross-instance pub/sub traffic (DESIGN.md §16),
//! * [`hwmodel`] — the Table 2 area/power composition model,
//! * [`workloads`] — the evaluation workloads (§7.2),
//! * [`trace`] — structured tracing, metrics, and profiling for the
//!   whole stack (timelines, per-compartment cycle attribution).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! ## Quick start
//!
//! ```
//! use cheriot::cap::{Capability, Permissions};
//!
//! // Derive an object capability and watch monotonicity at work.
//! let obj = Capability::root_mem_rw().with_address(0x2000_0000).set_bounds(64).unwrap();
//! assert!(obj.check_access(0x2000_0040, 1, Permissions::LD).is_err()); // out of bounds
//! ```

pub use cheriot_alloc as alloc;
pub use cheriot_asm as asm;
pub use cheriot_cap as cap;
pub use cheriot_core as core;
pub use cheriot_diff as diff;
pub use cheriot_farm as farm;
pub use cheriot_fault as fault;
pub use cheriot_hwmodel as hwmodel;
pub use cheriot_rtos as rtos;
pub use cheriot_soc as soc;
pub use cheriot_trace as trace;
pub use cheriot_workloads as workloads;
