//! A compartmentalized "smart sensor": a sensor-driver compartment
//! produces readings, a filter compartment smooths them (fixed-point IIR),
//! and a logger compartment prints summaries — three mutually-distrusting
//! suppliers wired together with capability-carrying queues, allocation
//! quotas bounding each party's heap use, and an audit report showing the
//! blast radius before the system ever runs.
//!
//! Run with `cargo run --release --example smart_sensor`.

use cheriot::alloc::{RevokerKind, TemporalPolicy};
use cheriot::cap::{Capability, Permissions};
use cheriot::core::{layout, CoreModel, Machine, MachineConfig};
use cheriot::rtos::{ExportPosture, MessageQueue, Rtos, Slice, ThreadBody, ThreadId};
use std::cell::RefCell;
use std::rc::Rc;

const SAMPLES: u32 = 64;

struct SensorDriver {
    queue: Rc<RefCell<MessageQueue>>,
    produced: u32,
    state: u32,
}

impl ThreadBody for SensorDriver {
    fn run_slice(&mut self, rtos: &mut Rtos, me: ThreadId) -> Slice {
        if self.produced == SAMPLES {
            return Slice::Done;
        }
        // A pseudo-physical reading (the driver would read an ADC via MMIO).
        self.state = self.state.wrapping_mul(1103515245).wrapping_add(12345);
        let reading = 500 + (self.state >> 20) % 200; // 500..700
        let Ok(buf) = rtos.malloc(me, 16) else {
            return Slice::Sleep(5_000);
        };
        rtos.machine
            .meter()
            .store(buf, buf.base(), 4, reading)
            .unwrap();
        rtos.machine
            .meter()
            .store(buf, buf.base() + 4, 4, self.produced)
            .unwrap();
        // Readings are handed over *read-only*: the filter can look, not
        // touch (guarantee ⑥ of §2.3 in day-to-day use).
        let ro = buf.and_perms(!Permissions::SD & !Permissions::LM);
        if self
            .queue
            .borrow_mut()
            .try_send(&mut rtos.machine, ro)
            .is_err()
        {
            rtos.free(me, buf).unwrap();
            return Slice::Sleep(2_000);
        }
        // NOTE: the driver retains the writable capability and frees it
        // after the batch (model: a reading pool). For simplicity it leaks
        // ownership into the consumer's free below via the shared heap —
        // the logger frees through the original allocation.
        self.produced += 1;
        Slice::Sleep(1_000)
    }
}

struct Filter {
    inq: Rc<RefCell<MessageQueue>>,
    outq: Rc<RefCell<MessageQueue>>,
    /// Q8.8 fixed-point IIR state.
    acc: u32,
}

impl ThreadBody for Filter {
    fn run_slice(&mut self, rtos: &mut Rtos, me: ThreadId) -> Slice {
        let msg = match self.inq.borrow_mut().try_recv(&mut rtos.machine) {
            Ok(m) => m,
            Err(_) => return Slice::Sleep(1_500),
        };
        let raw = rtos.machine.meter().load(msg, msg.base(), 4).unwrap();
        let idx = rtos.machine.meter().load(msg, msg.base() + 4, 4).unwrap();
        // Prove the read-only delegation holds:
        assert!(
            rtos.machine.meter().store(msg, msg.base(), 4, 0).is_err(),
            "filter must not be able to corrupt the reading"
        );
        // y += (x - y) / 4 in Q8.8 (signed arithmetic: x may be below y).
        let x = (raw << 8) as i32;
        let diff = (x - self.acc as i32) >> 2;
        self.acc = self.acc.wrapping_add(diff as u32);
        // Emit a result record from the filter's own quota.
        let Ok(out) = rtos.malloc(me, 16) else {
            return Slice::Sleep(2_000);
        };
        let m = &mut rtos.machine;
        m.meter().store(out, out.base(), 4, self.acc >> 8).unwrap();
        m.meter().store(out, out.base() + 4, 4, idx).unwrap();
        m.meter().store(out, out.base() + 8, 4, raw).unwrap();
        if self.outq.borrow_mut().try_send(m, out).is_err() {
            rtos.free(me, out).unwrap();
        }
        // The raw reading is done with; release it.
        // (The queue delivered a read-only view; freeing requires the
        // allocator to recognise the allocation, which it does by base.)
        rtos.free(me, msg).ok();
        Slice::Yield
    }
}

struct Logger {
    outq: Rc<RefCell<MessageQueue>>,
    logged: Rc<RefCell<Vec<(u32, u32)>>>,
}

impl ThreadBody for Logger {
    fn run_slice(&mut self, rtos: &mut Rtos, me: ThreadId) -> Slice {
        if self.logged.borrow().len() as u32 == SAMPLES {
            return Slice::Done;
        }
        match self.outq.borrow_mut().try_recv(&mut rtos.machine) {
            Ok(rec) => {
                let smooth = rtos.machine.meter().load(rec, rec.base(), 4).unwrap();
                let idx = rtos.machine.meter().load(rec, rec.base() + 4, 4).unwrap();
                self.logged.borrow_mut().push((idx, smooth));
                rtos.free(me, rec).unwrap();
                Slice::Yield
            }
            Err(_) => Slice::Sleep(1_500),
        }
    }
}

fn main() {
    let machine = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let mut rtos = Rtos::new(machine, TemporalPolicy::Quarantine(RevokerKind::Hardware));

    let driver = rtos.add_compartment("sensor-driver", 128);
    let filter = rtos.add_compartment("iir-filter", 128);
    let logger = rtos.add_compartment("logger", 128);
    rtos.compartment_mut(driver)
        .export("read_adc", 0x10, ExportPosture::Disabled); // timing-critical
    rtos.compartment_mut(filter)
        .export("push", 0x20, ExportPosture::Enabled);
    rtos.import(filter, driver, "read_adc");
    rtos.import(logger, filter, "push");

    // Quotas bound each supplier's heap appetite.
    rtos.set_allocation_quota(driver, 2048);
    rtos.set_allocation_quota(filter, 2048);

    let t_driver = rtos.spawn_thread(3, 512, driver);
    let t_filter = rtos.spawn_thread(2, 512, filter);
    let t_logger = rtos.spawn_thread(1, 512, logger);

    // Queues in TCB SRAM.
    let ring = |off: u32| {
        Capability::root_mem_rw()
            .with_address(layout::SRAM_BASE + off)
            .set_bounds(8 * 8)
            .unwrap()
    };
    let raw_q = Rc::new(RefCell::new(MessageQueue::new(ring(0x80), 8)));
    let out_q = Rc::new(RefCell::new(MessageQueue::new(ring(0xc0), 8)));
    let logged = Rc::new(RefCell::new(Vec::new()));

    println!("{}", rtos.audit());

    let mut bodies: Vec<(ThreadId, Box<dyn ThreadBody>)> = vec![
        (
            t_driver,
            Box::new(SensorDriver {
                queue: raw_q.clone(),
                produced: 0,
                state: 0x5eed,
            }),
        ),
        (
            t_filter,
            Box::new(Filter {
                inq: raw_q.clone(),
                outq: out_q.clone(),
                acc: 600 << 8,
            }),
        ),
        (
            t_logger,
            Box::new(Logger {
                outq: out_q.clone(),
                logged: logged.clone(),
            }),
        ),
    ];
    rtos.run_threads(&mut bodies, 50_000_000);

    let log = logged.borrow();
    println!("logged {} smoothed readings; last 8:", log.len());
    for (idx, v) in log.iter().rev().take(8).rev() {
        println!("  sample {idx:>3}: {v}");
    }
    assert_eq!(log.len() as u32, SAMPLES);
    // All smoothed values stay inside the physical range.
    assert!(log.iter().all(|(_, v)| (450..=750).contains(v)));
    println!(
        "\nheap: {} allocs / {} frees, {} revocation passes — clean shutdown",
        rtos.heap.stats().allocs,
        rtos.heap.stats().frees,
        rtos.heap.stats().revocation_passes
    );
    rtos.heap.check_consistency(&rtos.machine).unwrap();
    println!("smart sensor demo OK");
}
