//! Binary toolchain demo: assemble a program to machine code, disassemble
//! the listing, load the *binary* into the machine, and trace execution.
//!
//! Run with `cargo run --example machine_code_trace`.

use cheriot::asm::{disassemble, disassemble_words, Asm};
use cheriot::cap::Capability;
use cheriot::core::insn::Reg;
use cheriot::core::{layout, CoreModel, ExitReason, Machine, MachineConfig};

fn main() {
    // Fibonacci(12) with a heap... no — with plain registers, plus a
    // capability-bounded table of intermediate values.
    let mut a = Asm::new();
    a.li(Reg::T0, 12); // n
    a.li(Reg::A1, 0); // fib(0)
    a.li(Reg::A2, 1); // fib(1)
    a.cmove(Reg::T1, Reg::A0); // table cursor
    let top = a.here();
    a.add(Reg::A3, Reg::A1, Reg::A2);
    a.mv(Reg::A1, Reg::A2);
    a.mv(Reg::A2, Reg::A3);
    a.sw(Reg::A3, 0, Reg::T1); // table[i] = fib(i+2)
    a.cincaddrimm(Reg::T1, Reg::T1, 4);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.mv(Reg::A0, Reg::A1);
    a.halt();

    // Assemble to machine code.
    let words = a.assemble_binary().expect("encodable");
    println!("assembled {} words of machine code:\n", words.len());
    print!("{}", disassemble_words(layout::CODE_BASE, &words));

    // Load the *binary* (it is decoded by the machine, not the builder).
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    m.enable_trace(8);
    let entry = m.load_binary(&words).expect("valid machine code");
    m.set_entry(entry);
    let table = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE)
        .set_bounds(64)
        .unwrap();
    m.cpu.write(Reg::A0, table);

    let r = m.run(10_000);
    println!("\nresult: {r:?} in {} cycles", m.cycles);
    assert_eq!(r, ExitReason::Halted(144), "fib(12) = 144");

    println!("\nlast retired instructions:");
    for e in m.trace_entries() {
        println!(
            "  cycle {:>5}  pc {:#010x}  {}",
            e.cycles,
            e.pc,
            disassemble(&e.instr)
        );
    }

    // The table was filled through the bounded capability.
    let fib10 = m.sram.read_scalar(layout::SRAM_BASE + 4 * 9, 4).unwrap();
    println!("\ntable[9] = {fib10} (fib(11))");
    println!("\nmachine-code trace demo OK");
}
