//! Quickstart: capabilities, guarded manipulation, and a first guest
//! program on the simulated CHERIoT core.
//!
//! Run with `cargo run --example quickstart`.

use cheriot::asm::Asm;
use cheriot::cap::{Capability, Permissions};
use cheriot::core::insn::Reg;
use cheriot::core::{layout, CoreModel, ExitReason, Machine, MachineConfig};

fn main() {
    // --- 1. Capabilities are unforgeable, bounded, permissioned pointers.
    let root = Capability::root_mem_rw();
    let object = root
        .with_address(layout::SRAM_BASE + 0x100)
        .set_bounds(64)
        .expect("64 bytes is always exactly representable");
    println!("object capability: {object}");

    // Monotonicity: bounds shrink, permissions shed, never the reverse.
    let read_only = object.and_perms(!Permissions::SD);
    assert!(!read_only.perms().contains(Permissions::SD));
    assert!(
        !read_only
            .and_perms(Permissions::ROOT_MEM)
            .perms()
            .contains(Permissions::SD),
        "write permission cannot be regrown"
    );

    // Out-of-bounds access is refused at use time.
    let oob = object.check_access(object.base() + 64, 1, Permissions::LD);
    println!("access one past the end: {oob:?}");
    assert!(oob.is_err());

    // --- 2. Run a guest program: sum an array through a bounded capability.
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));

    // The array: 10 words in SRAM.
    let array = root.with_address(layout::SRAM_BASE).set_bounds(40).unwrap();
    for i in 0..10u32 {
        m.meter()
            .store(array, layout::SRAM_BASE + i * 4, 4, i + 1)
            .unwrap();
    }

    let mut a = Asm::new();
    a.li(Reg::T0, 10); // counter
    a.li(Reg::A1, 0); // sum
    a.cmove(Reg::T1, Reg::A0); // cursor
    let top = a.here();
    a.lw(Reg::T2, 0, Reg::T1);
    a.add(Reg::A1, Reg::A1, Reg::T2);
    a.cincaddrimm(Reg::T1, Reg::T1, 4);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.mv(Reg::A0, Reg::A1);
    a.halt();

    let entry = m.load_program(&a.assemble());
    m.set_entry(entry);
    m.cpu.write(Reg::A0, array);
    let result = m.run(10_000);
    println!("guest sum of 1..=10 -> {result:?} in {} cycles", m.cycles);
    assert_eq!(result, ExitReason::Halted(55));

    // --- 3. The same program walking one element too far traps.
    let mut m2 = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let mut a2 = Asm::new();
    a2.lw(Reg::T2, 40, Reg::A0); // index 10: out of bounds
    a2.halt();
    let entry2 = m2.load_program(&a2.assemble());
    m2.set_entry(entry2);
    m2.cpu.write(Reg::A0, array);
    let fault = m2.run(10_000);
    println!("out-of-bounds guest access -> {fault:?}");
    assert!(matches!(fault, ExitReason::Fault(_)));

    println!("\nquickstart OK");
}
