//! The compartment audit report (paper §3.1.2): at static-link time the
//! RTOS knows every export, every import edge, and — because interrupt
//! posture is baked into sentry types — exactly which code can run with
//! interrupts disabled. An auditor reviews this instead of trusting code.
//!
//! Run with `cargo run --example audit_report`.

use cheriot::alloc::TemporalPolicy;
use cheriot::core::{CoreModel, Machine, MachineConfig};
use cheriot::rtos::{ExportPosture, Rtos};

fn main() {
    let mut rtos = Rtos::new(
        Machine::new(MachineConfig::new(CoreModel::ibex())),
        TemporalPolicy::None,
    );

    // A plausible IoT image.
    let app = rtos.add_compartment("app", 256);
    let net = rtos.add_compartment("netstack", 1024);
    let tls = rtos.add_compartment("tls", 2048);
    let uart = rtos.add_compartment("uart-driver", 128);

    rtos.compartment_mut(net)
        .export("send", 0x40, ExportPosture::Enabled);
    rtos.compartment_mut(net)
        .export("recv", 0x80, ExportPosture::Enabled);
    rtos.compartment_mut(tls)
        .export("encrypt", 0x20, ExportPosture::Enabled);
    // The only interrupts-disabled entry in the image: the UART TX FIFO
    // push, which must not be preempted mid-register-sequence.
    rtos.compartment_mut(uart)
        .export("tx_atomic", 0x10, ExportPosture::Disabled);

    rtos.import(app, net, "send").unwrap();
    rtos.import(app, net, "recv").unwrap();
    rtos.import(net, tls, "encrypt").unwrap();
    rtos.import(net, uart, "tx_atomic").unwrap();

    let report = rtos.audit();
    println!("{report}");

    println!("blast radius from `app` (reachable compartments):");
    for c in report.reachable_from("app") {
        println!("  {c}");
    }
    println!();
    println!(
        "auditor's focus — interrupts-disabled entry points: {:?}",
        report.interrupts_disabled_entries()
    );
    assert_eq!(report.interrupts_disabled_entries().len(), 1);
    println!("\naudit demo OK");
}
