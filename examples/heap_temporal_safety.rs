//! Deterministic temporal safety end to end: use-after-free is dead on
//! arrival, and reuse never aliases (paper §3.3, §5.1).
//!
//! Run with `cargo run --example heap_temporal_safety`.

use cheriot::alloc::{HeapAllocator, RevokerKind, TemporalPolicy};
use cheriot::cap::{Capability, Permissions};
use cheriot::core::{layout, CoreModel, Machine, MachineConfig};

fn main() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let mut heap = HeapAllocator::new(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));

    // A "victim" object, with its pointer stashed in a global (as a buggy
    // program might).
    let obj = heap.malloc(&mut m, 96).expect("allocate");
    println!("allocated: {obj}");
    let globals = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE)
        .set_bounds(4096)
        .unwrap();
    m.meter()
        .store_cap(globals, layout::SRAM_BASE + 64, obj)
        .unwrap();

    // Write a secret through it.
    m.meter().store(obj, obj.base(), 4, 0x5ec2e7).unwrap();

    // Free it. The allocator paints the revocation bits and zeroes the
    // memory *before free() returns* — UAF is impossible from this instant.
    heap.free(&mut m, obj).expect("free");
    println!(
        "freed; revocation bit painted: {}",
        m.bitmap.is_revoked(obj.base())
    );

    // The attacker reloads the stashed pointer: the load filter strips it.
    let stale = m.meter().load_cap(globals, layout::SRAM_BASE + 64).unwrap();
    println!("stale pointer after reload: {stale}");
    assert!(!stale.tag());
    assert!(stale.check_access(obj.base(), 4, Permissions::LD).is_err());

    // The memory is zeroed, so even raw reads through *other* authority
    // see no secret.
    let leaked = m.sram.read_scalar(obj.base(), 4).unwrap();
    assert_eq!(leaked, 0, "freed memory must be zeroed");

    // Reuse: the chunk leaves quarantine only after a sweep has
    // invalidated every stale capability still in memory.
    heap.start_revocation(&mut m).unwrap();
    heap.wait_revocation_complete(&mut m).unwrap();
    let reused = heap.malloc(&mut m, 96).expect("reuse");
    println!(
        "reused chunk at {:#x} (original at {:#x})",
        reused.base(),
        obj.base()
    );
    if reused.base() == obj.base() {
        println!("memory was reused — and no tagged capability to it survives anywhere");
    }
    let stats = heap.stats();
    println!(
        "\nallocator stats: {} allocs, {} frees, {} revocation passes",
        stats.allocs, stats.frees, stats.revocation_passes
    );
    println!("temporal safety demo OK");
}
