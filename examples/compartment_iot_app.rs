//! The end-to-end compartmentalized IoT application of paper §7.2.3:
//! network stack, TLS, MQTT and a bytecode interpreter in separate
//! mutually-distrusting compartments, every packet a heap allocation,
//! the interpreter ticking every 10 ms on a 20 MHz core.
//!
//! Run with `cargo run --release --example compartment_iot_app`.

use cheriot::workloads::iot::{run_iot_app, IotConfig, CLOCK_HZ};

fn main() {
    println!("CHERIoT end-to-end IoT application (Ibex @ 20 MHz)");
    println!("compartments: netstack | tls | mqtt | microvium | allocator\n");

    let cfg = IotConfig {
        duration_cycles: 2 * CLOCK_HZ,
        ..IotConfig::default()
    };
    let r = run_iot_app(&cfg);

    println!(
        "simulated {}s of wall-clock at 20 MHz:",
        r.cycles / CLOCK_HZ
    );
    println!("  packets processed      {}", r.packets);
    println!("  interpreter ticks      {}", r.js_ticks);
    println!("  heap allocations       {}", r.allocs);
    println!("  revocation passes      {}", r.revocation_passes);
    println!("  stale caps stripped    {}", r.filter_strips);
    println!();
    println!(
        "  CPU load: {:.1}% busy / {:.1}% idle   (paper: 17.5% / 82.5%)",
        r.cpu_load * 100.0,
        (1.0 - r.cpu_load) * 100.0
    );
}
