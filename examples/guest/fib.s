// fib(12) on the CHERIoT simulator.
// Run:  cargo run -p cheriot-cli --bin cheriot-sim -- run examples/guest/fib.s --dump-regs
//
// At reset the memory root is in ct0 (paper §3.1.1); we derive a bounded
// 64-byte table from it, then fill it with Fibonacci numbers.

    li   t2, 0x20000000      // table address
    csetaddr t2, t0, t2      // derive from the memory root...
    li   t1, 64
    csetbounds t2, t2, t1    // ...and bound it to 64 bytes
    cmove t0, zero           // erase the root (early boot discipline)
    cmove t1, zero

    li   a1, 0               // fib(0)
    li   a2, 1               // fib(1)
    li   s0, 12              // n
loop:
    add  a3, a1, a2
    mv   a1, a2
    mv   a2, a3
    sw   a3, 0(t2)
    cincaddrimm t2, t2, 4
    addi s0, s0, -1
    bnez s0, loop

    mv   a0, a1              // fib(12) = 144
    halt
