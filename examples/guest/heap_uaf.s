// Heap allocation and deterministic use-after-free protection, from pure
// guest code via the semihosted allocator (ecall ABI).
// Run:  cargo run -p cheriot-cli --bin cheriot-sim -- run examples/guest/heap_uaf.s --heap
//
// The program allocates, stashes the pointer in a global, frees it, and
// then reloads the stale pointer: the load filter delivers it untagged
// and the final load traps — UAF is dead on arrival.

    li   t2, 0x20000040     // a global slot
    csetaddr t2, t0, t2
    li   t1, 8
    csetbounds t2, t2, t1

    li   a0, 1              // malloc(48)
    li   a1, 48
    ecall
    cmove s0, a0

    li   t1, 123            // use it
    sw   t1, 0(s0)

    csc  s0, 0(t2)          // stash the pointer

    li   a0, 2              // free it
    cmove a1, s0
    ecall

    clc  s1, 0(t2)          // reload: the load filter strips the tag
    lw   t1, 0(s1)          // tag violation: deterministic UAF defeat

    li   a0, 3              // never reached
    li   a1, 0
    ecall
