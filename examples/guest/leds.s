// Marching LED pattern via the GPIO block (the paper's demo app animates
// the dev-board LEDs).
// Run:  cargo run -p cheriot-cli --bin cheriot-sim -- run examples/guest/leds.s

    li   t2, 0x84000000      // GPIO base
    csetaddr t2, t0, t2
    li   t1, 16
    csetbounds t2, t2, t1
    cmove t0, zero           // erase the root

    li   s0, 24              // steps
    li   s1, 1               // pattern
step:
    sw   s1, 0(t2)           // drive the LEDs
    slli s1, s1, 1
    andi t1, s1, 0xff
    bnez t1, no_wrap
    li   s1, 1
no_wrap:
    addi s0, s0, -1
    bnez s0, step

    li   a0, 0
    halt
