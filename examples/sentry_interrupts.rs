//! Sentry-based interrupt control (paper §3.1.2): granting a compartment
//! the right to call *one particular function* with interrupts disabled —
//! without allowing it to disable interrupts at will.
//!
//! Run with `cargo run --example sentry_interrupts`.

use cheriot::asm::Asm;
use cheriot::cap::{CapFault, Capability, OType};
use cheriot::core::insn::Reg;
use cheriot::core::{CoreModel, ExitReason, Machine, MachineConfig, TrapCause};

fn main() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));

    let mut a = Asm::new();
    // Entry: call the critical function through the *disabling* sentry in
    // a4 — this is the only way this code can run with interrupts off.
    a.cjalr(Reg::RA, Reg::A4);
    // Back here, the return sentry restored our posture.
    a.li(Reg::A0, 1);
    a.halt();
    let critical = a.here();
    a.nop(); // ... time-critical work with interrupts off ...
    a.nop();
    a.cret();
    let crit_idx = a.position(critical).unwrap() as u32;
    let prog = a.assemble();
    let entry = m.load_program(&prog);
    m.set_entry(entry);

    // The auditor's view: this compartment holds exactly one
    // interrupts-disabled entry point — the linker report of the real RTOS
    // lists precisely these sentries.
    let code = m.boot_pcc(entry);
    let crit_sentry = code
        .with_address(entry + 4 * crit_idx)
        .seal_as_sentry(OType::SENTRY_DISABLE)
        .expect("executable code can be sealed as a sentry");
    m.cpu.write(Reg::A4, crit_sentry);
    m.cpu.interrupts_enabled = true;

    println!("sentry for the critical section: {crit_sentry}");

    // A sentry is opaque: it cannot be read, written, re-bounded or used
    // as data — only jumped to.
    assert!(matches!(
        crit_sentry.check_access(crit_sentry.address(), 1, cheriot::cap::Permissions::LD),
        Err(CapFault::SealViolation)
    ));
    assert!(
        !crit_sentry.incremented(4).tag(),
        "cannot retarget a sentry"
    );

    // Watch the posture as the program runs.
    let mut trace = Vec::new();
    while m.exit_status().is_none() && m.cycles < 1000 {
        trace.push((m.cpu.pc(), m.cpu.interrupts_enabled));
        m.step();
    }
    for (pc, ie) in &trace {
        println!(
            "pc {:#x}  interrupts {}",
            pc,
            if *ie { "on" } else { "OFF" }
        );
    }
    assert_eq!(m.exit_status(), Some(ExitReason::Halted(1)));

    // The compartment cannot mint a disabling sentry for arbitrary code:
    // sealing requires authority it does not hold, and direct CSR access
    // to the interrupt state requires the SR permission.
    let unprivileged = code.and_perms(!cheriot::cap::Permissions::SR);
    let mut m2 = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let mut a2 = Asm::new();
    a2.cspecialrw(Reg::T0, cheriot::core::insn::ScrId::Mtcc, Reg::ZERO);
    a2.halt();
    let e2 = m2.load_program(&a2.assemble());
    m2.set_entry(e2);
    m2.cpu.pcc = unprivileged.with_address(e2);
    let r2 = m2.run(100);
    println!("\nSR-less access to system registers: {r2:?}");
    assert!(matches!(
        r2,
        ExitReason::Fault(TrapCause::Cheri {
            fault: CapFault::PermissionViolation { .. },
            ..
        })
    ));
    let _ = Capability::null();
    println!("\nsentry interrupt-control demo OK");
}
