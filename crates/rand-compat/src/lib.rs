//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace
//! dependency `rand` is path-renamed to this crate. It provides
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range`/`gen_bool` with the same signatures the real crate
//! exposes. The generator is SplitMix64 — deterministic for a given seed,
//! statistically fine for test-case generation and workload jitter, and
//! *not* a drop-in reproduction of the real `rand` value streams (seeded
//! consumers get a different but equally deterministic sequence).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructors (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (the subset of `rand::Rng` used here).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(&mut |_bound| self.next_u64())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 random mantissa bits, as the real implementation does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one sample, given a source of random 64-bit words.
    fn sample_from(self, next: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = next(0) as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut(u64) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = next(0) as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut(u64) -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (next(0) >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }
}
