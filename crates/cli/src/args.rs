//! Command-line flag parsing with contextual errors.
//!
//! Every failure names the offending flag and value — `cheriot-sim` never
//! answers malformed input with a bare usage dump (and never panics). The
//! parsers are plain functions over `&[String]` so they are directly unit
//! testable without spawning the binary.

use crate::runner::RunOptions;
use cheriot_core::{CoreKind, CoreModel};
use cheriot_diff::{DiffConfig, Profile};
use cheriot_farm::FarmConfig;
use cheriot_fault::{CampaignConfig, FaultClass};
use std::path::PathBuf;

/// Parsed `cheriot-sim run` invocation.
#[derive(Clone, Debug)]
pub struct RunArgs {
    /// Program path (assembly source, or machine code with `--binary`).
    pub path: String,
    /// Execution options.
    pub opts: RunOptions,
    /// Treat the input as little-endian machine code.
    pub binary: bool,
}

/// Parsed `cheriot-sim fault-campaign` invocation.
#[derive(Clone, Debug)]
pub struct CampaignArgs {
    /// Campaign-suite configuration.
    pub cfg: CampaignConfig,
    /// Write the JSON report here.
    pub json_out: Option<PathBuf>,
    /// Write the text report here (it always also goes to stdout).
    pub text_out: Option<PathBuf>,
}

/// Parsed `cheriot-sim farm` invocation.
#[derive(Clone, Debug)]
pub struct FarmArgs {
    /// Fleet configuration.
    pub cfg: FarmConfig,
    /// Write the JSON report here.
    pub json_out: Option<PathBuf>,
    /// Print the fleet-wide metrics summary after the report.
    pub metrics: bool,
}

/// Parsed `cheriot-sim diff-fuzz` invocation.
#[derive(Clone, Debug)]
pub struct DiffArgs {
    /// Differential-campaign configuration.
    pub cfg: DiffConfig,
    /// Write the JSON report here.
    pub json_out: Option<PathBuf>,
    /// Write one minimal-repro JSON per divergence into this directory.
    pub repro_dir: PathBuf,
}

fn value<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> Result<&'a str, String> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| format!("flag `{flag}` expects a value"))
}

fn uint<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("flag `{flag}`: expected an unsigned integer, got `{v}`"))
}

/// Parses `run` arguments: `<prog> [flags...]`.
///
/// # Errors
///
/// A message naming the offending flag or value.
pub fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let Some((path, flags)) = args.split_first() else {
        return Err("`run` expects a program path as its first argument".into());
    };
    let mut opts = RunOptions::default();
    let mut binary = false;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--core" => {
                let v = value(f, &mut it)?;
                opts.core = match v {
                    "ibex" => CoreKind::Ibex,
                    "flute" => CoreKind::Flute,
                    _ => {
                        return Err(format!(
                            "flag `--core`: expected `ibex` or `flute`, got `{v}`"
                        ))
                    }
                };
            }
            "--no-load-filter" => opts.load_filter = false,
            "--no-block-cache" => opts.block_cache = false,
            "--no-block-chain" => opts.block_chain = false,
            "--no-cow" => opts.cow = false,
            "--trace" => opts.trace_depth = uint(f, value(f, &mut it)?)?,
            "--max-cycles" => opts.max_cycles = uint(f, value(f, &mut it)?)?,
            "--watchdog" => opts.watchdog = Some(uint(f, value(f, &mut it)?)?),
            "--dump-regs" => opts.dump_regs = true,
            "--heap" => opts.heap = true,
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value(f, &mut it)?)),
            "--machine" => opts.machine = Some(PathBuf::from(value(f, &mut it)?)),
            "--metrics" => opts.metrics = true,
            "--binary" => binary = true,
            other => return Err(format!("unknown flag `{other}` for `run`")),
        }
    }
    Ok(RunArgs {
        path: path.clone(),
        opts,
        binary,
    })
}

/// Parses `fault-campaign` arguments.
///
/// # Errors
///
/// A message naming the offending flag or value (including unknown fault
/// kinds in `--kinds`).
pub fn parse_campaign_args(args: &[String]) -> Result<CampaignArgs, String> {
    let mut cfg = CampaignConfig::default();
    let mut json_out = None;
    let mut text_out = None;
    let mut it = args.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--seed-base" => cfg.seed_base = uint(f, value(f, &mut it)?)?,
            "--count" => cfg.count = uint(f, value(f, &mut it)?)?,
            "--threads" => {
                cfg.threads = uint(f, value(f, &mut it)?)?;
                if cfg.threads == 0 {
                    return Err("flag `--threads`: must be at least 1".into());
                }
            }
            "--faults" => cfg.faults_per_run = uint(f, value(f, &mut it)?)?,
            "--cadence" => cfg.cadence = uint(f, value(f, &mut it)?)?,
            "--max-cycles" => cfg.max_cycles = uint(f, value(f, &mut it)?)?,
            "--kinds" => {
                let v = value(f, &mut it)?;
                let mut classes = Vec::new();
                for part in v.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                    classes.push(
                        part.parse::<FaultClass>()
                            .map_err(|e| format!("flag `--kinds`: {e}"))?,
                    );
                }
                if classes.is_empty() {
                    return Err(
                        "flag `--kinds`: expected a comma-separated list of fault kinds".into(),
                    );
                }
                cfg.classes = classes;
            }
            "--no-snapshot" => cfg.use_snapshot = false,
            "--no-cow" => cfg.cow = false,
            "--json" => json_out = Some(PathBuf::from(value(f, &mut it)?)),
            "--out" => text_out = Some(PathBuf::from(value(f, &mut it)?)),
            other => return Err(format!("unknown flag `{other}` for `fault-campaign`")),
        }
    }
    if cfg.count == 0 {
        return Err("flag `--count`: must be at least 1".into());
    }
    Ok(CampaignArgs {
        cfg,
        json_out,
        text_out,
    })
}

/// Parses `farm` arguments.
///
/// # Errors
///
/// A message naming the offending flag or value.
pub fn parse_farm_args(args: &[String]) -> Result<FarmArgs, String> {
    let mut cfg = FarmConfig::default();
    let mut json_out = None;
    let mut metrics = false;
    let mut it = args.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--devices" => {
                cfg.devices = uint(f, value(f, &mut it)?)?;
                if cfg.devices == 0 {
                    return Err("flag `--devices`: must be at least 1".into());
                }
            }
            "--threads" => {
                cfg.workers = uint(f, value(f, &mut it)?)?;
                if cfg.workers == 0 {
                    return Err("flag `--threads`: must be at least 1".into());
                }
            }
            "--quantum" => {
                cfg.quantum = uint(f, value(f, &mut it)?)?;
                if cfg.quantum == 0 {
                    return Err("flag `--quantum`: must be at least 1".into());
                }
            }
            "--rounds" => cfg.rounds = uint(f, value(f, &mut it)?)?,
            "--settle-rounds" => cfg.settle_rounds = uint(f, value(f, &mut it)?)?,
            "--seed" => cfg.seed = uint(f, value(f, &mut it)?)?,
            "--topics" => cfg.topics = uint(f, value(f, &mut it)?)?,
            "--host-rate" => cfg.host_rate = uint(f, value(f, &mut it)?)?,
            "--sram" => cfg.sram_size = uint(f, value(f, &mut it)?)?,
            "--core" => {
                let v = value(f, &mut it)?;
                cfg.core = match v {
                    "ibex" => CoreModel::ibex(),
                    "flute" => CoreModel::flute(),
                    _ => {
                        return Err(format!(
                            "flag `--core`: expected `ibex` or `flute`, got `{v}`"
                        ))
                    }
                };
            }
            "--no-block-cache" => cfg.dispatch = (false, false),
            "--no-block-chain" => cfg.dispatch.1 = false,
            "--no-cow" => cfg.cow = false,
            "--json" => json_out = Some(PathBuf::from(value(f, &mut it)?)),
            "--metrics" => metrics = true,
            other => return Err(format!("unknown flag `{other}` for `farm`")),
        }
    }
    if cfg.rounds == 0 {
        return Err("flag `--rounds`: must be at least 1".into());
    }
    Ok(FarmArgs {
        cfg,
        json_out,
        metrics,
    })
}

/// Parses `diff-fuzz` arguments.
///
/// # Errors
///
/// A message naming the offending flag or value.
pub fn parse_diff_args(args: &[String]) -> Result<DiffArgs, String> {
    let mut cfg = DiffConfig::default();
    let mut json_out = None;
    let mut repro_dir = PathBuf::from("results");
    let mut it = args.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--seed-base" => cfg.seed_base = uint(f, value(f, &mut it)?)?,
            "--count" => cfg.count = uint(f, value(f, &mut it)?)?,
            "--threads" => {
                cfg.threads = uint(f, value(f, &mut it)?)?;
                if cfg.threads == 0 {
                    return Err("flag `--threads`: must be at least 1".into());
                }
            }
            "--budget-cycles" => cfg.budget_cycles = uint(f, value(f, &mut it)?)?,
            "--profile" => {
                let v = value(f, &mut it)?;
                cfg.profile = match v {
                    "full" => Profile::full(),
                    "binary" => Profile::binary_safe(),
                    _ => {
                        return Err(format!(
                            "flag `--profile`: expected `full` or `binary`, got `{v}`"
                        ))
                    }
                };
            }
            "--json" => json_out = Some(PathBuf::from(value(f, &mut it)?)),
            "--repro-dir" => repro_dir = PathBuf::from(value(f, &mut it)?),
            other => return Err(format!("unknown flag `{other}` for `diff-fuzz`")),
        }
    }
    if cfg.count == 0 {
        return Err("flag `--count`: must be at least 1".into());
    }
    Ok(DiffArgs {
        cfg,
        json_out,
        repro_dir,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_args_happy_path() {
        let a = parse_run_args(&v(&[
            "prog.s",
            "--core",
            "flute",
            "--watchdog",
            "5000",
            "--heap",
            "--max-cycles",
            "123",
        ]))
        .unwrap();
        assert_eq!(a.path, "prog.s");
        assert_eq!(a.opts.watchdog, Some(5000));
        assert_eq!(a.opts.max_cycles, 123);
        assert!(a.opts.heap);
        assert!(!a.binary);
    }

    #[test]
    fn machine_manifest_flag_takes_a_path() {
        let a = parse_run_args(&v(&["p.s", "--machine", "soc/iot.toml"])).unwrap();
        assert_eq!(a.opts.machine, Some(PathBuf::from("soc/iot.toml")));
        let a = parse_run_args(&v(&["p.s"])).unwrap();
        assert_eq!(a.opts.machine, None, "default platform without --machine");
        let e = parse_run_args(&v(&["p.s", "--machine"])).unwrap_err();
        assert!(
            e.contains("--machine") && e.contains("expects a value"),
            "{e}"
        );
    }

    #[test]
    fn block_cache_on_by_default_and_disableable() {
        let a = parse_run_args(&v(&["p.s"])).unwrap();
        assert!(a.opts.block_cache);
        let a = parse_run_args(&v(&["p.s", "--no-block-cache"])).unwrap();
        assert!(!a.opts.block_cache);
    }

    #[test]
    fn block_chain_on_by_default_and_composes_with_cache_flag() {
        let a = parse_run_args(&v(&["p.s"])).unwrap();
        assert!(a.opts.block_chain);
        let a = parse_run_args(&v(&["p.s", "--no-block-chain"])).unwrap();
        assert!(!a.opts.block_chain);
        assert!(a.opts.block_cache, "chain-off keeps the cache on");
        let a = parse_run_args(&v(&["p.s", "--no-block-cache", "--no-block-chain"])).unwrap();
        assert!(!a.opts.block_cache && !a.opts.block_chain);
    }

    #[test]
    fn run_errors_name_the_flag_and_value() {
        let e = parse_run_args(&v(&["p.s", "--max-cycles", "soon"])).unwrap_err();
        assert!(e.contains("--max-cycles") && e.contains("soon"), "{e}");
        let e = parse_run_args(&v(&["p.s", "--core", "arm"])).unwrap_err();
        assert!(e.contains("--core") && e.contains("arm"), "{e}");
        let e = parse_run_args(&v(&["p.s", "--watchdog"])).unwrap_err();
        assert!(
            e.contains("--watchdog") && e.contains("expects a value"),
            "{e}"
        );
        let e = parse_run_args(&v(&["p.s", "--frobnicate"])).unwrap_err();
        assert!(e.contains("--frobnicate"), "{e}");
        let e = parse_run_args(&[]).unwrap_err();
        assert!(e.contains("program path"), "{e}");
    }

    #[test]
    fn campaign_args_happy_path() {
        let a = parse_campaign_args(&v(&[
            "--seed-base",
            "7",
            "--count",
            "128",
            "--threads",
            "4",
            "--kinds",
            "tag,bounds,bitmap",
            "--json",
            "out.json",
        ]))
        .unwrap();
        assert_eq!(a.cfg.seed_base, 7);
        assert_eq!(a.cfg.count, 128);
        assert_eq!(a.cfg.threads, 4);
        assert_eq!(a.cfg.classes.len(), 3);
        assert_eq!(a.json_out, Some(PathBuf::from("out.json")));
        assert!(a.cfg.use_snapshot, "snapshot engine is the default");
    }

    #[test]
    fn no_snapshot_selects_the_reboot_path() {
        let a = parse_campaign_args(&v(&["--count", "2", "--no-snapshot"])).unwrap();
        assert!(!a.cfg.use_snapshot);
    }

    #[test]
    fn cow_on_by_default_and_disableable_everywhere() {
        let a = parse_run_args(&v(&["p.s"])).unwrap();
        assert!(a.opts.cow, "run: CoW page store is the default");
        let a = parse_run_args(&v(&["p.s", "--no-cow"])).unwrap();
        assert!(!a.opts.cow);
        let a = parse_campaign_args(&v(&["--count", "2"])).unwrap();
        assert!(a.cfg.cow, "fault-campaign: CoW is the default");
        let a = parse_campaign_args(&v(&["--count", "2", "--no-cow"])).unwrap();
        assert!(!a.cfg.cow);
        assert!(a.cfg.use_snapshot, "--no-cow keeps the snapshot engine");
        let a = parse_farm_args(&v(&["--devices", "4"])).unwrap();
        assert!(a.cfg.cow, "farm: CoW is the default");
        let a = parse_farm_args(&v(&["--devices", "4", "--no-cow"])).unwrap();
        assert!(!a.cfg.cow);
    }

    #[test]
    fn diff_args_happy_path() {
        let a = parse_diff_args(&v(&[
            "--seed-base",
            "9",
            "--count",
            "512",
            "--threads",
            "8",
            "--json",
            "diff.json",
        ]))
        .unwrap();
        assert_eq!(a.cfg.seed_base, 9);
        assert_eq!(a.cfg.count, 512);
        assert_eq!(a.cfg.threads, 8);
        assert_eq!(a.cfg.profile, Profile::full(), "full profile by default");
        assert_eq!(a.json_out, Some(PathBuf::from("diff.json")));
        assert_eq!(a.repro_dir, PathBuf::from("results"));
    }

    #[test]
    fn diff_args_profile_and_repro_dir() {
        let a = parse_diff_args(&v(&[
            "--profile",
            "binary",
            "--repro-dir",
            "out/repros",
            "--budget-cycles",
            "90000",
        ]))
        .unwrap();
        assert_eq!(a.cfg.profile, Profile::binary_safe());
        assert_eq!(a.repro_dir, PathBuf::from("out/repros"));
        assert_eq!(a.cfg.budget_cycles, 90_000);
    }

    #[test]
    fn diff_errors_name_the_flag_and_value() {
        let e = parse_diff_args(&v(&["--profile", "exotic"])).unwrap_err();
        assert!(e.contains("--profile") && e.contains("exotic"), "{e}");
        let e = parse_diff_args(&v(&["--count", "0"])).unwrap_err();
        assert!(e.contains("--count"), "{e}");
        let e = parse_diff_args(&v(&["--threads", "0"])).unwrap_err();
        assert!(e.contains("--threads"), "{e}");
        let e = parse_diff_args(&v(&["--frobnicate"])).unwrap_err();
        assert!(e.contains("--frobnicate") && e.contains("diff-fuzz"), "{e}");
    }

    #[test]
    fn farm_args_happy_path() {
        let a = parse_farm_args(&v(&[
            "--devices",
            "1000",
            "--threads",
            "8",
            "--rounds",
            "200",
            "--quantum",
            "15000",
            "--seed",
            "42",
            "--topics",
            "16",
            "--json",
            "farm.json",
            "--metrics",
        ]))
        .unwrap();
        assert_eq!(a.cfg.devices, 1000);
        assert_eq!(a.cfg.workers, 8);
        assert_eq!(a.cfg.rounds, 200);
        assert_eq!(a.cfg.quantum, 15_000);
        assert_eq!(a.cfg.seed, 42);
        assert_eq!(a.cfg.topics, 16);
        assert_eq!(a.json_out, Some(PathBuf::from("farm.json")));
        assert!(a.metrics);
        assert_eq!(a.cfg.dispatch, (true, true), "chained dispatch by default");
    }

    #[test]
    fn farm_dispatch_flags_compose() {
        let a = parse_farm_args(&v(&["--no-block-chain"])).unwrap();
        assert_eq!(a.cfg.dispatch, (true, false));
        let a = parse_farm_args(&v(&["--no-block-cache"])).unwrap();
        assert_eq!(a.cfg.dispatch, (false, false));
    }

    #[test]
    fn farm_errors_name_the_flag_and_value() {
        let e = parse_farm_args(&v(&["--devices", "0"])).unwrap_err();
        assert!(e.contains("--devices"), "{e}");
        let e = parse_farm_args(&v(&["--threads", "0"])).unwrap_err();
        assert!(e.contains("--threads"), "{e}");
        let e = parse_farm_args(&v(&["--rounds", "0"])).unwrap_err();
        assert!(e.contains("--rounds"), "{e}");
        let e = parse_farm_args(&v(&["--core", "arm"])).unwrap_err();
        assert!(e.contains("--core") && e.contains("arm"), "{e}");
        let e = parse_farm_args(&v(&["--quantum"])).unwrap_err();
        assert!(
            e.contains("--quantum") && e.contains("expects a value"),
            "{e}"
        );
        let e = parse_farm_args(&v(&["--frobnicate"])).unwrap_err();
        assert!(e.contains("--frobnicate") && e.contains("farm"), "{e}");
    }

    #[test]
    fn campaign_errors_name_the_flag_and_value() {
        let e = parse_campaign_args(&v(&["--kinds", "tag,wibble"])).unwrap_err();
        assert!(e.contains("--kinds") && e.contains("wibble"), "{e}");
        let e = parse_campaign_args(&v(&["--count", "0"])).unwrap_err();
        assert!(e.contains("--count"), "{e}");
        let e = parse_campaign_args(&v(&["--threads", "0"])).unwrap_err();
        assert!(e.contains("--threads"), "{e}");
        let e = parse_campaign_args(&v(&["--seed-base", "x"])).unwrap_err();
        assert!(e.contains("--seed-base") && e.contains("`x`"), "{e}");
    }
}
