//! Drives a parsed program on a configured machine.

use crate::parser::{parse_program, ParseError};
use cheriot_core::insn::Reg;
use cheriot_core::{CoreKind, CoreModel, ExitReason, Machine, MachineConfig};
use std::fmt::Write as _;

/// Options for `cheriot-sim run`.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Core model to simulate.
    pub core: CoreKind,
    /// Enable the temporal-safety load filter.
    pub load_filter: bool,
    /// Keep the last N retired instructions for the post-run trace.
    pub trace_depth: usize,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Dump the register file after the run.
    pub dump_regs: bool,
    /// Provide the semihosted heap service (`ecall` ABI of
    /// `cheriot_rtos::semihost`).
    pub heap: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            core: CoreKind::Ibex,
            load_filter: true,
            trace_depth: 0,
            max_cycles: 100_000_000,
            dump_regs: false,
            heap: false,
        }
    }
}

/// What a run produced.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Why execution stopped.
    pub exit: ExitReason,
    /// Cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// The human-readable report (trace, registers, console).
    pub report: String,
}

/// Parses and runs `src`.
///
/// # Errors
///
/// Parse errors from the assembler dialect.
pub fn run_source(src: &str, opts: &RunOptions) -> Result<RunOutcome, ParseError> {
    let prog = parse_program(src)?;
    Ok(run_instructions(&prog, opts))
}

/// Runs a pre-decoded machine-code program (`cheriot-sim run --binary`).
pub fn run_words(
    words: &[u32],
    opts: &RunOptions,
) -> Result<RunOutcome, cheriot_core::encoding::DecodeError> {
    let prog = cheriot_core::encoding::decode_program(words)?;
    Ok(run_instructions(&prog, opts))
}

fn run_instructions(prog: &[cheriot_core::insn::Instr], opts: &RunOptions) -> RunOutcome {
    let core = match opts.core {
        CoreKind::Ibex => CoreModel::ibex(),
        CoreKind::Flute => CoreModel::flute(),
    };
    let mut mc = MachineConfig::new(core);
    mc.load_filter = opts.load_filter;
    let mut m = Machine::new(mc);
    if opts.trace_depth > 0 {
        m.enable_trace(opts.trace_depth);
    }
    let entry = m.load_program(prog);
    m.set_entry(entry);
    let exit = if opts.heap {
        let mut heap = cheriot_alloc::HeapAllocator::new(
            &mut m,
            cheriot_alloc::TemporalPolicy::Quarantine(cheriot_alloc::RevokerKind::Hardware),
        );
        cheriot_rtos::semihost::run_with_heap_service(&mut m, &mut heap, opts.max_cycles)
    } else {
        m.run(opts.max_cycles)
    };

    let mut report = String::new();
    if !m.console.is_empty() {
        let _ = writeln!(report, "console: {}", String::from_utf8_lossy(&m.console));
    }
    if opts.trace_depth > 0 {
        let _ = writeln!(report, "last retired instructions:");
        for e in m.trace_entries() {
            let _ = writeln!(
                report,
                "  cycle {:>6}  pc {:#010x}  {}",
                e.cycles,
                e.pc,
                cheriot_asm::disassemble(&e.instr)
            );
        }
    }
    if opts.dump_regs {
        let _ = writeln!(report, "registers:");
        for i in 0..16u8 {
            let r = Reg(i);
            let c = m.cpu.read(r);
            let _ = writeln!(report, "  {r:?}\t{c}");
        }
    }
    RunOutcome {
        exit,
        cycles: m.cycles,
        instructions: m.stats.instructions,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_simple_program() {
        let out = run_source("li a0, 9\nhalt\n", &RunOptions::default()).unwrap();
        assert_eq!(out.exit, ExitReason::Halted(9));
        assert_eq!(out.instructions, 2);
    }

    #[test]
    fn trace_and_registers_in_report() {
        let opts = RunOptions {
            trace_depth: 4,
            dump_regs: true,
            ..RunOptions::default()
        };
        let out = run_source("li a0, 9\nhalt\n", &opts).unwrap();
        assert!(out.report.contains("li ca0, 9"));
        assert!(out.report.contains("registers:"));
    }
}
