//! Drives a parsed program on a configured machine.

use crate::parser::{parse_program, ParseError};
use cheriot_core::encoding::DecodeError;
use cheriot_core::insn::Reg;
use cheriot_core::trace::Tracer;
use cheriot_core::{CoreKind, CoreModel, ExitReason, Machine, MachineConfig, SimError};
use std::fmt::Write as _;

/// Anything that can stop a `cheriot-sim run` before it produces an
/// outcome. Each variant carries the structured error from the layer that
/// rejected the input — nothing in this path panics.
#[derive(Clone, Debug)]
pub enum RunError {
    /// The assembly source did not parse.
    Parse(ParseError),
    /// The machine-code words did not decode (`--binary`).
    Decode(DecodeError),
    /// The simulator refused the program (e.g. it overflows code memory).
    Sim(SimError),
    /// The machine manifest (`--machine`) could not be read, parsed, or
    /// built.
    Manifest(cheriot_soc::ManifestError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Parse(e) => write!(f, "{e}"),
            RunError::Decode(e) => write!(f, "{e}"),
            RunError::Sim(e) => write!(f, "{e}"),
            RunError::Manifest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ParseError> for RunError {
    fn from(e: ParseError) -> RunError {
        RunError::Parse(e)
    }
}

impl From<DecodeError> for RunError {
    fn from(e: DecodeError) -> RunError {
        RunError::Decode(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> RunError {
        RunError::Sim(e)
    }
}

/// Options for `cheriot-sim run`.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Core model to simulate.
    pub core: CoreKind,
    /// Enable the temporal-safety load filter.
    pub load_filter: bool,
    /// Execute through the predecoded basic-block cache
    /// (architecturally invisible; `--no-block-cache` forces the
    /// per-instruction stepwise loop).
    pub block_cache: bool,
    /// Chain predecoded blocks directly: successor links, superblocks,
    /// and sentry inline caches (architecturally invisible;
    /// `--no-block-chain` returns to the dispatcher between blocks).
    pub block_chain: bool,
    /// Keep the last N retired instructions for the post-run trace.
    pub trace_depth: usize,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Dump the register file after the run.
    pub dump_regs: bool,
    /// Provide the semihosted heap service (`ecall` ABI of
    /// `cheriot_rtos::semihost`).
    pub heap: bool,
    /// Write a Chrome `trace_event` JSON timeline of the run here
    /// (loadable in `chrome://tracing` / Perfetto).
    pub trace_out: Option<std::path::PathBuf>,
    /// Append the metrics summary table to the report.
    pub metrics: bool,
    /// Copy-on-write page store for SRAM (architecturally invisible;
    /// `--no-cow` keeps pages uniquely owned and deep-copies on
    /// snapshot/fork — the pre-CoW cost model).
    pub cow: bool,
    /// Abort with [`ExitReason::Watchdog`] if any single `run` slice
    /// retires this many instructions without exiting.
    pub watchdog: Option<u64>,
    /// Build the machine from this SoC manifest (TOML or JSON,
    /// `cheriot_soc::MachineSpec`) instead of the default platform. The
    /// manifest's core selection overrides `--core`; the dispatch-mode
    /// flags still apply.
    pub machine: Option<std::path::PathBuf>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            core: CoreKind::Ibex,
            load_filter: true,
            block_cache: true,
            block_chain: true,
            trace_depth: 0,
            max_cycles: 100_000_000,
            dump_regs: false,
            heap: false,
            trace_out: None,
            metrics: false,
            cow: true,
            watchdog: None,
            machine: None,
        }
    }
}

/// What a run produced.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Why execution stopped.
    pub exit: ExitReason,
    /// Cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// The human-readable report (trace, registers, console).
    pub report: String,
}

/// Parses and runs `src`.
///
/// # Errors
///
/// Parse errors from the assembler dialect, or a [`SimError`] when the
/// simulator rejects the program.
pub fn run_source(src: &str, opts: &RunOptions) -> Result<RunOutcome, RunError> {
    let prog = parse_program(src)?;
    run_instructions(&prog, opts)
}

/// Runs a pre-decoded machine-code program (`cheriot-sim run --binary`).
///
/// # Errors
///
/// Decode errors from the word stream, or a [`SimError`] when the
/// simulator rejects the program.
pub fn run_words(words: &[u32], opts: &RunOptions) -> Result<RunOutcome, RunError> {
    let prog = cheriot_core::encoding::decode_program(words)?;
    run_instructions(&prog, opts)
}

fn run_instructions(
    prog: &[cheriot_core::insn::Instr],
    opts: &RunOptions,
) -> Result<RunOutcome, RunError> {
    let mut m = match &opts.machine {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| {
                RunError::Manifest(cheriot_soc::ManifestError {
                    msg: format!("{}: {e}", path.display()),
                    line: None,
                })
            })?;
            cheriot_soc::MachineSpec::parse(&text)
                .and_then(|spec| spec.build())
                .map_err(RunError::Manifest)?
        }
        None => {
            let core = match opts.core {
                CoreKind::Ibex => CoreModel::ibex(),
                CoreKind::Flute => CoreModel::flute(),
            };
            Machine::new(MachineConfig::new(core))
        }
    };
    m.cfg.load_filter = opts.load_filter;
    m.cfg.block_cache = opts.block_cache;
    m.cfg.block_chain = opts.block_chain;
    if !opts.cow {
        // The machine (default or manifest-built) exists by now, so the
        // mode switch goes through set_cow, which also updates cfg.cow.
        m.set_cow(false);
    }
    if opts.trace_out.is_some() || opts.metrics {
        // One tracer serves all three outputs; buffer instruction retires
        // only when the post-run instruction trace also needs them.
        m.set_tracer(Tracer::with_sink(
            Box::new(cheriot_core::trace::VecSink::new()),
            opts.trace_depth > 0,
            true,
        ));
    } else if opts.trace_depth > 0 {
        m.enable_trace(opts.trace_depth);
    }
    let entry = m.try_load_program(prog)?;
    m.set_entry(entry);
    m.set_watchdog(opts.watchdog);
    let exit = if opts.heap {
        let mut heap = cheriot_alloc::HeapAllocator::new(
            &mut m,
            cheriot_alloc::TemporalPolicy::Quarantine(cheriot_alloc::RevokerKind::Hardware),
        );
        cheriot_rtos::semihost::run_with_heap_service(&mut m, &mut heap, opts.max_cycles)
    } else {
        m.run(opts.max_cycles)
    };

    let mut report = String::new();
    if exit == ExitReason::Watchdog {
        // Surface the structured diagnosis (PC, cycle, last trap) plus a
        // machine-state dump rather than leaving a bare exit reason.
        let _ = writeln!(report, "{}", m.watchdog_error());
        report.push_str(&cheriot_core::state_dump(&m));
    }
    if !m.console.is_empty() {
        let _ = writeln!(report, "console: {}", String::from_utf8_lossy(&m.console));
    }
    if opts.trace_depth > 0 {
        let _ = writeln!(report, "last retired instructions:");
        let entries = m.trace_entries();
        let skip = entries.len().saturating_sub(opts.trace_depth);
        for e in &entries[skip..] {
            let _ = writeln!(
                report,
                "  cycle {:>6}  pc {:#010x}  {}",
                e.cycles,
                e.pc,
                cheriot_asm::disassemble(&e.instr)
            );
        }
    }
    if opts.dump_regs {
        let _ = writeln!(report, "registers:");
        for i in 0..16u8 {
            let r = Reg(i);
            let c = m.cpu.read(r);
            let _ = writeln!(report, "  {r:?}\t{c}");
        }
    }
    if opts.trace_out.is_some() || opts.metrics {
        if let Some(mut tracer) = m.take_tracer() {
            // Simulator-level counters (not architectural events): how the
            // block cache behaved over the run.
            let bs = m.block_stats();
            tracer.metrics.add("block_cache_hits", bs.hits);
            tracer.metrics.add("block_cache_misses", bs.misses);
            tracer
                .metrics
                .add("block_cache_invalidations", bs.invalidated);
            tracer.metrics.add("block_chain_hits", bs.chain_hits);
            tracer.metrics.add("block_chain_links", bs.chain_links);
            tracer.metrics.add("sentry_ic_hits", bs.sentry_ic_hits);
            tracer.metrics.add("sentry_ic_misses", bs.sentry_ic_misses);
            let ss = m.snapshot_stats();
            tracer.metrics.add("snapshot_restores", ss.restores);
            tracer.metrics.add("dirty_pages_copied", ss.pages_copied);
            tracer.metrics.add("snapshot_bytes_copied", ss.bytes_copied);
            let cs = m.sram.cow_stats();
            tracer.metrics.add("cow_breaks", cs.breaks);
            tracer.metrics.add("cow_bytes_copied", cs.bytes_copied);
            tracer
                .metrics
                .add("cow_shared_pages", u64::from(m.sram.shared_pages()));
            if m.bus.device_mut::<cheriot_soc::NetLoopback>().is_some() {
                let dropped = cheriot_soc::net_rx_dropped(&mut m);
                tracer.metrics.add("net_rx_dropped", u64::from(dropped));
            }
            for (id, name) in m.bus.device_names() {
                tracer.metrics.set_device_name(id, name);
            }
            let _ = tracer.finish(m.cycles);
            if let Some(path) = &opts.trace_out {
                match std::fs::write(path, tracer.chrome_json()) {
                    Ok(()) => {
                        let _ = writeln!(report, "wrote trace: {}", path.display());
                    }
                    Err(e) => {
                        let _ = writeln!(report, "failed to write {}: {e}", path.display());
                    }
                }
            }
            if opts.metrics {
                report.push_str(&tracer.summary());
            }
        }
    }
    Ok(RunOutcome {
        exit,
        cycles: m.cycles,
        instructions: m.stats.instructions,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_simple_program() {
        let out = run_source("li a0, 9\nhalt\n", &RunOptions::default()).unwrap();
        assert_eq!(out.exit, ExitReason::Halted(9));
        assert_eq!(out.instructions, 2);
    }

    #[test]
    fn watchdog_stops_runaway_loop_with_diagnosis() {
        let opts = RunOptions {
            watchdog: Some(500),
            ..RunOptions::default()
        };
        let out = run_source("loop:\nj loop\n", &opts).unwrap();
        assert_eq!(out.exit, ExitReason::Watchdog);
        assert!(out.report.contains("watchdog:"), "{}", out.report);
        assert!(out.report.contains("pc"), "{}", out.report);
    }

    #[test]
    fn oversized_program_is_a_sim_error_not_a_panic() {
        // Code memory holds CODE_SIZE/4 = 262144 instructions.
        let src = "nop\n".repeat(262_200);
        let err = run_source(&src, &RunOptions::default()).unwrap_err();
        assert!(
            matches!(err, RunError::Sim(SimError::CodeOverflow { .. })),
            "{err}"
        );
    }

    #[test]
    fn trace_and_registers_in_report() {
        let opts = RunOptions {
            trace_depth: 4,
            dump_regs: true,
            ..RunOptions::default()
        };
        let out = run_source("li a0, 9\nhalt\n", &opts).unwrap();
        assert!(out.report.contains("li ca0, 9"));
        assert!(out.report.contains("registers:"));
    }

    /// A heap-service program: two syscalls (malloc, free) produce traps
    /// and allocator events for the trace outputs to capture.
    const HEAP_PROG: &str =
        "li a0, 1\nli a1, 48\necall\ncmove ca1, ca0\nli a0, 2\necall\nli a0, 0\nhalt\n";

    #[test]
    fn trace_out_writes_chrome_json() {
        let dir = std::env::temp_dir().join("cheriot-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let opts = RunOptions {
            heap: true,
            trace_out: Some(path.clone()),
            ..RunOptions::default()
        };
        let out = run_source(HEAP_PROG, &opts).unwrap();
        assert_eq!(out.exit, ExitReason::Halted(0));
        assert!(out.report.contains("wrote trace:"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["));
        // The two ecalls surface as trap instants; the malloc shows up
        // with its requested size.
        assert!(json.contains("\"name\":\"trap\""));
        assert!(json.contains("\"name\":\"malloc\""));
        assert!(json.contains("\"size\":48"));
    }

    #[test]
    fn metrics_summary_in_report() {
        let opts = RunOptions {
            heap: true,
            metrics: true,
            ..RunOptions::default()
        };
        let out = run_source(HEAP_PROG, &opts).unwrap();
        assert_eq!(out.exit, ExitReason::Halted(0));
        assert!(out.report.contains("== metrics summary =="));
        assert!(out.report.contains("malloc"));
        assert!(out.report.contains("bytes_allocated"));
        assert!(out.report.contains("instr_retired"));
    }

    #[test]
    fn metrics_report_block_cache_counters_in_all_dispatch_modes() {
        for (block_cache, block_chain) in [(true, true), (true, false), (false, false)] {
            let opts = RunOptions {
                metrics: true,
                block_cache,
                block_chain,
                ..RunOptions::default()
            };
            let out = run_source("li a0, 9\nhalt\n", &opts).unwrap();
            assert_eq!(out.exit, ExitReason::Halted(9));
            assert!(out.report.contains("block_cache_hits"), "{}", out.report);
            assert!(out.report.contains("block_cache_misses"), "{}", out.report);
            assert!(out.report.contains("block_chain_hits"), "{}", out.report);
            assert!(out.report.contains("block_chain_links"), "{}", out.report);
            assert!(out.report.contains("sentry_ic_hits"), "{}", out.report);
            assert!(out.report.contains("sentry_ic_misses"), "{}", out.report);
        }
    }

    #[test]
    fn chained_run_links_blocks_and_matches_unchained() {
        // A two-block loop: the chain records links and the architectural
        // outcome is identical with chaining off.
        let prog = "
            li a0, 0
            li a1, 40
        loop:
            addi a0, a0, 1
            bne a0, a1, loop
            halt
        ";
        let mut outs = Vec::new();
        for block_chain in [true, false] {
            let opts = RunOptions {
                metrics: true,
                block_chain,
                ..RunOptions::default()
            };
            let out = run_source(prog, &opts).unwrap();
            assert_eq!(out.exit, ExitReason::Halted(40));
            outs.push(out);
        }
        assert_eq!(outs[0].cycles, outs[1].cycles);
        assert_eq!(outs[0].instructions, outs[1].instructions);
        let hits: u64 = outs[0]
            .report
            .lines()
            .find(|l| l.contains("block_chain_hits"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(hits > 30, "hot loop should chain: {}", outs[0].report);
    }

    /// Drives the iot.toml platform: a UART store, then a DMA copy kicked
    /// through the engine's registers, halting with the copied word.
    const SOC_PROG: &str = r"
        li t2, 0x82000000
        csetaddr t2, t0, t2
        li t1, 65
        sw t1, 0(t2)            // UART TX 'A'
        li t2, 0x20001000
        csetaddr t2, t0, t2
        li t1, 1234
        sw t1, 0(t2)            // source word
        li t2, 0x87000000
        csetaddr t2, t0, t2     // DMA engine
        li t1, 0x20001000
        sw t1, 0(t2)            // SRC
        li t1, 0x20002000
        sw t1, 4(t2)            // DST
        li t1, 4
        sw t1, 8(t2)            // LEN
        li t1, 1
        sw t1, 12(t2)           // CTRL: kick
        li t2, 0x20002000
        csetaddr t2, t0, t2
        lw a0, 0(t2)
        halt
    ";

    #[test]
    fn machine_manifest_builds_the_declared_platform() {
        let opts = RunOptions {
            machine: Some(std::path::PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../soc/manifests/iot.toml"
            ))),
            metrics: true,
            ..RunOptions::default()
        };
        let out = run_source(SOC_PROG, &opts).unwrap();
        assert_eq!(out.exit, ExitReason::Halted(1234));
        assert!(out.report.contains("console: A"), "{}", out.report);
        // Per-device attribution made it into the metrics summary.
        assert!(out.report.contains("device activity"), "{}", out.report);
        assert!(out.report.contains("uart"), "{}", out.report);
        assert!(out.report.contains("dma"), "{}", out.report);
    }

    #[test]
    fn missing_or_bad_manifest_is_a_manifest_error_not_a_panic() {
        let opts = RunOptions {
            machine: Some(std::path::PathBuf::from("/nonexistent/soc.toml")),
            ..RunOptions::default()
        };
        let err = run_source("halt\n", &opts).unwrap_err();
        assert!(matches!(err, RunError::Manifest(_)), "{err}");

        // Without a manifest the same program runs on the default machine
        // — and the DMA window is unmapped there.
        let out = run_source(SOC_PROG, &RunOptions::default()).unwrap();
        assert!(
            matches!(out.exit, ExitReason::Fault(_)),
            "DMA window must not exist on the default platform: {:?}",
            out.exit
        );
    }

    #[test]
    fn metrics_with_trace_depth_keeps_instruction_trace() {
        let opts = RunOptions {
            trace_depth: 2,
            metrics: true,
            ..RunOptions::default()
        };
        let out = run_source("li a0, 9\nhalt\n", &opts).unwrap();
        assert!(out.report.contains("last retired instructions:"));
        assert!(out.report.contains("halt"));
        // Depth still bounds the printed window even on an unbounded sink.
        assert_eq!(
            out.report
                .lines()
                .filter(|l| l.trim_start().starts_with("cycle"))
                .count(),
            2
        );
        assert!(out.report.contains("== metrics summary =="));
    }
}
