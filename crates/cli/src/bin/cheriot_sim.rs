//! `cheriot-sim`: assemble, disassemble and run CHERIoT guest programs.
//!
//! ```text
//! cheriot-sim run  prog.s [--core ibex|flute] [--no-load-filter]
//!                          [--trace N] [--max-cycles N] [--dump-regs]
//!                          [--trace-out out.json] [--metrics]
//! cheriot-sim asm  prog.s -o prog.bin
//! cheriot-sim disasm prog.bin
//! ```

use cheriot_cli::{parse_program, run_source, RunOptions};
use cheriot_core::CoreKind;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cheriot-sim run <prog.s> [--core ibex|flute] [--no-load-filter] \
         [--trace N] [--max-cycles N] [--dump-regs] [--heap] \
         [--trace-out <out.json>] [--metrics]\n  cheriot-sim asm <prog.s> -o <out.bin>\n  \
         cheriot-sim disasm <prog.bin>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    match cmd.as_str() {
        "run" => cmd_run(rest),
        "asm" => cmd_asm(rest),
        "disasm" => cmd_disasm(rest),
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some((path, flags)) = args.split_first() else {
        return usage();
    };
    let mut opts = RunOptions::default();
    let mut binary = false;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        match f.as_str() {
            "--core" => match it.next().map(String::as_str) {
                Some("ibex") => opts.core = CoreKind::Ibex,
                Some("flute") => opts.core = CoreKind::Flute,
                _ => return usage(),
            },
            "--no-load-filter" => opts.load_filter = false,
            "--trace" => {
                opts.trace_depth = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => return usage(),
                }
            }
            "--max-cycles" => {
                opts.max_cycles = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => return usage(),
                }
            }
            "--dump-regs" => opts.dump_regs = true,
            "--heap" => opts.heap = true,
            "--trace-out" => {
                opts.trace_out = match it.next() {
                    Some(p) => Some(std::path::PathBuf::from(p)),
                    None => return usage(),
                }
            }
            "--metrics" => opts.metrics = true,
            "--binary" => binary = true,
            _ => return usage(),
        }
    }
    let outcome = if binary {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cheriot-sim: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        cheriot_cli::run_words(&words, &opts).map_err(|e| e.to_string())
    } else {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cheriot-sim: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        run_source(&src, &opts).map_err(|e| e.to_string())
    };
    match outcome {
        Ok(out) => {
            print!("{}", out.report);
            println!(
                "exit: {:?}  ({} cycles, {} instructions)",
                out.exit, out.cycles, out.instructions
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cheriot-sim: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_asm(args: &[String]) -> ExitCode {
    let (path, out) = match args {
        [p, dash_o, o] if dash_o == "-o" => (p, o),
        _ => return usage(),
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cheriot-sim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cheriot-sim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let words = match cheriot_core::encoding::encode_program(&prog) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cheriot-sim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    if let Err(e) = std::fs::write(out, bytes) {
        eprintln!("cheriot-sim: {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} words to {out}", words.len());
    ExitCode::SUCCESS
}

fn cmd_disasm(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cheriot-sim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let words: Vec<u32> = bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    print!(
        "{}",
        cheriot_asm::disassemble_words(cheriot_core::layout::CODE_BASE, &words)
    );
    ExitCode::SUCCESS
}
