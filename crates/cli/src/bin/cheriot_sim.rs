//! `cheriot-sim`: assemble, disassemble and run CHERIoT guest programs,
//! and drive deterministic fault-injection campaigns against them.
//!
//! ```text
//! cheriot-sim run  prog.s [--core ibex|flute] [--machine soc.toml]
//!                          [--no-load-filter]
//!                          [--no-block-cache] [--no-block-chain] [--no-cow]
//!                          [--trace N] [--max-cycles N]
//!                          [--watchdog N] [--dump-regs] [--heap]
//!                          [--trace-out out.json] [--metrics] [--binary]
//! cheriot-sim asm  prog.s -o prog.bin
//! cheriot-sim disasm prog.bin
//! cheriot-sim fault-campaign [--seed-base N] [--count K] [--threads T]
//!                            [--kinds tag,bounds,bitmap,...] [--faults N]
//!                            [--cadence N] [--max-cycles N] [--no-snapshot]
//!                            [--no-cow] [--json out.json] [--out out.txt]
//! cheriot-sim diff-fuzz [--seed-base N] [--count K] [--threads T]
//!                       [--profile full|binary] [--budget-cycles N]
//!                       [--json out.json] [--repro-dir results]
//! cheriot-sim farm [--devices N] [--threads T] [--rounds N] [--quantum N]
//!                  [--settle-rounds N] [--seed N] [--topics N]
//!                  [--host-rate N] [--sram BYTES] [--core ibex|flute]
//!                  [--no-block-cache] [--no-block-chain] [--no-cow]
//!                  [--json out.json] [--metrics]
//! ```
//!
//! Malformed flags produce a contextual error naming the flag and value;
//! the binary never panics on user input.

use cheriot_cli::{
    parse_campaign_args, parse_diff_args, parse_farm_args, parse_program, parse_run_args,
    run_source,
};
use std::process::ExitCode;

const USAGE: &str = "usage:
  cheriot-sim run <prog.s> [--core ibex|flute] [--machine <soc.toml>] \
[--no-load-filter] [--no-block-cache] [--no-block-chain] [--no-cow] [--trace N] \
[--max-cycles N] [--watchdog N] [--dump-regs] [--heap] \
[--trace-out <out.json>] [--metrics] [--binary]
  cheriot-sim asm <prog.s> -o <out.bin>
  cheriot-sim disasm <prog.bin>
  cheriot-sim fault-campaign [--seed-base N] [--count K] [--threads T] \
[--kinds <k1,k2,...>] [--faults N] [--cadence N] [--max-cycles N] \
[--no-snapshot] [--no-cow] [--json <out.json>] [--out <out.txt>]
  cheriot-sim diff-fuzz [--seed-base N] [--count K] [--threads T] \
[--profile full|binary] [--budget-cycles N] [--json <out.json>] \
[--repro-dir <dir>]
  cheriot-sim farm [--devices N] [--threads T] [--rounds N] [--quantum N] \
[--settle-rounds N] [--seed N] [--topics N] [--host-rate N] [--sram BYTES] \
[--core ibex|flute] [--no-block-cache] [--no-block-chain] [--no-cow] \
[--json <out.json>] [--metrics]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Reports a flag-parsing failure with the contextual message, then the
/// usage summary for orientation.
fn bad_args(cmd: &str, msg: &str) -> ExitCode {
    eprintln!("cheriot-sim {cmd}: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    match cmd.as_str() {
        "run" => cmd_run(rest),
        "asm" => cmd_asm(rest),
        "disasm" => cmd_disasm(rest),
        "fault-campaign" => cmd_fault_campaign(rest),
        "diff-fuzz" => cmd_diff_fuzz(rest),
        "farm" => cmd_farm(rest),
        other => {
            eprintln!("cheriot-sim: unknown command `{other}`");
            usage()
        }
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let parsed = match parse_run_args(args) {
        Ok(p) => p,
        Err(e) => return bad_args("run", &e),
    };
    let path = &parsed.path;
    let outcome = if parsed.binary {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cheriot-sim: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let words: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        cheriot_cli::run_words(&words, &parsed.opts)
    } else {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cheriot-sim: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        run_source(&src, &parsed.opts)
    };
    match outcome {
        Ok(out) => {
            print!("{}", out.report);
            println!(
                "exit: {:?}  ({} cycles, {} instructions)",
                out.exit, out.cycles, out.instructions
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cheriot-sim: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_fault_campaign(args: &[String]) -> ExitCode {
    let parsed = match parse_campaign_args(args) {
        Ok(p) => p,
        Err(e) => return bad_args("fault-campaign", &e),
    };
    let report = cheriot_fault::run_campaigns(&parsed.cfg);
    let text = report.to_text();
    print!("{text}");
    if let Some(path) = &parsed.text_out {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("cheriot-sim: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote text report: {}", path.display());
    }
    if let Some(path) = &parsed.json_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cheriot-sim: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote json report: {}", path.display());
    }
    if report.failed() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_diff_fuzz(args: &[String]) -> ExitCode {
    let parsed = match parse_diff_args(args) {
        Ok(p) => p,
        Err(e) => return bad_args("diff-fuzz", &e),
    };
    let report = cheriot_diff::run_fuzz(&parsed.cfg);
    print!("{}", report.render_text());
    if let Some(path) = &parsed.json_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cheriot-sim: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote json report: {}", path.display());
    }
    // Every divergence gets its own minimal-repro file: the shrunk
    // listing plus first-divergence triage, enough to replay by hand.
    if !report.divergences.is_empty() {
        if let Err(e) = std::fs::create_dir_all(&parsed.repro_dir) {
            eprintln!("cheriot-sim: {}: {e}", parsed.repro_dir.display());
            return ExitCode::FAILURE;
        }
        for d in &report.divergences {
            let path = parsed.repro_dir.join(format!(
                "diff-seed{}-{}-{}.json",
                d.seed, d.core, d.dispatch
            ));
            if let Err(e) = std::fs::write(&path, cheriot_diff::report::divergence_json(d).render())
            {
                eprintln!("cheriot-sim: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote repro: {}", path.display());
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_farm(args: &[String]) -> ExitCode {
    let parsed = match parse_farm_args(args) {
        Ok(p) => p,
        Err(e) => return bad_args("farm", &e),
    };
    let report = match cheriot_farm::run_farm(&parsed.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cheriot-sim farm: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.to_text());
    if parsed.metrics {
        print!("{}", report.metrics.summary());
    }
    if let Some(path) = &parsed.json_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cheriot-sim: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote json report: {}", path.display());
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_asm(args: &[String]) -> ExitCode {
    let (path, out) = match args {
        [p, dash_o, o] if dash_o == "-o" => (p, o),
        _ => return usage(),
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cheriot-sim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cheriot-sim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let words = match cheriot_core::encoding::encode_program(&prog) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cheriot-sim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    if let Err(e) = std::fs::write(out, bytes) {
        eprintln!("cheriot-sim: {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} words to {out}", words.len());
    ExitCode::SUCCESS
}

fn cmd_disasm(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cheriot-sim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let words: Vec<u32> = bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    print!(
        "{}",
        cheriot_asm::disassemble_words(cheriot_core::layout::CODE_BASE, &words)
    );
    ExitCode::SUCCESS
}
