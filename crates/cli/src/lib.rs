//! # cheriot-cli — command-line tools for the CHERIoT simulator
//!
//! The `cheriot-sim` binary assembles, disassembles, and runs guest
//! programs written in a small assembly dialect (see [`parser`]). Programs
//! start with the CPU in its reset state: the memory root in `ct0`, the
//! sealing root in `ct1`, and PCC over the loaded code — exactly the
//! environment early boot software sees (paper §3.1.1).

#![warn(missing_docs)]

pub mod args;
pub mod parser;
pub mod runner;

pub use args::{
    parse_campaign_args, parse_diff_args, parse_farm_args, parse_run_args, CampaignArgs, DiffArgs,
    FarmArgs, RunArgs,
};
pub use parser::{parse_program, ParseError};
pub use runner::{run_source, run_words, RunError, RunOptions, RunOutcome};
