//! Text assembler: parses a small CHERIoT assembly dialect into the
//! simulator's instruction stream.
//!
//! Syntax:
//!
//! ```text
//! // line comment (also `;` and `#`)
//! loop:                       // labels end with ':'
//!     li   t0, 10
//!     addi t0, t0, -1
//!     lw   a0, 4(a1)          // memory operands are offset(reg)
//!     clc  t1, 0(gp)
//!     bnez t0, loop           // pseudo-instructions supported
//!     cjalr ra, t1
//!     cret
//!     halt
//! ```
//!
//! Register names accept an optional `c` prefix (`a0` or `ca0`), matching
//! the disassembler's output.

use cheriot_asm::{Asm, Label};
use cheriot_core::insn::{CapField, CsrId, Instr, Reg, ScrId};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with 1-based line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let t = tok.trim();
    let t = t
        .strip_prefix('c')
        .filter(|r| parse_reg_name(r).is_some())
        .unwrap_or(t);
    parse_reg_name(t).ok_or_else(|| err(line, format!("unknown register `{tok}`")))
}

fn parse_reg_name(t: &str) -> Option<Reg> {
    Some(match t {
        "zero" | "x0" => Reg::ZERO,
        "ra" => Reg::RA,
        "sp" => Reg::SP,
        "gp" => Reg::GP,
        "tp" => Reg::TP,
        "t0" => Reg::T0,
        "t1" => Reg::T1,
        "t2" => Reg::T2,
        "s0" => Reg::S0,
        "s1" => Reg::S1,
        "a0" => Reg::A0,
        "a1" => Reg::A1,
        "a2" => Reg::A2,
        "a3" => Reg::A3,
        "a4" => Reg::A4,
        "a5" => Reg::A5,
        _ => return None,
    })
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = t.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

fn parse_imm32(tok: &str, line: usize) -> Result<i32, ParseError> {
    let v = parse_imm(tok, line)?;
    if v < -(1 << 31) || v > u32::MAX as i64 {
        return Err(err(line, format!("immediate `{tok}` out of 32-bit range")));
    }
    Ok(v as u32 as i32)
}

/// `offset(reg)` memory operand.
fn parse_mem(tok: &str, line: usize) -> Result<(i32, Reg), ParseError> {
    let t = tok.trim();
    let open = t
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(reg), got `{tok}`")))?;
    let close = t
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let off = if open == 0 {
        0
    } else {
        parse_imm32(&t[..open], line)?
    };
    let reg = parse_reg(&t[open + 1..close], line)?;
    Ok((off, reg))
}

fn parse_csr(tok: &str, line: usize) -> Result<CsrId, ParseError> {
    Ok(match tok.trim() {
        "mcycle" => CsrId::Mcycle,
        "mcycleh" => CsrId::Mcycleh,
        "mcause" => CsrId::Mcause,
        "mtval" => CsrId::Mtval,
        "mshwm" => CsrId::Mshwm,
        "mshwmb" => CsrId::Mshwmb,
        other => return Err(err(line, format!("unknown CSR `{other}`"))),
    })
}

fn parse_scr(tok: &str, line: usize) -> Result<ScrId, ParseError> {
    Ok(match tok.trim().to_ascii_lowercase().as_str() {
        "mtcc" => ScrId::Mtcc,
        "mtdc" => ScrId::Mtdc,
        "mscratchc" => ScrId::MScratchC,
        "mepcc" => ScrId::Mepcc,
        other => return Err(err(line, format!("unknown special register `{other}`"))),
    })
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for pat in ["//", ";", "#"] {
        if let Some(i) = line.find(pat) {
            end = end.min(i);
        }
    }
    &line[..end]
}

/// Parses a program. Labels may be referenced before definition.
///
/// # Errors
///
/// [`ParseError`] with the offending line for syntax errors, unknown
/// mnemonics/registers, or undefined labels.
pub fn parse_program(src: &str) -> Result<Vec<Instr>, ParseError> {
    let mut asm = Asm::new();
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut defined: HashMap<String, usize> = HashMap::new();

    // Pre-create a label object per name on demand.
    fn label_for(asm: &mut Asm, labels: &mut HashMap<String, Label>, name: &str) -> Label {
        *labels
            .entry(name.to_string())
            .or_insert_with(|| asm.label())
    }

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut text = strip_comment(raw).trim();
        // Labels (possibly several on one line).
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                return Err(err(line, format!("bad label `{name}`")));
            }
            if defined.insert(name.to_string(), line).is_some() {
                return Err(err(line, format!("label `{name}` defined twice")));
            }
            let l = label_for(&mut asm, &mut labels, name);
            asm.bind(l);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let nops = ops.len();
        let want = |n: usize| -> Result<(), ParseError> {
            if nops == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {nops}"),
                ))
            }
        };
        let reg = |i: usize| parse_reg(ops[i], line);
        let imm = |i: usize| parse_imm32(ops[i], line);
        let mem = |i: usize| parse_mem(ops[i], line);
        let lab = |asm: &mut Asm, labels: &mut HashMap<String, Label>, i: usize| {
            label_for(asm, labels, ops[i].trim())
        };

        match mnemonic {
            // integer
            "li" => {
                want(2)?;
                let (rd, v) = (reg(0)?, imm(1)?);
                asm.li(rd, v);
            }
            "mv" => {
                want(2)?;
                let (rd, rs) = (reg(0)?, reg(1)?);
                asm.mv(rd, rs);
            }
            "addi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" => {
                want(3)?;
                let (rd, rs1, v) = (reg(0)?, reg(1)?, imm(2)?);
                match mnemonic {
                    "addi" => asm.addi(rd, rs1, v),
                    "andi" => asm.andi(rd, rs1, v),
                    "ori" => asm.ori(rd, rs1, v),
                    "xori" => asm.xori(rd, rs1, v),
                    "slli" => asm.slli(rd, rs1, v),
                    "srli" => asm.srli(rd, rs1, v),
                    _ => asm.srai(rd, rs1, v),
                };
            }
            "add" | "sub" | "and" | "or" | "xor" | "slt" | "sltu" | "mul" | "divu" | "remu" => {
                want(3)?;
                let (rd, rs1, rs2) = (reg(0)?, reg(1)?, reg(2)?);
                match mnemonic {
                    "add" => asm.add(rd, rs1, rs2),
                    "sub" => asm.sub(rd, rs1, rs2),
                    "and" => asm.and(rd, rs1, rs2),
                    "or" => asm.or(rd, rs1, rs2),
                    "xor" => asm.xor(rd, rs1, rs2),
                    "slt" => asm.slt(rd, rs1, rs2),
                    "sltu" => asm.sltu(rd, rs1, rs2),
                    "mul" => asm.mul(rd, rs1, rs2),
                    "divu" => asm.divu(rd, rs1, rs2),
                    _ => asm.remu(rd, rs1, rs2),
                };
            }
            "lui" => {
                want(2)?;
                let (rd, v) = (reg(0)?, imm(1)?);
                asm.lui(rd, v as u32);
            }
            // memory
            "lw" | "lb" | "lbu" | "lhu" | "clc" => {
                want(2)?;
                let rd = reg(0)?;
                let (off, base) = mem(1)?;
                match mnemonic {
                    "lw" => asm.lw(rd, off, base),
                    "lb" => asm.lb(rd, off, base),
                    "lbu" => asm.lbu(rd, off, base),
                    "lhu" => asm.lhu(rd, off, base),
                    _ => asm.clc(rd, off, base),
                };
            }
            "sw" | "sb" | "sh" | "csc" => {
                want(2)?;
                let rs2 = reg(0)?;
                let (off, base) = mem(1)?;
                match mnemonic {
                    "sw" => asm.sw(rs2, off, base),
                    "sb" => asm.sb(rs2, off, base),
                    "sh" => asm.sh(rs2, off, base),
                    _ => asm.csc(rs2, off, base),
                };
            }
            // control flow
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                want(3)?;
                let (rs1, rs2) = (reg(0)?, reg(1)?);
                let l = lab(&mut asm, &mut labels, 2);
                match mnemonic {
                    "beq" => asm.beq(rs1, rs2, l),
                    "bne" => asm.bne(rs1, rs2, l),
                    "blt" => asm.blt(rs1, rs2, l),
                    "bge" => asm.bge(rs1, rs2, l),
                    "bltu" => asm.bltu(rs1, rs2, l),
                    _ => asm.bgeu(rs1, rs2, l),
                };
            }
            "beqz" | "bnez" => {
                want(2)?;
                let rs = reg(0)?;
                let l = lab(&mut asm, &mut labels, 1);
                if mnemonic == "beqz" {
                    asm.beqz(rs, l);
                } else {
                    asm.bnez(rs, l);
                }
            }
            "j" => {
                want(1)?;
                let l = lab(&mut asm, &mut labels, 0);
                asm.j(l);
            }
            "jal" => {
                want(2)?;
                let rd = reg(0)?;
                let l = lab(&mut asm, &mut labels, 1);
                asm.jal(rd, l);
            }
            "cjalr" => {
                want(2)?;
                let (rd, rs) = (reg(0)?, reg(1)?);
                asm.cjalr(rd, rs);
            }
            "cjr" => {
                want(1)?;
                let rs = reg(0)?;
                asm.cjr(rs);
            }
            "cret" => {
                want(0)?;
                asm.cret();
            }
            // CHERI
            "cmove" => {
                want(2)?;
                let (rd, rs) = (reg(0)?, reg(1)?);
                asm.cmove(rd, rs);
            }
            "cgetperm" | "cgettype" | "cgetbase" | "cgetlen" | "cgettag" | "cgetaddr"
            | "cgethigh" => {
                want(2)?;
                let (rd, rs) = (reg(0)?, reg(1)?);
                let field = match mnemonic {
                    "cgetperm" => CapField::Perm,
                    "cgettype" => CapField::Type,
                    "cgetbase" => CapField::Base,
                    "cgetlen" => CapField::Len,
                    "cgettag" => CapField::Tag,
                    "cgetaddr" => CapField::Addr,
                    _ => CapField::High,
                };
                asm.raw(Instr::CGet { field, rd, rs1: rs });
            }
            "csetaddr" | "cincaddr" | "csetbounds" | "csetboundsexact" | "candperm" | "cseal"
            | "cunseal" | "ctestsubset" => {
                want(3)?;
                let (rd, rs1, rs2) = (reg(0)?, reg(1)?, reg(2)?);
                match mnemonic {
                    "csetaddr" => asm.csetaddr(rd, rs1, rs2),
                    "cincaddr" => asm.cincaddr(rd, rs1, rs2),
                    "csetbounds" => asm.csetbounds(rd, rs1, rs2),
                    "csetboundsexact" => asm.csetboundsexact(rd, rs1, rs2),
                    "candperm" => asm.candperm(rd, rs1, rs2),
                    "cseal" => asm.cseal(rd, rs1, rs2),
                    "cunseal" => asm.cunseal(rd, rs1, rs2),
                    _ => asm.ctestsubset(rd, rs1, rs2),
                };
            }
            "cincaddrimm" => {
                want(3)?;
                let (rd, rs1, v) = (reg(0)?, reg(1)?, imm(2)?);
                asm.cincaddrimm(rd, rs1, v);
            }
            "csetboundsimm" => {
                want(3)?;
                let (rd, rs1, v) = (reg(0)?, reg(1)?, imm(2)?);
                asm.csetboundsimm(rd, rs1, v as u32);
            }
            "ccleartag" => {
                want(2)?;
                let (rd, rs) = (reg(0)?, reg(1)?);
                asm.ccleartag(rd, rs);
            }
            "crrl" => {
                want(2)?;
                let (rd, rs) = (reg(0)?, reg(1)?);
                asm.crrl(rd, rs);
            }
            "cram" => {
                want(2)?;
                let (rd, rs) = (reg(0)?, reg(1)?);
                asm.cram(rd, rs);
            }
            "cspecialrw" => {
                want(3)?;
                let rd = reg(0)?;
                let scr = parse_scr(ops[1], line)?;
                let rs1 = reg(2)?;
                asm.cspecialrw(rd, scr, rs1);
            }
            "auipcc" => {
                want(2)?;
                let (rd, v) = (reg(0)?, imm(1)?);
                asm.auipcc(rd, v);
            }
            "auicgp" => {
                want(2)?;
                let (rd, v) = (reg(0)?, imm(1)?);
                asm.auicgp(rd, v);
            }
            // system
            "csrr" => {
                want(2)?;
                let rd = reg(0)?;
                let csr = parse_csr(ops[1], line)?;
                asm.csrr(rd, csr);
            }
            "csrrw" => {
                want(3)?;
                let rd = reg(0)?;
                let csr = parse_csr(ops[1], line)?;
                let rs1 = reg(2)?;
                asm.csrrw(rd, csr, rs1);
            }
            "ecall" => {
                want(0)?;
                asm.ecall();
            }
            "ebreak" => {
                want(0)?;
                asm.raw(Instr::Ebreak);
            }
            "mret" => {
                want(0)?;
                asm.mret();
            }
            "wfi" => {
                want(0)?;
                asm.wfi();
            }
            "fence" => {
                want(0)?;
                asm.raw(Instr::Fence);
            }
            "nop" => {
                want(0)?;
                asm.nop();
            }
            "halt" => {
                want(0)?;
                asm.halt();
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
    }

    // Undefined labels: report the first reference we can find.
    for (name, _) in labels.iter() {
        if !defined.contains_key(name) {
            return Err(err(0, format!("undefined label `{name}`")));
        }
    }
    Ok(asm.assemble())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheriot_core::{CoreModel, ExitReason, Machine, MachineConfig};

    fn run(src: &str) -> ExitReason {
        let prog = parse_program(src).expect("parses");
        let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
        let entry = m.load_program(&prog);
        m.set_entry(entry);
        m.run(100_000)
    }

    #[test]
    fn loop_program_runs() {
        let src = r"
            // sum 1..=10
            li t0, 10
            li a0, 0
        top:
            add a0, a0, t0
            addi t0, t0, -1
            bnez t0, top
            halt
        ";
        assert_eq!(run(src), ExitReason::Halted(55));
    }

    #[test]
    fn forward_labels_and_c_prefix() {
        let src = r"
            li ca0, 1
            j done
            li ca0, 99
        done:
            halt
        ";
        assert_eq!(run(src), ExitReason::Halted(1));
    }

    #[test]
    fn memory_operands() {
        // a0 starts as the machine's reset-time memory root in ct0... use
        // csetaddr from t0 (the root) to build a pointer.
        let src = r"
            li t2, 0x20000040
            csetaddr t2, t0, t2
            li t1, 77
            sw t1, 4(t2)
            lw a0, 4(t2)
            halt
        ";
        assert_eq!(run(src), ExitReason::Halted(77));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("nop\nbogus x, y\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = parse_program("lw a0, 4[a1]").unwrap_err();
        assert!(e.message.contains("offset(reg)"));
        let e = parse_program("addi a9, a0, 1").unwrap_err();
        assert!(e.message.contains("register"));
    }

    #[test]
    fn undefined_label_rejected() {
        let e = parse_program("j nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = parse_program("x:\nnop\nx:\nhalt").unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn comments_in_all_styles() {
        let src = "li a0, 3 // one\nnop ; two\nnop # three\nhalt";
        assert_eq!(run(src), ExitReason::Halted(3));
    }
}
