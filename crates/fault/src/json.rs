//! A tiny typed JSON document builder shared by every report the
//! workspace emits (fault-campaign reports, the differential fuzzer's
//! divergence reports).
//!
//! The build is offline and dependency-free, so this is a hand-rolled
//! writer rather than serde — but a *typed* one: reports construct a
//! [`Json`] tree and render it, instead of string-concatenating JSON
//! fragments (which is how escaping bugs and trailing-comma breakage
//! creep in). Rendering is deterministic: object keys keep insertion
//! order, numbers are integers (the only numeric kind any report needs),
//! and strings are escaped exactly once, at render time.

use std::fmt::Write as _;

/// A JSON value. Numbers are split into unsigned/signed integer variants
/// because cycle counts are `u64` (which `i64` cannot hold) while deltas
/// can be negative; no report needs floats.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (cycle counts, seeds, tallies).
    UInt(u64),
    /// A signed integer (deltas).
    Int(i64),
    /// A string (escaped at render time).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::push`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object. No-op (debug-asserted) on
    /// non-objects.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        if let Json::Obj(fields) = self {
            fields.push((key.to_string(), value.into()));
        } else {
            debug_assert!(false, "Json::push on a non-object");
        }
        self
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline (the shape the pre-existing campaign reports committed to).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    let _ = write!(out, "\"{}\": ", escape(k));
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents_with_stable_layout() {
        let mut doc = Json::obj();
        doc.push("count", 3u64);
        doc.push("passed", true);
        doc.push(
            "rows",
            Json::Arr(vec![Json::UInt(1), Json::Str("a\"b".into())]),
        );
        doc.push("empty", Json::Arr(vec![]));
        let s = doc.render();
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"passed\": true"));
        assert!(s.contains("\\\"b\""));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn u64_cycle_counts_do_not_truncate() {
        let j = Json::UInt(u64::MAX);
        let mut s = String::new();
        j.write(&mut s, 0);
        assert_eq!(s, u64::MAX.to_string());
    }
}
