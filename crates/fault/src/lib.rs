//! # cheriot-fault — deterministic fault injection and invariant checking
//!
//! The paper's core claim is that CHERIoT converts every spatial, temporal,
//! and pointer-integrity violation into a recoverable trap rather than
//! silent corruption. This crate puts that claim under adversarial load:
//!
//! - [`FaultPlan`] / [`Injector`] — a seed-driven (xorshift, no wall
//!   clock) schedule of physical-style upsets: capability tag clears,
//!   single-bit corruption of bounds/otype/permission fields, revocation
//!   bitmap flips, data-bit flips, and interrupt storms/drops.
//! - [`InvariantChecker`] — re-derives the safety invariants the encoding
//!   and allocator protocol promise (tag provenance, bounds and permission
//!   monotonicity, quarantine no-reuse and paint, stack zeroing, trace
//!   integrity) from ground truth the injector cannot forge, reporting
//!   structured [`InvariantViolation`]s instead of panicking.
//! - [`run_campaigns`] — reference-vs-faulted campaign execution with
//!   outcome classification (benign / trapped-safely / invariant-violation
//!   / sim-error / silent-divergence / panicked), fanned out over scoped
//!   threads with per-campaign `catch_unwind`, and JSON + text reports.
//!
//! ## Example
//!
//! ```
//! use cheriot_fault::{run_campaigns, CampaignConfig, Outcome};
//!
//! let report = run_campaigns(&CampaignConfig {
//!     count: 2,
//!     ..CampaignConfig::default()
//! });
//! assert_eq!(report.count(Outcome::Panicked), 0);
//! assert_eq!(report.count(Outcome::SilentDivergence), 0);
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod inject;
pub mod invariant;
pub mod json;
pub mod plan;
pub mod rng;

pub use campaign::{
    run_campaigns, run_one, CampaignConfig, CampaignReport, CampaignResult, Outcome,
};
pub use inject::{Applied, InjectEffect, Injector};
pub use invariant::{InvariantChecker, InvariantKind, InvariantViolation};
pub use plan::{CapField, FaultClass, FaultEntry, FaultKind, FaultPlan, PlanConfig};
pub use rng::XorShift64;
