//! Seeded fault campaigns: reference run, faulted run, classification.
//!
//! A campaign takes one seed and answers one question: *when this exact
//! sequence of faults strikes this exact guest, does anything escape?* The
//! guest is a seed-parameterised malloc/store/load/free workload that
//! finishes by exiting with a data checksum, so any unflagged corruption of
//! its behaviour shows up as a fingerprint mismatch against a fault-free
//! reference run of the same seed. Each campaign is classified:
//!
//! - **benign** — fingerprint identical to the reference; the fault landed
//!   somewhere inert (or dissipated, e.g. no tagged granule in range).
//! - **trapped-safely** — the modelled hardware converted the fault into a
//!   CHERI trap before any corrupted access completed.
//! - **invariant-violation** — the cadence checker caught the corruption
//!   in machine state. For injected faults this is a *detection*, the
//!   second line of defence the tentpole asks for.
//! - **sim-error** — the simulator refused the run gracefully (watchdog,
//!   cycle budget) instead of wedging.
//! - **silent-divergence** — the fingerprint changed with no trap and no
//!   violation: corruption escaped. The headline claim is that the
//!   tag/bounds/bitmap classes never produce one.
//! - **panicked** — the simulator itself fell over; always a bug.
//!
//! Campaigns run in parallel on a work-stealing pool
//! ([`cheriot_core::sched::work_steal_with`]), each seed wrapped in
//! `catch_unwind` so one panicking seed is reported, not fatal. By default
//! each worker keeps one reusable machine and forks every run from an
//! O(dirty) snapshot restore ([`SeedWorker`]); `use_snapshot = false`
//! selects the legacy per-seed-reboot path, which produces byte-identical
//! results (asserted by `snapshot_and_reboot_paths_agree_exactly`).

use crate::inject::Injector;
use crate::invariant::{InvariantChecker, InvariantViolation};
use crate::json::Json;
use crate::plan::{FaultClass, FaultPlan, PlanConfig};
use crate::rng::XorShift64;
use cheriot_alloc::{HeapAllocator, RevokerKind, TemporalPolicy};
use cheriot_asm::Asm;
use cheriot_cap::Capability;
use cheriot_core::insn::Reg;
use cheriot_core::layout::{CODE_BASE, SRAM_BASE};
use cheriot_core::sched::work_steal_with;
use cheriot_core::{CoreModel, ExitReason, Machine, MachineConfig, Snapshot, SnapshotStats};
use cheriot_rtos::run_with_heap_service;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Directory of guest-held capabilities: base offset from SRAM start and
/// slot count. It sits in the globals area below the heap and is watched
/// strictly by the invariant checker (it only ever holds heap pointers).
const DIR_OFFSET: u32 = 0x100;
const DIR_SLOTS: u32 = 24;

/// Classified result of one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// Fingerprint identical to the reference run.
    Benign,
    /// The fault became an architectural CHERI trap.
    TrappedSafely,
    /// The invariant checker flagged the corruption.
    InvariantViolation,
    /// Graceful simulator refusal (watchdog / cycle budget / load error).
    SimError,
    /// Corruption escaped: changed behaviour, no trap, no violation.
    SilentDivergence,
    /// The simulator panicked. Always a bug.
    Panicked,
}

impl Outcome {
    /// Every outcome, in report order.
    pub const ALL: &'static [Outcome] = &[
        Outcome::Benign,
        Outcome::TrappedSafely,
        Outcome::InvariantViolation,
        Outcome::SimError,
        Outcome::SilentDivergence,
        Outcome::Panicked,
    ];

    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Benign => "benign",
            Outcome::TrappedSafely => "trapped-safely",
            Outcome::InvariantViolation => "invariant-violation",
            Outcome::SimError => "sim-error",
            Outcome::SilentDivergence => "silent-divergence",
            Outcome::Panicked => "panicked",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Campaign-suite parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed of the first campaign; campaign `i` uses `seed_base + i`.
    pub seed_base: u64,
    /// Number of campaigns.
    pub count: u32,
    /// Worker threads (clamped to `[1, count]`).
    pub threads: u32,
    /// Fault classes drawn from (uniformly) by each plan.
    pub classes: Vec<FaultClass>,
    /// Faults scheduled per campaign.
    pub faults_per_run: u32,
    /// Invariant-checker cadence in cycles.
    pub cadence: u64,
    /// Per-run cycle budget.
    pub max_cycles: u64,
    /// Run seeds through the snapshot/fork engine (the default): each
    /// worker keeps one machine and forks every run from an O(dirty)
    /// restore instead of booting per seed. `false` is the legacy
    /// per-seed-reboot path (`fault-campaign --no-snapshot`), kept as a
    /// cross-check — both paths produce byte-identical results.
    pub use_snapshot: bool,
    /// Copy-on-write page store for every campaign machine (the
    /// default). `false` is the `--no-cow` escape hatch: snapshot
    /// captures/restores deep-copy pages — byte-identical outcomes,
    /// pre-CoW restore cost.
    pub cow: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed_base: 1,
            count: 64,
            threads: 1,
            classes: FaultClass::HEADLINE.to_vec(),
            faults_per_run: 3,
            cadence: 2_000,
            max_cycles: 30_000_000,
            use_snapshot: true,
            cow: true,
        }
    }
}

/// Result of one seeded campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignResult {
    /// The campaign's seed.
    pub seed: u64,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Faults that actually mutated state (skips excluded).
    pub faults_applied: u32,
    /// Cycles the faulted run consumed.
    pub cycles: u64,
    /// Outcome specifics (trap cause, first violation, divergence diff…).
    pub detail: String,
}

/// Aggregated campaign-suite report.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The configuration the suite ran under.
    pub config: CampaignConfig,
    /// Per-seed results, sorted by seed.
    pub results: Vec<CampaignResult>,
    /// Violations flagged by the checker on the fault-free control run.
    /// Any entry here means the checker itself (or the simulator) is
    /// broken: a clean run must be invariant-silent.
    pub control_violations: Vec<InvariantViolation>,
    /// Snapshot restores performed by the fork engine (0 on the legacy
    /// per-seed-reboot path).
    pub snapshot_restores: u64,
    /// SRAM pages copied across those restores. A rising pages-per-restore
    /// ratio flags a regression in dirty-tracking precision.
    pub dirty_pages_copied: u64,
    /// Host bytes those restores actually moved (honest accounting:
    /// handle adoptions under CoW, data + tag bytes on deep copies, plus
    /// the console backlog and code-handle adoptions).
    pub snapshot_bytes_copied: u64,
}

impl CampaignReport {
    /// Count of campaigns with the given outcome.
    pub fn count(&self, o: Outcome) -> u32 {
        self.results.iter().filter(|r| r.outcome == o).count() as u32
    }

    /// True when the suite found a real problem: a simulator panic, a
    /// silent divergence, or a spurious violation on the fault-free
    /// control run. Checker detections of *injected* faults are successes
    /// (the headline's "caught by the invariant checker") and do not fail
    /// the suite.
    pub fn failed(&self) -> bool {
        self.count(Outcome::Panicked) > 0
            || self.count(Outcome::SilentDivergence) > 0
            || !self.control_violations.is_empty()
    }

    /// Plain-text report.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let classes: Vec<&str> = self.config.classes.iter().map(|c| c.name()).collect();
        s.push_str(&format!(
            "fault campaign: {} seeds from {} | kinds: {} | {} faults/run | cadence {} cycles\n",
            self.config.count,
            self.config.seed_base,
            classes.join(","),
            self.config.faults_per_run,
            self.config.cadence,
        ));
        for &o in Outcome::ALL {
            s.push_str(&format!("  {:>20}: {}\n", o.name(), self.count(o)));
        }
        s.push_str(&format!(
            "  control run violations: {}\n",
            self.control_violations.len()
        ));
        if self.config.use_snapshot {
            s.push_str(&format!(
                "  snapshot engine: {} restores, {} dirty pages copied, {} bytes moved\n",
                self.snapshot_restores, self.dirty_pages_copied, self.snapshot_bytes_copied
            ));
        }
        for r in &self.results {
            if matches!(
                r.outcome,
                Outcome::Panicked | Outcome::SilentDivergence | Outcome::SimError
            ) {
                s.push_str(&format!(
                    "  seed {}: {} ({})\n",
                    r.seed, r.outcome, r.detail
                ));
            }
        }
        s.push_str(if self.failed() {
            "RESULT: FAIL\n"
        } else {
            "RESULT: PASS\n"
        });
        s
    }

    /// JSON report, built through the shared typed writer
    /// ([`crate::json::Json`]) rather than string concatenation.
    pub fn to_json(&self) -> String {
        let mut doc = Json::obj();
        doc.push("seed_base", self.config.seed_base);
        doc.push("count", u64::from(self.config.count));
        doc.push("threads", self.config.threads);
        doc.push(
            "kinds",
            Json::Arr(
                self.config
                    .classes
                    .iter()
                    .map(|c| Json::Str(c.name().to_string()))
                    .collect(),
            ),
        );
        doc.push("faults_per_run", u64::from(self.config.faults_per_run));
        doc.push("cadence", self.config.cadence);
        doc.push("use_snapshot", self.config.use_snapshot);
        doc.push("snapshot_restores", self.snapshot_restores);
        doc.push("dirty_pages_copied", self.dirty_pages_copied);
        doc.push("snapshot_bytes_copied", self.snapshot_bytes_copied);
        let mut outcomes = Json::obj();
        for &o in Outcome::ALL {
            outcomes.push(o.name(), u64::from(self.count(o)));
        }
        doc.push("outcomes", outcomes);
        doc.push("control_violations", self.control_violations.len());
        doc.push("passed", !self.failed());
        doc.push(
            "campaigns",
            Json::Arr(
                self.results
                    .iter()
                    .map(|r| {
                        let mut row = Json::obj();
                        row.push("seed", r.seed);
                        row.push("outcome", r.outcome.name());
                        row.push("faults", u64::from(r.faults_applied));
                        row.push("cycles", r.cycles);
                        row.push("detail", r.detail.as_str());
                        row
                    })
                    .collect(),
            ),
        );
        doc.render()
    }
}

/// Behavioural fingerprint of a run: everything the outside world can see.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    exit: ExitReason,
    console: Vec<u8>,
    gpio_out: u32,
    gpio_writes: u64,
}

impl Fingerprint {
    /// Builds the fingerprint by *stealing* the console buffer from the
    /// finished machine — the machine is dropped or restored from a
    /// snapshot right after, so cloning the buffer would be a pure
    /// per-run allocation.
    fn take(exit: ExitReason, m: &mut Machine) -> Fingerprint {
        Fingerprint {
            exit,
            console: std::mem::take(&mut m.console),
            gpio_out: m.gpio_out,
            gpio_writes: m.gpio_writes,
        }
    }
}

/// A freshly booted machine + heap with the seeded workload loaded, or a
/// structured error string if loading failed (never a panic).
/// Dispatch modes for [`fresh_run`]: `(block_cache, block_chain)`.
const STEPWISE: (bool, bool) = (false, false);
/// Block cache on, chaining off. Only the cross-mode equivalence tests
/// exercise this middle mode; the campaign proper uses the two extremes.
#[cfg(test)]
const CACHED: (bool, bool) = (true, false);
/// Block cache + chaining + sentry inline caches — the default path.
const CHAINED: (bool, bool) = (true, true);

/// `dispatch` is `(block_cache, block_chain)` and selects the execution
/// path: the campaign runs its reference stepwise ([`STEPWISE`]) and its
/// faulted run through the fully chained dispatch loop ([`CHAINED`]), so
/// every campaign is also a cross-check that the predecoded-block cache,
/// block chaining and the sentry inline caches are architecturally
/// invisible (any cycle or behaviour drift shows up as a divergence).
fn fresh_run(
    seed: u64,
    dispatch: (bool, bool),
    cow: bool,
) -> Result<(Machine, HeapAllocator, u32, u32), String> {
    let mut mc = MachineConfig::new(CoreModel::ibex());
    (mc.block_cache, mc.block_chain) = dispatch;
    mc.cow = cow;
    let mut m = Machine::new(mc);
    let heap = HeapAllocator::new(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    let program = build_workload(seed);
    let entry = m.try_load_program(&program).map_err(|e| e.to_string())?;
    m.set_entry(entry);
    let dir_lo = SRAM_BASE + DIR_OFFSET;
    let dir_len = DIR_SLOTS * 8;
    let dir_cap = Capability::root_mem_rw()
        .with_address(dir_lo)
        .set_bounds(u64::from(dir_len))
        .ok_or_else(|| "directory capability is unrepresentable".to_string())?;
    m.cpu.write(Reg::GP, dir_cap);
    Ok((m, heap, dir_lo, dir_len))
}

/// Builds the seed-parameterised guest: an unrolled malloc/store/load/free
/// churn over a capability directory, exiting with a running checksum.
/// Everything the guest will do is decided here, host-side, from the seed
/// alone — the instruction stream itself is deterministic and branch-free,
/// so the only nondeterminism in a campaign is the injected faults.
///
/// Public so property tests and benches can run campaign-grade guests
/// without reimplementing the generator.
pub fn build_workload(seed: u64) -> Vec<cheriot_core::insn::Instr> {
    let mut rng = XorShift64::new(seed ^ 0xC0FF_EE00_D15E_A5E5);
    let mut a = Asm::new();
    let rounds = 12 + rng.gen_range(0, 9) as u32; // 12..=20
    a.li(Reg::A5, 0); // checksum accumulator
                      // Host-side model of which directory slot holds a live allocation of
                      // what size (so reads/frees only ever use valid slots in the
                      // fault-free reference).
    let mut slots: Vec<Option<u32>> = vec![None; DIR_SLOTS as usize];

    for round in 0..rounds {
        // size: 16..=256 bytes, 8-aligned.
        let size = 16 + (rng.gen_range(0, 31) as u32) * 8;
        let slot = (round % DIR_SLOTS) as usize;
        let val = rng.next_u32() & 0x7fff_ffff;
        // p = malloc(size)
        a.li(Reg::A0, 1);
        a.li(Reg::A1, size as i32);
        a.ecall();
        a.cmove(Reg::S0, Reg::A0);
        // first and last word of the allocation, then read one back.
        a.li(Reg::T0, val as i32);
        a.sw(Reg::T0, 0, Reg::S0);
        a.sw(Reg::T0, (size - 4) as i32, Reg::S0);
        a.lw(Reg::T1, 0, Reg::S0);
        a.add(Reg::A5, Reg::A5, Reg::T1);
        // publish into the directory.
        a.csc(Reg::S0, (slot * 8) as i32, Reg::GP);
        slots[slot] = Some(size);
        // Sometimes stash the new cap inside an older live allocation so
        // the heap itself holds capabilities the checker must vet.
        if rng.gen_range(0, 3) == 0 {
            if let Some(prev) = pick_live(&mut rng, &slots, |sz| sz >= 16, slot) {
                a.clc(Reg::S1, (prev * 8) as i32, Reg::GP);
                a.csc(Reg::S0, 8, Reg::S1);
            }
        }
        // Read back through an older live allocation.
        if let Some(q) = pick_live(&mut rng, &slots, |_| true, usize::MAX) {
            a.clc(Reg::S1, (q * 8) as i32, Reg::GP);
            a.lw(Reg::T1, 0, Reg::S1);
            a.add(Reg::A5, Reg::A5, Reg::T1);
        }
        // Free roughly a third of the time.
        if rng.gen_range(0, 3) == 1 {
            if let Some(f) = pick_live(&mut rng, &slots, |_| true, usize::MAX) {
                a.li(Reg::A0, 2);
                a.clc(Reg::A1, (f * 8) as i32, Reg::GP);
                a.ecall();
                slots[f] = None;
            }
        }
    }
    // exit(checksum)
    a.li(Reg::A0, 3);
    a.mv(Reg::A1, Reg::A5);
    a.ecall();
    a.assemble()
}

fn pick_live(
    rng: &mut XorShift64,
    slots: &[Option<u32>],
    want: impl Fn(u32) -> bool,
    exclude: usize,
) -> Option<usize> {
    let candidates: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|&(i, s)| i != exclude && s.map(&want).unwrap_or(false))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0, candidates.len() as u64) as usize])
    }
}

/// Runs one seeded campaign: reference run, then faulted run, then
/// classification. Never panics on simulator errors — panics that do slip
/// through are caught by the suite driver and classified [`Outcome::Panicked`].
pub fn run_one(seed: u64, cfg: &CampaignConfig) -> CampaignResult {
    let fail = |detail: String| CampaignResult {
        seed,
        outcome: Outcome::SimError,
        faults_applied: 0,
        cycles: 0,
        detail,
    };

    // Reference (fault-free) run, executed cache-off: its fingerprint and
    // cycle count anchor both the fault classification and the block
    // cache's exactness (the faulted run below executes cache-on).
    let (mut m, mut heap, dir_lo, dir_len) = match fresh_run(seed, STEPWISE, cfg.cow) {
        Ok(v) => v,
        Err(e) => return fail(format!("reference setup: {e}")),
    };
    let r_ref = run_with_heap_service(&mut m, &mut heap, cfg.max_cycles);
    if !matches!(r_ref, ExitReason::Halted(_)) {
        return fail(format!("reference run did not exit cleanly: {r_ref:?}"));
    }
    let reference = Fingerprint::take(r_ref, &mut m);
    let ref_cycles = m.cycles.max(1);
    let ref_instructions = m.stats.instructions;

    // Faulted run (cache-on).
    let (mut m, mut heap, _, _) = match fresh_run(seed, CHAINED, cfg.cow) {
        Ok(v) => v,
        Err(e) => return fail(format!("faulted setup: {e}")),
    };
    run_faulted_phase(
        &mut m,
        &mut heap,
        seed,
        cfg,
        dir_lo,
        dir_len,
        &reference,
        ref_cycles,
        ref_instructions,
    )
}

/// The faulted half of a campaign, starting from a machine in post-load
/// state (however it got there — fresh boot or snapshot fork): arm the
/// watchdog, generate and inject the plan, run the cadence checker, and
/// classify against the reference fingerprint. Shared verbatim by the
/// per-seed-reboot and snapshot/fork paths so the two cannot drift.
#[allow(clippy::too_many_arguments)]
fn run_faulted_phase(
    m: &mut Machine,
    heap: &mut HeapAllocator,
    seed: u64,
    cfg: &CampaignConfig,
    dir_lo: u32,
    dir_len: u32,
    reference: &Fingerprint,
    ref_cycles: u64,
    ref_instructions: u64,
) -> CampaignResult {
    m.set_watchdog(Some(
        ref_instructions.saturating_mul(4).saturating_add(100_000),
    ));
    let (hb, he) = heap.heap_range();
    // The workload only churns the first few KiB of the heap; aiming the
    // plan at that prefix (plus the directory) keeps the fault hit rate
    // high instead of scattering targets across empty SRAM.
    let used_he = he.min(hb + 32 * 1024);
    let plan = FaultPlan::generate(
        seed,
        &PlanConfig {
            classes: cfg.classes.clone(),
            count: cfg.faults_per_run,
            window: (ref_cycles / 10, ref_cycles.saturating_mul(9) / 10),
            region: (dir_lo, used_he),
            heap: (hb, used_he),
            code: (CODE_BASE, m.code_end()),
        },
    );
    let mut injector = Injector::new(plan);
    let mut checker = InvariantChecker::new(cfg.cadence.max(1));
    checker.watch_region(dir_lo, dir_lo + dir_len);
    let mut violations: Vec<InvariantViolation> = Vec::new();
    let deadline = cfg.max_cycles;

    let exit = loop {
        let next_stop = injector
            .next_cycle()
            .unwrap_or(u64::MAX)
            .min(checker.next_due())
            .min(deadline)
            .max(m.cycles + 1);
        let budget = next_stop - m.cycles;
        let r = run_with_heap_service(m, heap, budget);
        injector.poll(m);
        if checker.due(m.cycles) {
            violations.extend(checker.check(m, heap));
        }
        match r {
            ExitReason::CycleLimit if m.cycles < deadline => continue,
            other => break other,
        }
    };
    // Final sweep: corruption planted just before exit must still be seen.
    violations.extend(checker.check(m, heap));
    if let Err(e) = heap.check_consistency(m) {
        violations.push(InvariantViolation {
            kind: crate::invariant::InvariantKind::BoundsMonotonicity,
            cycle: m.cycles,
            addr: None,
            detail: format!("allocator consistency: {e}"),
        });
    }

    let faults_applied = injector.applied();
    let cycles = m.cycles;
    let (outcome, detail) = if !violations.is_empty() {
        (
            Outcome::InvariantViolation,
            format!(
                "{} violation(s); first: {}",
                violations.len(),
                violations[0]
            ),
        )
    } else {
        match exit {
            ExitReason::Watchdog => (Outcome::SimError, format!("{}", m.watchdog_error())),
            ExitReason::CycleLimit => (
                Outcome::SimError,
                format!("cycle budget ({deadline}) exhausted"),
            ),
            ExitReason::Fault(t) => (Outcome::TrappedSafely, format!("trap: {t:?}")),
            ExitReason::Halted(code) => {
                let faulted = Fingerprint::take(exit, m);
                if faulted == *reference {
                    (Outcome::Benign, String::new())
                } else {
                    (
                        Outcome::SilentDivergence,
                        format!(
                            "exit {:?} vs reference {:?}; console {}B vs {}B; \
                             gpio {:#x}/{} vs {:#x}/{}",
                            code,
                            reference.exit,
                            faulted.console.len(),
                            reference.console.len(),
                            faulted.gpio_out,
                            faulted.gpio_writes,
                            reference.gpio_out,
                            reference.gpio_writes,
                        ),
                    )
                }
            }
            other => (Outcome::SimError, format!("unexpected exit: {other:?}")),
        }
    };
    CampaignResult {
        seed,
        outcome,
        faults_applied,
        cycles,
        detail,
    }
}

/// Per-worker state for the snapshot/fork engine: one reusable machine,
/// the post-boot snapshot every seed starts from, a reusable post-load
/// snapshot buffer, and the boot-state allocator to clone per run.
///
/// The per-seed flow replaces two `Machine::new` boots (≈3.5 MB of
/// allocation + zeroing each) and a duplicate workload build with two
/// O(dirty) restores and one `HeapAllocator` clone per run. The reference
/// runs cache-on (legacy runs it cache-off): the block cache is
/// architecturally invisible — cycles, fingerprints and trap PCs are
/// identical either way, which `faulted_runs_identical_cache_on_vs_off`
/// and the cross-path smoke test assert — and the faulted fork then
/// inherits the reference run's decoded blocks through the snapshot.
struct SeedWorker {
    m: Machine,
    boot_heap: HeapAllocator,
    boot_snap: Snapshot,
    seed_snap: Snapshot,
    dir_lo: u32,
    dir_len: u32,
    /// Snapshot counters already harvested into the suite totals.
    harvested: SnapshotStats,
}

impl SeedWorker {
    fn new(cow: bool) -> Result<SeedWorker, String> {
        let mut mc = MachineConfig::new(CoreModel::ibex());
        mc.cow = cow;
        let mut m = Machine::new(mc);
        let boot_heap =
            HeapAllocator::new(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
        let dir_lo = SRAM_BASE + DIR_OFFSET;
        let dir_len = DIR_SLOTS * 8;
        let dir_cap = Capability::root_mem_rw()
            .with_address(dir_lo)
            .set_bounds(u64::from(dir_len))
            .ok_or_else(|| "directory capability is unrepresentable".to_string())?;
        m.cpu.write(Reg::GP, dir_cap);
        let boot_snap = m.snapshot();
        let seed_snap = boot_snap.clone();
        Ok(SeedWorker {
            m,
            boot_heap,
            boot_snap,
            seed_snap,
            dir_lo,
            dir_len,
            harvested: SnapshotStats::default(),
        })
    }

    /// One campaign through the fork engine. State-identical to the
    /// legacy path at every phase boundary: the restored machine is
    /// byte-identical to a fresh boot (asserted by the core snapshot
    /// tests), so reference cycles, plan windows, and classifications
    /// match the per-seed-reboot path exactly.
    fn run_seed(&mut self, seed: u64, cfg: &CampaignConfig) -> CampaignResult {
        let fail = |detail: String| CampaignResult {
            seed,
            outcome: Outcome::SimError,
            faults_applied: 0,
            cycles: 0,
            detail,
        };
        // Back to the (program-free) boot state: O(dirty from last run).
        self.m.restore_from(&self.boot_snap);
        let program = build_workload(seed);
        let entry = match self.m.try_load_program(&program) {
            Ok(e) => e,
            Err(e) => return fail(format!("reference setup: {e}")),
        };
        self.m.set_entry(entry);
        // Capture the post-load fork point. Loading touches only the code
        // region, so the SRAM side of this capture copies zero pages.
        self.m.snapshot_into(&mut self.seed_snap);
        // Reference run.
        let mut heap = self.boot_heap.clone();
        let r_ref = run_with_heap_service(&mut self.m, &mut heap, cfg.max_cycles);
        if !matches!(r_ref, ExitReason::Halted(_)) {
            return fail(format!("reference run did not exit cleanly: {r_ref:?}"));
        }
        let reference = Fingerprint::take(r_ref, &mut self.m);
        let ref_cycles = self.m.cycles.max(1);
        let ref_instructions = self.m.stats.instructions;
        // Fork the faulted run from the post-load snapshot; it inherits
        // every block the reference run decoded.
        self.m.restore_from(&self.seed_snap);
        let mut heap = self.boot_heap.clone();
        run_faulted_phase(
            &mut self.m,
            &mut heap,
            seed,
            cfg,
            self.dir_lo,
            self.dir_len,
            &reference,
            ref_cycles,
            ref_instructions,
        )
    }

    /// Snapshot-counter deltas since the last harvest.
    fn harvest(&mut self) -> (u64, u64, u64) {
        let s = self.m.snapshot_stats();
        let d = (
            s.restores - self.harvested.restores,
            s.pages_copied - self.harvested.pages_copied,
            s.bytes_copied - self.harvested.bytes_copied,
        );
        self.harvested = s;
        d
    }
}

/// A fault-free control run of `seed` under the cadence checker: returns
/// any violations the checker reports. A clean simulator must return none;
/// anything here is a checker false positive or a simulator bug, and fails
/// the suite.
fn run_control(seed: u64, cfg: &CampaignConfig) -> Vec<InvariantViolation> {
    let Ok((mut m, mut heap, dir_lo, dir_len)) = fresh_run(seed, CHAINED, cfg.cow) else {
        return vec![InvariantViolation {
            kind: crate::invariant::InvariantKind::TagProvenance,
            cycle: 0,
            addr: None,
            detail: "control run failed to load".into(),
        }];
    };
    let mut checker = InvariantChecker::new(cfg.cadence.max(1));
    checker.watch_region(dir_lo, dir_lo + dir_len);
    let mut violations = Vec::new();
    loop {
        let next_stop = checker.next_due().min(cfg.max_cycles).max(m.cycles + 1);
        let budget = next_stop - m.cycles;
        let r = run_with_heap_service(&mut m, &mut heap, budget);
        violations.extend(checker.check(&m, &heap));
        match r {
            ExitReason::CycleLimit if m.cycles < cfg.max_cycles => continue,
            _ => break,
        }
    }
    violations
}

/// Runs the whole suite: one control run plus `count` seeded campaigns
/// fanned out over a work-stealing pool of `threads` workers, each campaign
/// wrapped in `catch_unwind`.
///
/// With `cfg.use_snapshot` (the default) each worker carries a
/// [`SeedWorker`] — one reusable machine forked per seed from an O(dirty)
/// snapshot restore — otherwise every seed reboots from scratch through
/// [`run_one`]. Workers claim seeds from a shared cursor, so one slow seed
/// never idles the rest of the pool the way the old fixed stride did.
pub fn run_campaigns(cfg: &CampaignConfig) -> CampaignReport {
    let control_violations = run_control(cfg.seed_base, cfg);
    let threads = cfg.threads.clamp(1, cfg.count.max(1)) as usize;
    let count = cfg.count as usize;
    let restores = AtomicU64::new(0);
    let pages_copied = AtomicU64::new(0);
    let bytes_copied = AtomicU64::new(0);
    let results = work_steal_with(
        count,
        threads,
        // `None` state = legacy per-seed-reboot path.
        || cfg.use_snapshot.then(|| SeedWorker::new(cfg.cow)),
        |state, i| {
            let seed = cfg.seed_base + i as u64;
            let r = match state {
                Some(Ok(worker)) => {
                    let r = catch_unwind(AssertUnwindSafe(|| worker.run_seed(seed, cfg)));
                    let (dr, dp, db) = worker.harvest();
                    restores.fetch_add(dr, Ordering::Relaxed);
                    pages_copied.fetch_add(dp, Ordering::Relaxed);
                    bytes_copied.fetch_add(db, Ordering::Relaxed);
                    if r.is_err() {
                        // The worker machine may be wedged mid-run; rebuild
                        // it so subsequent seeds start from a clean boot.
                        *state = Some(SeedWorker::new(cfg.cow));
                    }
                    r
                }
                Some(Err(e)) => Ok(CampaignResult {
                    seed,
                    outcome: Outcome::SimError,
                    faults_applied: 0,
                    cycles: 0,
                    detail: format!("snapshot worker setup: {e}"),
                }),
                None => catch_unwind(AssertUnwindSafe(|| run_one(seed, cfg))),
            };
            r.unwrap_or_else(|p| CampaignResult {
                seed,
                outcome: Outcome::Panicked,
                faults_applied: 0,
                cycles: 0,
                detail: panic_message(&p),
            })
        },
    );
    CampaignReport {
        config: cfg.clone(),
        results,
        control_violations,
        snapshot_restores: restores.into_inner(),
        dirty_pages_copied: pages_copied.into_inner(),
        snapshot_bytes_copied: bytes_copied.into_inner(),
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_reference_run_is_clean_and_deterministic() {
        // The second run executes cache-on: determinism across the two
        // execution paths, not just across repetitions, is the contract.
        for seed in [1u64, 2, 3, 99] {
            let (mut m, mut heap, _, _) = fresh_run(seed, STEPWISE, true).unwrap();
            let r1 = run_with_heap_service(&mut m, &mut heap, 30_000_000);
            let ExitReason::Halted(c1) = r1 else {
                panic!("seed {seed}: reference must halt, got {r1:?}");
            };
            heap.check_consistency(&m).unwrap();
            let (mut m2, mut heap2, _, _) = fresh_run(seed, CHAINED, true).unwrap();
            let r2 = run_with_heap_service(&mut m2, &mut heap2, 30_000_000);
            assert_eq!(
                r2,
                ExitReason::Halted(c1),
                "reference must be deterministic"
            );
            assert_eq!(m.cycles, m2.cycles);
            assert_eq!(m.stats.instructions, m2.stats.instructions);
            // The workload is straight-line code, so blocks are compiled
            // and executed once each (misses, not hits) — what matters is
            // that the cache-on path was actually taken.
            assert!(
                m2.block_stats().misses > 0,
                "cache-on run should actually exercise the block cache"
            );
        }
    }

    #[test]
    fn workloads_differ_across_seeds() {
        let a = build_workload(1);
        let b = build_workload(2);
        assert_ne!(a.len(), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn control_run_is_invariant_silent() {
        let cfg = CampaignConfig::default();
        let v = run_control(5, &cfg);
        assert!(v.is_empty(), "control run must be clean: {v:?}");
    }

    #[test]
    fn campaign_results_are_reproducible() {
        let cfg = CampaignConfig {
            count: 4,
            ..CampaignConfig::default()
        };
        let a = run_one(cfg.seed_base + 2, &cfg);
        let b = run_one(cfg.seed_base + 2, &cfg);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.faults_applied, b.faults_applied);
        assert_eq!(a.cycles, b.cycles);
    }

    /// Mirrors `run_one`'s faulted loop with the block cache forced to the
    /// given mode, returning the full behavioural fingerprint plus cycle and
    /// instruction counts.
    fn faulted_run(
        seed: u64,
        classes: &[FaultClass],
        dispatch: (bool, bool),
    ) -> (Fingerprint, u64, u64) {
        let deadline = 30_000_000u64;
        let (mut m, mut heap, dir_lo, _) = fresh_run(seed, STEPWISE, true).unwrap();
        let r = run_with_heap_service(&mut m, &mut heap, deadline);
        assert!(matches!(r, ExitReason::Halted(_)), "seed {seed}: {r:?}");
        let ref_cycles = m.cycles.max(1);
        let wd = m.stats.instructions.saturating_mul(4) + 100_000;

        let (mut m, mut heap, _, _) = fresh_run(seed, dispatch, true).unwrap();
        m.set_watchdog(Some(wd));
        let (hb, he) = heap.heap_range();
        let used_he = he.min(hb + 32 * 1024);
        let plan = FaultPlan::generate(
            seed,
            &PlanConfig {
                classes: classes.to_vec(),
                count: 6,
                window: (ref_cycles / 10, ref_cycles.saturating_mul(9) / 10),
                region: (dir_lo, used_he),
                heap: (hb, used_he),
                code: (CODE_BASE, m.code_end()),
            },
        );
        let mut injector = Injector::new(plan);
        let exit = loop {
            let next_stop = injector
                .next_cycle()
                .unwrap_or(u64::MAX)
                .min(deadline)
                .max(m.cycles + 1);
            let budget = next_stop - m.cycles;
            let r = run_with_heap_service(&mut m, &mut heap, budget);
            injector.poll(&mut m);
            match r {
                ExitReason::CycleLimit if m.cycles < deadline => continue,
                other => break other,
            }
        };
        (
            Fingerprint::take(exit, &mut m),
            m.cycles,
            m.stats.instructions,
        )
    }

    #[test]
    fn faulted_runs_identical_across_dispatch_modes() {
        // The strongest exactness check: the faulted run (including code
        // bit-flips, which rewrite instructions mid-run and must invalidate
        // predecoded blocks, successor links and sentry inline caches)
        // produces a byte-identical fingerprint and the same cycle and
        // instruction counts in all three dispatch modes. Injection points
        // land at the same slice boundaries only if the whole dispatch
        // stack is architecturally invisible.
        let classes = vec![
            FaultClass::Tag,
            FaultClass::Bounds,
            FaultClass::Bitmap,
            FaultClass::Code,
        ];
        for seed in [7u64, 8, 9, 10, 11, 12] {
            let chained = faulted_run(seed, &classes, CHAINED);
            let cached = faulted_run(seed, &classes, CACHED);
            let stepwise = faulted_run(seed, &classes, STEPWISE);
            assert_eq!(chained, cached, "seed {seed}: chained vs cached");
            assert_eq!(cached, stepwise, "seed {seed}: cached vs stepwise");
        }
    }

    #[test]
    fn chain_mode_smoke_64_seeds_faulted_runs_identical() {
        // Satellite smoke: 64 seeds of code/tag fault campaigns executed
        // through the chained dispatch loop and through the unchained
        // block cache must fingerprint identically (the per-seed stepwise
        // reference inside `faulted_run` anchors both). Code faults make
        // this a stress of link/IC invalidation under mid-run patching.
        let classes = vec![FaultClass::Tag, FaultClass::Code];
        for seed in 1u64..=64 {
            let chained = faulted_run(seed, &classes, CHAINED);
            let cached = faulted_run(seed, &classes, CACHED);
            assert_eq!(chained, cached, "seed {seed}: chained vs cached");
        }
    }

    #[test]
    fn block_cache_smoke_64_seeds_zero_silent_divergence() {
        // Satellite check: a 64-seed headline campaign where every faulted
        // run executes through the block cache while the reference
        // fingerprint comes from a cache-off run (see `fresh_run`). Any
        // cache-induced drift would surface as SilentDivergence.
        let cfg = CampaignConfig {
            seed_base: 1,
            count: 64,
            threads: 4,
            ..CampaignConfig::default()
        };
        let report = run_campaigns(&cfg);
        assert_eq!(report.results.len(), 64);
        assert_eq!(report.count(Outcome::Panicked), 0, "{}", report.to_text());
        assert_eq!(
            report.count(Outcome::SilentDivergence),
            0,
            "{}",
            report.to_text()
        );
        assert!(!report.failed());
    }

    #[test]
    fn snapshot_and_reboot_paths_agree_exactly() {
        // The acceptance gate for the fork engine: the snapshot path must be
        // bit-for-bit equivalent to the per-seed-reboot path — identical
        // outcomes, fault counts, cycle counts, and detail strings (which
        // embed trap causes and divergence fingerprint summaries).
        let base = CampaignConfig {
            seed_base: 40,
            count: 20,
            threads: 3,
            classes: vec![
                FaultClass::Tag,
                FaultClass::Bounds,
                FaultClass::Bitmap,
                FaultClass::Code,
            ],
            ..CampaignConfig::default()
        };
        let snap = run_campaigns(&CampaignConfig {
            use_snapshot: true,
            ..base.clone()
        });
        let reboot = run_campaigns(&CampaignConfig {
            use_snapshot: false,
            ..base
        });
        assert_eq!(
            snap.results,
            reboot.results,
            "snapshot path diverged from per-seed reboot:\n{}\nvs\n{}",
            snap.to_text(),
            reboot.to_text()
        );
        assert_eq!(
            snap.control_violations.len(),
            reboot.control_violations.len()
        );
        assert!(
            snap.snapshot_restores >= 2 * u64::from(snap.config.count),
            "snapshot path should restore at least twice per seed, saw {}",
            snap.snapshot_restores
        );
        assert_eq!(reboot.snapshot_restores, 0, "legacy path never restores");
    }

    #[test]
    fn snapshot_path_is_deterministic_across_runs() {
        // Reusing machines across seeds must not leak state between seeds:
        // the same campaign run twice (different work-stealing interleavings
        // and worker/seed assignments) yields identical results.
        let cfg = CampaignConfig {
            seed_base: 200,
            count: 12,
            threads: 4,
            ..CampaignConfig::default()
        };
        let a = run_campaigns(&cfg);
        let b = run_campaigns(&cfg);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn headline_smoke_no_panics_no_silent_divergence() {
        let cfg = CampaignConfig {
            seed_base: 100,
            count: 16,
            threads: 2,
            ..CampaignConfig::default()
        };
        let report = run_campaigns(&cfg);
        assert_eq!(report.results.len(), 16);
        assert_eq!(report.count(Outcome::Panicked), 0, "{}", report.to_text());
        assert_eq!(
            report.count(Outcome::SilentDivergence),
            0,
            "{}",
            report.to_text()
        );
        assert!(report.control_violations.is_empty());
        assert!(!report.failed());
        // JSON report parses at least superficially.
        let json = report.to_json();
        assert!(json.contains("\"campaigns\""));
        assert!(json.contains("\"passed\": true"));
    }
}
