//! Fault plans: what to break, where, and when.
//!
//! A [`FaultPlan`] is a deterministic schedule of `(cycle, kind, target)`
//! entries generated from a seed — the moral equivalent of a particle-strike
//! trace for the modelled SoC. The plan is pure data: generating it touches
//! no machine state, so the same seed always yields the same plan and a
//! campaign can be replayed bit-for-bit from its seed alone.

use crate::rng::XorShift64;
use std::fmt;
use std::str::FromStr;

/// Granule size of tagged memory (one capability) in bytes.
const GRANULE: u32 = 8;

/// A category of fault the planner can schedule. Selecting classes (rather
/// than concrete faults) is how the CLI's `--kinds` flag scopes a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Clear a set capability tag bit in tagged SRAM (tag-SRAM upset).
    Tag,
    /// Flip one bit of the bounds metadata (exp/base/top) of an in-memory
    /// capability.
    Bounds,
    /// Flip one bit of the object-type field of an in-memory capability.
    Otype,
    /// Flip one bit of the permissions field of an in-memory capability.
    Perms,
    /// Flip one bit of the address field of an in-memory capability.
    Address,
    /// Flip one revocation-bitmap granule bit.
    Bitmap,
    /// Flip one bit of a data granule (tag preserved).
    Data,
    /// Force the timer to fire continuously for a while (interrupt storm).
    IrqStorm,
    /// Push the timer compare register out to infinity (dropped interrupt).
    IrqDrop,
    /// Flip one bit of an instruction word in the code region (instruction
    /// ROM/flash upset). Exercises the block cache's coherence path: the
    /// injector rewrites the decoded instruction through
    /// `Machine::patch_code`, which invalidates covering blocks.
    Code,
    /// Flip one bit of a live DMA/network descriptor in SRAM (the injector
    /// asks the device bus where the active descriptor ring is; skipped
    /// when no device has one programmed).
    DmaDesc,
    /// Assert a device interrupt line no device is raising (a glitched
    /// open-drain IRQ wire). Benign while the guest's interrupt-controller
    /// mask has the line disabled.
    DevIrqSpurious,
    /// Deassert every latched device interrupt line (a lost edge on the
    /// IRQ wires); skipped when nothing is pending.
    DevIrqDrop,
    /// Flip one bit of the byte at the head of the UART RX FIFO (line
    /// noise on the serial input); skipped when the FIFO is empty.
    UartData,
}

impl FaultClass {
    /// The headline campaign mix from the acceptance criteria: tag flips,
    /// bounds corruption, and revocation-bitmap flips.
    pub const HEADLINE: &'static [FaultClass] =
        &[FaultClass::Tag, FaultClass::Bounds, FaultClass::Bitmap];

    /// Every class the planner knows.
    pub const ALL: &'static [FaultClass] = &[
        FaultClass::Tag,
        FaultClass::Bounds,
        FaultClass::Otype,
        FaultClass::Perms,
        FaultClass::Address,
        FaultClass::Bitmap,
        FaultClass::Data,
        FaultClass::IrqStorm,
        FaultClass::IrqDrop,
        FaultClass::Code,
        FaultClass::DmaDesc,
        FaultClass::DevIrqSpurious,
        FaultClass::DevIrqDrop,
        FaultClass::UartData,
    ];

    /// Stable lowercase name, used by the CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Tag => "tag",
            FaultClass::Bounds => "bounds",
            FaultClass::Otype => "otype",
            FaultClass::Perms => "perms",
            FaultClass::Address => "address",
            FaultClass::Bitmap => "bitmap",
            FaultClass::Data => "data",
            FaultClass::IrqStorm => "irq-storm",
            FaultClass::IrqDrop => "irq-drop",
            FaultClass::Code => "code",
            FaultClass::DmaDesc => "dma-desc",
            FaultClass::DevIrqSpurious => "dev-irq-spurious",
            FaultClass::DevIrqDrop => "dev-irq-drop",
            FaultClass::UartData => "uart-data",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultClass {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultClass, String> {
        FaultClass::ALL
            .iter()
            .copied()
            .find(|c| c.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
                format!(
                    "unknown fault kind `{s}` (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// Which field of the 64-bit capability word a [`FaultKind::CapCorrupt`]
/// targets. Bit positions follow the in-memory encoding:
/// address `[0,32)`, top `[32,41)`, base `[41,50)`, exponent `[50,54)`,
/// otype `[54,57)`, permissions `[57,63)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapField {
    /// The 32-bit address field.
    Address,
    /// The compressed bounds (top ∪ base ∪ exponent), bits 32–53.
    Bounds,
    /// The 3-bit object type, bits 54–56.
    Otype,
    /// The 6-bit compressed permissions, bits 57–62.
    Perms,
}

impl CapField {
    /// `(first_bit, width)` of this field within the 64-bit memory word.
    pub const fn bit_range(self) -> (u32, u32) {
        match self {
            CapField::Address => (0, 32),
            CapField::Bounds => (32, 22),
            CapField::Otype => (54, 3),
            CapField::Perms => (57, 6),
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CapField::Address => "address",
            CapField::Bounds => "bounds",
            CapField::Otype => "otype",
            CapField::Perms => "perms",
        }
    }
}

/// One concrete fault the injector knows how to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Clear the nearest set tag bit around `addr` (a tag-SRAM upset on a
    /// granule that currently holds a capability).
    TagFlip {
        /// Granule-aligned centre of the search window.
        addr: u32,
    },
    /// XOR bit `bit` of the capability word held by the first tagged
    /// granule at or after `addr` (tag preserved).
    CapCorrupt {
        /// Granule-aligned scan start.
        addr: u32,
        /// Which encoding field `bit` falls in (for reporting).
        field: CapField,
        /// Absolute bit position in the 64-bit word.
        bit: u32,
    },
    /// Flip the revocation-bitmap bit covering `addr`.
    BitmapFlip {
        /// Heap address whose granule bit is flipped.
        addr: u32,
    },
    /// XOR bit `bit` of the data granule at `addr` (tag preserved).
    DataFlip {
        /// Granule-aligned target address.
        addr: u32,
        /// Bit position in the 64-bit granule.
        bit: u32,
    },
    /// Pull `mtimecmp` to zero for `cycles` cycles, then restore it.
    IrqStorm {
        /// Storm duration in cycles.
        cycles: u64,
    },
    /// Set `mtimecmp` to `u64::MAX`, suppressing the pending timer.
    IrqDrop,
    /// XOR bit `bit` of the encoded instruction word at code address
    /// `addr`, then re-decode and patch it back. Skipped when the flipped
    /// word no longer decodes (the modelled core would take an
    /// illegal-instruction trap the simulator's decoded-form code region
    /// cannot represent).
    CodeFlip {
        /// Word-aligned code address.
        addr: u32,
        /// Bit position in the 32-bit instruction word.
        bit: u32,
    },
    /// XOR one bit of the active DMA/network descriptor ring. The target
    /// address is resolved at apply time from the device bus
    /// (`Machine::dma_desc_addr`); skipped when no ring is programmed.
    DmaDescFlip {
        /// Bit position within the 16-byte descriptor (0–127).
        bit: u32,
    },
    /// Latch a spurious device interrupt line in the interrupt controller.
    DevIrqSpurious {
        /// Line number (0–31).
        line: u32,
    },
    /// Clear every latched device interrupt line; skipped when none is
    /// pending.
    DevIrqDrop,
    /// XOR one bit of the byte at the head of the UART RX FIFO; skipped
    /// when the FIFO is empty.
    UartDataFlip {
        /// Bit position within the byte (0–7).
        bit: u32,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::TagFlip { addr } => write!(f, "tag-flip @ {addr:#010x}"),
            FaultKind::CapCorrupt { addr, field, bit } => {
                write!(f, "cap-corrupt {} bit {bit} @ {addr:#010x}", field.name())
            }
            FaultKind::BitmapFlip { addr } => write!(f, "bitmap-flip @ {addr:#010x}"),
            FaultKind::DataFlip { addr, bit } => write!(f, "data-flip bit {bit} @ {addr:#010x}"),
            FaultKind::IrqStorm { cycles } => write!(f, "irq-storm for {cycles} cycles"),
            FaultKind::IrqDrop => write!(f, "irq-drop"),
            FaultKind::CodeFlip { addr, bit } => write!(f, "code-flip bit {bit} @ {addr:#010x}"),
            FaultKind::DmaDescFlip { bit } => write!(f, "dma-desc-flip bit {bit}"),
            FaultKind::DevIrqSpurious { line } => write!(f, "dev-irq-spurious line {line}"),
            FaultKind::DevIrqDrop => write!(f, "dev-irq-drop"),
            FaultKind::UartDataFlip { bit } => write!(f, "uart-data-flip bit {bit}"),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEntry {
    /// Machine cycle at (or after) which the fault is applied.
    pub cycle: u64,
    /// What to break.
    pub kind: FaultKind,
}

/// Parameters for plan generation.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Fault classes to draw from (uniformly).
    pub classes: Vec<FaultClass>,
    /// Number of faults to schedule.
    pub count: u32,
    /// Half-open cycle window `[window.0, window.1)` faults land in.
    pub window: (u64, u64),
    /// Address region `[region.0, region.1)` tag/cap/data faults target
    /// (granule-aligned internally).
    pub region: (u32, u32),
    /// Heap region `[heap.0, heap.1)` bitmap faults target (the revocation
    /// bitmap only covers the heap).
    pub heap: (u32, u32),
    /// Code region `[code.0, code.1)` code-flip faults target
    /// (word-aligned internally).
    pub code: (u32, u32),
}

/// A deterministic, seed-reproducible schedule of faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// Entries sorted by cycle (stable).
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// Generates the plan for `seed` under `cfg`. Pure: no machine state is
    /// consulted, so equal `(seed, cfg)` always yield equal plans.
    pub fn generate(seed: u64, cfg: &PlanConfig) -> FaultPlan {
        let mut rng = XorShift64::new(seed);
        let mut entries = Vec::with_capacity(cfg.count as usize);
        if cfg.classes.is_empty() {
            return FaultPlan { seed, entries };
        }
        for _ in 0..cfg.count {
            let cycle = rng.gen_range(cfg.window.0, cfg.window.1.max(cfg.window.0 + 1));
            let class = *rng.pick(&cfg.classes);
            let addr_in = |rng: &mut XorShift64, (lo, hi): (u32, u32)| -> u32 {
                let lo = lo & !(GRANULE - 1);
                let granules = (hi.saturating_sub(lo) / GRANULE).max(1);
                lo + (rng.gen_range(0, u64::from(granules)) as u32) * GRANULE
            };
            let kind = match class {
                FaultClass::Tag => FaultKind::TagFlip {
                    addr: addr_in(&mut rng, cfg.region),
                },
                FaultClass::Bounds
                | FaultClass::Otype
                | FaultClass::Perms
                | FaultClass::Address => {
                    let field = match class {
                        FaultClass::Bounds => CapField::Bounds,
                        FaultClass::Otype => CapField::Otype,
                        FaultClass::Perms => CapField::Perms,
                        _ => CapField::Address,
                    };
                    let (lo, width) = field.bit_range();
                    FaultKind::CapCorrupt {
                        addr: addr_in(&mut rng, cfg.region),
                        field,
                        bit: lo + rng.gen_range(0, u64::from(width)) as u32,
                    }
                }
                FaultClass::Bitmap => FaultKind::BitmapFlip {
                    addr: addr_in(&mut rng, cfg.heap),
                },
                FaultClass::Data => FaultKind::DataFlip {
                    addr: addr_in(&mut rng, cfg.region),
                    bit: rng.gen_range(0, 64) as u32,
                },
                FaultClass::IrqStorm => FaultKind::IrqStorm {
                    cycles: rng.gen_range(1_000, 20_000),
                },
                FaultClass::IrqDrop => FaultKind::IrqDrop,
                FaultClass::Code => {
                    let lo = cfg.code.0 & !3;
                    let words = (cfg.code.1.saturating_sub(lo) / 4).max(1);
                    FaultKind::CodeFlip {
                        addr: lo + (rng.gen_range(0, u64::from(words)) as u32) * 4,
                        bit: rng.gen_range(0, 32) as u32,
                    }
                }
                FaultClass::DmaDesc => FaultKind::DmaDescFlip {
                    bit: rng.gen_range(0, 128) as u32,
                },
                FaultClass::DevIrqSpurious => FaultKind::DevIrqSpurious {
                    line: rng.gen_range(0, 32) as u32,
                },
                FaultClass::DevIrqDrop => FaultKind::DevIrqDrop,
                FaultClass::UartData => FaultKind::UartDataFlip {
                    bit: rng.gen_range(0, 8) as u32,
                },
            };
            entries.push(FaultEntry { cycle, kind });
        }
        entries.sort_by_key(|e| e.cycle);
        FaultPlan { seed, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PlanConfig {
        PlanConfig {
            classes: FaultClass::ALL.to_vec(),
            count: 32,
            window: (1_000, 100_000),
            region: (0x2000_0000, 0x2008_0000),
            heap: (0x2004_0000, 0x2008_0000),
            code: (0x1000_0000, 0x1000_1000),
        }
    }

    #[test]
    fn plans_are_reproducible() {
        let a = FaultPlan::generate(123, &cfg());
        let b = FaultPlan::generate(123, &cfg());
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.entries.len(), 32);
    }

    #[test]
    fn plans_differ_across_seeds() {
        let a = FaultPlan::generate(1, &cfg());
        let b = FaultPlan::generate(2, &cfg());
        assert_ne!(a.entries, b.entries);
    }

    #[test]
    fn entries_sorted_and_in_window() {
        let p = FaultPlan::generate(77, &cfg());
        let mut last = 0;
        for e in &p.entries {
            assert!(e.cycle >= last, "entries must be cycle-sorted");
            assert!((1_000..100_000).contains(&e.cycle));
            last = e.cycle;
        }
    }

    #[test]
    fn cap_corrupt_bits_stay_in_field() {
        let mut c = cfg();
        c.classes = vec![
            FaultClass::Bounds,
            FaultClass::Otype,
            FaultClass::Perms,
            FaultClass::Address,
        ];
        c.count = 200;
        let p = FaultPlan::generate(5, &c);
        for e in &p.entries {
            if let FaultKind::CapCorrupt { field, bit, .. } = e.kind {
                let (lo, width) = field.bit_range();
                assert!(
                    (lo..lo + width).contains(&bit),
                    "{field:?} bit {bit} outside [{lo},{})",
                    lo + width
                );
            }
        }
    }

    #[test]
    fn class_names_round_trip() {
        for c in FaultClass::ALL {
            assert_eq!(c.name().parse::<FaultClass>().unwrap(), *c);
        }
        assert!("bogus".parse::<FaultClass>().is_err());
    }
}
