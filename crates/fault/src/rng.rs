//! Deterministic pseudo-random number generation for fault planning.
//!
//! Campaigns must be exactly reproducible from a seed alone — no wall
//! clock, no OS entropy, no global state. A 64-bit xorshift generator is
//! more than enough statistical quality for choosing fault sites and is
//! trivially portable; the seed is avalanche-mixed first so that the
//! consecutive seeds a campaign runner hands out (`seed_base + i`)
//! produce unrelated streams.

/// Xorshift64 PRNG seeded through a splitmix-style finalizer.
///
/// ```
/// use cheriot_fault::XorShift64;
/// let mut a = XorShift64::new(7);
/// let mut b = XorShift64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed`. Any seed is valid, including 0.
    pub fn new(seed: u64) -> XorShift64 {
        // splitmix64 finalizer: consecutive seeds diverge immediately, and
        // the output is never the xorshift absorbing state (zero).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Next 32 pseudo-random bits (upper half of the 64-bit output, which
    /// has better mixing than the low bits for xorshift).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_range(0, xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn adjacent_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = XorShift64::new(9);
        for _ in 0..1000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.gen_range(5, 5), 5);
    }
}
