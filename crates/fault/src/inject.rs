//! Applies a [`FaultPlan`] to a live machine.
//!
//! The injector is polled from the campaign's run loop between execution
//! chunks: every entry whose cycle has been reached is applied directly to
//! the machine's SRAM / revocation bitmap / timer, mimicking a physical
//! upset that the modelled hardware cannot see coming. Application is
//! panic-free: a fault that lands on an address with no suitable target
//! (for example a tag flip over a region holding no capabilities) is
//! recorded as skipped rather than forced.

use crate::plan::{FaultKind, FaultPlan};
use cheriot_core::Machine;

/// Granule size of tagged memory in bytes.
const GRANULE: u32 = 8;

/// How far (in granules, each direction) a [`FaultKind::TagFlip`] searches
/// for a set tag around its target address. Covers a full 512 KiB SRAM
/// bank so a planned tag fault lands on the *nearest* live capability
/// rather than being skipped when the random target falls in empty memory.
const TAG_SEARCH_GRANULES: u32 = 65_536;

/// How far forward (in granules) a [`FaultKind::CapCorrupt`] scans for a
/// tagged granule (same full-bank rationale as [`TAG_SEARCH_GRANULES`]).
const CAP_SCAN_GRANULES: u32 = 65_536;

/// What actually happened when a fault was applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectEffect {
    /// A set tag bit was cleared at the address.
    TagCleared(u32),
    /// A capability word bit was XORed at the address.
    CapBitFlipped {
        /// Granule holding the corrupted capability.
        addr: u32,
        /// Bit position flipped.
        bit: u32,
    },
    /// A revocation-bitmap granule bit was flipped (true = now set).
    BitmapFlipped {
        /// Heap address whose granule bit changed.
        addr: u32,
        /// New value of the bit.
        now_set: bool,
    },
    /// A data-granule bit was XORed.
    DataBitFlipped {
        /// Granule address.
        addr: u32,
        /// Bit position flipped.
        bit: u32,
    },
    /// An interrupt storm began (`mtimecmp` saved and forced to 0).
    StormStarted,
    /// A previously started storm ended (`mtimecmp` restored).
    StormEnded,
    /// `mtimecmp` was pushed to `u64::MAX`.
    IrqDropped,
    /// An instruction word bit was XORed in the code region (and the block
    /// cache's covering blocks invalidated).
    CodeBitFlipped {
        /// Code address of the rewritten instruction.
        addr: u32,
        /// Bit position flipped in the 32-bit encoding.
        bit: u32,
    },
    /// A bit of a live DMA/network descriptor was XORed in SRAM.
    DmaDescFlipped {
        /// Word address within the descriptor that was corrupted.
        addr: u32,
        /// Bit position flipped within that 32-bit word.
        bit: u32,
    },
    /// A spurious device interrupt line was latched.
    SpuriousIrqRaised {
        /// The line that was asserted.
        line: u32,
    },
    /// Latched device interrupt lines were dropped.
    DevIrqsDropped {
        /// The lines that were cleared.
        lines: u32,
    },
    /// A bit of the byte at the head of the UART RX FIFO was XORed.
    UartByteFlipped {
        /// Bit position flipped within the byte.
        bit: u32,
    },
    /// No viable target was found; the fault was a no-op.
    Skipped,
}

/// A log record of one applied (or skipped) fault.
#[derive(Debug, Clone)]
pub struct Applied {
    /// Cycle the injector applied the entry (>= its scheduled cycle).
    pub cycle: u64,
    /// The scheduled fault.
    pub kind: FaultKind,
    /// What happened.
    pub effect: InjectEffect,
}

/// Applies the entries of a [`FaultPlan`] as the machine's cycle counter
/// passes each entry's scheduled cycle.
#[derive(Debug)]
pub struct Injector {
    plan: FaultPlan,
    next: usize,
    /// Active interrupt storm: `(end_cycle, saved_mtimecmp)`.
    storm: Option<(u64, u64)>,
    /// Log of everything applied so far.
    pub log: Vec<Applied>,
}

impl Injector {
    /// Wraps a plan for execution.
    pub fn new(plan: FaultPlan) -> Injector {
        Injector {
            plan,
            next: 0,
            storm: None,
            log: Vec::new(),
        }
    }

    /// The next cycle at which [`Injector::poll`] has work to do, if any:
    /// the next scheduled entry or the end of an active storm.
    pub fn next_cycle(&self) -> Option<u64> {
        let entry = self.plan.entries.get(self.next).map(|e| e.cycle);
        let storm = self.storm.map(|(end, _)| end);
        match (entry, storm) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True once every entry has been applied and no storm is active.
    pub fn done(&self) -> bool {
        self.next >= self.plan.entries.len() && self.storm.is_none()
    }

    /// Number of faults that actually mutated machine state (skips
    /// excluded).
    pub fn applied(&self) -> u32 {
        self.log
            .iter()
            .filter(|a| a.effect != InjectEffect::Skipped && a.effect != InjectEffect::StormEnded)
            .count() as u32
    }

    /// Applies every entry whose cycle has been reached, and ends any
    /// expired interrupt storm.
    pub fn poll(&mut self, m: &mut Machine) {
        if let Some((end, saved)) = self.storm {
            if m.cycles >= end {
                m.mtimecmp = saved;
                self.storm = None;
                self.log.push(Applied {
                    cycle: m.cycles,
                    kind: FaultKind::IrqStorm { cycles: 0 },
                    effect: InjectEffect::StormEnded,
                });
            }
        }
        while let Some(entry) = self.plan.entries.get(self.next) {
            if entry.cycle > m.cycles {
                break;
            }
            let entry = *entry;
            self.next += 1;
            let effect = self.apply(m, entry.kind);
            self.log.push(Applied {
                cycle: m.cycles,
                kind: entry.kind,
                effect,
            });
        }
    }

    fn apply(&mut self, m: &mut Machine, kind: FaultKind) -> InjectEffect {
        match kind {
            FaultKind::TagFlip { addr } => Self::clear_nearest_tag(m, addr),
            FaultKind::CapCorrupt { addr, bit, .. } => Self::flip_cap_bit(m, addr, bit),
            FaultKind::BitmapFlip { addr } => {
                if !m.bitmap.covers(addr) {
                    return InjectEffect::Skipped;
                }
                let now_set = !m.bitmap.is_revoked(addr);
                if now_set {
                    m.bitmap.set_range(addr, 1);
                } else {
                    m.bitmap.clear_range(addr, 1);
                }
                InjectEffect::BitmapFlipped { addr, now_set }
            }
            FaultKind::DataFlip { addr, bit } => {
                let addr = addr & !(GRANULE - 1);
                if !m.sram.contains(addr, GRANULE) {
                    return InjectEffect::Skipped;
                }
                match m.sram.read_cap_word(addr) {
                    Ok((word, tag)) => {
                        if m.sram.write_cap_word(addr, word ^ (1 << bit), tag).is_err() {
                            return InjectEffect::Skipped;
                        }
                        InjectEffect::DataBitFlipped { addr, bit }
                    }
                    Err(_) => InjectEffect::Skipped,
                }
            }
            FaultKind::IrqStorm { cycles } => {
                // A storm while another storm is active just extends it;
                // the original mtimecmp stays saved.
                let saved = match self.storm {
                    Some((_, s)) => s,
                    None => m.mtimecmp,
                };
                self.storm = Some((m.cycles.saturating_add(cycles), saved));
                m.mtimecmp = 0;
                InjectEffect::StormStarted
            }
            FaultKind::IrqDrop => {
                m.mtimecmp = u64::MAX;
                InjectEffect::IrqDropped
            }
            FaultKind::CodeFlip { addr, bit } => Self::flip_code_bit(m, addr, bit),
            FaultKind::DmaDescFlip { bit } => Self::flip_desc_bit(m, bit),
            FaultKind::DevIrqSpurious { line } => {
                let line = line & 31;
                m.raise_device_irq(1 << line);
                InjectEffect::SpuriousIrqRaised { line }
            }
            FaultKind::DevIrqDrop => {
                let lines = m.bus.intc.pending;
                if lines == 0 {
                    return InjectEffect::Skipped;
                }
                m.drop_device_irq(lines);
                InjectEffect::DevIrqsDropped { lines }
            }
            FaultKind::UartDataFlip { bit } => {
                let bit = bit & 7;
                let Some(uart) = m.bus.device_mut::<cheriot_core::Uart>() else {
                    return InjectEffect::Skipped;
                };
                let Some(head) = uart.rx_fifo_mut().front_mut() else {
                    return InjectEffect::Skipped;
                };
                *head ^= 1 << bit;
                InjectEffect::UartByteFlipped { bit }
            }
        }
    }

    /// XORs one bit of the active DMA/network descriptor ring (resolved
    /// from the device bus at apply time), modelling an SRAM upset on
    /// in-flight device metadata. Skipped when no ring is programmed.
    fn flip_desc_bit(m: &mut Machine, bit: u32) -> InjectEffect {
        let Some(base) = m.dma_desc_addr() else {
            return InjectEffect::Skipped;
        };
        let bit = bit & 127;
        let addr = base.wrapping_add((bit / 32) * 4);
        let bit = bit & 31;
        match m.sram.read_scalar(addr, 4) {
            Ok(word) => {
                if m.sram.write_scalar(addr, 4, word ^ (1 << bit)).is_err() {
                    return InjectEffect::Skipped;
                }
                InjectEffect::DmaDescFlipped { addr, bit }
            }
            Err(_) => InjectEffect::Skipped,
        }
    }

    /// Re-encodes the instruction at `addr`, XORs `bit`, and patches the
    /// decoded result back through [`Machine::patch_code`] — which
    /// invalidates every cached predecoded block covering the address, so
    /// the next execution sees the corrupted instruction. Skipped when the
    /// address holds no instruction or the flipped word no longer decodes.
    /// Debug-asserts that the patch bumped the machine's block-cache
    /// coherence generation.
    fn flip_code_bit(m: &mut Machine, addr: u32, bit: u32) -> InjectEffect {
        let Some(old) = m.code_at(addr) else {
            return InjectEffect::Skipped;
        };
        let Ok(word) = cheriot_core::encode(&old) else {
            return InjectEffect::Skipped;
        };
        let Ok(new) = cheriot_core::decode(word ^ (1 << (bit & 31))) else {
            return InjectEffect::Skipped;
        };
        let generation = m.code_generation();
        if m.patch_code(addr, new).is_err() {
            return InjectEffect::Skipped;
        }
        debug_assert!(
            m.code_generation() > generation,
            "patch_code must bump the block-cache generation"
        );
        InjectEffect::CodeBitFlipped { addr, bit }
    }

    /// Clears the tag of the tagged granule nearest `addr` (within the
    /// search window). Clearing — never forging — keeps the fault inside
    /// what tag-SRAM upsets do to real parts: a flipped set bit. If no
    /// granule in the window holds a capability the fault dissipates.
    fn clear_nearest_tag(m: &mut Machine, addr: u32) -> InjectEffect {
        let addr = addr & !(GRANULE - 1);
        for step in 0..=TAG_SEARCH_GRANULES {
            let offsets: [Option<u32>; 2] = [
                addr.checked_add(step * GRANULE),
                addr.checked_sub(step * GRANULE),
            ];
            for candidate in offsets.into_iter().flatten() {
                if m.sram.contains(candidate, GRANULE) && m.sram.tag_at(candidate) {
                    if let Ok((word, _)) = m.sram.read_cap_word(candidate) {
                        if m.sram.write_cap_word(candidate, word, false).is_ok() {
                            return InjectEffect::TagCleared(candidate);
                        }
                    }
                    return InjectEffect::Skipped;
                }
            }
        }
        InjectEffect::Skipped
    }

    /// XORs `bit` of the capability word held by the first tagged granule
    /// at or after `addr` (tag preserved), so the corruption targets a
    /// live capability rather than inert data.
    fn flip_cap_bit(m: &mut Machine, addr: u32, bit: u32) -> InjectEffect {
        let addr = addr & !(GRANULE - 1);
        let mut a = addr;
        for _ in 0..CAP_SCAN_GRANULES {
            if !m.sram.contains(a, GRANULE) {
                break;
            }
            if m.sram.tag_at(a) {
                return match m.sram.read_cap_word(a) {
                    Ok((word, _)) => {
                        if m.sram.write_cap_word(a, word ^ (1 << bit), true).is_err() {
                            return InjectEffect::Skipped;
                        }
                        InjectEffect::CapBitFlipped { addr: a, bit }
                    }
                    Err(_) => InjectEffect::Skipped,
                };
            }
            match a.checked_add(GRANULE) {
                Some(n) => a = n,
                None => break,
            }
        }
        InjectEffect::Skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CapField, FaultEntry};
    use cheriot_cap::Capability;
    use cheriot_core::layout::SRAM_BASE;
    use cheriot_core::{CoreModel, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig::new(CoreModel::ibex()))
    }

    fn plan_of(entries: Vec<FaultEntry>) -> FaultPlan {
        FaultPlan { seed: 0, entries }
    }

    fn store_cap(m: &mut Machine, addr: u32) -> Capability {
        let cap = Capability::root_mem_rw()
            .with_address(addr + 64)
            .set_bounds(32)
            .unwrap();
        m.sram.write_cap(addr, cap).unwrap();
        cap
    }

    #[test]
    fn tag_flip_clears_nearest_tag() {
        let mut m = machine();
        let site = SRAM_BASE + 0x200;
        store_cap(&mut m, site);
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::TagFlip { addr: site + 0x40 },
        }]));
        inj.poll(&mut m);
        assert_eq!(inj.log[0].effect, InjectEffect::TagCleared(site));
        assert!(!m.sram.tag_at(site));
        assert_eq!(inj.applied(), 1);
    }

    #[test]
    fn tag_flip_with_no_target_skips() {
        let mut m = machine();
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::TagFlip { addr: SRAM_BASE },
        }]));
        inj.poll(&mut m);
        assert_eq!(inj.log[0].effect, InjectEffect::Skipped);
        assert_eq!(inj.applied(), 0);
    }

    #[test]
    fn cap_corrupt_flips_exactly_one_bit_and_keeps_tag() {
        let mut m = machine();
        let site = SRAM_BASE + 0x300;
        store_cap(&mut m, site);
        let (before, _) = m.sram.read_cap_word(site).unwrap();
        let bit = CapField::Bounds.bit_range().0; // bit 32
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::CapCorrupt {
                addr: SRAM_BASE,
                field: CapField::Bounds,
                bit,
            },
        }]));
        inj.poll(&mut m);
        let (after, tag) = m.sram.read_cap_word(site).unwrap();
        assert!(tag, "corruption must preserve the tag");
        assert_eq!(before ^ after, 1 << bit);
    }

    #[test]
    fn bitmap_flip_toggles_bit_both_ways() {
        let mut m = machine();
        let heap = MachineConfig::new(CoreModel::ibex());
        let addr = SRAM_BASE + heap.heap_offset;
        assert!(m.bitmap.covers(addr));
        let mut inj = Injector::new(plan_of(vec![
            FaultEntry {
                cycle: 0,
                kind: FaultKind::BitmapFlip { addr },
            },
            FaultEntry {
                cycle: 10,
                kind: FaultKind::BitmapFlip { addr },
            },
        ]));
        inj.poll(&mut m);
        assert!(m.bitmap.is_revoked(addr));
        m.cycles = 10;
        inj.poll(&mut m);
        assert!(!m.bitmap.is_revoked(addr));
        assert_eq!(inj.applied(), 2);
    }

    #[test]
    fn data_flip_preserves_tag_state() {
        let mut m = machine();
        let site = SRAM_BASE + 0x400;
        m.sram.write_scalar(site, 4, 0xdead_beef).unwrap();
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::DataFlip { addr: site, bit: 3 },
        }]));
        inj.poll(&mut m);
        assert!(!m.sram.tag_at(site));
        assert_eq!(m.sram.read_scalar(site, 4).unwrap(), 0xdead_beef ^ (1 << 3));
    }

    #[test]
    fn irq_storm_saves_and_restores_mtimecmp() {
        let mut m = machine();
        m.mtimecmp = 0x1234;
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::IrqStorm { cycles: 100 },
        }]));
        inj.poll(&mut m);
        assert_eq!(m.mtimecmp, 0);
        assert_eq!(inj.next_cycle(), Some(100));
        m.cycles = 100;
        inj.poll(&mut m);
        assert_eq!(m.mtimecmp, 0x1234);
        assert!(inj.done());
    }

    #[test]
    fn irq_drop_pushes_mtimecmp_out() {
        let mut m = machine();
        m.mtimecmp = 500;
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::IrqDrop,
        }]));
        inj.poll(&mut m);
        assert_eq!(m.mtimecmp, u64::MAX);
    }

    #[test]
    fn code_flip_rewrites_instruction_and_bumps_generation() {
        use cheriot_core::insn::Instr;
        let mut m = machine();
        let entry = m.load_program(&[Instr::NOP, Instr::Halt]);
        let word = cheriot_core::encode(&Instr::NOP).unwrap();
        // Pick a bit host-side whose flip still decodes, so the injection
        // is guaranteed to apply rather than skip.
        let bit = (0..32u32)
            .find(|b| {
                cheriot_core::decode(word ^ (1 << b))
                    .map(|i| i != Instr::NOP)
                    .unwrap_or(false)
            })
            .expect("some single-bit flip of nop must decode");
        let expect = cheriot_core::decode(word ^ (1 << bit)).unwrap();
        let gen0 = m.code_generation();
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::CodeFlip { addr: entry, bit },
        }]));
        inj.poll(&mut m);
        assert_eq!(
            inj.log[0].effect,
            InjectEffect::CodeBitFlipped { addr: entry, bit }
        );
        assert_eq!(m.code_at(entry), Some(expect));
        assert!(
            m.code_generation() > gen0,
            "code patch must advance the block-cache generation"
        );
        assert_eq!(inj.applied(), 1);
    }

    #[test]
    fn code_flip_outside_loaded_code_skips() {
        let mut m = machine();
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::CodeFlip {
                addr: SRAM_BASE,
                bit: 0,
            },
        }]));
        inj.poll(&mut m);
        assert_eq!(inj.log[0].effect, InjectEffect::Skipped);
        assert_eq!(inj.applied(), 0);
    }

    #[test]
    fn dma_desc_flip_corrupts_live_ring_and_skips_without_one() {
        let mut m = machine();
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::DmaDescFlip { bit: 34 },
        }]));
        inj.poll(&mut m);
        assert_eq!(
            inj.log[0].effect,
            InjectEffect::Skipped,
            "no descriptor ring programmed: must skip"
        );

        // Attach a net device and program a TX ring so the bus reports a
        // live descriptor address, then re-run the same fault.
        let net_base = 0x8800_0000;
        m.bus
            .attach(
                net_base,
                Some(3),
                Box::new(cheriot_soc::NetLoopback::default()),
            )
            .unwrap();
        let ring = SRAM_BASE + 0x6000;
        m.sram.write_scalar(ring, 4, 1).unwrap(); // OWN
        m.sram
            .write_scalar(ring + 4, 4, SRAM_BASE + 0x7000)
            .unwrap();
        m.bus_write(net_base, 4, ring).unwrap(); // TX_BASE
        m.bus_write(net_base + 4, 4, 1).unwrap(); // TX_COUNT
        assert_eq!(m.dma_desc_addr(), Some(ring));
        let before = m.sram.read_scalar(ring + 4, 4).unwrap();
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::DmaDescFlip { bit: 34 },
        }]));
        inj.poll(&mut m);
        assert_eq!(
            inj.log[0].effect,
            InjectEffect::DmaDescFlipped {
                addr: ring + 4,
                bit: 2
            }
        );
        assert_eq!(m.sram.read_scalar(ring + 4, 4).unwrap(), before ^ 4);
    }

    #[test]
    fn spurious_irq_latches_into_intc() {
        let mut m = machine();
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::DevIrqSpurious { line: 5 },
        }]));
        inj.poll(&mut m);
        assert_eq!(
            inj.log[0].effect,
            InjectEffect::SpuriousIrqRaised { line: 5 }
        );
        assert_eq!(m.bus.intc.pending, 1 << 5);
        // Reset mask is 0, so the glitch is invisible to the core.
        assert!(!m.bus.irq_asserted());
    }

    #[test]
    fn dev_irq_drop_clears_pending_and_skips_when_idle() {
        let mut m = machine();
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::DevIrqDrop,
        }]));
        inj.poll(&mut m);
        assert_eq!(inj.log[0].effect, InjectEffect::Skipped);

        m.raise_device_irq(0b101);
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::DevIrqDrop,
        }]));
        inj.poll(&mut m);
        assert_eq!(
            inj.log[0].effect,
            InjectEffect::DevIrqsDropped { lines: 0b101 }
        );
        assert_eq!(m.bus.intc.pending, 0);
    }

    #[test]
    fn uart_data_flip_targets_rx_head_and_skips_when_empty() {
        let mut m = machine();
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::UartDataFlip { bit: 6 },
        }]));
        inj.poll(&mut m);
        assert_eq!(inj.log[0].effect, InjectEffect::Skipped);

        assert!(m.uart_inject_rx(b"ab"));
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 0,
            kind: FaultKind::UartDataFlip { bit: 6 },
        }]));
        inj.poll(&mut m);
        assert_eq!(inj.log[0].effect, InjectEffect::UartByteFlipped { bit: 6 });
        let uart = m.bus.device_mut::<cheriot_core::Uart>().unwrap();
        assert_eq!(
            uart.rx_fifo_mut().iter().copied().collect::<Vec<_>>(),
            vec![b'a' ^ 0x40, b'b'],
            "only the FIFO head byte is corrupted"
        );
    }

    #[test]
    fn entries_wait_for_their_cycle() {
        let mut m = machine();
        let site = SRAM_BASE + 0x500;
        store_cap(&mut m, site);
        let mut inj = Injector::new(plan_of(vec![FaultEntry {
            cycle: 1_000,
            kind: FaultKind::TagFlip { addr: site },
        }]));
        inj.poll(&mut m);
        assert!(inj.log.is_empty());
        assert_eq!(inj.next_cycle(), Some(1_000));
        m.cycles = 1_000;
        inj.poll(&mut m);
        assert_eq!(inj.applied(), 1);
        assert!(inj.done());
    }
}
