//! Runtime safety-invariant checking over machine + allocator state.
//!
//! The CHERIoT encoding and the allocator's quarantine protocol together
//! promise a small set of invariants that must hold at every quiescent
//! point, no matter what the guest does. The checker re-derives them from
//! ground truth the fault injector cannot forge: the allocator's own
//! live/quarantined span lists and the architectural tag bits.
//!
//! - **Tag provenance** — a set tag inside the heap must sit inside a live
//!   allocation. Tags never legitimately appear in free or quarantined
//!   memory (free zeroes, and the load filter strips stale caps).
//! - **Bounds monotonicity** — a capability at rest whose base points into
//!   the heap must be wholly contained by the live or quarantined span it
//!   points into; derivation can only shrink authority (paper §3.2).
//! - **Permission monotonicity** — heap data capabilities never carry
//!   execute/system/sealing authority, and are never sealed.
//! - **Quarantine no-reuse** — no live allocation overlaps a quarantined
//!   span before its revocation epoch completes (paper §3.5).
//! - **Quarantine paint** — every quarantined granule has its revocation
//!   bit set (otherwise the sweep cannot strip stale caps to it).
//! - **Stack zeroing** — a helper for switcher tests: a stack range handed
//!   back on compartment return holds no residual data or tags.
//! - **Trace integrity** — the PR-2 trace stream is causally plausible:
//!   cycle stamps are monotone and no interrupt is delivered while the
//!   recorded posture says interrupts are off.
//!
//! Violations come back as structured [`InvariantViolation`] values — the
//! checker never panics, because its whole purpose is to outlive the
//! corruption it is reporting.

use cheriot_alloc::HeapAllocator;
use cheriot_cap::{Capability, Permissions};
use cheriot_core::Machine;
use cheriot_trace::{EventKind, TraceEvent};
use std::fmt;

/// Granule size of tagged memory in bytes.
const GRANULE: u32 = 8;

/// Which invariant was broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A set tag outside any live allocation.
    TagProvenance,
    /// A capability's bounds escape the span that granted them.
    BoundsMonotonicity,
    /// A heap data capability carries authority malloc never grants.
    PermEscalation,
    /// A live allocation overlaps quarantined memory.
    QuarantineNoReuse,
    /// A quarantined granule is missing its revocation-bitmap paint.
    QuarantinePaint,
    /// A released stack range holds residual data or tags.
    StackZeroing,
    /// The trace stream is causally inconsistent.
    TraceIntegrity,
}

impl InvariantKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::TagProvenance => "tag-provenance",
            InvariantKind::BoundsMonotonicity => "bounds-monotonicity",
            InvariantKind::PermEscalation => "perm-escalation",
            InvariantKind::QuarantineNoReuse => "quarantine-no-reuse",
            InvariantKind::QuarantinePaint => "quarantine-paint",
            InvariantKind::StackZeroing => "stack-zeroing",
            InvariantKind::TraceIntegrity => "trace-integrity",
        }
    }
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One detected violation: structured, never a panic.
#[derive(Debug, Clone)]
pub struct InvariantViolation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Machine cycle at detection time.
    pub cycle: u64,
    /// Offending address, when the violation has one.
    pub addr: Option<u32>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[cycle {}] {}", self.cycle, self.kind)?;
        if let Some(a) = self.addr {
            write!(f, " @ {a:#010x}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Cadence-driven checker over machine + allocator state.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    cadence: u64,
    next_due: u64,
    /// Extra regions (outside the heap) whose resident capabilities are
    /// held to the strict heap-containment rule — e.g. a campaign's
    /// capability directory, which only ever holds heap pointers.
    watched: Vec<(u32, u32)>,
}

impl InvariantChecker {
    /// A checker that is due every `cadence` cycles (first due at cycle
    /// `cadence`). A cadence of 0 means "due whenever asked".
    pub fn new(cadence: u64) -> InvariantChecker {
        InvariantChecker {
            cadence,
            next_due: cadence,
            watched: Vec::new(),
        }
    }

    /// Registers `[lo, hi)` as a strict capability region: every tagged
    /// granule there must hold a well-formed heap capability.
    pub fn watch_region(&mut self, lo: u32, hi: u32) {
        self.watched.push((lo, hi));
    }

    /// The next cycle at which the checker wants to run.
    pub fn next_due(&self) -> u64 {
        self.next_due
    }

    /// Runs every state invariant and reschedules the next check. Read-only
    /// with respect to the machine; returns all violations found.
    pub fn check(&mut self, m: &Machine, heap: &HeapAllocator) -> Vec<InvariantViolation> {
        self.next_due = m.cycles.saturating_add(self.cadence.max(1));
        let mut out = Vec::new();
        let live = heap.live_spans();
        let quar = heap.quarantined_spans();
        let (hb, he) = heap.heap_range();

        // Quarantine no-reuse: live and quarantined spans are disjoint.
        for &(la, ll) in &live {
            for &(qa, ql) in &quar {
                if la < qa.saturating_add(ql) && qa < la.saturating_add(ll) {
                    out.push(InvariantViolation {
                        kind: InvariantKind::QuarantineNoReuse,
                        cycle: m.cycles,
                        addr: Some(la.max(qa)),
                        detail: format!(
                            "live allocation {la:#010x}+{ll} overlaps quarantined span {qa:#010x}+{ql}"
                        ),
                    });
                }
            }
        }

        // Quarantine paint: every quarantined granule carries its
        // revocation bit, or the sweep cannot strip stale pointers to it.
        for &(qa, ql) in &quar {
            let mut a = qa & !(GRANULE - 1);
            while a < qa.saturating_add(ql) {
                if !m.bitmap.is_revoked(a) {
                    out.push(InvariantViolation {
                        kind: InvariantKind::QuarantinePaint,
                        cycle: m.cycles,
                        addr: Some(a),
                        detail: format!("quarantined granule unpainted (span {qa:#010x}+{ql})"),
                    });
                    break; // one report per span is enough
                }
                a += GRANULE;
            }
        }

        // Heap tag scan: provenance plus per-capability checks.
        Self::scan_region(m, hb, he, false, &live, &quar, (hb, he), &mut out);
        // Watched (strict) regions: every resident cap must be a
        // well-formed heap pointer. `scan_region` is an associated function
        // precisely so this loop can iterate `watched` by reference — this
        // runs every cadence tick and must not allocate.
        for &(lo, hi) in &self.watched {
            Self::scan_region(m, lo, hi, true, &live, &quar, (hb, he), &mut out);
        }
        out
    }

    /// True when `cycle` has reached the next scheduled check.
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_due
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_region(
        m: &Machine,
        lo: u32,
        hi: u32,
        strict: bool,
        live: &[(u32, u32)],
        quar: &[(u32, u32)],
        heap_range: (u32, u32),
        out: &mut Vec<InvariantViolation>,
    ) {
        let mut a = lo & !(GRANULE - 1);
        while a < hi {
            if !m.sram.contains(a, GRANULE) {
                break;
            }
            let left = (hi - a) / GRANULE;
            if left == 0 {
                break;
            }
            let run = m.sram.untagged_run(a, left);
            if run > 0 {
                a = a.saturating_add(run.saturating_mul(GRANULE));
                continue;
            }
            if !m.sram.tag_at(a) {
                // untagged_run returned 0 without a tag: bank edge.
                a = a.saturating_add(GRANULE);
                continue;
            }
            // `a` is a tagged granule.
            if !strict && span_containing(live, a).is_none() {
                out.push(InvariantViolation {
                    kind: InvariantKind::TagProvenance,
                    cycle: m.cycles,
                    addr: Some(a),
                    detail: "tagged granule outside any live allocation".into(),
                });
            } else {
                Self::check_cap_at(m, a, strict, live, quar, heap_range, out);
            }
            a = a.saturating_add(GRANULE);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_cap_at(
        m: &Machine,
        addr: u32,
        strict: bool,
        live: &[(u32, u32)],
        quar: &[(u32, u32)],
        (hb, he): (u32, u32),
        out: &mut Vec<InvariantViolation>,
    ) {
        let Ok((word, tag)) = m.sram.read_cap_word(addr) else {
            return;
        };
        if !tag {
            return;
        }
        let cap = Capability::from_word(word, true);
        let base = cap.base();
        let top = cap.top();
        let heap_pointer = base >= hb && base < he;
        if !strict && !heap_pointer {
            // A cap stored in the heap may legitimately point at globals or
            // code; only heap-directed caps are checked against spans.
            return;
        }
        let span = span_containing(live, base).or_else(|| span_containing(quar, base));
        match span {
            Some((sa, sl)) => {
                let span_top = u64::from(sa) + u64::from(sl);
                if top > span_top || u64::from(base) < u64::from(sa) {
                    out.push(InvariantViolation {
                        kind: InvariantKind::BoundsMonotonicity,
                        cycle: m.cycles,
                        addr: Some(addr),
                        detail: format!(
                            "capability [{base:#010x}, {top:#011x}) escapes its allocation \
                             [{sa:#010x}, {span_top:#011x})"
                        ),
                    });
                }
            }
            None => {
                out.push(InvariantViolation {
                    kind: InvariantKind::BoundsMonotonicity,
                    cycle: m.cycles,
                    addr: Some(addr),
                    detail: if heap_pointer {
                        format!("capability base {base:#010x} points into free heap memory")
                    } else {
                        format!(
                            "capability base {base:#010x} points outside the heap \
                             [{hb:#010x}, {he:#010x})"
                        )
                    },
                });
            }
        }
        if heap_pointer || strict {
            let perms = cap.perms();
            if !perms.is_subset_of(Permissions::ROOT_MEM) {
                out.push(InvariantViolation {
                    kind: InvariantKind::PermEscalation,
                    cycle: m.cycles,
                    addr: Some(addr),
                    detail: format!(
                        "heap capability carries authority beyond the RW root: {:?}",
                        perms.difference(Permissions::ROOT_MEM)
                    ),
                });
            }
            if cap.is_sealed() {
                out.push(InvariantViolation {
                    kind: InvariantKind::PermEscalation,
                    cycle: m.cycles,
                    addr: Some(addr),
                    detail: format!("heap data capability is sealed (otype {:?})", cap.otype()),
                });
            }
        }
    }

    /// Validates the PR-2 trace stream: monotone cycle stamps and no
    /// interrupt delivery while the recorded posture has interrupts off.
    pub fn check_trace(&self, events: &[TraceEvent]) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let mut last_cycle = 0u64;
        let mut posture: Option<bool> = None;
        for e in events {
            if e.cycles < last_cycle {
                out.push(InvariantViolation {
                    kind: InvariantKind::TraceIntegrity,
                    cycle: e.cycles,
                    addr: None,
                    detail: format!(
                        "trace cycle stamps regressed ({last_cycle} -> {})",
                        e.cycles
                    ),
                });
            }
            last_cycle = last_cycle.max(e.cycles);
            match e.kind {
                EventKind::InterruptPosture { enabled } => posture = Some(enabled),
                EventKind::IrqDelivered { .. } if posture == Some(false) => {
                    out.push(InvariantViolation {
                        kind: InvariantKind::TraceIntegrity,
                        cycle: e.cycles,
                        addr: None,
                        detail: "interrupt delivered while posture disabled".into(),
                    });
                }
                _ => {}
            }
        }
        out
    }

    /// Checks that the stack range `[lo, hi)` was zeroed (data and tags)
    /// on compartment return. Standalone because it is driven from the
    /// switcher model, not the cadence loop.
    pub fn check_stack_zeroed(m: &Machine, lo: u32, hi: u32) -> Option<InvariantViolation> {
        let mut a = lo & !(GRANULE - 1);
        while a < hi {
            match m.sram.read_cap_word(a) {
                Ok((word, tag)) => {
                    if tag || word != 0 {
                        return Some(InvariantViolation {
                            kind: InvariantKind::StackZeroing,
                            cycle: m.cycles,
                            addr: Some(a),
                            detail: if tag {
                                "residual capability on released stack".into()
                            } else {
                                format!("residual data {word:#018x} on released stack")
                            },
                        });
                    }
                }
                Err(_) => return None, // range left SRAM; nothing to check
            }
            a = a.saturating_add(GRANULE);
        }
        None
    }
}

fn span_containing(spans: &[(u32, u32)], addr: u32) -> Option<(u32, u32)> {
    spans
        .iter()
        .copied()
        .find(|&(sa, sl)| addr >= sa && u64::from(addr) < u64::from(sa) + u64::from(sl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheriot_alloc::{RevokerKind, TemporalPolicy};
    use cheriot_core::{CoreModel, MachineConfig};

    fn setup() -> (Machine, HeapAllocator) {
        let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
        let heap = HeapAllocator::new(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
        (m, heap)
    }

    #[test]
    fn clean_machine_has_no_violations() {
        let (mut m, mut heap) = setup();
        let a = heap.malloc(&mut m, 64).unwrap();
        let b = heap.malloc(&mut m, 32).unwrap();
        // Store a cap into the first allocation and another into the heap.
        m.sram.write_cap(a.base(), b).unwrap();
        let mut chk = InvariantChecker::new(1_000);
        assert!(chk.check(&m, &heap).is_empty());
        heap.free(&mut m, a).unwrap();
        assert!(chk.check(&m, &heap).is_empty(), "quarantine must be clean");
    }

    #[test]
    fn widened_cap_in_heap_is_flagged() {
        let (mut m, mut heap) = setup();
        let a = heap.malloc(&mut m, 64).unwrap();
        let b = heap.malloc(&mut m, 32).unwrap();
        m.sram.write_cap(a.base(), b).unwrap();
        // Find a bounds-field bit whose flip demonstrably breaks span
        // containment while the decoded base stays heap-directed (the
        // checker deliberately ignores heap-stored caps that point at
        // globals or code).
        let (hb, he) = heap.heap_range();
        let (word, _) = m.sram.read_cap_word(a.base()).unwrap();
        let (sa, sl) = heap
            .live_spans()
            .into_iter()
            .find(|&(sa, sl)| b.base() >= sa && b.base() < sa + sl)
            .unwrap();
        let span_top = u64::from(sa) + u64::from(sl);
        let bit = (32..54)
            .find(|&bit| {
                let c = Capability::from_word(word ^ (1 << bit), true);
                c.base() >= hb && c.base() < he && (c.top() > span_top || c.base() < sa)
            })
            .expect("some bounds bit flip must escape the allocation");
        m.sram
            .write_cap_word(a.base(), word ^ (1 << bit), true)
            .unwrap();
        let mut chk = InvariantChecker::new(1_000);
        let v = chk.check(&m, &heap);
        assert!(
            v.iter().any(|x| matches!(
                x.kind,
                InvariantKind::BoundsMonotonicity | InvariantKind::PermEscalation
            )),
            "bounds corruption must be detected: {v:?}"
        );
    }

    #[test]
    fn tag_in_free_memory_is_provenance_violation() {
        let (mut m, heap) = setup();
        let (hb, _) = heap.heap_range();
        // Forge a tag in free heap space behind the allocator's back.
        let junk = Capability::root_mem_rw()
            .with_address(hb + 0x800)
            .set_bounds(16)
            .unwrap();
        m.sram.write_cap(hb + 0x1000, junk).unwrap();
        let mut chk = InvariantChecker::new(1_000);
        let v = chk.check(&m, &heap);
        assert!(
            v.iter().any(|x| x.kind == InvariantKind::TagProvenance),
            "forged tag must be flagged: {v:?}"
        );
    }

    #[test]
    fn unpainted_quarantine_is_flagged() {
        let (mut m, mut heap) = setup();
        let a = heap.malloc(&mut m, 64).unwrap();
        let user = a.base();
        heap.free(&mut m, a).unwrap();
        assert!(m.bitmap.is_revoked(user));
        m.bitmap.clear_range(user, 8); // injected bitmap clear-flip
        let mut chk = InvariantChecker::new(1_000);
        let v = chk.check(&m, &heap);
        assert!(
            v.iter().any(|x| x.kind == InvariantKind::QuarantinePaint),
            "missing paint must be flagged: {v:?}"
        );
    }

    #[test]
    fn watched_region_is_strict() {
        let (mut m, heap) = setup();
        let dir = cheriot_core::layout::SRAM_BASE + 0x100;
        // A cap pointing outside the heap is fine in general memory but a
        // violation inside a watched (heap-pointers-only) region.
        let stray = Capability::root_mem_rw()
            .with_address(cheriot_core::layout::SRAM_BASE + 0x40)
            .set_bounds(16)
            .unwrap();
        m.sram.write_cap(dir, stray).unwrap();
        let mut lax = InvariantChecker::new(1_000);
        assert!(lax.check(&m, &heap).is_empty());
        let mut strict = InvariantChecker::new(1_000);
        strict.watch_region(dir, dir + 64);
        let v = strict.check(&m, &heap);
        assert!(
            v.iter()
                .any(|x| x.kind == InvariantKind::BoundsMonotonicity),
            "non-heap cap in watched region must be flagged: {v:?}"
        );
    }

    #[test]
    fn stack_zeroing_helper_detects_residue() {
        let (mut m, _) = setup();
        let lo = cheriot_core::layout::SRAM_BASE + 0x2000;
        m.sram.zero_range(lo, 64).unwrap();
        assert!(InvariantChecker::check_stack_zeroed(&m, lo, lo + 64).is_none());
        m.sram.write_scalar(lo + 16, 4, 0x1234).unwrap();
        let v = InvariantChecker::check_stack_zeroed(&m, lo, lo + 64).unwrap();
        assert_eq!(v.kind, InvariantKind::StackZeroing);
        assert_eq!(v.addr, Some(lo + 16));
    }

    #[test]
    fn trace_integrity_checks_posture_and_monotonicity() {
        let chk = InvariantChecker::new(100);
        let events = vec![
            TraceEvent {
                cycles: 10,
                kind: EventKind::InterruptPosture { enabled: false },
            },
            TraceEvent {
                cycles: 5, // regression
                kind: EventKind::IrqDelivered { pc: 0, mcause: 0 },
            },
        ];
        let v = chk.check_trace(&events);
        assert_eq!(v.len(), 2, "regression + delivery-while-disabled: {v:?}");
        assert!(v.iter().all(|x| x.kind == InvariantKind::TraceIntegrity));
    }
}
