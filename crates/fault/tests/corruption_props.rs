//! Property tests for the headline fault-tolerance claim: a random
//! single-bit corruption of any capability metadata field (bounds, otype,
//! permissions) is always *detected* by the invariant checker or
//! *architecturally trapped* when used — it is never silently usable to
//! reach memory outside the original allocation.
//!
//! The probe mirrors what the injector does ([`cheriot_fault::Injector`]
//! flips one bit of the in-memory word, preserving the tag) and what the
//! hardware does (every dereference goes through
//! [`Capability::check_access`]).

use cheriot_alloc::{HeapAllocator, RevokerKind, TemporalPolicy};
use cheriot_cap::{Capability, Permissions};
use cheriot_core::layout::SRAM_BASE;
use cheriot_core::{CoreModel, Machine, MachineConfig};
use cheriot_fault::InvariantChecker;
use proptest::prelude::*;

/// Scratch slot outside the heap where the corrupted capability is
/// parked; the checker watches it strictly, like the campaign workload's
/// pointer directory.
const SLOT: u32 = SRAM_BASE + 0x100;

fn machine_with_heap() -> (Machine, HeapAllocator) {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let heap = HeapAllocator::new(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    (m, heap)
}

/// Can `c` read or write at least one byte outside `[base, top)`?
/// This is the "silent escape" the architecture must make impossible.
fn grants_rogue_access(c: Capability, orig_base: u32, orig_top: u64) -> bool {
    let rw = [Permissions::LD, Permissions::SD];
    let mut probes = Vec::new();
    if orig_base > 0 {
        probes.push(orig_base - 1);
    }
    if orig_top < u64::from(u32::MAX) {
        probes.push(orig_top as u32);
    }
    // The corrupted capability's own extremes, wherever they landed.
    probes.push(c.base());
    if c.top() > 0 && c.top() <= u64::from(u32::MAX) {
        probes.push((c.top() - 1) as u32);
    }
    probes.into_iter().any(|addr| {
        let outside = u64::from(addr) < u64::from(orig_base) || u64::from(addr) >= orig_top;
        outside && rw.iter().any(|&p| c.check_access(addr, 1, p).is_ok())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flip one bit in the bounds / otype / permissions fields (bits
    /// 32..=62 of the memory word) of a live heap capability. The result
    /// must be detected by the checker or unable to access anything
    /// outside the original allocation.
    #[test]
    fn single_metadata_bit_flip_is_detected_or_trapped(
        len in 8u32..512,
        bit in 32u32..63,
    ) {
        let (mut m, mut heap) = machine_with_heap();
        let cap = heap.malloc(&mut m, len).expect("allocation fits in a fresh heap");
        let (orig_base, orig_top) = (cap.base(), cap.top());

        let corrupted = Capability::from_word(cap.to_word() ^ (1u64 << bit), true);
        m.sram.write_cap(SLOT, corrupted).expect("scratch slot is in SRAM");

        let mut checker = InvariantChecker::new(1);
        checker.watch_region(SLOT, SLOT + 8);
        let violations = checker.check(&m, &heap);

        let rogue = grants_rogue_access(corrupted, orig_base, orig_top);
        prop_assert!(
            !rogue || !violations.is_empty(),
            "bit {bit} on {len}-byte alloc: corrupted cap {corrupted} escapes \
             [{orig_base:#x}, {orig_top:#x}) yet no invariant fired"
        );
    }

    /// Control: the uncorrupted capability in the same position raises no
    /// violations — detection is not spurious.
    #[test]
    fn pristine_capability_raises_no_violation(len in 8u32..512) {
        let (mut m, mut heap) = machine_with_heap();
        let cap = heap.malloc(&mut m, len).expect("allocation fits in a fresh heap");
        m.sram.write_cap(SLOT, cap).expect("scratch slot is in SRAM");

        let mut checker = InvariantChecker::new(1);
        checker.watch_region(SLOT, SLOT + 8);
        let violations = checker.check(&m, &heap);
        prop_assert!(violations.is_empty(), "spurious: {violations:?}");
    }

    /// Tag clears (what `FaultClass::Tag` injects) are always
    /// architecturally fatal on use: an untagged capability can access
    /// nothing at all.
    #[test]
    fn cleared_tag_traps_on_any_use(len in 8u32..512, off in 0u32..512) {
        let (mut m, mut heap) = machine_with_heap();
        let cap = heap.malloc(&mut m, len).expect("allocation fits in a fresh heap");
        let untagged = Capability::from_word(cap.to_word(), false);
        let addr = cap.base().wrapping_add(off % len.max(1));
        prop_assert!(untagged.check_access(addr, 1, Permissions::LD).is_err());
        prop_assert!(untagged.check_access(addr, 1, Permissions::SD).is_err());
        // And the machine-level word store keeps the tag clear.
        m.sram.write_cap_word(SLOT, untagged.to_word(), false)
            .expect("scratch slot is in SRAM");
        prop_assert!(!m.sram.tag_at(SLOT));
    }
}
