//! Property tests for the snapshot/fork engine under campaign-grade
//! guests: restoring a snapshot after an *arbitrary* run prefix — any
//! cycle count, so mid-block, mid-ecall-return, mid-revoker-sweep — must
//! put the machine in a state whose subsequent execution is byte-identical
//! to a fresh boot running the same workload, in both block-cache modes.
//!
//! This is the exact contract the campaign engine leans on when it forks
//! every faulted run from the post-load snapshot instead of rebooting.

use cheriot_alloc::{HeapAllocator, RevokerKind, TemporalPolicy};
use cheriot_cap::Capability;
use cheriot_core::insn::Reg;
use cheriot_core::layout::SRAM_BASE;
use cheriot_core::{CoreModel, ExitReason, Machine, MachineConfig};
use cheriot_fault::campaign::build_workload;
use cheriot_rtos::run_with_heap_service;
use proptest::prelude::*;

const BUDGET: u64 = 30_000_000;

/// Boots a machine with a campaign-style workload loaded: program from
/// `build_workload(seed)`, a capability directory at `SRAM_BASE + 0x100`
/// in `GP`, and a quarantine-policy heap.
fn setup(seed: u64, block_cache: bool) -> (Machine, HeapAllocator) {
    let mut mc = MachineConfig::new(CoreModel::ibex());
    mc.block_cache = block_cache;
    let mut m = Machine::new(mc);
    let heap = HeapAllocator::new(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    let entry = m.try_load_program(&build_workload(seed)).unwrap();
    m.set_entry(entry);
    let dir = Capability::root_mem_rw()
        .with_address(SRAM_BASE + 0x100)
        .set_bounds(24 * 8)
        .unwrap();
    m.cpu.write(Reg::GP, dir);
    (m, heap)
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq, Eq)]
struct Final {
    exit: ExitReason,
    cycles: u64,
    instructions: u64,
    console: Vec<u8>,
    gpio_out: u32,
    gpio_writes: u64,
}

fn run_to_end(m: &mut Machine, heap: &mut HeapAllocator) -> Final {
    let exit = run_with_heap_service(m, heap, BUDGET);
    Final {
        exit,
        cycles: m.cycles,
        instructions: m.stats.instructions,
        console: m.console.clone(),
        gpio_out: m.gpio_out,
        gpio_writes: m.gpio_writes,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn restore_after_arbitrary_prefix_matches_fresh_boot(
        seed in 1u64..400,
        prefix in 1u64..150_000,
    ) {
        for cache in [true, false] {
            // Fresh boot, straight through to the end: the ground truth.
            let (mut fresh, mut fresh_heap) = setup(seed, cache);
            let want = run_to_end(&mut fresh, &mut fresh_heap);
            prop_assert!(
                matches!(want.exit, ExitReason::Halted(_)),
                "cache={cache}: workload must halt, got {:?}", want.exit
            );

            // Same boot, but: snapshot, run an arbitrary prefix (which
            // dirties heap pages, consumes ecalls, advances the revoker),
            // restore, then run to the end from the restored state.
            let (mut m, boot_heap) = setup(seed, cache);
            let snap = m.snapshot();
            let mut prefix_heap = boot_heap.clone();
            let _ = run_with_heap_service(&mut m, &mut prefix_heap, prefix);
            m.restore_from(&snap);
            let mut heap = boot_heap.clone();
            let got = run_to_end(&mut m, &mut heap);

            prop_assert_eq!(
                &got, &want,
                "cache={}: post-restore execution diverged from fresh boot \
                 (seed {}, prefix {})", cache, seed, prefix
            );
            // And the restored machine's memory ends content-identical too.
            prop_assert!(
                m.sram.content_eq(&fresh.sram),
                "cache={cache}: final SRAM diverged (seed {seed}, prefix {prefix})"
            );
        }
    }
}
