//! The boundary-tag heap with quarantine-based temporal safety (paper §5.1).
//!
//! The layout is dlmalloc-flavoured — in-band headers, segregated free
//! lists, immediate coalescing — because boundary tagging and in-band
//! metadata suit memory-constrained devices. Temporal safety augments it
//! with per-epoch *quarantine lists*: `free` paints the chunk's revocation
//! bits, zeroes it, and quarantines it; chunks return to the free lists only
//! after a complete revocation sweep has provably passed over them, so
//! allocations can never temporally alias.
//!
//! All metadata traffic is charged through [`cheriot_core::Meter`] at the
//! modelled core's rates; a native shadow map validates `free` arguments the
//! way the real allocator's in-band metadata integrity does.

use crate::error::AllocError;
use crate::quarantine::QuarantineSet;
use cheriot_cap::bounds::{representable_alignment_mask, representable_length};
use cheriot_cap::{Capability, Permissions};
use cheriot_core::revocation::revoker_reg;
use cheriot_core::trace::EventKind;
use cheriot_core::{layout, Machine};
use std::collections::BTreeMap;

/// Chunk header size (size/flags word + prev-size word).
pub const HDR: u32 = 8;
/// Minimum chunk size (header + fd/bk links).
pub const MIN_CHUNK: u32 = 16;

const F_INUSE: u32 = 1;
const F_PREV_INUSE: u32 = 2;
const FLAG_MASK: u32 = 7;

const NSMALL: usize = 31; // chunk sizes 16..=256 step 8
const SMALL_MAX: u32 = 256;

/// How `free` provides temporal safety (the four configurations of the
/// paper's allocator microbenchmark, §7.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TemporalPolicy {
    /// No temporal safety at all: `free` coalesces immediately. (Baseline)
    None,
    /// Revocation bits are painted and cleared and freed memory is zeroed,
    /// but nothing sweeps and nothing is quarantined. (Metadata)
    MetadataOnly,
    /// Full quarantine with sweeping revocation. (Software / Hardware)
    Quarantine(RevokerKind),
}

/// Which engine performs sweeping revocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RevokerKind {
    /// The RTOS software loop: one capability load + store per granule,
    /// on the CPU.
    Software,
    /// The background hardware revoker device (MMIO-driven).
    Hardware,
}

/// Allocator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Revocation passes started.
    pub revocation_passes: u64,
    /// Bytes currently sitting in quarantine.
    pub quarantined_bytes: u32,
    /// Bytes currently allocated to callers.
    pub live_bytes: u32,
    /// High-water mark of live bytes.
    pub peak_live_bytes: u32,
}

#[derive(Clone, Copy, Debug)]
struct Shadow {
    chunk: u32,
    size: u32,
}

/// The heap allocator. One instance manages the machine's revocable heap
/// region; in the RTOS it runs inside the allocator compartment.
#[derive(Clone, Debug)]
pub struct HeapAllocator {
    heap_cap: Capability,
    /// Covers all of SRAM: revocation sweeps must visit *every* location
    /// that can hold a capability (globals, stacks, heap), not just the
    /// heap — stale references live anywhere (Table 4 measures "scanning
    /// almost 256 KiB of SRAM").
    sweep_cap: Capability,
    bitmap_cap: Capability,
    base: u32,
    end: u32,
    policy: TemporalPolicy,
    /// Quarantine drain threshold: start a revocation pass once this many
    /// bytes are quarantined.
    pub quarantine_threshold: u32,
    small_bins: [u32; NSMALL],
    large_head: u32,
    quarantine: QuarantineSet,
    sw_epoch: u32,
    live: BTreeMap<u32, Shadow>,
    stats: AllocStats,
}

impl HeapAllocator {
    /// Creates an allocator over the machine's configured heap region.
    ///
    /// The allocator derives its working capability (with Store-Local, like
    /// the real allocator compartment's view) and a capability to the
    /// revocation bitmap MMIO window from the memory root; callers receive
    /// capabilities *without* SL.
    pub fn new(m: &mut Machine, policy: TemporalPolicy) -> HeapAllocator {
        let base = m.cfg.heap_base();
        let end = m.cfg.heap_end();
        let heap_cap = Capability::root_mem_rw()
            .with_address(base)
            .set_bounds(u64::from(end - base))
            .expect("heap region is representable");
        let sweep_cap = Capability::root_mem_rw()
            .with_address(layout::SRAM_BASE)
            .set_bounds(u64::from(m.cfg.sram_size))
            .expect("SRAM is representable");
        let bitmap_cap = Capability::root_mem_rw()
            .with_address(layout::REV_BITMAP_BASE)
            .set_bounds(u64::from(layout::MMIO_SIZE))
            .expect("bitmap window is representable");
        let mut a = HeapAllocator {
            heap_cap,
            sweep_cap,
            bitmap_cap,
            base,
            end,
            policy,
            quarantine_threshold: (end - base) / 4,
            small_bins: [0; NSMALL],
            large_head: 0,
            quarantine: QuarantineSet::new(),
            sw_epoch: 0,
            live: BTreeMap::new(),
            stats: AllocStats::default(),
        };
        a.init_heap(m).expect("fresh heap region initializes");
        a
    }

    /// Current statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// The temporal-safety policy in force.
    pub fn policy(&self) -> TemporalPolicy {
        self.policy
    }

    /// Heap capacity in bytes (excluding the end sentinel).
    pub fn capacity(&self) -> u32 {
        self.end - self.base - HDR
    }

    fn init_heap(&mut self, m: &mut Machine) -> Result<(), AllocError> {
        let total = self.end - self.base;
        let first_size = total - HDR; // reserve the end sentinel
                                      // End sentinel: an in-use zero-length chunk stopping coalescing.
        self.write_hdr(m, self.end - HDR, HDR | F_INUSE)?;
        self.insert_free(m, self.base, first_size, true)
    }

    // --- metered metadata accessors -------------------------------------
    //
    // All fallible: a corrupted header can send a computed address outside
    // the heap capability, and a fault-injected heap must degrade to
    // `AllocError::HeapCorruption`, never a host panic.

    fn read_word(&self, m: &mut Machine, addr: u32) -> Result<u32, AllocError> {
        m.meter()
            .load(self.heap_cap, addr, 4)
            .map_err(|_| AllocError::HeapCorruption)
    }

    fn write_word(&self, m: &mut Machine, addr: u32, v: u32) -> Result<(), AllocError> {
        m.meter()
            .store(self.heap_cap, addr, 4, v)
            .map_err(|_| AllocError::HeapCorruption)
    }

    fn read_hdr(&self, m: &mut Machine, chunk: u32) -> Result<u32, AllocError> {
        self.read_word(m, chunk)
    }

    fn write_hdr(&self, m: &mut Machine, chunk: u32, v: u32) -> Result<(), AllocError> {
        self.write_word(m, chunk, v)
    }

    fn size_of(hdr: u32) -> u32 {
        hdr & !FLAG_MASK
    }

    /// Validates a `(chunk, size)` pair read back from in-band metadata
    /// before it is used in address arithmetic. Corrupted metadata fails
    /// here instead of overflowing or escaping the heap.
    fn check_chunk(&self, chunk: u32, size: u32) -> Result<(), AllocError> {
        if chunk < self.base
            || size < MIN_CHUNK
            || !size.is_multiple_of(8)
            || u64::from(chunk) + u64::from(size) > u64::from(self.end)
        {
            return Err(AllocError::HeapCorruption);
        }
        Ok(())
    }

    // --- free lists -------------------------------------------------------

    fn bin_index(size: u32) -> Option<usize> {
        if size <= SMALL_MAX {
            Some(((size - MIN_CHUNK) / 8) as usize)
        } else {
            None
        }
    }

    fn head_of(&self, size: u32) -> u32 {
        match Self::bin_index(size) {
            Some(i) => self.small_bins[i],
            None => self.large_head,
        }
    }

    fn set_head(&mut self, m: &mut Machine, size: u32, v: u32) {
        // Bin heads live in allocator globals: charge one store.
        m.meter().charge(1);
        match Self::bin_index(size) {
            Some(i) => self.small_bins[i] = v,
            None => self.large_head = v,
        }
    }

    /// Inserts a free chunk, writing its header, links and the neighbour's
    /// boundary tag. `prev_inuse` is the state of the chunk to the left.
    fn insert_free(
        &mut self,
        m: &mut Machine,
        chunk: u32,
        size: u32,
        prev_inuse: bool,
    ) -> Result<(), AllocError> {
        self.check_chunk(chunk, size)?;
        let flags = if prev_inuse { F_PREV_INUSE } else { 0 };
        self.write_hdr(m, chunk, size | flags)?;
        // Boundary tag: the next chunk learns our size and clears its
        // PREV_INUSE bit.
        let next = chunk + size;
        let nh = self.read_hdr(m, next)?;
        self.write_hdr(m, next, nh & !F_PREV_INUSE)?;
        self.write_word(m, next + 4, size)?;
        // Link at the head of the bin.
        let old = self.head_of(size);
        self.write_word(m, chunk + 8, old)?; // fd
        self.write_word(m, chunk + 12, 0)?; // bk (0 = first)
        if old != 0 {
            self.write_word(m, old + 12, chunk)?;
        }
        self.set_head(m, size, chunk);
        Ok(())
    }

    /// Unlinks a free chunk from its bin.
    fn unlink(&mut self, m: &mut Machine, chunk: u32, size: u32) -> Result<(), AllocError> {
        let fd = self.read_word(m, chunk + 8)?;
        let bk = self.read_word(m, chunk + 12)?;
        if bk == 0 {
            self.set_head(m, size, fd);
        } else {
            self.write_word(m, bk + 8, fd)?;
        }
        if fd != 0 {
            self.write_word(m, fd + 12, bk)?;
        }
        Ok(())
    }

    /// Finds and unlinks a chunk of at least `need` bytes, preferring small
    /// bins, first-fit in the large list. Returns `Ok(Some((chunk, size)))`
    /// on a fit, `Ok(None)` when nothing fits.
    fn take_fit(&mut self, m: &mut Machine, need: u32) -> Result<Option<(u32, u32)>, AllocError> {
        // Small bins are exact-size: scan upward from the first feasible.
        if need <= SMALL_MAX {
            let first = ((need.max(MIN_CHUNK) - MIN_CHUNK) / 8) as usize;
            for i in first..NSMALL {
                m.meter().charge(1); // head probe
                let head = self.small_bins[i];
                if head != 0 {
                    let size = (MIN_CHUNK as usize + i * 8) as u32;
                    self.check_chunk(head, size)?;
                    self.unlink(m, head, size)?;
                    return Ok(Some((head, size)));
                }
            }
        }
        // Large list: first fit.
        m.meter().charge(1);
        let mut cur = self.large_head;
        let mut hops = 0u32;
        while cur != 0 {
            let hdr = self.read_hdr(m, cur)?;
            let size = Self::size_of(hdr);
            if size >= need {
                self.check_chunk(cur, size)?;
                self.unlink(m, cur, size)?;
                return Ok(Some((cur, size)));
            }
            cur = self.read_word(m, cur + 8)?;
            hops += 1;
            if hops > (self.end - self.base) / MIN_CHUNK {
                // More hops than chunks can exist: a corrupted link cycle.
                return Err(AllocError::HeapCorruption);
            }
        }
        Ok(None)
    }

    // --- allocation --------------------------------------------------------

    /// Allocates `len` bytes, returning a capability bounded to the object
    /// (header excluded) without the Store-Local permission.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadSize`] for zero or oversized requests;
    /// [`AllocError::OutOfMemory`] when no chunk fits even after revocation
    /// and quarantine drain.
    pub fn malloc(&mut self, m: &mut Machine, len: u32) -> Result<Capability, AllocError> {
        if len == 0 || len > self.capacity() {
            return Err(AllocError::BadSize { requested: len });
        }
        // Entry bookkeeping the real allocator does on every call:
        // argument validation, size-class computation, capability
        // derivations, error-path setup.
        m.meter().charge(60);
        self.drain_ready(m)?;
        let user_len = len.max(8).next_multiple_of(8);
        let rep_len = representable_length(user_len) as u32;
        let align = (!representable_alignment_mask(user_len))
            .wrapping_add(1)
            .max(8);
        let slack = if align > 8 { align + MIN_CHUNK } else { 0 };
        let need = rep_len + HDR + slack;

        let mut attempts = 0;
        let (chunk, size) = loop {
            if let Some(found) = self.take_fit(m, need)? {
                break found;
            }
            // Low on memory: force revocation cycles until quarantine is
            // empty or nothing more can be reclaimed.
            if self.quarantine.is_empty() || attempts >= 4 {
                return Err(AllocError::OutOfMemory);
            }
            attempts += 1;
            self.start_revocation(m)?;
            self.wait_revocation_complete(m)?;
            self.drain_ready(m)?;
        };

        // Front padding for representable alignment.
        let mut user = chunk + HDR;
        let aligned = user.next_multiple_of(align);
        let mut front = aligned - user;
        if front != 0 && front < MIN_CHUNK {
            front += align;
        }
        let hdr = self.read_hdr(m, chunk)?;
        let mut prev_inuse = hdr & F_PREV_INUSE != 0;
        let mut alloc_chunk = chunk;
        if front >= MIN_CHUNK {
            self.insert_free(m, chunk, front, prev_inuse)?;
            alloc_chunk = chunk + front;
            prev_inuse = false;
        }
        user = alloc_chunk + HDR;

        let mut alloc_size = rep_len + HDR;
        // `take_fit` guarantees size >= need = rep_len + HDR + slack and
        // front <= slack; a checked subtraction keeps corrupted metadata
        // from wrapping.
        let rem = size
            .checked_sub(front + alloc_size)
            .ok_or(AllocError::HeapCorruption)?;
        if rem >= MIN_CHUNK {
            self.insert_free(m, alloc_chunk + alloc_size, rem, true)?;
        } else {
            alloc_size += rem;
        }
        self.write_hdr(
            m,
            alloc_chunk,
            alloc_size | F_INUSE | if prev_inuse { F_PREV_INUSE } else { 0 },
        )?;
        // The next chunk sees an in-use neighbour.
        let next = alloc_chunk + alloc_size;
        let nh = self.read_hdr(m, next)?;
        self.write_hdr(m, next, nh | F_PREV_INUSE)?;

        if matches!(self.policy, TemporalPolicy::MetadataOnly) {
            // Metadata config: bits were painted at free and are cleared on
            // reuse.
            self.clear_bits(m, user, alloc_size - HDR);
        }

        self.live.insert(
            user,
            Shadow {
                chunk: alloc_chunk,
                size: alloc_size,
            },
        );
        self.stats.allocs += 1;
        self.stats.live_bytes += alloc_size;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);

        let cap = self
            .heap_cap
            .with_address(user)
            .set_bounds(u64::from(user_len))
            .filter(|c| c.tag())
            .ok_or(AllocError::HeapCorruption)?;
        debug_assert!(cap.top() <= u64::from(alloc_chunk + alloc_size));
        m.trace_emit(EventKind::Malloc {
            base: user,
            size: user_len,
        });
        Ok(cap.and_perms(!Permissions::SL))
    }

    /// Resizes an allocation, preserving its contents (`realloc`).
    ///
    /// Shrinking re-derives tighter bounds in place. Growing allocates a
    /// new chunk, copies the payload word by word (metered), and frees the
    /// old allocation through the full temporal-safety path — the old
    /// pointer is dead the moment this returns, exactly like `free`.
    ///
    /// # Errors
    ///
    /// As [`HeapAllocator::malloc`] and [`HeapAllocator::free`].
    pub fn realloc(
        &mut self,
        m: &mut Machine,
        cap: Capability,
        new_len: u32,
    ) -> Result<Capability, AllocError> {
        if !cap.tag() {
            return Err(AllocError::InvalidFree);
        }
        if new_len == 0 || new_len > self.capacity() {
            return Err(AllocError::BadSize { requested: new_len });
        }
        let user = cap.base();
        let Some(&Shadow { chunk, size }) = self.live.get(&user) else {
            return Err(AllocError::InvalidFree);
        };
        let old_payload = (cap.length() as u32).min(size - HDR);
        m.meter().charge(24);
        // Shrink (or same-size) in place when the tighter bounds stay
        // within the chunk.
        if let Some(shrunk) = self
            .heap_cap
            .with_address(user)
            .set_bounds(u64::from(new_len.max(8).next_multiple_of(8)))
            .filter(|c| c.tag() && c.top() <= u64::from(chunk + size))
        {
            if new_len <= old_payload {
                return Ok(shrunk.and_perms(!Permissions::SL));
            }
        }
        // Grow: allocate, copy, free.
        let new_cap = self.malloc(m, new_len)?;
        let words = old_payload.min(new_len).div_ceil(4);
        {
            let mut meter = m.meter();
            for i in 0..words {
                let v = meter
                    .load(self.heap_cap, user + i * 4, 4)
                    .map_err(AllocError::Trap)?;
                meter
                    .store(self.heap_cap, new_cap.base() + i * 4, 4, v)
                    .map_err(AllocError::Trap)?;
            }
        }
        self.free(m, cap)?;
        Ok(new_cap)
    }

    /// Frees an allocation.
    ///
    /// The capability's base must be the start of a live allocation
    /// returned by [`HeapAllocator::malloc`]. Per the paper, the revocation
    /// bits are painted and the memory zeroed *before* `free` returns, so
    /// use-after-free is impossible from that instant; the chunk itself
    /// waits in quarantine until a sweep completes.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidFree`] for untagged capabilities, mid-object
    /// pointers, double frees, or forged regions.
    pub fn free(&mut self, m: &mut Machine, cap: Capability) -> Result<(), AllocError> {
        if !cap.tag() {
            return Err(AllocError::InvalidFree);
        }
        let user = cap.base();
        // Validation work: tag/bounds checks against the chunk header,
        // quarantine bookkeeping setup.
        m.meter().charge(40);
        let Some(&Shadow { chunk, size }) = self.live.get(&user) else {
            return Err(AllocError::InvalidFree);
        };
        let hdr = self.read_hdr(m, chunk)?;
        if hdr & F_INUSE == 0 || Self::size_of(hdr) != size {
            return Err(AllocError::HeapCorruption);
        }
        if cap.top() > u64::from(chunk + size) {
            return Err(AllocError::InvalidFree);
        }
        self.live.remove(&user);
        self.stats.frees += 1;
        self.stats.live_bytes -= size;
        m.trace_emit(EventKind::Free { base: user, size });

        match self.policy {
            TemporalPolicy::None => {
                self.release_chunk(m, chunk, size)?;
            }
            TemporalPolicy::MetadataOnly => {
                self.paint_bits(m, user, size - HDR);
                let mut meter = m.meter();
                meter
                    .zero(self.heap_cap, user, size - HDR)
                    .map_err(AllocError::Trap)?;
                self.release_chunk(m, chunk, size)?;
            }
            TemporalPolicy::Quarantine(_) => {
                self.paint_bits(m, user, size - HDR);
                m.meter()
                    .zero(self.heap_cap, user, size - HDR)
                    .map_err(AllocError::Trap)?;
                let epoch = self.current_epoch(m);
                self.quarantine.push(epoch, chunk, size);
                m.trace_emit(EventKind::QuarantinePush { chunk, size, epoch });
                self.stats.quarantined_bytes = self.quarantine.bytes();
                m.meter().charge(8);
                if self.quarantine.bytes() >= self.quarantine_threshold {
                    self.start_revocation(m)?;
                }
                self.drain_ready(m)?;
            }
        }
        Ok(())
    }

    /// Releases a (swept or never-quarantined) chunk back to the free
    /// lists, coalescing with neighbours.
    fn release_chunk(&mut self, m: &mut Machine, chunk: u32, size: u32) -> Result<(), AllocError> {
        let mut chunk = chunk;
        let mut size = size;
        self.check_chunk(chunk, size)?;
        let hdr = self.read_hdr(m, chunk)?;
        let mut prev_inuse = hdr & F_PREV_INUSE != 0;
        // Coalesce right.
        let next = chunk + size;
        let nh = self.read_hdr(m, next)?;
        if nh & F_INUSE == 0 {
            let nsize = Self::size_of(nh);
            self.check_chunk(next, nsize)?;
            self.unlink(m, next, nsize)?;
            size += nsize;
        }
        // Coalesce left.
        if !prev_inuse {
            let psize = self.read_word(m, chunk + 4)?;
            let prev = chunk.checked_sub(psize).ok_or(AllocError::HeapCorruption)?;
            self.check_chunk(prev, psize)?;
            self.unlink(m, prev, psize)?;
            let ph = self.read_hdr(m, prev)?;
            prev_inuse = ph & F_PREV_INUSE != 0;
            chunk = prev;
            size += psize;
        }
        self.insert_free(m, chunk, size, prev_inuse)
    }

    // --- revocation --------------------------------------------------------

    fn paint_bits(&mut self, m: &mut Machine, addr: u32, len: u32) {
        self.bitmap_touch(m, len);
        m.bitmap.set_range(addr, len);
    }

    fn clear_bits(&mut self, m: &mut Machine, addr: u32, len: u32) {
        self.bitmap_touch(m, len);
        m.bitmap.clear_range(addr, len);
    }

    fn bitmap_touch(&self, m: &mut Machine, len: u32) {
        // The allocator is the only compartment holding a capability to the
        // bitmap window; assert that authority the way the stores would.
        debug_assert!(self
            .bitmap_cap
            .check_access(layout::REV_BITMAP_BASE, 4, Permissions::SD)
            .is_ok());
        // One MMIO word covers 32 granules = 256 bytes of heap.
        let words = u64::from(len.div_ceil(256).max(1));
        m.meter().charge_mmio_words(words);
    }

    /// The current revocation epoch (paper §3.3.2): odd while a sweep runs.
    pub fn current_epoch(&self, m: &mut Machine) -> u32 {
        match self.policy {
            TemporalPolicy::Quarantine(RevokerKind::Hardware) => {
                m.meter().charge(2); // MMIO epoch load
                m.revoker.epoch()
            }
            _ => self.sw_epoch,
        }
    }

    /// Starts a revocation pass if none is under way. The software engine
    /// sweeps synchronously (the caller is the allocator compartment,
    /// running the RTOS revoker loop); the hardware engine is kicked and
    /// proceeds in the background.
    ///
    /// # Errors
    ///
    /// [`AllocError::Trap`] if the software sweep's own accesses fault
    /// (possible only under fault injection or misconfiguration).
    pub fn start_revocation(&mut self, m: &mut Machine) -> Result<(), AllocError> {
        match self.policy {
            TemporalPolicy::Quarantine(RevokerKind::Hardware) => {
                if m.revoker.in_progress() {
                    return Ok(());
                }
                self.stats.revocation_passes += 1;
                // Three MMIO register writes: start, end, kick.
                m.meter().charge(6);
                let (sweep_base, sweep_end) = (self.sweep_cap.base(), self.sweep_cap.top() as u32);
                m.revoker.mmio_write(revoker_reg::START, sweep_base);
                m.revoker.mmio_write(revoker_reg::END, sweep_end);
                m.revoker.mmio_write(revoker_reg::KICK, 1);
                // The kick went straight to the device, not through the
                // machine's MMIO dispatch, so emit the epoch-start here.
                let epoch = m.revoker.epoch();
                m.trace_emit(EventKind::RevokerStart { epoch });
            }
            TemporalPolicy::Quarantine(RevokerKind::Software) => {
                self.stats.revocation_passes += 1;
                self.sw_epoch += 1;
                m.trace_emit(EventKind::RevokerStart {
                    epoch: self.sw_epoch,
                });
                let strips_before = m.stats.filter_strips;
                self.software_sweep(m)?;
                self.sw_epoch += 1;
                m.trace_emit(EventKind::RevokerFinish {
                    epoch: self.sw_epoch,
                    words_invalidated: m.stats.filter_strips - strips_before,
                });
            }
            _ => {}
        }
        Ok(())
    }

    /// The RTOS software revoker loop (paper §3.3.2): loads each capability
    /// word in the heap and stores it back; the load filter strips tags of
    /// capabilities whose base is revoked. The loop is unrolled by two to
    /// hide the load-to-use delay; interrupts are disabled per batch (the
    /// synchronous model here corresponds to the allocator waiting for the
    /// sweep).
    fn software_sweep(&mut self, m: &mut Machine) -> Result<(), AllocError> {
        let mut addr = self.sweep_cap.base();
        let sweep_end = self.sweep_cap.top() as u32;
        while addr < sweep_end {
            let mut meter = m.meter();
            // Unrolled-by-two loop body: two loads, two stores, minimal
            // overhead (one branch per two words).
            for a in [addr, addr + 8] {
                if a >= sweep_end {
                    break;
                }
                let c = meter
                    .load_cap(self.sweep_cap, a)
                    .map_err(AllocError::Trap)?;
                meter
                    .store_cap(self.sweep_cap, a, c)
                    .map_err(AllocError::Trap)?;
            }
            meter.charge_branch();
            addr += 16;
        }
        Ok(())
    }

    /// Blocks until no revocation pass is in progress. With the hardware
    /// revoker this models the calling thread sleeping (interrupt
    /// completion) or polling (the Flute prototype, whose wake-up memory
    /// traffic steals revoker slots — paper §7.2.2).
    ///
    /// # Errors
    ///
    /// [`AllocError::RevokerStuck`] if the sweep never completes (a wedged
    /// or corrupted revoker device under fault injection).
    pub fn wait_revocation_complete(&mut self, m: &mut Machine) -> Result<(), AllocError> {
        if !matches!(
            self.policy,
            TemporalPolicy::Quarantine(RevokerKind::Hardware)
        ) {
            return Ok(());
        }
        let mut guard = 0u64;
        let ctx_pair = {
            // Two thread context switches (block + wake): register-file
            // save/restore plus the two extra HWM CSRs when present
            // (paper §7.2.2's note on the 128 KiB case: a wait-dominated
            // workload makes those extra saves visible).
            let caps = 60 * m.cfg.core.cap_beats();
            let hwm_extra = if m.cfg.hwm_enabled { 24 } else { 0 };
            (150 + caps + hwm_extra, caps)
        };
        while m.revoker.in_progress() {
            if m.cfg.revoker.interrupt_on_completion {
                // Sleeping thread: idle until the completion interrupt,
                // except for the periodic scheduler tick, which performs a
                // context-switch pair through the blocked state.
                m.advance(2048, 0);
                m.advance(ctx_pair.0, ctx_pair.1);
            } else {
                // Polling (Flute prototype, §7.2.2): the RTOS periodically
                // wakes the blocked thread; its flurry of memory accesses
                // takes precedence over the revoker and slows the sweep.
                m.advance(256, 0);
                m.advance(ctx_pair.0, ctx_pair.1);
                m.advance(96, 88);
            }
            guard += 1;
            if guard >= 100_000_000 {
                return Err(AllocError::RevokerStuck);
            }
        }
        // The wake-up on completion.
        m.advance(ctx_pair.0, ctx_pair.1);
        Ok(())
    }

    /// Releases every quarantine list that a completed sweep has covered.
    fn drain_ready(&mut self, m: &mut Machine) -> Result<(), AllocError> {
        if !matches!(self.policy, TemporalPolicy::Quarantine(_)) {
            return Ok(());
        }
        let epoch = self.current_epoch(m);
        while let Some(list) = self.quarantine.pop_ready(epoch) {
            for (chunk, size) in list {
                m.trace_emit(EventKind::QuarantineRelease { chunk, size });
                self.clear_bits(m, chunk + HDR, size - HDR);
                self.release_chunk(m, chunk, size)?;
                m.meter().charge(6);
            }
        }
        self.stats.quarantined_bytes = self.quarantine.bytes();
        Ok(())
    }

    // --- introspection / test support ---------------------------------------

    /// Walks the heap validating every metadata invariant (headers,
    /// boundary tags, bin membership). Uncharged — this is a simulation
    /// debugging facility, not allocator code.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_consistency(&self, m: &Machine) -> Result<(), String> {
        let read = |addr: u32| -> u32 { m.sram.read_scalar(addr, 4).unwrap_or(0) };
        // Collect free chunks from the bins.
        let mut free_set = std::collections::BTreeSet::new();
        for (i, &head) in self.small_bins.iter().enumerate() {
            let mut cur = head;
            let mut hops = 0;
            while cur != 0 {
                free_set.insert(cur);
                let expect = MIN_CHUNK + 8 * i as u32;
                let hdr = read(cur);
                if Self::size_of(hdr) != expect {
                    return Err(format!(
                        "bin {i} chunk {cur:#x} size {} != {expect}",
                        Self::size_of(hdr)
                    ));
                }
                cur = read(cur + 8);
                hops += 1;
                if hops > 100_000 {
                    return Err(format!("bin {i} cycle"));
                }
            }
        }
        let mut cur = self.large_head;
        let mut hops = 0;
        while cur != 0 {
            free_set.insert(cur);
            cur = read(cur + 8);
            hops += 1;
            if hops > 100_000 {
                return Err("large bin cycle".into());
            }
        }
        // Walk the heap.
        let mut chunk = self.base;
        let mut prev_inuse = true;
        let mut quarantined: std::collections::BTreeSet<u32> =
            self.quarantine.chunks().map(|(c, _)| c).collect();
        while chunk < self.end - HDR {
            let hdr = read(chunk);
            let size = Self::size_of(hdr);
            if size < MIN_CHUNK || size % 8 != 0 || chunk + size > self.end {
                return Err(format!("chunk {chunk:#x} bad size {size}"));
            }
            let inuse = hdr & F_INUSE != 0;
            if (hdr & F_PREV_INUSE != 0) != prev_inuse {
                return Err(format!("chunk {chunk:#x} PREV_INUSE mismatch"));
            }
            if inuse {
                let known_live = self.live.values().any(|s| s.chunk == chunk);
                let known_quarantined = quarantined.remove(&chunk);
                if !known_live && !known_quarantined {
                    return Err(format!("chunk {chunk:#x} in-use but unknown"));
                }
            } else {
                if !free_set.remove(&chunk) {
                    return Err(format!("chunk {chunk:#x} free but not in a bin"));
                }
                if read(chunk + size + 4) != size {
                    return Err(format!("chunk {chunk:#x} boundary tag mismatch"));
                }
            }
            prev_inuse = inuse;
            chunk += size;
        }
        if !free_set.is_empty() {
            return Err(format!("bins contain unknown chunks {free_set:?}"));
        }
        Ok(())
    }

    /// Number of live allocations (shadow view).
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// The chunk size (including header) backing the live allocation whose
    /// payload starts at `base`, if any. Used by the RTOS quota service.
    pub fn allocation_size(&self, base: u32) -> Option<u32> {
        self.live.get(&base).map(|s| s.size)
    }

    /// The heap region managed by this allocator as `(base, end)`.
    pub fn heap_range(&self) -> (u32, u32) {
        (self.base, self.end)
    }

    /// Every live allocation as a `(payload base, payload len)` span (the
    /// span runs to the end of the backing chunk, covering representable-
    /// bounds padding). Sorted by base. For external invariant checkers.
    pub fn live_spans(&self) -> Vec<(u32, u32)> {
        self.live
            .iter()
            .map(|(&user, s)| (user, s.chunk + s.size - user))
            .collect()
    }

    /// Every quarantined chunk's payload as a `(payload base, payload len)`
    /// span. For external invariant checkers: these bytes must stay
    /// painted in the revocation bitmap, zeroed, and disjoint from every
    /// live allocation until their epoch completes.
    pub fn quarantined_spans(&self) -> Vec<(u32, u32)> {
        self.quarantine
            .chunks()
            .map(|(chunk, size)| (chunk + HDR, size - HDR))
            .collect()
    }
}
