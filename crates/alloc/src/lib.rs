//! # cheriot-alloc — the CHERIoT shared heap allocator
//!
//! The allocator of paper §5.1: a dlmalloc-style boundary-tag heap whose
//! `free` is the anchor of *deterministic temporal safety*. Freeing an
//! object paints its revocation bits and zeroes it — from that instant the
//! hardware load filter guarantees no capability to it can enter a register
//! — and quarantines the chunk until a revocation sweep (software loop or
//! the background hardware revoker) has invalidated every stale capability
//! still in memory. Only then can the memory be reallocated, so allocations
//! can never temporally alias.
//!
//! The allocator runs as natively-modelled compartment code: all of its
//! metadata traffic is charged through [`cheriot_core::Meter`] at the
//! simulated core's rates (see DESIGN.md §3).
//!
//! ## Example
//!
//! ```
//! use cheriot_alloc::{HeapAllocator, TemporalPolicy, RevokerKind};
//! use cheriot_core::{Machine, MachineConfig, CoreModel};
//! use cheriot_cap::Permissions;
//!
//! let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
//! let mut heap = HeapAllocator::new(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
//!
//! let obj = heap.malloc(&mut m, 64)?;
//! assert_eq!(obj.length(), 64);
//! assert!(!obj.perms().contains(Permissions::SL)); // heap caps can't hold stack caps
//!
//! heap.free(&mut m, obj)?;
//! // The object's revocation bits are painted: any stale copy loaded from
//! // memory now arrives untagged.
//! assert!(m.bitmap.is_revoked(obj.base()));
//! # Ok::<(), cheriot_alloc::AllocError>(())
//! ```

#![warn(missing_docs)]

mod error;
mod heap;
mod quarantine;

pub use error::AllocError;
pub use heap::{AllocStats, HeapAllocator, RevokerKind, TemporalPolicy, HDR, MIN_CHUNK};
pub use quarantine::QuarantineSet;
