//! Allocator errors.

use cheriot_core::TrapCause;
use core::fmt;

/// Why an allocator operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// No chunk large enough, even after revocation and quarantine drain.
    OutOfMemory,
    /// The calling compartment's allocation quota is exhausted (quotas are
    /// enforced by the RTOS allocator service).
    QuotaExceeded,
    /// The requested size cannot be served at all (zero or beyond the heap).
    BadSize {
        /// The rejected request size.
        requested: u32,
    },
    /// `free` was passed something that is not a valid, in-use allocation:
    /// untagged, mid-object, double-free, or a forged region.
    InvalidFree,
    /// The heap's internal invariants are violated (should never happen;
    /// kept as an error rather than a panic because a real allocator
    /// compartment must fail safe).
    HeapCorruption,
    /// A metered memory access faulted — the allocator's own capability was
    /// insufficient, indicating mis-configuration.
    Trap(TrapCause),
    /// A revocation sweep never completed (the revoker device wedged or
    /// was corrupted); the waiting thread gives up instead of spinning the
    /// simulator forever.
    RevokerStuck,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "out of heap memory"),
            AllocError::QuotaExceeded => write!(f, "allocation quota exceeded"),
            AllocError::BadSize { requested } => write!(f, "unservable size {requested}"),
            AllocError::InvalidFree => write!(f, "invalid free"),
            AllocError::HeapCorruption => write!(f, "heap metadata corruption"),
            AllocError::Trap(t) => write!(f, "allocator trapped: {t}"),
            AllocError::RevokerStuck => write!(f, "revocation sweep never completed"),
        }
    }
}

impl std::error::Error for AllocError {}

impl From<TrapCause> for AllocError {
    fn from(t: TrapCause) -> AllocError {
        AllocError::Trap(t)
    }
}
