//! Epoch-keyed quarantine lists (paper §5.1).
//!
//! Freed chunks wait here until a complete revocation sweep has provably
//! covered them. Lists are keyed by the revocation epoch at which they were
//! opened; the epoch is odd while a sweep is in progress, so a list opened
//! at epoch `E` is safe once the current epoch reaches `E + 2 + (E & 1)`:
//! chunks painted while a sweep is *running* (odd `E`) may have been missed
//! by that sweep and must wait for the next one. Under this protocol the
//! allocator never holds more than three lists at once.

use std::collections::VecDeque;

#[derive(Clone, Debug)]
struct List {
    open_epoch: u32,
    chunks: Vec<(u32, u32)>, // (chunk address, chunk size)
    bytes: u32,
}

/// The set of quarantine lists, oldest first.
#[derive(Clone, Debug, Default)]
pub struct QuarantineSet {
    lists: VecDeque<List>,
    bytes: u32,
    /// Most lists ever held simultaneously (the paper bounds this at 3).
    pub max_lists_observed: usize,
}

impl QuarantineSet {
    /// An empty quarantine.
    pub fn new() -> QuarantineSet {
        QuarantineSet::default()
    }

    /// Is nothing quarantined?
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Total quarantined bytes.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }

    /// Number of lists currently held.
    pub fn list_count(&self) -> usize {
        self.lists.len()
    }

    /// Quarantines a chunk under the current `epoch`, opening a new list if
    /// the epoch advanced since the last `free` (paper §5.1).
    pub fn push(&mut self, epoch: u32, chunk: u32, size: u32) {
        let need_new = self
            .lists
            .back()
            .map(|l| l.open_epoch != epoch)
            .unwrap_or(true);
        if need_new {
            self.lists.push_back(List {
                open_epoch: epoch,
                chunks: Vec::new(),
                bytes: 0,
            });
            self.max_lists_observed = self.max_lists_observed.max(self.lists.len());
        }
        let list = self.lists.back_mut().expect("just ensured");
        list.chunks.push((chunk, size));
        list.bytes += size;
        self.bytes += size;
    }

    /// Epoch distance a list opened at `open_epoch` must age before its
    /// chunks are provably swept.
    fn required_age(open_epoch: u32) -> u32 {
        2 + (open_epoch & 1)
    }

    /// Pops the oldest list if a completed sweep covers it.
    pub fn pop_ready(&mut self, current_epoch: u32) -> Option<Vec<(u32, u32)>> {
        let front = self.lists.front()?;
        if current_epoch.wrapping_sub(front.open_epoch) < Self::required_age(front.open_epoch) {
            return None;
        }
        let list = self.lists.pop_front().expect("front exists");
        self.bytes -= list.bytes;
        Some(list.chunks)
    }

    /// Iterates over all quarantined chunks (test support).
    pub fn chunks(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.lists.iter().flat_map(|l| l.chunks.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_split_by_epoch() {
        let mut q = QuarantineSet::new();
        q.push(0, 0x100, 32);
        q.push(0, 0x200, 32);
        q.push(2, 0x300, 32);
        assert_eq!(q.list_count(), 2);
        assert_eq!(q.bytes(), 96);
    }

    #[test]
    fn even_epoch_list_ready_after_one_sweep() {
        let mut q = QuarantineSet::new();
        q.push(0, 0x100, 32);
        assert!(q.pop_ready(0).is_none());
        assert!(q.pop_ready(1).is_none(), "sweep still running");
        let ready = q.pop_ready(2).expect("one full sweep passed");
        assert_eq!(ready, vec![(0x100, 32)]);
        assert!(q.is_empty());
    }

    #[test]
    fn odd_epoch_list_needs_the_next_sweep() {
        let mut q = QuarantineSet::new();
        // Freed while a sweep was running: that sweep may have missed it.
        q.push(1, 0x100, 32);
        assert!(q.pop_ready(2).is_none());
        assert!(q.pop_ready(3).is_none());
        assert!(q.pop_ready(4).is_some(), "second sweep completed");
    }

    #[test]
    fn fifo_draining() {
        let mut q = QuarantineSet::new();
        q.push(0, 0x100, 16);
        q.push(2, 0x200, 16);
        q.push(4, 0x300, 16);
        assert_eq!(q.max_lists_observed, 3);
        assert_eq!(q.pop_ready(6).unwrap(), vec![(0x100, 16)]);
        assert_eq!(q.pop_ready(6).unwrap(), vec![(0x200, 16)]);
        assert!(q.pop_ready(6).is_some());
        assert!(q.pop_ready(6).is_none());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn at_most_three_lists_under_protocol() {
        // Simulate the allocator's discipline: drain before push.
        let mut q = QuarantineSet::new();
        for epoch in (0..40).step_by(2) {
            while q.pop_ready(epoch).is_some() {}
            q.push(epoch, 0x100 + epoch, 16);
        }
        assert!(q.max_lists_observed <= 3, "{}", q.max_lists_observed);
    }
}
