//! Exact-sequence tests for allocator-side trace events: malloc/free,
//! quarantine push/release, and revocation epoch start/finish for both
//! the hardware and software revokers.

use cheriot_alloc::{HeapAllocator, RevokerKind, TemporalPolicy, HDR};
use cheriot_cap::Capability;
use cheriot_core::trace::{EventKind, Tracer};
use cheriot_core::{CoreModel, Machine, MachineConfig};

fn traced_machine() -> Machine {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    m.set_tracer(Tracer::timeline());
    m
}

fn kinds(m: &Machine) -> Vec<EventKind> {
    m.tracer()
        .expect("tracer installed")
        .events()
        .iter()
        .map(|e| e.kind)
        .collect()
}

#[test]
fn hardware_revoker_event_sequence() {
    // Eager quarantine (threshold 1): every free paints + quarantines the
    // chunk and kicks the hardware revoker. The full lifecycle of two
    // allocations must produce exactly this event stream:
    //
    //   malloc a
    //   free a  -> quarantine_push(epoch 0) -> revoker_start(epoch 1)
    //   [sweep completes]                   -> revoker_finish(epoch 2)
    //   malloc b -> quarantine_release(a)   (entry drain: a's sweep passed)
    //   free b  -> quarantine_push(epoch 2) -> revoker_start(epoch 3)
    let mut m = traced_machine();
    let mut h = HeapAllocator::new(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    h.quarantine_threshold = 1;

    let a = h.malloc(&mut m, 64).unwrap();
    let a_user = a.base();
    h.free(&mut m, a).unwrap();
    h.wait_revocation_complete(&mut m).unwrap();
    let b = h.malloc(&mut m, 64).unwrap();
    let b_user = b.base();
    h.free(&mut m, b).unwrap();

    let ks = kinds(&m);
    assert_eq!(ks.len(), 10, "unexpected event stream: {ks:#?}");

    assert_eq!(
        ks[0],
        EventKind::Malloc {
            base: a_user,
            size: 64,
        }
    );
    let chunk_size = match ks[1] {
        EventKind::Free { base, size } => {
            assert_eq!(base, a_user);
            assert!(size >= 64 + HDR, "chunk covers payload + header");
            size
        }
        other => panic!("expected free, got {other:?}"),
    };
    assert_eq!(
        ks[2],
        EventKind::QuarantinePush {
            chunk: a_user - HDR,
            size: chunk_size,
            epoch: 0,
        }
    );
    // The kick flips the device epoch odd: a sweep is in flight.
    assert_eq!(ks[3], EventKind::RevokerStart { epoch: 1 });
    match ks[4] {
        EventKind::RevokerFinish { epoch, .. } => assert_eq!(epoch, 2),
        other => panic!("expected revoker_finish, got {other:?}"),
    }
    // a's chunk was quarantined at epoch 0; the completed sweep (now at
    // epoch 2) provably passed over it, so the next malloc's entry drain
    // releases it before carving b.
    assert_eq!(
        ks[5],
        EventKind::QuarantineRelease {
            chunk: a_user - HDR,
            size: chunk_size,
        }
    );
    assert_eq!(
        ks[6],
        EventKind::Malloc {
            base: b_user,
            size: 64,
        }
    );
    assert!(matches!(ks[7], EventKind::Free { base, .. } if base == b_user));
    assert_eq!(
        ks[8],
        EventKind::QuarantinePush {
            chunk: b_user - HDR,
            size: chunk_size,
            epoch: 2,
        }
    );
    assert_eq!(ks[9], EventKind::RevokerStart { epoch: 3 });

    // The metrics registry counted every stage of the lifecycle.
    let t = m.tracer().unwrap();
    assert_eq!(t.metrics.counter("malloc"), 2);
    assert_eq!(t.metrics.counter("free"), 2);
    assert_eq!(t.metrics.counter("quarantine_push"), 2);
    assert_eq!(t.metrics.counter("quarantine_release"), 1);
    assert_eq!(t.metrics.counter("bytes_allocated"), 128);
    assert_eq!(
        t.metrics.histogram("malloc_bytes").map(|h| h.count()),
        Some(2)
    );
}

#[test]
fn software_revoker_pairs_start_and_finish() {
    // The software revoker sweeps synchronously inside `free`, so the
    // whole epoch lifecycle (start, finish, release) lands in one event
    // burst with nothing interleaved.
    let mut m = traced_machine();
    let mut h = HeapAllocator::new(&mut m, TemporalPolicy::Quarantine(RevokerKind::Software));
    h.quarantine_threshold = 1;

    let a = h.malloc(&mut m, 32).unwrap();
    let a_user = a.base();
    h.free(&mut m, a).unwrap();

    let ks = kinds(&m);
    assert_eq!(ks.len(), 6, "unexpected event stream: {ks:#?}");
    assert!(matches!(ks[0], EventKind::Malloc { base, size: 32 } if base == a_user));
    assert!(matches!(ks[1], EventKind::Free { base, .. } if base == a_user));
    assert!(
        matches!(ks[2], EventKind::QuarantinePush { chunk, epoch: 0, .. } if chunk == a_user - HDR)
    );
    assert_eq!(ks[3], EventKind::RevokerStart { epoch: 1 });
    // Nothing in the heap held a capability to `a`, so the sweep strips
    // no tags.
    assert_eq!(
        ks[4],
        EventKind::RevokerFinish {
            epoch: 2,
            words_invalidated: 0,
        }
    );
    assert!(matches!(ks[5], EventKind::QuarantineRelease { chunk, .. } if chunk == a_user - HDR));
}

#[test]
fn software_sweep_reports_stripped_words_and_filter_events() {
    // Plant a stale capability inside the heap (a live object holding a
    // pointer to a freed one): the sweep must strip it, the strip must
    // surface as a filter_strip event between revoker_start and
    // revoker_finish, and the finish event's `words_invalidated` must
    // count it.
    let mut m = traced_machine();
    let mut h = HeapAllocator::new(&mut m, TemporalPolicy::Quarantine(RevokerKind::Software));
    h.quarantine_threshold = 1;
    let heap_cap = Capability::root_mem_rw()
        .with_address(m.cfg.heap_base())
        .set_bounds(u64::from(m.cfg.heap_size))
        .unwrap();

    let holder = h.malloc(&mut m, 16).unwrap();
    let victim = h.malloc(&mut m, 64).unwrap();
    m.meter()
        .store_cap(heap_cap, holder.base(), victim)
        .unwrap();
    h.free(&mut m, victim).unwrap();

    let ks = kinds(&m);
    let start = ks
        .iter()
        .position(|k| matches!(k, EventKind::RevokerStart { .. }))
        .expect("sweep started");
    let finish = ks
        .iter()
        .position(|k| matches!(k, EventKind::RevokerFinish { .. }))
        .expect("sweep finished");
    assert!(start < finish);
    let strips: Vec<u32> = ks[start..finish]
        .iter()
        .filter_map(|k| match k {
            EventKind::FilterStrip { addr } => Some(*addr),
            _ => None,
        })
        .collect();
    assert_eq!(
        strips,
        vec![holder.base()],
        "exactly the planted stale capability is stripped, in-sweep"
    );
    assert_eq!(
        ks[finish],
        EventKind::RevokerFinish {
            epoch: 2,
            words_invalidated: 1,
        }
    );
    // And the stale copy really is dead.
    let stale = m.meter().load_cap(heap_cap, holder.base()).unwrap();
    assert!(!stale.tag());
}
