//! Behavioural and property tests for the heap allocator: spatial safety,
//! deterministic temporal safety, quarantine discipline, and metadata
//! integrity under random churn.

use cheriot_alloc::{AllocError, HeapAllocator, RevokerKind, TemporalPolicy};
use cheriot_cap::{Capability, Permissions};
use cheriot_core::{layout, CoreModel, Machine, MachineConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn machine() -> Machine {
    Machine::new(MachineConfig::new(CoreModel::ibex()))
}

fn heap(m: &mut Machine, policy: TemporalPolicy) -> HeapAllocator {
    HeapAllocator::new(m, policy)
}

const ALL_POLICIES: [TemporalPolicy; 4] = [
    TemporalPolicy::None,
    TemporalPolicy::MetadataOnly,
    TemporalPolicy::Quarantine(RevokerKind::Software),
    TemporalPolicy::Quarantine(RevokerKind::Hardware),
];

#[test]
fn allocations_do_not_overlap() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    let mut caps: Vec<Capability> = Vec::new();
    for i in 0..100 {
        let c = h.malloc(&mut m, 16 + (i % 40) * 8).expect("alloc");
        for prev in &caps {
            let disjoint = c.top() <= u64::from(prev.base()) || u64::from(c.base()) >= prev.top();
            assert!(disjoint, "{c} overlaps {prev}");
        }
        caps.push(c);
    }
    h.check_consistency(&m).expect("consistent");
}

#[test]
fn caps_are_bounded_and_sl_free() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::None);
    for len in [1u32, 8, 33, 100, 511, 512, 4096] {
        let c = h.malloc(&mut m, len).expect("alloc");
        assert!(c.tag());
        assert!(c.length() >= u64::from(len));
        // Small objects get exact bounds up to the allocator's 8-byte
        // granule rounding (the revocation granule, paper §3.3.1).
        if len <= 511 {
            assert_eq!(
                c.length(),
                u64::from(len.max(8).next_multiple_of(8)),
                "len={len}"
            );
        }
        assert!(!c.perms().contains(Permissions::SL));
        assert!(c.perms().contains(Permissions::LD));
        assert!(c.perms().contains(Permissions::SD));
        assert!(c.perms().contains(Permissions::GL));
    }
}

#[test]
fn free_paints_and_zeroes() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    let c = h.malloc(&mut m, 64).unwrap();
    let addr = c.base();
    m.meter().store(c, addr, 4, 0xdead_beef).unwrap();
    h.free(&mut m, c).unwrap();
    assert!(m.bitmap.is_revoked(addr));
    assert_eq!(
        m.sram.read_scalar(addr, 4).unwrap(),
        0,
        "freed memory zeroed"
    );
}

#[test]
fn use_after_free_capability_is_stripped_on_load() {
    // The complete UAF story: a victim stores a heap cap in memory; the
    // object is freed; any later load of that cap yields an untagged value.
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    let obj = h.malloc(&mut m, 48).unwrap();
    // Stash the capability in a global slot (outside the heap).
    let globals = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE)
        .set_bounds(4096)
        .unwrap();
    m.meter()
        .store_cap(globals, layout::SRAM_BASE + 64, obj)
        .unwrap();
    h.free(&mut m, obj).unwrap();
    let stale = m.meter().load_cap(globals, layout::SRAM_BASE + 64).unwrap();
    assert!(!stale.tag(), "load filter must strip the stale capability");
    assert!(stale.check_access(obj.base(), 1, Permissions::LD).is_err());
}

#[test]
fn no_temporal_aliasing_across_reuse() {
    // Reused memory must never be handed out while a stale tagged
    // capability to it could still be loaded from anywhere.
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    h.quarantine_threshold = 1; // drain eagerly
    let globals = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE)
        .set_bounds(4096)
        .unwrap();

    for round in 0..50 {
        let a = h.malloc(&mut m, 96).unwrap();
        m.meter()
            .store_cap(globals, layout::SRAM_BASE + 128, a)
            .unwrap();
        h.free(&mut m, a).unwrap();
        h.wait_revocation_complete(&mut m).unwrap();
        let b = h.malloc(&mut m, 96).unwrap();
        // If b reuses a's memory, the stale copy must by now be untagged.
        if b.base() == a.base() {
            let stale = m
                .meter()
                .load_cap(globals, layout::SRAM_BASE + 128)
                .unwrap();
            assert!(!stale.tag(), "round {round}: temporal aliasing!");
        }
        h.free(&mut m, b).unwrap();
    }
}

#[test]
fn double_free_rejected() {
    for policy in ALL_POLICIES {
        let mut m = machine();
        let mut h = heap(&mut m, policy);
        let c = h.malloc(&mut m, 32).unwrap();
        h.free(&mut m, c).unwrap();
        assert_eq!(
            h.free(&mut m, c),
            Err(AllocError::InvalidFree),
            "{policy:?}"
        );
    }
}

#[test]
fn mid_object_free_rejected() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    let c = h.malloc(&mut m, 128).unwrap();
    let mid = c.incremented(8).set_bounds(16).unwrap();
    assert_eq!(h.free(&mut m, mid), Err(AllocError::InvalidFree));
    // The original is still live and freeable.
    h.free(&mut m, c).unwrap();
}

#[test]
fn untagged_free_rejected() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::None);
    let c = h.malloc(&mut m, 32).unwrap();
    assert_eq!(h.free(&mut m, c.cleared()), Err(AllocError::InvalidFree));
}

#[test]
fn zero_and_oversize_requests_rejected() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::None);
    assert!(matches!(
        h.malloc(&mut m, 0),
        Err(AllocError::BadSize { .. })
    ));
    assert!(matches!(
        h.malloc(&mut m, u32::MAX),
        Err(AllocError::BadSize { .. })
    ));
}

#[test]
fn exhaustion_triggers_revocation_and_recovers() {
    for kind in [RevokerKind::Software, RevokerKind::Hardware] {
        let mut m = machine();
        let mut h = heap(&mut m, TemporalPolicy::Quarantine(kind));
        // Never start passes from the threshold; force the OOM path.
        h.quarantine_threshold = u32::MAX;
        let cap_bytes = h.capacity();
        let big = cap_bytes / 2;
        let a = h.malloc(&mut m, big).expect("first big alloc");
        h.free(&mut m, a).unwrap();
        // Heap is now mostly quarantined; a second big alloc must force a
        // revocation pass and then succeed.
        let passes_before = h.stats().revocation_passes;
        let b = h.malloc(&mut m, big).expect("recovers after revocation");
        assert!(h.stats().revocation_passes > passes_before, "{kind:?}");
        h.free(&mut m, b).unwrap();
        h.check_consistency(&m).unwrap();
    }
}

#[test]
fn software_and_hardware_sweeps_agree_on_safety() {
    for kind in [RevokerKind::Software, RevokerKind::Hardware] {
        let mut m = machine();
        let mut h = heap(&mut m, TemporalPolicy::Quarantine(kind));
        h.quarantine_threshold = 1;
        let heap_cap = Capability::root_mem_rw()
            .with_address(m.cfg.heap_base())
            .set_bounds(u64::from(m.cfg.heap_size))
            .unwrap();
        // Plant a stale capability *inside the heap itself* (a heap object
        // pointing to another heap object).
        let holder = h.malloc(&mut m, 16).unwrap();
        let victim = h.malloc(&mut m, 64).unwrap();
        m.meter()
            .store_cap(heap_cap, holder.base(), victim)
            .unwrap();
        h.free(&mut m, victim).unwrap();
        h.wait_revocation_complete(&mut m).unwrap();
        // Force passes to complete for the software case too.
        h.start_revocation(&mut m).unwrap();
        h.wait_revocation_complete(&mut m).unwrap();
        let stale = m.meter().load_cap(heap_cap, holder.base()).unwrap();
        assert!(!stale.tag(), "{kind:?}: stale heap-internal cap survived");
    }
}

#[test]
fn coalescing_restores_big_chunks() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::None);
    let caps: Vec<_> = (0..8).map(|_| h.malloc(&mut m, 1000).unwrap()).collect();
    for c in caps {
        h.free(&mut m, c).unwrap();
    }
    h.check_consistency(&m).unwrap();
    // After freeing everything the heap must serve one large chunk again
    // (representability padding keeps the max single allocation somewhat
    // below raw capacity).
    let big = h.malloc(&mut m, 200 * 1024).expect("coalesced");
    h.free(&mut m, big).unwrap();
    h.check_consistency(&m).unwrap();
}

#[test]
fn random_churn_keeps_heap_consistent() {
    for policy in ALL_POLICIES {
        let mut m = machine();
        let mut h = heap(&mut m, policy);
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let mut live: Vec<Capability> = Vec::new();
        for step in 0..400 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let len = *[16u32, 24, 48, 100, 256, 511, 600, 2048, 9000]
                    .iter()
                    .filter(|_| true)
                    .nth(rng.gen_range(0..9))
                    .unwrap();
                match h.malloc(&mut m, len) {
                    Ok(c) => live.push(c),
                    Err(AllocError::OutOfMemory) => {
                        // Free something and move on.
                        if let Some(c) = live.pop() {
                            h.free(&mut m, c).unwrap();
                        }
                    }
                    Err(e) => panic!("{policy:?} step {step}: {e}"),
                }
            } else {
                let i = rng.gen_range(0..live.len());
                let c = live.swap_remove(i);
                h.free(&mut m, c).unwrap();
            }
            if step % 97 == 0 {
                h.check_consistency(&m)
                    .unwrap_or_else(|e| panic!("{policy:?} step {step}: {e}"));
            }
        }
        for c in live {
            h.free(&mut m, c).unwrap();
        }
        h.check_consistency(&m).unwrap();
    }
}

#[test]
fn quarantine_holds_at_most_three_lists() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    h.quarantine_threshold = 4096;
    for _ in 0..200 {
        let c = h.malloc(&mut m, 128).unwrap();
        h.free(&mut m, c).unwrap();
    }
    // QuarantineSet tracks its own high-water mark; the paper bounds it at 3.
    // (Accessible via the consistency of draining — verified indirectly by
    // the allocator completing without unbounded growth.)
    assert!(h.stats().quarantined_bytes <= h.capacity());
    h.check_consistency(&m).unwrap();
}

#[test]
fn temporal_policies_cost_ordering() {
    // Cycles: Baseline < Metadata < {Software, Hardware}; Hardware < Software
    // for sweep-heavy workloads (the headline of Figures 5/6).
    let mut costs = Vec::new();
    for policy in ALL_POLICIES {
        let mut m = machine();
        let mut h = heap(&mut m, policy);
        h.quarantine_threshold = 64 * 1024;
        let t0 = m.cycles;
        for _ in 0..200 {
            let c = h.malloc(&mut m, 4096).unwrap();
            h.free(&mut m, c).unwrap();
        }
        // Let any in-flight pass finish so costs are comparable.
        h.wait_revocation_complete(&mut m).unwrap();
        costs.push(m.cycles - t0);
    }
    let (baseline, metadata, software, hardware) = (costs[0], costs[1], costs[2], costs[3]);
    assert!(baseline < metadata, "{costs:?}");
    assert!(metadata < software, "{costs:?}");
    assert!(hardware < software, "{costs:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_churn_no_overlap_and_consistent(seed in any::<u64>()) {
        let mut m = machine();
        let mut h = heap(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live: Vec<Capability> = Vec::new();
        for _ in 0..120 {
            if live.is_empty() || rng.gen_bool(0.55) {
                let len = rng.gen_range(1u32..3000);
                if let Ok(c) = h.malloc(&mut m, len) {
                    for prev in &live {
                        let disjoint = c.top() <= u64::from(prev.base())
                            || u64::from(c.base()) >= prev.top();
                        prop_assert!(disjoint);
                    }
                    live.push(c);
                }
            } else {
                let i = rng.gen_range(0..live.len());
                let c = live.swap_remove(i);
                prop_assert!(h.free(&mut m, c).is_ok());
            }
        }
        prop_assert!(h.check_consistency(&m).is_ok());
    }
}

#[test]
fn realloc_grows_and_preserves_contents() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
    let a = h.malloc(&mut m, 32).unwrap();
    for i in 0..8u32 {
        m.meter().store(a, a.base() + i * 4, 4, 100 + i).unwrap();
    }
    let b = h.realloc(&mut m, a, 256).unwrap();
    assert!(b.length() >= 256);
    for i in 0..8u32 {
        assert_eq!(
            m.meter().load(b, b.base() + i * 4, 4).unwrap(),
            100 + i,
            "payload preserved"
        );
    }
    // The old allocation is dead: double-free/realloc on it is rejected...
    assert_eq!(h.free(&mut m, a), Err(AllocError::InvalidFree));
    // ...and its revocation bits are painted.
    assert!(m.bitmap.is_revoked(a.base()));
    h.free(&mut m, b).unwrap();
    h.check_consistency(&m).unwrap();
}

#[test]
fn realloc_shrinks_in_place() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::None);
    let a = h.malloc(&mut m, 256).unwrap();
    let base = a.base();
    let b = h.realloc(&mut m, a, 64).unwrap();
    assert_eq!(b.base(), base, "shrink stays in place");
    assert_eq!(b.length(), 64);
    assert_eq!(h.live_allocations(), 1);
    h.free(&mut m, b).unwrap();
    h.check_consistency(&m).unwrap();
}

#[test]
fn realloc_rejects_garbage() {
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::None);
    let a = h.malloc(&mut m, 32).unwrap();
    assert!(h.realloc(&mut m, a.cleared(), 64).is_err());
    assert!(h.realloc(&mut m, a, 0).is_err());
    let mid = a.incremented(8).set_bounds(8).unwrap();
    assert!(h.realloc(&mut m, mid, 64).is_err());
    h.free(&mut m, a).unwrap();
}

#[test]
fn metadata_policy_clears_bits_before_reuse() {
    // In the Metadata configuration there is no sweep, so bits painted at
    // free must be cleared when the memory is reallocated — otherwise the
    // load filter would strike live capabilities.
    let mut m = machine();
    let mut h = heap(&mut m, TemporalPolicy::MetadataOnly);
    let a = h.malloc(&mut m, 64).unwrap();
    let base = a.base();
    h.free(&mut m, a).unwrap();
    assert!(m.bitmap.is_revoked(base), "painted at free");
    let b = h.malloc(&mut m, 64).unwrap();
    assert_eq!(b.base(), base, "immediate reuse in Metadata mode");
    assert!(!m.bitmap.is_revoked(base), "cleared at reuse");
    // A freshly stored+loaded capability to it survives the filter.
    let slot = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE + 64)
        .set_bounds(8)
        .unwrap();
    m.meter().store_cap(slot, slot.base(), b).unwrap();
    let loaded = m.meter().load_cap(slot, slot.base()).unwrap();
    assert!(loaded.tag());
    h.free(&mut m, b).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_realloc_churn_consistent(seed in any::<u64>()) {
        let mut m = machine();
        let mut h = heap(&mut m, TemporalPolicy::Quarantine(RevokerKind::Hardware));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live: Vec<Capability> = Vec::new();
        for _ in 0..80 {
            match rng.gen_range(0..3) {
                0 => {
                    if let Ok(c) = h.malloc(&mut m, rng.gen_range(8..1024)) {
                        live.push(c);
                    }
                }
                1 if !live.is_empty() => {
                    let i = rng.gen_range(0..live.len());
                    let c = live.swap_remove(i);
                    prop_assert!(h.free(&mut m, c).is_ok());
                }
                2 if !live.is_empty() => {
                    let i = rng.gen_range(0..live.len());
                    let c = live.swap_remove(i);
                    match h.realloc(&mut m, c, rng.gen_range(8..2048)) {
                        Ok(n) => live.push(n),
                        // Like C realloc: on failure the original is intact.
                        Err(AllocError::OutOfMemory) => live.push(c),
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                _ => {}
            }
        }
        prop_assert!(h.check_consistency(&m).is_ok());
        for c in live {
            prop_assert!(h.free(&mut m, c).is_ok());
        }
        prop_assert!(h.check_consistency(&m).is_ok());
    }
}
