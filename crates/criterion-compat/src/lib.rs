//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the dev-dependency
//! `criterion` is path-renamed to this crate. It implements
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_custom`], [`black_box`], and both
//! forms of [`criterion_group!`] plus [`criterion_main!`].
//!
//! Instead of criterion's statistical machinery, each benchmark is run for
//! a fixed number of timed samples after a calibration pass and the
//! median/min/max per-iteration times are printed. That keeps
//! `cargo bench` meaningful (and `cargo bench --no-run` compiling) without
//! any external dependencies.

use std::time::{Duration, Instant};

/// Opaque value barrier; defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing state handed to the measured closure.
pub struct Bencher {
    /// Measured per-iteration durations, one per sample.
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Times `f`, auto-scaling the iteration count so one sample takes a
    /// measurable amount of wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count taking >= ~1 ms per sample.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }

    /// Times via a user-supplied measurement: `f` receives an iteration
    /// count and returns the total duration for that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        const ITERS: u64 = 1;
        for _ in 0..self.sample_count {
            self.samples.push(f(ITERS) / ITERS as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<40} median {:>12?}  (min {:?}, max {:?}, {} samples)",
            median,
            min,
            max,
            sorted.len()
        );
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Disables plot generation (a no-op here; kept for API parity).
    pub fn without_plots(self) -> Criterion {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name.as_ref());
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.as_ref().to_string(),
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name.as_ref()));
        self
    }

    /// Finishes the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, in either the simple
/// `criterion_group!(name, target, ..)` or the
/// `criterion_group! { name = ..; config = ..; targets = .. }` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| std::time::Duration::from_nanos(42 * iters))
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
