//! Architectural CPU state: the capability register file, special
//! capability registers, interrupt posture, and the stack-high-water-mark
//! CSRs.

use crate::insn::{Reg, ScrId};
use cheriot_cap::Capability;

/// Architectural state of a CHERIoT hart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cpu {
    regs: [Capability; 16],
    /// Program counter capability. Its address is the PC.
    pub pcc: Capability,
    /// Machine trap code capability (trap vector).
    pub mtcc: Capability,
    /// Machine trap data capability.
    pub mtdc: Capability,
    /// Scratch capability register.
    pub mscratchc: Capability,
    /// Machine exception PC capability.
    pub mepcc: Capability,
    /// Interrupt-enable state (the `mstatus.MIE` analogue; changed only by
    /// sentries, traps and `mret`).
    pub interrupts_enabled: bool,
    /// Saved interrupt-enable state across a trap (`mstatus.MPIE`).
    pub prev_interrupts_enabled: bool,
    /// Trap cause register.
    pub mcause: u32,
    /// Trap value register (faulting address or capability register index).
    pub mtval: u32,
    /// Stack high water mark: lowest stack address stored to (paper §5.2.1).
    pub mshwm: u32,
    /// Stack base register bounding high-water-mark tracking.
    pub mshwmb: u32,
}

impl Cpu {
    /// A CPU at reset: the three capability roots are present in registers
    /// (paper §3.1.1 — `ct0` = memory root, `ct1` = sealing root) and PCC is
    /// the executable root. Early boot software derives everything from
    /// these and erases them.
    pub fn at_reset() -> Cpu {
        let mut regs = [Capability::null(); 16];
        regs[Reg::T0.0 as usize] = Capability::root_mem_rw();
        regs[Reg::T1.0 as usize] = Capability::root_sealing();
        Cpu {
            regs,
            pcc: Capability::root_executable(),
            mtcc: Capability::null(),
            mtdc: Capability::null(),
            mscratchc: Capability::null(),
            mepcc: Capability::null(),
            interrupts_enabled: false,
            prev_interrupts_enabled: false,
            mcause: 0,
            mtval: 0,
            mshwm: 0,
            mshwmb: 0,
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pcc.address()
    }

    /// Reads a register; `x0` always reads as the integer zero.
    pub fn read(&self, r: Reg) -> Capability {
        if r.0 == 0 {
            Capability::null()
        } else {
            self.regs[(r.0 & 0xf) as usize]
        }
    }

    /// Reads a register's address field as an integer.
    pub fn read_int(&self, r: Reg) -> u32 {
        self.read(r).address()
    }

    /// Writes a register; writes to `x0` are discarded.
    pub fn write(&mut self, r: Reg, v: Capability) {
        if r.0 != 0 {
            self.regs[(r.0 & 0xf) as usize] = v;
        }
    }

    /// Writes an integer result (an untagged capability whose address is
    /// the value — how CHERIoT GPRs hold non-pointer data).
    pub fn write_int(&mut self, r: Reg, v: u32) {
        self.write(r, Capability::null().with_address(v));
    }

    /// Accesses a special capability register.
    pub fn scr(&self, id: ScrId) -> Capability {
        match id {
            ScrId::Mtcc => self.mtcc,
            ScrId::Mtdc => self.mtdc,
            ScrId::MScratchC => self.mscratchc,
            ScrId::Mepcc => self.mepcc,
        }
    }

    /// Replaces a special capability register.
    pub fn set_scr(&mut self, id: ScrId, v: Capability) {
        match id {
            ScrId::Mtcc => self.mtcc = v,
            ScrId::Mtdc => self.mtdc = v,
            ScrId::MScratchC => self.mscratchc = v,
            ScrId::Mepcc => self.mepcc = v,
        }
    }

    /// Updates the stack high water mark for a store at `addr` (paper
    /// §5.2.1): tracks the lowest store address within `[mshwmb, mshwm)`.
    pub fn note_store(&mut self, addr: u32) {
        if addr >= self.mshwmb && addr < self.mshwm {
            self.mshwm = addr & !0x7;
        }
    }
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::at_reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_has_roots() {
        let cpu = Cpu::at_reset();
        assert!(cpu.read(Reg::T0).tag());
        assert!(cpu.read(Reg::T1).tag());
        assert!(cpu.pcc.tag());
        assert!(!cpu.interrupts_enabled);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut cpu = Cpu::at_reset();
        cpu.write(Reg::ZERO, Capability::root_mem_rw());
        assert!(!cpu.read(Reg::ZERO).tag());
        assert_eq!(cpu.read_int(Reg::ZERO), 0);
    }

    #[test]
    fn int_writes_are_untagged() {
        let mut cpu = Cpu::at_reset();
        cpu.write_int(Reg::A0, 0x1234);
        assert!(!cpu.read(Reg::A0).tag());
        assert_eq!(cpu.read_int(Reg::A0), 0x1234);
    }

    #[test]
    fn hwm_tracks_lowest_store_in_window() {
        let mut cpu = Cpu::at_reset();
        cpu.mshwmb = 0x2000_0000;
        cpu.mshwm = 0x2000_1000;
        cpu.note_store(0x2000_0804);
        assert_eq!(cpu.mshwm, 0x2000_0800);
        cpu.note_store(0x2000_0900); // above the mark: no change
        assert_eq!(cpu.mshwm, 0x2000_0800);
        cpu.note_store(0x1fff_0000); // below the base: no change
        assert_eq!(cpu.mshwm, 0x2000_0800);
    }
}
