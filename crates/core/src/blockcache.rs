//! Predecoded basic-block cache: decode-once execution for the run loop.
//!
//! The interpreter's per-instruction cost is dominated not by executing the
//! instruction but by re-deriving everything around it: the PCC fetch
//! check, the code-region range/alignment checks, the bounds-checked code
//! lookup, and the cost-model matches (`instr_cycles`, `mem_beats`,
//! `sources`) — all recomputed for the same loop body millions of times.
//! This module caches that work per *basic block*: on first execution of a
//! PC the machine decodes forward until a control-flow/trap-boundary
//! instruction ([`crate::insn::Instr::is_block_boundary`]) and stores the
//! run of [`PredecodedInsn`]s; subsequent visits dispatch straight down the
//! block.
//!
//! Three dispatch accelerators layer on top (DESIGN.md §13), all per-slot
//! sidecar state invalidated wholesale by the generation counter:
//!
//! * **Superblocks**: decode chases unconditional forward jumps
//!   (`jal x0, +off`) instead of ending the block, so straight-line-plus-
//!   glue code predecodes as one block covering several [`Block::ranges`].
//! * **Successor links**: each slot carries up to two weak links
//!   `(generation, next_pc, PCC fingerprint) → successor slot` recorded by
//!   the chained dispatch loop; a matching link lets the loop jump block to
//!   block without re-running the PCC fetch check or touching the slot
//!   table's lookup path.
//! * **Sentry inline caches**: a slot whose block ends in `cjalr` caches
//!   the last observed `(target capability word) → (target PCC, posture
//!   effect, successor slot)` so repeat sentry calls — the RTOS cross-call
//!   shape — skip the whole capability validation re-run.
//!
//! Coherence is exact and conservative:
//!
//! * Any overwrite of loaded code ([`crate::machine::Machine::patch_code`]
//!   — self-modifying code and `cheriot-fault` code-region injections)
//!   invalidates every cached block covering the patched address.
//! * Appending code ([`crate::machine::Machine::try_load_program`]) drops
//!   blocks that ended exactly at the old end of code, so a block truncated
//!   by running out of instructions re-extends over the new code.
//! * Every invalidation bumps a generation counter
//!   ([`BlockCacheStats::generation`]) that external layers (fault
//!   campaigns, tests) can watch to confirm their mutations took effect.
//!   Links and inline caches embed the generation they were recorded
//!   under and die on any mismatch, so a single counter bump retires every
//!   link in the machine at once — no per-link invalidation walk.
//!
//! The cache stores `Arc<Block>` so a [`crate::machine::Machine`] stays
//! `Send` (fault campaigns fan machines out across `thread::scope`) and so
//! the run loop can hold a block while mutating the machine through
//! `&mut self`. Links and inline caches live in the per-machine slot
//! sidecar, *never* inside the shared `Arc<Block>`: forked machines execute
//! the same `Arc<Block>`s concurrently across threads, so mutable dispatch
//! state inside a block would be a data race (and would leak one fork's
//! control-flow history into another).

use crate::insn::{Instr, Reg};
use crate::machine::layout;
use crate::pipeline::CoreModel;
use cheriot_cap::Capability;
use std::sync::Arc;

/// Maximum instructions per cached block (superblocks included).
pub const MAX_BLOCK_LEN: usize = 64;

/// Maximum distance, in code words, of any instruction a block may cover
/// from the block's start slot. Linear decode is already bounded by
/// [`MAX_BLOCK_LEN`]; superblock chasing can skip forward, and this bounds
/// how far, which in turn bounds the invalidation scan window (a patch at
/// `addr` can only be covered by blocks starting within `MAX_COVER_SPAN -
/// 1` slots before it).
pub const MAX_COVER_SPAN: usize = 256;

/// One instruction with everything the dispatch loop needs precomputed.
#[derive(Clone, Copy, Debug)]
pub struct PredecodedInsn {
    /// Address of this instruction. Consecutive within a segment;
    /// discontinuous across a chased jump (superblocks).
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// Base cycle cost from the core model, with the load-filter CLC
    /// penalty already folded in (both are fixed at machine construction).
    /// For a chased unconditional jump, the jump penalty is folded in too
    /// (its cost is unconditional by definition).
    pub base_cycles: u64,
    /// Memory-unit beats (cycles unavailable to the background revoker).
    pub mem_beats: u64,
    /// Source registers, for the load-to-use hazard check.
    pub srcs: [Option<Reg>; 2],
    /// Must the dispatch loop consult the pending load-to-use hazard
    /// before this instruction? True only when the previous instruction in
    /// the block is a load (the only setters of the hazard), or for the
    /// first instruction (the hazard can cross a block entry).
    pub check_hazard: bool,
}

/// One element of a block's *fast stream* — the representation the chained
/// dispatch loop's unchecked inner loop executes (DESIGN.md §13). The
/// stream mirrors a statically-fast prefix of [`Block::insns`], except
/// chased unconditional jumps are folded into the instruction that follows
/// them: the jump's retirement and (penalty-folded) cycles ride along on
/// this element instead of paying their own dispatch. The fold is
/// unobservable precisely where the stream is used: the unchecked loop
/// only runs once the block's [`Block::worst_cycles`] bound has proven no
/// budget or interrupt boundary can fire inside the block, and tracers
/// (which want per-instruction events) disable it. On a dynamic bail-out
/// nothing of the element has executed and the checked loop resumes at
/// [`FastOp::resume`].
#[derive(Clone, Copy, Debug)]
pub struct FastOp {
    /// The instruction to execute (never a chased jump).
    pub d: PredecodedInsn,
    /// Combined base cycles: the instruction's own plus any folded jumps'.
    pub cycles: u64,
    /// Instructions this element retires (1 + folded jumps).
    pub retires: u32,
    /// [`Block::insns`] index to resume checked execution at when this
    /// element bails out (the first folded jump, or the instruction
    /// itself) — everything before it has fully executed.
    pub resume: u32,
    /// Load-to-use hazard gate of the element's *first* covered
    /// instruction (a folded jump consumes a pending hazard without
    /// charging it, exactly like the checked loop would).
    pub check_hazard: bool,
    /// Source registers of the first covered instruction.
    pub srcs: [Option<Reg>; 2],
}

/// A predecoded (super)block: instructions in execution order, ending at a
/// control-flow/trap boundary, the end of loaded code, [`MAX_BLOCK_LEN`]
/// or [`MAX_COVER_SPAN`]. Unconditional forward jumps may be interior
/// (chased during decode), so the covered addresses form one or more
/// disjoint, ascending [`Block::ranges`].
#[derive(Debug)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u32,
    /// Address one past the last instruction (exclusive) — the end of the
    /// final segment of [`Block::ranges`].
    pub end: u32,
    /// The instructions, in execution order. Never empty.
    pub insns: Box<[PredecodedInsn]>,
    /// Covered address segments `[start, end)`, in execution order. A
    /// straight block has exactly one. The PCC fetch verification must
    /// cover every segment.
    pub ranges: Box<[(u32, u32)]>,
    /// Upper bound on the cycles one full pass over the block can accrue
    /// on non-trapping paths: every instruction's `base_cycles`, the
    /// worst-case load-to-use stall wherever the hazard is checked, and
    /// the worst control-flow penalty of the final instruction. The
    /// chained dispatch loop uses it to prove, at block entry, that no
    /// cycle-budget or timer-interrupt boundary can fire *inside* the
    /// block — and then runs the block's inline arms without the
    /// per-instruction checks (DESIGN.md §13).
    pub worst_cycles: u64,
    /// The fast stream: the longest statically-fast prefix of `insns`
    /// re-expressed as [`FastOp`]s (chased jumps folded into their
    /// successors). Empty when the block opens with an instruction the
    /// inline arms cannot handle.
    pub fast: Box<[FastOp]>,
    /// `insns` index of the first instruction *not* covered by `fast` —
    /// where checked execution resumes after the whole stream ran.
    pub fast_end: u32,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Blocks are never empty; this exists for clippy's `len`/`is_empty`
    /// pairing convention.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Does any covered segment contain `addr`?
    #[inline]
    pub fn covers(&self, addr: u32) -> bool {
        self.ranges.iter().any(|&(s, e)| s <= addr && addr < e)
    }
}

/// Hit/miss/invalidation counters plus the coherence generation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Block dispatches served from the cache by the outer lookup path.
    pub hits: u64,
    /// Blocks built (first execution of a start PC).
    pub misses: u64,
    /// Cached blocks discarded by invalidation.
    pub invalidated: u64,
    /// Bumped on every invalidation event (patch, append, flush), even
    /// when no cached block was affected: observers compare generations to
    /// confirm a code mutation was seen by the cache. Successor links and
    /// sentry inline caches record the generation they were made under
    /// and are dead the moment it moves.
    pub generation: u64,
    /// Block-to-block transitions taken through a successor link (no
    /// dispatcher return, no PCC fetch re-check).
    pub chain_hits: u64,
    /// Successor links recorded.
    pub chain_links: u64,
    /// `cjalr` dispatches served by a slot's sentry inline cache.
    pub sentry_ic_hits: u64,
    /// `cjalr` dispatches that missed the inline cache (including the
    /// install miss).
    pub sentry_ic_misses: u64,
}

/// One weak successor link: valid only while the recorded generation is
/// current *and* the departing PCC fingerprint matches, in which case the
/// target block is known to sit at `target_slot` already verified for
/// fetch under these PCC bounds.
#[derive(Clone, Copy, Debug, Default)]
struct BlockLink {
    /// Recorded generation + 1 (0 = empty slot).
    gen_plus1: u64,
    /// The successor's start address this link was recorded for.
    next_pc: u32,
    /// PCC fetch fingerprint ([`Capability::fetch_fingerprint`]) the
    /// successor was verified under.
    fp_base: u32,
    fp_top: u64,
    /// Slot index of the successor block.
    target_slot: u32,
}

impl BlockLink {
    #[inline]
    fn matches(&self, gen: u64, next_pc: u32, fp: (u32, u64)) -> bool {
        self.gen_plus1 == gen + 1
            && self.next_pc == next_pc
            && self.fp_base == fp.0
            && self.fp_top == fp.1
    }
}

/// Monomorphic inline cache for a block ending in `cjalr`: the last
/// successfully jumped-to target capability and everything the dispatch
/// loop needs to replay the jump without re-validating.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SentryIc {
    /// Memory-word encoding of the target capability (its tag was set —
    /// untagged targets fault and are never cached). `to_word` covers the
    /// address, bounds, otype and permissions, so a word match implies the
    /// identical unseal/jump result.
    pub cap_word: u64,
    /// The PCC `cjalr` installed for this target (unsealed, offset folded).
    pub target_pcc: Capability,
    /// Interrupt-posture effect of the sentry: `Some(enable)` switches the
    /// posture, `None` leaves it alone (unsealed targets, inherit
    /// sentries).
    pub posture: Option<bool>,
    /// Slot of the successor block, verified for fetch under `fp`.
    pub target_slot: u32,
    /// Fetch fingerprint of `target_pcc`.
    pub fp: (u32, u64),
}

/// Per-slot dispatch sidecar: two successor links (taken / fall-through of
/// the block *starting* at this slot) and the sentry inline cache.
#[derive(Clone, Copy, Debug, Default)]
struct SlotLinks {
    links: [BlockLink; 2],
    /// Generation + 1 the inline cache was recorded under (0 = empty).
    ic_gen_plus1: u64,
    ic: Option<SentryIc>,
}

/// PC-indexed store of predecoded blocks (one slot per code word, keyed by
/// the block's start address).
///
/// `Clone` is cheap sharing, not duplication: the slot table holds
/// `Arc<Block>`, so a clone bumps one refcount per resident block and the
/// decoded instructions themselves are shared. Snapshots rely on this so
/// forked machines inherit predecoded blocks instead of re-decoding. The
/// links sidecar is plain `Copy` data and is cloned by value — each
/// machine then mutates only its own copy.
#[derive(Clone, Debug, Default)]
pub struct BlockCache {
    slots: Vec<Option<Arc<Block>>>,
    /// Successor links + sentry inline caches, parallel to `slots`.
    links: Vec<SlotLinks>,
    /// Counters; the machine exposes them via
    /// [`crate::machine::Machine::block_stats`].
    pub stats: BlockCacheStats,
}

impl BlockCache {
    /// Slot index for a code address, if it is in the code region and
    /// word-aligned.
    fn slot_of(addr: u32) -> Option<usize> {
        if addr < layout::CODE_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        Some(((addr - layout::CODE_BASE) / 4) as usize)
    }

    /// The cached block starting at slot `idx`, if any.
    #[inline]
    pub fn lookup(&self, idx: usize) -> Option<Arc<Block>> {
        self.slots.get(idx)?.clone()
    }

    /// Moves the cached block starting at slot `idx` out of the table.
    /// The dispatch loop owns the block while executing it — a move in
    /// and out instead of an atomic refcount round-trip per executed
    /// block — and returns it with [`BlockCache::restore`]. Nothing that
    /// runs between the two can touch the cache (invalidation only
    /// happens through external `Machine` APIs, never mid-run).
    #[inline]
    pub fn take(&mut self, idx: usize) -> Option<Arc<Block>> {
        self.slots.get_mut(idx)?.take()
    }

    /// Returns a block taken by [`BlockCache::take`] (or freshly built by
    /// the miss path) to its slot.
    #[inline]
    pub fn restore(&mut self, idx: usize, block: Arc<Block>) {
        self.slots[idx] = Some(block);
    }

    /// Stores `block` at slot `idx`, growing the slot table to cover
    /// `code_words` instruction words.
    pub fn insert(&mut self, idx: usize, block: Arc<Block>, code_words: usize) {
        if self.slots.len() < code_words {
            self.slots.resize(code_words, None);
        }
        if self.links.len() < self.slots.len() {
            self.links.resize(self.slots.len(), SlotLinks::default());
        }
        self.stats.misses += 1;
        self.slots[idx] = Some(block);
    }

    /// Looks up a live successor link out of slot `from`: current
    /// generation, same successor address, same PCC fingerprint. Returns
    /// the successor's slot.
    #[inline]
    pub(crate) fn link_lookup(
        &self,
        from: usize,
        gen: u64,
        next_pc: u32,
        fp: (u32, u64),
    ) -> Option<usize> {
        let sl = self.links.get(from)?;
        sl.links
            .iter()
            .find(|l| l.matches(gen, next_pc, fp))
            .map(|l| l.target_slot as usize)
    }

    /// Records a successor link out of slot `from` (most-recent-first,
    /// two-way: a conditional branch keeps both its edges linked).
    #[inline]
    pub(crate) fn link_insert(
        &mut self,
        from: usize,
        gen: u64,
        next_pc: u32,
        fp: (u32, u64),
        target_slot: usize,
    ) {
        let Some(sl) = self.links.get_mut(from) else {
            return;
        };
        let fresh = BlockLink {
            gen_plus1: gen + 1,
            next_pc,
            fp_base: fp.0,
            fp_top: fp.1,
            target_slot: target_slot as u32,
        };
        if !sl.links[0].matches(gen, next_pc, fp) {
            sl.links[1] = sl.links[0];
        }
        sl.links[0] = fresh;
        self.stats.chain_links += 1;
    }

    /// The sentry inline cache of slot `from`, if current and keyed by the
    /// same capability word.
    #[inline]
    pub(crate) fn ic_lookup(&self, from: usize, gen: u64, cap_word: u64) -> Option<SentryIc> {
        let sl = self.links.get(from)?;
        if sl.ic_gen_plus1 != gen + 1 {
            return None;
        }
        sl.ic.filter(|ic| ic.cap_word == cap_word)
    }

    /// Installs (or replaces — the cache is monomorphic) slot `from`'s
    /// sentry inline cache.
    #[inline]
    pub(crate) fn ic_insert(&mut self, from: usize, gen: u64, ic: SentryIc) {
        if let Some(sl) = self.links.get_mut(from) {
            sl.ic_gen_plus1 = gen + 1;
            sl.ic = Some(ic);
        }
    }

    /// Drops every cached block covering `addr` through any of its ranges
    /// (there can be several: slow-path entry mid-block builds overlapping
    /// suffix blocks; superblocks cover disjoint segments). Returns the
    /// number discarded. Always bumps the generation: the *code* changed
    /// whether or not a block cached it — and the bump alone retires every
    /// successor link and inline cache.
    pub fn invalidate_covering(&mut self, addr: u32) -> u64 {
        self.stats.generation += 1;
        let Some(slot) = Self::slot_of(addr & !3) else {
            return 0;
        };
        if self.slots.is_empty() {
            return 0;
        }
        let lo = slot.saturating_sub(MAX_COVER_SPAN - 1);
        let hi = slot.min(self.slots.len() - 1);
        let mut removed = 0;
        for s in lo..=hi {
            if let Some(b) = &self.slots[s] {
                if b.covers(addr) {
                    self.slots[s] = None;
                    removed += 1;
                }
            }
        }
        self.stats.invalidated += removed;
        removed
    }

    /// Called after code is appended at `old_end` (the previous exclusive
    /// end of the code region): drops blocks that ended exactly there, so a
    /// block truncated by the end of loaded code is rebuilt over the new
    /// instructions. (Only a block's *final* segment can be truncated by
    /// the code end — forward chasing never targets the last loaded word —
    /// so checking `end` still suffices for superblocks.) Returns the
    /// number discarded.
    pub fn on_append(&mut self, old_end: u32) -> u64 {
        self.stats.generation += 1;
        let Some(end_slot) = Self::slot_of(old_end) else {
            return 0;
        };
        let lo = end_slot.saturating_sub(MAX_COVER_SPAN);
        let mut removed = 0;
        for s in lo..end_slot.min(self.slots.len()) {
            if let Some(b) = &self.slots[s] {
                if b.end == old_end {
                    self.slots[s] = None;
                    removed += 1;
                }
            }
        }
        self.stats.invalidated += removed;
        removed
    }

    /// Discards every cached block (full flush), bumping the generation
    /// (which also retires every link and inline cache).
    pub fn clear(&mut self) {
        let resident = self.resident() as u64;
        for s in &mut self.slots {
            *s = None;
        }
        self.stats.invalidated += resident;
        self.stats.generation += 1;
    }

    /// Number of blocks currently cached.
    pub fn resident(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// Decodes the block starting at code slot `start_idx`: forward until a
/// control-flow/trap boundary, the end of `code`, [`MAX_BLOCK_LEN`] or
/// [`MAX_COVER_SPAN`]. With `chase`, unconditional forward jumps
/// (`jal x0`) to aligned in-range targets are interior: decode continues
/// at the target (superblocks). `start_idx` must be within `code`.
pub fn build_block(
    code: &[Instr],
    start_idx: usize,
    core: &CoreModel,
    load_filter: bool,
    chase: bool,
) -> Block {
    let start = layout::CODE_BASE + 4 * start_idx as u32;
    let mut insns = Vec::with_capacity(8);
    let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(1);
    let mut seg_start = start;
    let mut idx = start_idx;
    let mut prev_is_load = true; // a hazard can cross the block entry
                                 // Accumulates [`Block::worst_cycles`]: pushed `base_cycles` (chased
                                 // jumps carry their folded penalty), a worst-case stall wherever the
                                 // hazard is consulted, and the final instruction's worst penalty.
    let mut worst_cycles = 0u64;
    while let Some(&instr) = code.get(idx) {
        let pc = layout::CODE_BASE + 4 * idx as u32;
        let mut base_cycles = core.instr_cycles(&instr);
        if load_filter {
            // Same folding as the stepwise loop: the revocation-bit lookup
            // lengthens capability loads where the pipeline cannot hide it.
            if let Instr::Clc { .. } = instr {
                base_cycles += core.filter_load_to_use;
            }
        }
        if chase {
            if let Instr::Jal { rd, offset } = instr {
                let target = pc.wrapping_add(offset as u32);
                // Forward only (backward jumps are loop edges — the
                // successor links handle those without unrolling), and
                // always leaving room for at least one instruction at the
                // target, so a chased jump is never the last instruction
                // (its jump penalty is folded into `base_cycles`; the
                // dispatch loop must never route it through `exec`, which
                // would charge the penalty again).
                if rd == Reg::ZERO
                    && offset % 4 == 0
                    && target > pc
                    && insns.len() + 2 <= MAX_BLOCK_LEN
                {
                    let t_idx = ((target - layout::CODE_BASE) / 4) as usize;
                    if t_idx < code.len() && t_idx - start_idx < MAX_COVER_SPAN {
                        worst_cycles += base_cycles
                            + core.jump_penalty
                            + if prev_is_load { core.load_to_use } else { 0 };
                        insns.push(PredecodedInsn {
                            pc,
                            instr,
                            base_cycles: base_cycles + core.jump_penalty,
                            mem_beats: core.mem_beats(&instr),
                            srcs: instr.sources(),
                            check_hazard: prev_is_load,
                        });
                        prev_is_load = false;
                        ranges.push((seg_start, pc + 4));
                        seg_start = target;
                        idx = t_idx;
                        continue;
                    }
                }
            }
        }
        worst_cycles += base_cycles + if prev_is_load { core.load_to_use } else { 0 };
        insns.push(PredecodedInsn {
            pc,
            instr,
            base_cycles,
            mem_beats: core.mem_beats(&instr),
            srcs: instr.sources(),
            check_hazard: prev_is_load,
        });
        prev_is_load = matches!(instr, Instr::Load { .. } | Instr::Clc { .. });
        idx += 1;
        if instr.is_block_boundary()
            || insns.len() >= MAX_BLOCK_LEN
            || idx - start_idx >= MAX_COVER_SPAN
        {
            break;
        }
    }
    let end = layout::CODE_BASE + 4 * idx as u32;
    ranges.push((seg_start, end));
    // The final instruction may pay a taken-branch or jump penalty on top
    // of its base cost (interior chased jumps already folded theirs in).
    worst_cycles += core.branch_taken_penalty.max(core.jump_penalty);
    // Fast stream: fold chased jumps — interior `jal x0`, identified by
    // position, since every other `jal` ends the block — into the
    // instruction they land on, and stop at the first instruction the
    // inline arms cannot handle.
    let mut fast = Vec::with_capacity(insns.len());
    let mut fast_end = 0u32;
    let mut fold_cycles = 0u64;
    let mut fold_retires = 0u32;
    let mut fold_start: Option<u32> = None;
    let mut fold_hazard: Option<(bool, [Option<Reg>; 2])> = None;
    for (i, d) in insns.iter().enumerate() {
        let interior = i + 1 < insns.len();
        if interior && matches!(d.instr, Instr::Jal { rd, .. } if rd == Reg::ZERO) {
            fold_cycles += d.base_cycles;
            fold_retires += 1;
            if fold_start.is_none() {
                fold_start = Some(i as u32);
                fold_hazard = Some((d.check_hazard, d.srcs));
            }
            continue;
        }
        if !statically_fast(&d.instr) {
            break;
        }
        let (check_hazard, srcs) = fold_hazard.take().unwrap_or((d.check_hazard, d.srcs));
        fast.push(FastOp {
            d: *d,
            cycles: fold_cycles + d.base_cycles,
            retires: fold_retires + 1,
            resume: fold_start.take().unwrap_or(i as u32),
            check_hazard,
            srcs,
        });
        fold_cycles = 0;
        fold_retires = 0;
        fast_end = i as u32 + 1;
    }
    Block {
        start,
        end,
        insns: insns.into_boxed_slice(),
        ranges: ranges.into_boxed_slice(),
        worst_cycles,
        fast: fast.into_boxed_slice(),
        fast_end,
    }
}

/// Can the chained dispatch loop's inline arms ([`exec_fast` in
/// `machine.rs`]) handle this instruction? Must stay in lockstep with the
/// arms in the conservative direction only: `false` for a handled
/// instruction merely shortens the fast stream, while the arms themselves
/// decide dynamically (SRAM hit, passing capability check) whether to
/// execute or bail, so a statically-fast instruction that cannot be
/// handled at runtime still falls back correctly.
fn statically_fast(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Lui { .. }
            | Instr::OpImm { .. }
            | Instr::Op { .. }
            | Instr::MulDiv { .. }
            | Instr::Load { .. }
            | Instr::Clc { .. }
            | Instr::Store { .. }
            | Instr::Csc { .. }
            | Instr::CGet { .. }
            | Instr::CSetAddr { .. }
            | Instr::CIncAddr { .. }
            | Instr::CIncAddrImm { .. }
            | Instr::CSetBounds { .. }
            | Instr::CSetBoundsImm { .. }
            | Instr::CAndPerm { .. }
            | Instr::CClearTag { .. }
            | Instr::CMove { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, BranchCond};

    fn nopish(n: usize) -> Vec<Instr> {
        vec![Instr::NOP; n]
    }

    #[test]
    fn block_ends_at_control_flow() {
        let mut code = nopish(3);
        code.push(Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: -12,
        });
        code.extend(nopish(4));
        let b = build_block(&code, 0, &CoreModel::ibex(), true, true);
        assert_eq!(b.len(), 4, "three nops plus the branch");
        assert_eq!(b.start, layout::CODE_BASE);
        assert_eq!(b.end, layout::CODE_BASE + 16);
        assert_eq!(&*b.ranges, &[(layout::CODE_BASE, layout::CODE_BASE + 16)]);
    }

    #[test]
    fn block_truncates_at_code_end_and_max_len() {
        let code = nopish(5);
        let b = build_block(&code, 2, &CoreModel::flute(), false, true);
        assert_eq!(b.len(), 3, "runs to the end of loaded code");
        let long = nopish(MAX_BLOCK_LEN * 2);
        let b = build_block(&long, 0, &CoreModel::flute(), false, true);
        assert_eq!(b.len(), MAX_BLOCK_LEN);
    }

    #[test]
    fn clc_filter_penalty_is_baked_in() {
        let clc = Instr::Clc {
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
        };
        let core = CoreModel::ibex();
        let with = build_block(&[clc], 0, &core, true, true);
        let without = build_block(&[clc], 0, &core, false, true);
        assert_eq!(
            with.insns[0].base_cycles,
            without.insns[0].base_cycles + core.filter_load_to_use
        );
    }

    #[test]
    fn forward_jal_grows_a_superblock() {
        // addi; j +8 (skips one word); [skipped]; addi; halt
        let code = vec![
            Instr::NOP,
            Instr::Jal {
                rd: Reg::ZERO,
                offset: 8,
            },
            Instr::NOP, // skipped
            Instr::NOP,
            Instr::Halt,
        ];
        let core = CoreModel::ibex();
        let b = build_block(&code, 0, &core, true, true);
        assert_eq!(b.len(), 4, "chased across the jump: nop, jal, nop, halt");
        assert_eq!(
            &*b.ranges,
            &[
                (layout::CODE_BASE, layout::CODE_BASE + 8),
                (layout::CODE_BASE + 12, layout::CODE_BASE + 20),
            ]
        );
        assert_eq!(b.end, layout::CODE_BASE + 20);
        // The chased jump carries its own pc and the folded jump penalty.
        assert_eq!(b.insns[1].pc, layout::CODE_BASE + 4);
        assert_eq!(b.insns[2].pc, layout::CODE_BASE + 12);
        assert_eq!(
            b.insns[1].base_cycles,
            core.instr_cycles(&code[1]) + core.jump_penalty
        );
        assert!(b.covers(layout::CODE_BASE + 4));
        assert!(!b.covers(layout::CODE_BASE + 8), "skipped word not covered");
        assert!(b.covers(layout::CODE_BASE + 12));

        // Chasing off: the jump ends the block as before.
        let b = build_block(&code, 0, &core, true, false);
        assert_eq!(b.len(), 2);
        assert_eq!(b.end, layout::CODE_BASE + 8);
    }

    #[test]
    fn backward_and_linking_jumps_end_blocks() {
        let back = vec![
            Instr::NOP,
            Instr::Jal {
                rd: Reg::ZERO,
                offset: -4,
            },
        ];
        let b = build_block(&back, 0, &CoreModel::ibex(), true, true);
        assert_eq!(b.len(), 2, "backward jump stays a boundary");
        let call = vec![
            Instr::NOP,
            Instr::Jal {
                rd: Reg::RA,
                offset: 8,
            },
            Instr::NOP,
            Instr::NOP,
        ];
        let b = build_block(&call, 0, &CoreModel::ibex(), true, true);
        assert_eq!(b.len(), 2, "linking jump (call) stays a boundary");
    }

    #[test]
    fn invalidate_covering_hits_overlapping_blocks() {
        let mut cache = BlockCache::default();
        let code = nopish(16);
        let core = CoreModel::ibex();
        // Two overlapping blocks: one from slot 0, a suffix from slot 2.
        cache.insert(0, Arc::new(build_block(&code, 0, &core, true, true)), 16);
        cache.insert(2, Arc::new(build_block(&code, 2, &core, true, true)), 16);
        assert_eq!(cache.resident(), 2);
        let removed = cache.invalidate_covering(layout::CODE_BASE + 3 * 4);
        assert_eq!(removed, 2, "both blocks cover slot 3");
        assert_eq!(cache.resident(), 0);
        assert_eq!(cache.stats.invalidated, 2);
        assert_eq!(cache.stats.generation, 1);
    }

    #[test]
    fn invalidation_skips_superblock_holes() {
        // A superblock covering two segments: a patch in the skipped hole
        // must not drop it; a patch in the second segment must.
        let code = vec![
            Instr::NOP,
            Instr::Jal {
                rd: Reg::ZERO,
                offset: 8,
            },
            Instr::NOP, // the hole
            Instr::NOP,
            Instr::Halt,
        ];
        let core = CoreModel::ibex();
        let mut cache = BlockCache::default();
        cache.insert(0, Arc::new(build_block(&code, 0, &core, true, true)), 5);
        assert_eq!(cache.invalidate_covering(layout::CODE_BASE + 8), 0);
        assert_eq!(cache.resident(), 1, "hole patch leaves the block");
        assert_eq!(cache.invalidate_covering(layout::CODE_BASE + 12), 1);
        assert_eq!(cache.resident(), 0, "second-segment patch drops it");
    }

    #[test]
    fn invalidation_outside_any_block_still_bumps_generation() {
        let mut cache = BlockCache::default();
        assert_eq!(cache.invalidate_covering(layout::CODE_BASE), 0);
        assert_eq!(cache.stats.generation, 1);
        assert_eq!(cache.invalidate_covering(0x100), 0); // below code region
        assert_eq!(cache.stats.generation, 2);
    }

    #[test]
    fn on_append_drops_only_blocks_truncated_at_old_end() {
        let mut cache = BlockCache::default();
        let mut code = nopish(4);
        code.push(Instr::Jal {
            rd: Reg::ZERO,
            offset: 0,
        });
        code.extend(nopish(3)); // slots 5..8 fall through to the code end
        let core = CoreModel::ibex();
        cache.insert(0, Arc::new(build_block(&code, 0, &core, true, true)), 8);
        cache.insert(5, Arc::new(build_block(&code, 5, &core, true, true)), 8);
        let old_end = layout::CODE_BASE + 4 * code.len() as u32;
        let removed = cache.on_append(old_end);
        assert_eq!(removed, 1, "only the block ending at the old code end");
        assert!(cache.lookup(0).is_some());
        assert!(cache.lookup(5).is_none());
    }

    #[test]
    fn links_are_generation_guarded_and_two_way() {
        let mut cache = BlockCache::default();
        let code = nopish(16);
        let core = CoreModel::ibex();
        cache.insert(0, Arc::new(build_block(&code, 0, &core, true, true)), 16);
        let gen = cache.stats.generation;
        let fp = (0x8000_0000u32, 0x8001_0000u64);
        cache.link_insert(0, gen, 0x8000_0040, fp, 4);
        cache.link_insert(0, gen, 0x8000_0080, fp, 8);
        assert_eq!(cache.link_lookup(0, gen, 0x8000_0040, fp), Some(4));
        assert_eq!(cache.link_lookup(0, gen, 0x8000_0080, fp), Some(8));
        assert_eq!(cache.stats.chain_links, 2);
        // Different fingerprint: no match.
        let other_fp = (0x8000_0000u32, 0x8000_8000u64);
        assert_eq!(cache.link_lookup(0, gen, 0x8000_0040, other_fp), None);
        // Any invalidation event retires every link at once.
        cache.invalidate_covering(0x100);
        let gen = cache.stats.generation;
        assert_eq!(cache.link_lookup(0, gen, 0x8000_0040, fp), None);
        assert_eq!(cache.link_lookup(0, gen, 0x8000_0080, fp), None);
    }

    #[test]
    fn re_linking_the_same_edge_keeps_the_other_way() {
        let mut cache = BlockCache::default();
        let code = nopish(16);
        let core = CoreModel::ibex();
        cache.insert(0, Arc::new(build_block(&code, 0, &core, true, true)), 16);
        let gen = cache.stats.generation;
        let fp = (0x8000_0000u32, 0x8001_0000u64);
        cache.link_insert(0, gen, 0x8000_0040, fp, 4);
        cache.link_insert(0, gen, 0x8000_0080, fp, 8);
        // Refreshing the hot edge must not evict the cold one.
        cache.link_insert(0, gen, 0x8000_0040, fp, 4);
        assert_eq!(cache.link_lookup(0, gen, 0x8000_0080, fp), Some(8));
    }

    #[test]
    fn boundary_set_matches_issue_list() {
        use Instr::*;
        let enders = [
            Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 0,
            },
            Jal {
                rd: Reg::RA,
                offset: 8,
            },
            Jalr {
                rd: Reg::RA,
                rs1: Reg::A0,
                offset: 0,
            },
            Mret,
            Ecall,
            Ebreak,
            Wfi,
            Fence,
            Halt,
            Csr {
                op: crate::insn::CsrOp::Rw,
                rd: Reg::A0,
                rs1: Reg::A1,
                csr: crate::insn::CsrId::Mcycle,
            },
            CSpecialRw {
                rd: Reg::A0,
                rs1: Reg::A1,
                scr: crate::insn::ScrId::Mtcc,
            },
        ];
        for i in enders {
            assert!(i.is_block_boundary(), "{i:?} must end a block");
        }
        let straight = [
            Instr::NOP,
            Lui {
                rd: Reg::A0,
                imm: 1,
            },
            Op {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Clc {
                rd: Reg::A0,
                rs1: Reg::A1,
                offset: 0,
            },
            Csc {
                rs2: Reg::A0,
                rs1: Reg::A1,
                offset: 0,
            },
        ];
        for i in straight {
            assert!(!i.is_block_boundary(), "{i:?} must not end a block");
        }
    }
}
