//! Predecoded basic-block cache: decode-once execution for the run loop.
//!
//! The interpreter's per-instruction cost is dominated not by executing the
//! instruction but by re-deriving everything around it: the PCC fetch
//! check, the code-region range/alignment checks, the bounds-checked code
//! lookup, and the cost-model matches (`instr_cycles`, `mem_beats`,
//! `sources`) — all recomputed for the same loop body millions of times.
//! This module caches that work per *basic block*: on first execution of a
//! PC the machine decodes forward until a control-flow/trap-boundary
//! instruction ([`crate::insn::Instr::is_block_boundary`]) and stores the
//! run of [`PredecodedInsn`]s; subsequent visits dispatch straight down the
//! block.
//!
//! Coherence is exact and conservative:
//!
//! * Any overwrite of loaded code ([`crate::machine::Machine::patch_code`]
//!   — self-modifying code and `cheriot-fault` code-region injections)
//!   invalidates every cached block covering the patched address.
//! * Appending code ([`crate::machine::Machine::try_load_program`]) drops
//!   blocks that ended exactly at the old end of code, so a block truncated
//!   by running out of instructions re-extends over the new code.
//! * Every invalidation bumps a generation counter
//!   ([`BlockCacheStats::generation`]) that external layers (fault
//!   campaigns, tests) can watch to confirm their mutations took effect.
//!
//! The cache stores `Arc<Block>` so a [`crate::machine::Machine`] stays
//! `Send` (fault campaigns fan machines out across `thread::scope`) and so
//! the run loop can hold a block while mutating the machine through
//! `&mut self`.

use crate::insn::{Instr, Reg};
use crate::machine::layout;
use crate::pipeline::CoreModel;
use std::sync::Arc;

/// Maximum instructions per cached block. Bounds both the invalidation
/// scan window (a patch at `addr` can only be covered by blocks starting
/// within `MAX_BLOCK_LEN - 1` slots before it) and the worst-case overrun
/// of the batched PCC check.
pub const MAX_BLOCK_LEN: usize = 64;

/// One instruction with everything the dispatch loop needs precomputed.
#[derive(Clone, Copy, Debug)]
pub struct PredecodedInsn {
    /// The decoded instruction.
    pub instr: Instr,
    /// Base cycle cost from the core model, with the load-filter CLC
    /// penalty already folded in (both are fixed at machine construction).
    pub base_cycles: u64,
    /// Memory-unit beats (cycles unavailable to the background revoker).
    pub mem_beats: u64,
    /// Source registers, for the load-to-use hazard check.
    pub srcs: [Option<Reg>; 2],
    /// Must the dispatch loop consult the pending load-to-use hazard
    /// before this instruction? True only when the previous instruction in
    /// the block is a load (the only setters of the hazard), or for the
    /// first instruction (the hazard can cross a block entry).
    pub check_hazard: bool,
}

/// A predecoded basic block: a straight run of instructions ending at a
/// control-flow/trap boundary, the end of loaded code, or [`MAX_BLOCK_LEN`].
#[derive(Debug)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u32,
    /// Address one past the last instruction (exclusive).
    pub end: u32,
    /// The instructions, in program order. Never empty.
    pub insns: Box<[PredecodedInsn]>,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Blocks are never empty; this exists for clippy's `len`/`is_empty`
    /// pairing convention.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

/// Hit/miss/invalidation counters plus the coherence generation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Block dispatches served from the cache.
    pub hits: u64,
    /// Blocks built (first execution of a start PC).
    pub misses: u64,
    /// Cached blocks discarded by invalidation.
    pub invalidated: u64,
    /// Bumped on every invalidation event (patch, append, flush), even
    /// when no cached block was affected: observers compare generations to
    /// confirm a code mutation was seen by the cache.
    pub generation: u64,
}

/// PC-indexed store of predecoded blocks (one slot per code word, keyed by
/// the block's start address).
///
/// `Clone` is cheap sharing, not duplication: the slot table holds
/// `Arc<Block>`, so a clone bumps one refcount per resident block and the
/// decoded instructions themselves are shared. Snapshots rely on this so
/// forked machines inherit predecoded blocks instead of re-decoding.
#[derive(Clone, Debug, Default)]
pub struct BlockCache {
    slots: Vec<Option<Arc<Block>>>,
    /// Counters; the machine exposes them via
    /// [`crate::machine::Machine::block_stats`].
    pub stats: BlockCacheStats,
}

impl BlockCache {
    /// Slot index for a code address, if it is in the code region and
    /// word-aligned.
    fn slot_of(addr: u32) -> Option<usize> {
        if addr < layout::CODE_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        Some(((addr - layout::CODE_BASE) / 4) as usize)
    }

    /// The cached block starting at slot `idx`, if any.
    #[inline]
    pub fn lookup(&self, idx: usize) -> Option<Arc<Block>> {
        self.slots.get(idx)?.clone()
    }

    /// Moves the cached block starting at slot `idx` out of the table.
    /// The dispatch loop owns the block while executing it — a move in
    /// and out instead of an atomic refcount round-trip per executed
    /// block — and returns it with [`BlockCache::restore`]. Nothing that
    /// runs between the two can touch the cache (invalidation only
    /// happens through external `Machine` APIs, never mid-run).
    #[inline]
    pub fn take(&mut self, idx: usize) -> Option<Arc<Block>> {
        self.slots.get_mut(idx)?.take()
    }

    /// Returns a block taken by [`BlockCache::take`] (or freshly built by
    /// the miss path) to its slot.
    #[inline]
    pub fn restore(&mut self, idx: usize, block: Arc<Block>) {
        self.slots[idx] = Some(block);
    }

    /// Stores `block` at slot `idx`, growing the slot table to cover
    /// `code_words` instruction words.
    pub fn insert(&mut self, idx: usize, block: Arc<Block>, code_words: usize) {
        if self.slots.len() < code_words {
            self.slots.resize(code_words, None);
        }
        self.stats.misses += 1;
        self.slots[idx] = Some(block);
    }

    /// Drops every cached block whose `[start, end)` range covers `addr`
    /// (there can be several: slow-path entry mid-block builds overlapping
    /// suffix blocks). Returns the number discarded. Always bumps the
    /// generation: the *code* changed whether or not a block cached it.
    pub fn invalidate_covering(&mut self, addr: u32) -> u64 {
        self.stats.generation += 1;
        let Some(slot) = Self::slot_of(addr & !3) else {
            return 0;
        };
        if self.slots.is_empty() {
            return 0;
        }
        let lo = slot.saturating_sub(MAX_BLOCK_LEN - 1);
        let hi = slot.min(self.slots.len() - 1);
        let mut removed = 0;
        for s in lo..=hi {
            if let Some(b) = &self.slots[s] {
                if b.start <= addr && addr < b.end {
                    self.slots[s] = None;
                    removed += 1;
                }
            }
        }
        self.stats.invalidated += removed;
        removed
    }

    /// Called after code is appended at `old_end` (the previous exclusive
    /// end of the code region): drops blocks that ended exactly there, so a
    /// block truncated by the end of loaded code is rebuilt over the new
    /// instructions. Returns the number discarded.
    pub fn on_append(&mut self, old_end: u32) -> u64 {
        self.stats.generation += 1;
        let Some(end_slot) = Self::slot_of(old_end) else {
            return 0;
        };
        let lo = end_slot.saturating_sub(MAX_BLOCK_LEN);
        let mut removed = 0;
        for s in lo..end_slot.min(self.slots.len()) {
            if let Some(b) = &self.slots[s] {
                if b.end == old_end {
                    self.slots[s] = None;
                    removed += 1;
                }
            }
        }
        self.stats.invalidated += removed;
        removed
    }

    /// Discards every cached block (full flush), bumping the generation.
    pub fn clear(&mut self) {
        let resident = self.resident() as u64;
        for s in &mut self.slots {
            *s = None;
        }
        self.stats.invalidated += resident;
        self.stats.generation += 1;
    }

    /// Number of blocks currently cached.
    pub fn resident(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// Decodes the block starting at code slot `start_idx`: forward until a
/// control-flow/trap boundary, the end of `code`, or [`MAX_BLOCK_LEN`].
/// `start_idx` must be within `code`.
pub fn build_block(code: &[Instr], start_idx: usize, core: &CoreModel, load_filter: bool) -> Block {
    let start = layout::CODE_BASE + 4 * start_idx as u32;
    let mut insns = Vec::with_capacity(8);
    let mut prev_is_load = true; // a hazard can cross the block entry
    for &instr in code[start_idx..].iter().take(MAX_BLOCK_LEN) {
        let mut base_cycles = core.instr_cycles(&instr);
        if load_filter {
            // Same folding as the stepwise loop: the revocation-bit lookup
            // lengthens capability loads where the pipeline cannot hide it.
            if let Instr::Clc { .. } = instr {
                base_cycles += core.filter_load_to_use;
            }
        }
        insns.push(PredecodedInsn {
            instr,
            base_cycles,
            mem_beats: core.mem_beats(&instr),
            srcs: instr.sources(),
            check_hazard: prev_is_load,
        });
        prev_is_load = matches!(instr, Instr::Load { .. } | Instr::Clc { .. });
        if instr.is_block_boundary() {
            break;
        }
    }
    let end = start + 4 * insns.len() as u32;
    Block {
        start,
        end,
        insns: insns.into_boxed_slice(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, BranchCond};

    fn nopish(n: usize) -> Vec<Instr> {
        vec![Instr::NOP; n]
    }

    #[test]
    fn block_ends_at_control_flow() {
        let mut code = nopish(3);
        code.push(Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: -12,
        });
        code.extend(nopish(4));
        let b = build_block(&code, 0, &CoreModel::ibex(), true);
        assert_eq!(b.len(), 4, "three nops plus the branch");
        assert_eq!(b.start, layout::CODE_BASE);
        assert_eq!(b.end, layout::CODE_BASE + 16);
    }

    #[test]
    fn block_truncates_at_code_end_and_max_len() {
        let code = nopish(5);
        let b = build_block(&code, 2, &CoreModel::flute(), false);
        assert_eq!(b.len(), 3, "runs to the end of loaded code");
        let long = nopish(MAX_BLOCK_LEN * 2);
        let b = build_block(&long, 0, &CoreModel::flute(), false);
        assert_eq!(b.len(), MAX_BLOCK_LEN);
    }

    #[test]
    fn clc_filter_penalty_is_baked_in() {
        let clc = Instr::Clc {
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
        };
        let core = CoreModel::ibex();
        let with = build_block(&[clc], 0, &core, true);
        let without = build_block(&[clc], 0, &core, false);
        assert_eq!(
            with.insns[0].base_cycles,
            without.insns[0].base_cycles + core.filter_load_to_use
        );
    }

    #[test]
    fn invalidate_covering_hits_overlapping_blocks() {
        let mut cache = BlockCache::default();
        let code = nopish(16);
        let core = CoreModel::ibex();
        // Two overlapping blocks: one from slot 0, a suffix from slot 2.
        cache.insert(0, Arc::new(build_block(&code, 0, &core, true)), 16);
        cache.insert(2, Arc::new(build_block(&code, 2, &core, true)), 16);
        assert_eq!(cache.resident(), 2);
        let removed = cache.invalidate_covering(layout::CODE_BASE + 3 * 4);
        assert_eq!(removed, 2, "both blocks cover slot 3");
        assert_eq!(cache.resident(), 0);
        assert_eq!(cache.stats.invalidated, 2);
        assert_eq!(cache.stats.generation, 1);
    }

    #[test]
    fn invalidation_outside_any_block_still_bumps_generation() {
        let mut cache = BlockCache::default();
        assert_eq!(cache.invalidate_covering(layout::CODE_BASE), 0);
        assert_eq!(cache.stats.generation, 1);
        assert_eq!(cache.invalidate_covering(0x100), 0); // below code region
        assert_eq!(cache.stats.generation, 2);
    }

    #[test]
    fn on_append_drops_only_blocks_truncated_at_old_end() {
        let mut cache = BlockCache::default();
        let mut code = nopish(4);
        code.push(Instr::Jal {
            rd: Reg::ZERO,
            offset: 0,
        });
        code.extend(nopish(3)); // slots 5..8 fall through to the code end
        let core = CoreModel::ibex();
        cache.insert(0, Arc::new(build_block(&code, 0, &core, true)), 8);
        cache.insert(5, Arc::new(build_block(&code, 5, &core, true)), 8);
        let old_end = layout::CODE_BASE + 4 * code.len() as u32;
        let removed = cache.on_append(old_end);
        assert_eq!(removed, 1, "only the block ending at the old code end");
        assert!(cache.lookup(0).is_some());
        assert!(cache.lookup(5).is_none());
    }

    #[test]
    fn boundary_set_matches_issue_list() {
        use Instr::*;
        let enders = [
            Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 0,
            },
            Jal {
                rd: Reg::RA,
                offset: 8,
            },
            Jalr {
                rd: Reg::RA,
                rs1: Reg::A0,
                offset: 0,
            },
            Mret,
            Ecall,
            Ebreak,
            Wfi,
            Fence,
            Halt,
            Csr {
                op: crate::insn::CsrOp::Rw,
                rd: Reg::A0,
                rs1: Reg::A1,
                csr: crate::insn::CsrId::Mcycle,
            },
            CSpecialRw {
                rd: Reg::A0,
                rs1: Reg::A1,
                scr: crate::insn::ScrId::Mtcc,
            },
        ];
        for i in enders {
            assert!(i.is_block_boundary(), "{i:?} must end a block");
        }
        let straight = [
            Instr::NOP,
            Lui {
                rd: Reg::A0,
                imm: 1,
            },
            Op {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Clc {
                rd: Reg::A0,
                rs1: Reg::A1,
                offset: 0,
            },
            Csc {
                rs2: Reg::A0,
                rs1: Reg::A1,
                offset: 0,
            },
        ];
        for i in straight {
            assert!(!i.is_block_boundary(), "{i:?} must not end a block");
        }
    }
}
