//! Tagged SRAM over a copy-on-write page store.
//!
//! Embedded CHERIoT memory is tightly-coupled SRAM with one out-of-band tag
//! bit per 8-byte (capability-sized) granule. Scalar stores clear the tag of
//! the granule they touch; capability loads/stores move the tag with the
//! data. Capability accesses must be 8-byte aligned.
//!
//! ## The page store
//!
//! Architectural content lives in 4 KiB [`Page`]s — the data bytes plus the
//! covering slice of the packed tag bitmap (512 granules = 8 tag words, so
//! pages own whole tag words) — held through `Arc` handles. Pages are
//! immutable while shared: every mutating path funnels through the write
//! barrier ([`Sram::page_mut`]), which marks the page dirty *and* unshares
//! it (`Arc::make_mut`) before handing out a mutable reference. That makes
//! the dirty-tracking barrier the CoW break point: the first write to a
//! page shared with a snapshot or a forked sibling clones just that page.
//!
//! Structural sharing is what the snapshot/fork engine rides on:
//!
//! * a **capture** hands the snapshot handle clones of the machine's pages
//!   — O(pages) refcount bumps, zero byte copies;
//! * a **restore/fork** adopts the snapshot's handles the same way, so a
//!   1000-device fleet forked from one warm image holds one copy of every
//!   boot page and each instance pays only for the pages it dirties;
//! * a fresh bank shares a single zero page across all slots, so an
//!   untouched machine is resident-cheap too.
//!
//! The `--no-cow` escape hatch ([`Sram::set_cow`]) disables structural
//! sharing: pages are kept uniquely owned and captures/restores copy bytes,
//! reproducing the pre-CoW cost model. CoW on/off is architecturally
//! invisible — runs are byte-identical either way (property-tested).
//!
//! Two simulator-only acceleration structures ride alongside the
//! architectural state (neither is architecturally visible, and neither is
//! ever shared between banks):
//!
//! * the tag bits are packed 64 per `u64` word, so sweeps and range
//!   operations use mask arithmetic and popcounts instead of per-granule
//!   loops, and the background revoker can skip whole all-clear words;
//! * a **decoded-capability side cache** keeps the expanded form of the
//!   capability last written to each granule, so a `CLC` that follows a
//!   `CSC` is a copy instead of a bounds re-derivation. Scalar writes, raw
//!   word writes and tag clears invalidate the slot; the raw 64-bit word
//!   plus tag bit remain the source of truth. The cache is allocated lazily
//!   on first capability traffic, so banks that never move capabilities
//!   (fleet guest nodes) never pay its footprint.

use crate::trap::TrapCause;
use cheriot_cap::Capability;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Capability-granule size: 8 bytes (a 64-bit capability).
pub const GRANULE: u32 = 8;

/// Page size of the copy-on-write store (also the dirty-tracking unit):
/// 4 KiB. A page is 512 granules, an exact multiple of the 64-granule tag
/// words, so each page owns whole tag words and CoW moves data and tags
/// together.
pub const PAGE_SIZE: u32 = 4096;

const PAGE_SHIFT: usize = 12;
const PAGE_MASK: usize = PAGE_SIZE as usize - 1;

/// Granules per page.
const PAGE_GRANULES: usize = (PAGE_SIZE / GRANULE) as usize;

/// Tag words per page (64 granules per word).
const PAGE_TAG_WORDS: usize = PAGE_GRANULES / 64;

/// Host bytes actually moved when a page's *content* is copied: the data
/// bytes plus the covering tag-bitmap words. This is the unit the honest
/// fork-cost accounting charges per deep page copy (the old accounting
/// forgot the tag bytes).
pub const PAGE_COPY_BYTES: u64 = PAGE_SIZE as u64 + (PAGE_TAG_WORDS * 8) as u64;

/// Host bytes moved adopting a page by handle (an `Arc` clone): the
/// pointer write. This is the entire per-page fork cost under CoW.
pub const PAGE_HANDLE_BYTES: u64 = std::mem::size_of::<Arc<Page>>() as u64;

/// Globally unique content-identity stamps for snapshot lineage. Never
/// zero (zero means "unstamped").
static CONTENT_IDS: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_content_id() -> u64 {
    CONTENT_IDS.fetch_add(1, Ordering::Relaxed)
}

/// One CoW unit: 4 KiB of data plus its covering tag-bitmap slice.
/// Immutable while shared; the write barrier unshares before mutating.
#[derive(Clone)]
pub struct Page {
    bytes: [u8; PAGE_SIZE as usize],
    /// Tag words for this page's granules: bit `g % 64` of word
    /// `(g / 64) % PAGE_TAG_WORDS` for global granule `g`.
    tags: [u64; PAGE_TAG_WORDS],
}

impl Page {
    const ZERO: Page = Page {
        bytes: [0; PAGE_SIZE as usize],
        tags: [0; PAGE_TAG_WORDS],
    };

    /// Sets/clears the tag of global granule `g` (which must live in this
    /// page — page-alignment makes `(g / 64) % PAGE_TAG_WORDS` its word).
    #[inline]
    fn tag_set(&mut self, g: usize, v: bool) {
        let w = (g >> 6) & (PAGE_TAG_WORDS - 1);
        let mask = 1u64 << (g & 63);
        if v {
            self.tags[w] |= mask;
        } else {
            self.tags[w] &= !mask;
        }
    }

    /// Clears every tag in the (page-local) global granule range
    /// `[g0, g1]`, both ends inclusive and inside this page.
    fn detag_range(&mut self, g0: usize, g1: usize) {
        let (w0, b0) = ((g0 >> 6) & (PAGE_TAG_WORDS - 1), g0 & 63);
        let (w1, b1) = ((g1 >> 6) & (PAGE_TAG_WORDS - 1), g1 & 63);
        let lo = !0u64 << b0;
        let hi = !0u64 >> (63 - b1);
        if w0 == w1 {
            self.tags[w0] &= !(lo & hi);
        } else {
            self.tags[w0] &= !lo;
            for w in &mut self.tags[w0 + 1..w1] {
                *w = 0;
            }
            self.tags[w1] &= !hi;
        }
    }
}

/// Host-side counters for the CoW page store, exposed via
/// [`Sram::cow_stats`]. Not architectural state; never captured or
/// restored by snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Pages unshared by the write barrier: first writes to a page shared
    /// with a snapshot, a forked sibling, or the bank's initial zero page.
    pub breaks: u64,
    /// Host bytes those breaks copied (`breaks * PAGE_COPY_BYTES`): the
    /// deferred fork cost actually paid so far.
    pub bytes_copied: u64,
}

/// Host bytes and pages actually moved by a capture or restore. `bytes`
/// is honest: handle adoptions under CoW cost [`PAGE_HANDLE_BYTES`] per
/// page, deep copies cost [`PAGE_COPY_BYTES`] (data *and* tag words).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct XferCost {
    /// Pages whose content was transferred (by handle or by copy).
    pub pages: u32,
    /// Host bytes moved doing it.
    pub bytes: u64,
}

/// A bank of byte-addressable tagged SRAM over the CoW page store.
pub struct Sram {
    base: u32,
    /// Logical size in bytes (the last page may be partial; its tail
    /// bytes and tag bits are unreachable and stay zero).
    len: usize,
    /// The page store. Shared (`Arc` refcount > 1) pages are immutable;
    /// the write barrier unshares before mutating.
    pages: Vec<Arc<Page>>,
    /// Decoded-capability side cache, one slot per granule, allocated
    /// lazily on first capability traffic (empty = cold). `Some(c)` only
    /// when the granule's tag is set and `c` equals
    /// `Capability::from_word(word, true)` for the granule's current word.
    caps: Vec<Option<Capability>>,
    /// Dirty-page bitmap: bit `p % 64` of word `p / 64` is set when page
    /// `p` may have been written since the last snapshot/restore stamp.
    /// Maintained conservatively on every store/zero path (never on
    /// reads — side-cache fills are derived state), so a clear bit
    /// *guarantees* the page still holds the stamped content.
    dirty: Vec<u64>,
    /// Running population count of `dirty`, so `dirty_pages()` and the
    /// any-dirty checks are O(1) instead of a bitmap scan.
    dirty_count: u32,
    /// Content-identity stamp the dirty bitmap is relative to: the bank
    /// held exactly the content identified by this id when the bitmap was
    /// last cleared. Zero means unstamped (no lineage; restores fall back
    /// to full copies).
    content: u64,
    /// Structural sharing enabled? When false (`--no-cow`), pages are
    /// kept uniquely owned and captures/restores copy bytes — the pre-CoW
    /// cost model, kept as an escape hatch and comparison baseline.
    cow: bool,
    /// Write-barrier unshare counters (host-side, never snapshotted).
    cow_stats: CowStats,
}

impl std::fmt::Debug for Sram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sram")
            .field("base", &format_args!("{:#010x}", self.base))
            .field("size", &self.len)
            .field("cow", &self.cow)
            .finish()
    }
}

impl Clone for Sram {
    /// Clones the bank. Under CoW this is O(pages) handle clones — the
    /// clone shares every page with the original and either side's next
    /// write unshares just that page. With CoW disabled the pages are
    /// deep-copied. The decoded side cache is derived state and starts
    /// cold in the clone; CoW counters start at zero.
    fn clone(&self) -> Sram {
        let pages = if self.cow {
            self.pages.clone()
        } else {
            self.pages.iter().map(|p| Arc::new((**p).clone())).collect()
        };
        Sram {
            base: self.base,
            len: self.len,
            pages,
            caps: Vec::new(),
            dirty: self.dirty.clone(),
            dirty_count: self.dirty_count,
            content: self.content,
            cow: self.cow,
            cow_stats: CowStats::default(),
        }
    }
}

impl Sram {
    /// Creates a zeroed SRAM bank of `size` bytes at `base`. Every page
    /// slot shares one zero page, so a fresh bank is resident-cheap; the
    /// first write to each page unshares it.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `size` is not granule-aligned.
    pub fn new(base: u32, size: u32) -> Sram {
        assert_eq!(base % GRANULE, 0, "SRAM base must be granule-aligned");
        assert_eq!(size % GRANULE, 0, "SRAM size must be granule-aligned");
        let pages = (size as usize).div_ceil(PAGE_SIZE as usize);
        let zero = Arc::new(Page::ZERO);
        Sram {
            base,
            len: size as usize,
            pages: vec![zero; pages],
            caps: Vec::new(),
            dirty: vec![0; pages.div_ceil(64)],
            dirty_count: 0,
            content: 0,
            cow: true,
            cow_stats: CowStats::default(),
        }
    }

    /// Enables/disables structural sharing. Disabling materializes every
    /// currently-shared page into a private copy (not counted as a CoW
    /// break — this is a mode switch, not a write).
    pub fn set_cow(&mut self, on: bool) {
        self.cow = on;
        if !on {
            for p in &mut self.pages {
                if Arc::strong_count(p) > 1 {
                    *p = Arc::new((**p).clone());
                }
            }
        }
    }

    /// Is structural sharing enabled?
    pub fn cow_enabled(&self) -> bool {
        self.cow
    }

    /// Write-barrier unshare counters.
    pub fn cow_stats(&self) -> CowStats {
        self.cow_stats
    }

    /// Pages currently shared with another bank (or the zero page):
    /// `Arc` refcount > 1. These are the pages a fork has not yet paid
    /// for.
    pub fn shared_pages(&self) -> u32 {
        self.pages
            .iter()
            .filter(|p| Arc::strong_count(p) > 1)
            .count() as u32
    }

    /// Host bytes of page content this bank uniquely owns (its private
    /// pages, charged at [`PAGE_COPY_BYTES`] each). The structural-sharing
    /// complement of [`Sram::shared_pages`]: a freshly forked bank is
    /// near zero, and each CoW break moves one page from shared to
    /// unique.
    pub fn unique_resident_bytes(&self) -> u64 {
        u64::from(self.num_pages() - self.shared_pages()) * PAGE_COPY_BYTES
    }

    /// Base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.len as u32
    }

    /// End address (exclusive). `u64` because a bank ending at the top of
    /// the address space has end `0x1_0000_0000`, which a `u32` cannot
    /// hold (the old `u32` return overflowed for such banks).
    pub fn end(&self) -> u64 {
        u64::from(self.base) + self.len as u64
    }

    /// Does this bank contain `[addr, addr+size)`?
    pub fn contains(&self, addr: u32, size: u32) -> bool {
        let a = u64::from(addr);
        a >= u64::from(self.base) && a + u64::from(size) <= self.end()
    }

    fn offset(&self, addr: u32) -> usize {
        (addr - self.base) as usize
    }

    fn granule(&self, addr: u32) -> usize {
        self.offset(addr) / GRANULE as usize
    }

    fn granules(&self) -> usize {
        self.len / GRANULE as usize
    }

    /// The packed tag word `w` (64 granules per word; 8 words per page).
    #[inline]
    fn tag_word(&self, w: usize) -> u64 {
        self.pages[w / PAGE_TAG_WORDS].tags[w % PAGE_TAG_WORDS]
    }

    fn tag_get(&self, g: usize) -> bool {
        self.tag_word(g >> 6) & (1u64 << (g & 63)) != 0
    }

    /// The write barrier and CoW break point: marks page `p` dirty
    /// (maintaining the running dirty count) and returns a uniquely-owned
    /// mutable reference to it, cloning the page first if it is shared
    /// with a snapshot, a forked sibling, or the initial zero page.
    #[inline]
    fn page_mut(&mut self, p: usize) -> &mut Page {
        let (w, bit) = (p >> 6, 1u64 << (p & 63));
        if self.dirty[w] & bit == 0 {
            self.dirty[w] |= bit;
            self.dirty_count += 1;
        }
        if Arc::strong_count(&self.pages[p]) > 1 {
            self.cow_stats.breaks += 1;
            self.cow_stats.bytes_copied += PAGE_COPY_BYTES;
        }
        Arc::make_mut(&mut self.pages[p])
    }

    /// The decoded side cache, allocated on first use.
    fn caps_mut(&mut self) -> &mut [Option<Capability>] {
        if self.caps.is_empty() {
            self.caps = vec![None; self.granules()];
        }
        &mut self.caps
    }

    /// Drops the side-cache entry for granule `g` if the cache is live.
    #[inline]
    fn caps_clear(&mut self, g: usize) {
        if let Some(slot) = self.caps.get_mut(g) {
            *slot = None;
        }
    }

    fn check(&self, addr: u32, size: u32) -> Result<(), TrapCause> {
        if !self.contains(addr, size) {
            return Err(TrapCause::BusError { addr });
        }
        if !addr.is_multiple_of(size) {
            return Err(TrapCause::Misaligned { addr });
        }
        Ok(())
    }

    /// Reads a scalar of `size` ∈ {1, 2, 4} bytes, little-endian,
    /// zero-extended.
    ///
    /// # Errors
    ///
    /// Bus error outside the bank; misaligned access faults.
    pub fn read_scalar(&self, addr: u32, size: u32) -> Result<u32, TrapCause> {
        self.check(addr, size)?;
        debug_assert!(matches!(size, 1 | 2 | 4));
        let o = self.offset(addr);
        // Aligned 1/2/4-byte accesses never cross a page boundary.
        let pg = &self.pages[o >> PAGE_SHIFT];
        let po = o & PAGE_MASK;
        Ok(match size {
            1 => u32::from(pg.bytes[po]),
            2 => u32::from(u16::from_le_bytes([pg.bytes[po], pg.bytes[po + 1]])),
            _ => u32::from_le_bytes(pg.bytes[po..po + 4].try_into().unwrap()),
        })
    }

    /// Writes a scalar of `size` ∈ {1, 2, 4} bytes and clears the granule's
    /// tag (a partial overwrite invalidates any capability stored there).
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn write_scalar(&mut self, addr: u32, size: u32, value: u32) -> Result<(), TrapCause> {
        self.check(addr, size)?;
        debug_assert!(matches!(size, 1 | 2 | 4));
        let o = self.offset(addr);
        let g = o / GRANULE as usize;
        self.caps_clear(g);
        let pg = self.page_mut(o >> PAGE_SHIFT);
        let po = o & PAGE_MASK;
        match size {
            1 => pg.bytes[po] = value as u8,
            2 => pg.bytes[po..po + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            _ => pg.bytes[po..po + 4].copy_from_slice(&value.to_le_bytes()),
        }
        pg.tag_set(g, false);
        Ok(())
    }

    /// Reads a capability-sized word with its tag. Requires 8-byte
    /// alignment.
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn read_cap_word(&self, addr: u32) -> Result<(u64, bool), TrapCause> {
        self.check(addr, GRANULE)?;
        let o = self.offset(addr);
        let pg = &self.pages[o >> PAGE_SHIFT];
        let po = o & PAGE_MASK;
        let word = u64::from_le_bytes(pg.bytes[po..po + GRANULE as usize].try_into().unwrap());
        Ok((word, self.tag_get(self.granule(addr))))
    }

    /// Writes a capability-sized word and its tag. Requires 8-byte
    /// alignment. Invalidates the granule's decoded-capability slot (the
    /// caller supplied a raw word, not a decoded capability).
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn write_cap_word(&mut self, addr: u32, word: u64, tag: bool) -> Result<(), TrapCause> {
        self.check(addr, GRANULE)?;
        let o = self.offset(addr);
        let g = o / GRANULE as usize;
        self.caps_clear(g);
        let pg = self.page_mut(o >> PAGE_SHIFT);
        let po = o & PAGE_MASK;
        pg.bytes[po..po + GRANULE as usize].copy_from_slice(&word.to_le_bytes());
        pg.tag_set(g, tag);
        Ok(())
    }

    /// Writes a decoded capability (word + tag) and fills the granule's
    /// side-cache slot, so a subsequent [`Sram::read_cap`] is a copy rather
    /// than a bounds re-derivation.
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn write_cap(&mut self, addr: u32, c: Capability) -> Result<(), TrapCause> {
        self.check(addr, GRANULE)?;
        let o = self.offset(addr);
        let g = o / GRANULE as usize;
        if c.tag() {
            self.caps_mut()[g] = Some(c);
        } else {
            self.caps_clear(g);
        }
        let pg = self.page_mut(o >> PAGE_SHIFT);
        let po = o & PAGE_MASK;
        pg.bytes[po..po + GRANULE as usize].copy_from_slice(&c.to_word().to_le_bytes());
        pg.tag_set(g, c.tag());
        Ok(())
    }

    /// Reads a capability, consulting the decoded side cache. A miss on a
    /// tagged granule decodes the raw word once and fills the slot;
    /// untagged granules never decode (and never populate the cache).
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn read_cap(&mut self, addr: u32) -> Result<Capability, TrapCause> {
        let (word, tag) = self.read_cap_word(addr)?;
        if !tag {
            return Ok(Capability::from_word(word, false));
        }
        let g = self.granule(addr);
        if let Some(&Some(c)) = self.caps.get(g) {
            debug_assert_eq!(c, Capability::from_word(word, tag));
            debug_assert_eq!(c.bounds(), Capability::from_word(word, tag).bounds());
            return Ok(c);
        }
        let c = Capability::from_word(word, true);
        self.caps_mut()[g] = Some(c);
        Ok(c)
    }

    /// Zeroes `[addr, addr+len)` and clears all covered tags. Used by the
    /// allocator (`free` zeroes memory) and the switcher (stack clearing).
    ///
    /// # Errors
    ///
    /// Bus error if the range leaves the bank.
    pub fn zero_range(&mut self, addr: u32, len: u32) -> Result<(), TrapCause> {
        if len == 0 {
            return Ok(());
        }
        if !self.contains(addr, len) {
            return Err(TrapCause::BusError { addr });
        }
        let o = self.offset(addr);
        let end = o + len as usize;
        if !self.caps.is_empty() {
            let g0 = o / GRANULE as usize;
            let g1 = (end - 1) / GRANULE as usize;
            self.caps[g0..=g1].fill(None);
        }
        let mut cur = o;
        while cur < end {
            let p = cur >> PAGE_SHIFT;
            let stop = ((p + 1) << PAGE_SHIFT).min(end);
            let pg = self.page_mut(p);
            pg.bytes[cur & PAGE_MASK..((stop - 1) & PAGE_MASK) + 1].fill(0);
            pg.detag_range(cur / GRANULE as usize, (stop - 1) / GRANULE as usize);
            cur = stop;
        }
        Ok(())
    }

    /// Copies `[addr, addr+len)` out of the bank (DMA read side). No
    /// alignment requirement; tags are not readable this way (DMA moves
    /// data, never capabilities).
    ///
    /// # Errors
    ///
    /// Bus error if the range leaves the bank.
    pub fn read_bytes(&self, addr: u32, buf: &mut [u8]) -> Result<(), TrapCause> {
        if buf.is_empty() {
            return Ok(());
        }
        if !self.contains(addr, buf.len() as u32) {
            return Err(TrapCause::BusError { addr });
        }
        let o = self.offset(addr);
        let end = o + buf.len();
        let mut cur = o;
        while cur < end {
            let p = cur >> PAGE_SHIFT;
            let stop = ((p + 1) << PAGE_SHIFT).min(end);
            let po = cur & PAGE_MASK;
            buf[cur - o..stop - o].copy_from_slice(&self.pages[p].bytes[po..po + (stop - cur)]);
            cur = stop;
        }
        Ok(())
    }

    /// Copies `buf` into `[addr, addr+len)` (DMA write side), clearing
    /// every covered granule's tag and decoded-capability slot — a DMA
    /// store is a raw-byte overwrite, so any capability it touches (even
    /// partially) must die — and passing every covered page through the
    /// write barrier, so shared pages CoW-break and snapshot/fork never
    /// under-copies. No alignment requirement.
    ///
    /// # Errors
    ///
    /// Bus error if the range leaves the bank.
    pub fn write_bytes(&mut self, addr: u32, buf: &[u8]) -> Result<(), TrapCause> {
        if buf.is_empty() {
            return Ok(());
        }
        if !self.contains(addr, buf.len() as u32) {
            return Err(TrapCause::BusError { addr });
        }
        let o = self.offset(addr);
        let end = o + buf.len();
        if !self.caps.is_empty() {
            let g0 = o / GRANULE as usize;
            let g1 = (end - 1) / GRANULE as usize;
            self.caps[g0..=g1].fill(None);
        }
        let mut cur = o;
        while cur < end {
            let p = cur >> PAGE_SHIFT;
            let stop = ((p + 1) << PAGE_SHIFT).min(end);
            let pg = self.page_mut(p);
            let po = cur & PAGE_MASK;
            pg.bytes[po..po + (stop - cur)].copy_from_slice(&buf[cur - o..stop - o]);
            pg.detag_range(cur / GRANULE as usize, (stop - 1) / GRANULE as usize);
            cur = stop;
        }
        Ok(())
    }

    /// Is the tag set for the granule containing `addr`?
    pub fn tag_at(&self, addr: u32) -> bool {
        if !self.contains(addr, 1) {
            return false;
        }
        self.tag_get(self.granule(addr))
    }

    /// Count of set tags in `[addr, addr+len)` — used by sweeps and tests.
    pub fn count_tags(&self, addr: u32, len: u32) -> usize {
        if len == 0 || !self.contains(addr, len) {
            return 0;
        }
        let o = self.offset(addr);
        let g0 = o / GRANULE as usize;
        let g1 = (o + len as usize - 1) / GRANULE as usize;
        let (w0, b0) = (g0 >> 6, g0 & 63);
        let (w1, b1) = (g1 >> 6, g1 & 63);
        let lo = !0u64 << b0;
        let hi = !0u64 >> (63 - b1);
        if w0 == w1 {
            (self.tag_word(w0) & lo & hi).count_ones() as usize
        } else {
            let mut n = (self.tag_word(w0) & lo).count_ones();
            for w in w0 + 1..w1 {
                n += self.tag_word(w).count_ones();
            }
            n += (self.tag_word(w1) & hi).count_ones();
            n as usize
        }
    }

    /// Length (in granules, capped at `max_granules`) of the run of
    /// *untagged* granules starting at granule-aligned `addr`. Scans the
    /// packed tag words, so an all-clear 64-granule word costs one load —
    /// this is what lets the background revoker batch over untouched
    /// memory. Returns 0 for addresses outside the bank or unaligned.
    pub fn untagged_run(&self, addr: u32, max_granules: u32) -> u32 {
        if max_granules == 0 || !addr.is_multiple_of(GRANULE) || !self.contains(addr, GRANULE) {
            return 0;
        }
        let g0 = self.granule(addr);
        let total = self.granules();
        let limit = (g0 + max_granules as usize).min(total);
        let mut g = g0;
        while g < limit {
            let masked = self.tag_word(g >> 6) & (!0u64 << (g & 63));
            if masked != 0 {
                let next_tagged = (g & !63) + masked.trailing_zeros() as usize;
                return (next_tagged.min(limit) - g0) as u32;
            }
            g = (g & !63) + 64;
        }
        (limit - g0) as u32
    }

    /// Number of pages in the bank.
    pub fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Number of pages currently marked dirty (written since the last
    /// snapshot/restore stamp). O(1) — a running count, not a bitmap
    /// scan.
    pub fn dirty_pages(&self) -> u32 {
        self.dirty_count
    }

    /// Is the page containing `addr` marked dirty? False outside the bank.
    pub fn page_is_dirty(&self, addr: u32) -> bool {
        if !self.contains(addr, 1) {
            return false;
        }
        let p = self.offset(addr) / PAGE_SIZE as usize;
        self.dirty[p >> 6] & (1u64 << (p & 63)) != 0
    }

    /// Architectural-content equality: same base/size and identical bytes
    /// and tags. Pages sharing a handle compare in O(1); the decoded side
    /// cache and dirty/CoW bookkeeping are derived state and deliberately
    /// excluded.
    pub fn content_eq(&self, other: &Sram) -> bool {
        self.base == other.base
            && self.len == other.len
            && self
                .pages
                .iter()
                .zip(&other.pages)
                .all(|(a, b)| Arc::ptr_eq(a, b) || (a.bytes == b.bytes && a.tags == b.tags))
    }

    fn clear_dirty(&mut self) {
        self.dirty.fill(0);
        self.dirty_count = 0;
    }

    fn same_shape(&self, other: &Sram) -> bool {
        self.base == other.base && self.len == other.len
    }

    /// Replaces page `p` with `src`'s content: a handle adoption
    /// (refcount bump) under CoW, a deep copy otherwise. Returns the host
    /// bytes moved. The caller owns side-cache and dirty bookkeeping.
    fn adopt_page(&mut self, src: &Arc<Page>, p: usize) -> u64 {
        if self.cow {
            self.pages[p] = Arc::clone(src);
            PAGE_HANDLE_BYTES
        } else {
            *Arc::make_mut(&mut self.pages[p]) = (**src).clone();
            PAGE_COPY_BYTES
        }
    }

    /// Captures the bank's current content into `dst`, stamping both with
    /// the content id of the captured state.
    ///
    /// When `dst` already holds this bank's last-stamped content (their
    /// content ids match), only pages dirtied since that stamp move —
    /// O(dirty). Otherwise the whole bank moves. Under CoW "moves" means
    /// handle adoption: the snapshot shares the machine's pages and the
    /// machine's next write to any of them CoW-breaks. Both dirty bitmaps
    /// are cleared; returns the pages/bytes actually transferred.
    pub(crate) fn capture_into(&mut self, dst: &mut Sram) -> XferCost {
        let any_dirty = self.dirty_count != 0;
        let mut cost = XferCost::default();
        if self.content != 0 && dst.content == self.content && self.same_shape(dst) {
            for wi in 0..self.dirty.len() {
                let mut w = self.dirty[wi];
                while w != 0 {
                    let p = (wi << 6) + w.trailing_zeros() as usize;
                    cost.bytes += dst.adopt_page(&self.pages[p], p);
                    w &= w - 1;
                    cost.pages += 1;
                }
            }
        } else {
            dst.base = self.base;
            dst.len = self.len;
            dst.cow = self.cow;
            if self.cow {
                dst.pages.clone_from(&self.pages);
                cost.bytes = self.pages.len() as u64 * PAGE_HANDLE_BYTES;
            } else {
                dst.pages = self.pages.iter().map(|p| Arc::new((**p).clone())).collect();
                cost.bytes = self.pages.len() as u64 * PAGE_COPY_BYTES;
            }
            // Snapshot banks never carry the derived side cache; drop the
            // allocation, not just the entries.
            dst.caps = Vec::new();
            dst.dirty.clear();
            dst.dirty.resize(self.dirty.len(), 0);
            cost.pages = self.num_pages();
        }
        if self.content == 0 || any_dirty {
            self.content = fresh_content_id();
        }
        dst.content = self.content;
        self.clear_dirty();
        dst.clear_dirty();
        cost
    }

    /// Restores the bank to the content of `src` (a snapshot's bank).
    ///
    /// When this bank's last stamp matches `src`'s content id, every page
    /// not marked dirty is *guaranteed* unchanged since that stamp, so
    /// only dirty pages move — O(dirty). Without a lineage match the
    /// whole bank moves. Under CoW moving a page is a handle adoption
    /// (the fork cost of a fleet instance is O(pages) pointer writes, not
    /// O(bytes)); with CoW disabled it is a deep copy of data + tag
    /// words. Clears the dirty bitmap, drops side-cache entries covering
    /// adopted pages, and adopts `src`'s content id; returns the
    /// pages/bytes actually transferred.
    ///
    /// # Panics
    ///
    /// Panics if the banks have different bases or sizes.
    pub(crate) fn restore_page_wise(&mut self, src: &Sram) -> XferCost {
        assert!(
            self.same_shape(src),
            "snapshot restore across differently-shaped SRAM banks"
        );
        let mut cost = XferCost::default();
        if src.content != 0 && self.content == src.content {
            for wi in 0..self.dirty.len() {
                let mut w = self.dirty[wi];
                while w != 0 {
                    let p = (wi << 6) + w.trailing_zeros() as usize;
                    cost.bytes += self.adopt_page(&src.pages[p], p);
                    if !self.caps.is_empty() {
                        let g0 = p * PAGE_GRANULES;
                        let g1 = ((p + 1) * PAGE_GRANULES).min(self.granules());
                        self.caps[g0..g1].fill(None);
                    }
                    w &= w - 1;
                    cost.pages += 1;
                }
            }
        } else {
            if self.cow {
                self.pages.clone_from(&src.pages);
                cost.bytes = self.pages.len() as u64 * PAGE_HANDLE_BYTES;
            } else {
                self.pages = src.pages.iter().map(|p| Arc::new((**p).clone())).collect();
                cost.bytes = self.pages.len() as u64 * PAGE_COPY_BYTES;
            }
            self.caps = Vec::new();
            cost.pages = self.num_pages();
        }
        self.content = src.content;
        self.clear_dirty();
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram() -> Sram {
        Sram::new(0x2000_0000, 0x1000)
    }

    #[test]
    fn scalar_round_trip() {
        let mut m = sram();
        m.write_scalar(0x2000_0010, 4, 0xdead_beef).unwrap();
        assert_eq!(m.read_scalar(0x2000_0010, 4).unwrap(), 0xdead_beef);
        assert_eq!(m.read_scalar(0x2000_0010, 1).unwrap(), 0xef);
        assert_eq!(m.read_scalar(0x2000_0012, 2).unwrap(), 0xdead);
    }

    #[test]
    fn misaligned_faults() {
        let m = sram();
        assert!(matches!(
            m.read_scalar(0x2000_0001, 4),
            Err(TrapCause::Misaligned { .. })
        ));
        assert!(matches!(
            m.read_cap_word(0x2000_0004),
            Err(TrapCause::Misaligned { .. })
        ));
    }

    #[test]
    fn out_of_range_is_bus_error() {
        let m = sram();
        assert!(matches!(
            m.read_scalar(0x2000_1000, 4),
            Err(TrapCause::BusError { .. })
        ));
        assert!(matches!(
            m.read_scalar(0x1fff_fffc, 4),
            Err(TrapCause::BusError { .. })
        ));
    }

    #[test]
    fn cap_word_round_trip_with_tag() {
        let mut m = sram();
        m.write_cap_word(0x2000_0020, 0x0123_4567_89ab_cdef, true)
            .unwrap();
        assert_eq!(
            m.read_cap_word(0x2000_0020).unwrap(),
            (0x0123_4567_89ab_cdef, true)
        );
    }

    #[test]
    fn scalar_store_clears_tag() {
        let mut m = sram();
        m.write_cap_word(0x2000_0020, 42, true).unwrap();
        m.write_scalar(0x2000_0024, 1, 0xff).unwrap();
        let (_, tag) = m.read_cap_word(0x2000_0020).unwrap();
        assert!(!tag, "partial overwrite must detag the granule");
    }

    #[test]
    fn zero_range_clears_data_and_tags() {
        let mut m = sram();
        m.write_cap_word(0x2000_0040, 7, true).unwrap();
        m.write_cap_word(0x2000_0048, 7, true).unwrap();
        // Zeroing a range straddling both granules detags both, even though
        // only part of each granule's data is cleared.
        m.zero_range(0x2000_0044, 8).unwrap();
        let (w0, t0) = m.read_cap_word(0x2000_0040).unwrap();
        let (w1, t1) = m.read_cap_word(0x2000_0048).unwrap();
        assert_eq!(w0, 7); // low half untouched
        assert_eq!(w1, 0);
        assert!(!t0 && !t1);
        assert_eq!(m.count_tags(0x2000_0040, 16), 0);
    }

    #[test]
    fn zero_length_zero_range_is_noop() {
        let mut m = sram();
        m.zero_range(0x2000_0000, 0).unwrap();
        // Even at the very end of the bank.
        m.zero_range(m.base() + m.size(), 0).unwrap();
    }

    #[test]
    fn bank_ending_at_address_space_top() {
        // Regression: `end()` used to compute base + size in u32, which
        // overflows (panicking in debug builds) for a bank whose exclusive
        // end is 0x1_0000_0000.
        let mut m = Sram::new(0xffff_f000, 0x1000);
        assert_eq!(m.end(), 0x1_0000_0000);
        assert!(m.contains(0xffff_fff8, 8));
        assert!(!m.contains(0xffff_fff8, 16));
        m.write_cap_word(0xffff_fff8, 99, true).unwrap();
        assert_eq!(m.read_cap_word(0xffff_fff8).unwrap(), (99, true));
        assert_eq!(m.count_tags(0xffff_f000, 0x1000), 1);
        m.zero_range(0xffff_fff8, 8).unwrap();
        assert_eq!(m.read_cap_word(0xffff_fff8).unwrap(), (0, false));
    }

    #[test]
    fn count_tags_spanning_many_words() {
        let mut m = sram();
        // One tag every 16 granules across the whole 512-granule bank.
        for g in (0..0x1000 / GRANULE).step_by(16) {
            m.write_cap_word(0x2000_0000 + g * GRANULE, 1, true)
                .unwrap();
        }
        assert_eq!(m.count_tags(0x2000_0000, 0x1000), 32);
        assert_eq!(m.count_tags(0x2000_0000, 16 * GRANULE), 1);
        assert_eq!(m.count_tags(0x2000_0008, 16 * GRANULE), 1);
    }

    #[test]
    fn untagged_run_scans_word_boundaries() {
        let mut m = sram();
        assert_eq!(m.untagged_run(0x2000_0000, 512), 512);
        assert_eq!(m.untagged_run(0x2000_0000, 100), 100);
        // Tag granule 70 (second tag word).
        m.write_cap_word(0x2000_0000 + 70 * 8, 1, true).unwrap();
        assert_eq!(m.untagged_run(0x2000_0000, 512), 70);
        assert_eq!(m.untagged_run(0x2000_0000 + 70 * 8, 512), 0);
        assert_eq!(m.untagged_run(0x2000_0000 + 71 * 8, 512), 512 - 71);
        // Unaligned or out-of-bank addresses yield no run.
        assert_eq!(m.untagged_run(0x2000_0004, 512), 0);
        assert_eq!(m.untagged_run(0x3000_0000, 512), 0);
    }

    #[test]
    fn side_cache_returns_written_capability() {
        use cheriot_cap::Capability;
        let mut m = sram();
        let c = Capability::root_mem_rw()
            .with_address(0x2000_0100)
            .set_bounds(64)
            .unwrap();
        m.write_cap(0x2000_0010, c).unwrap();
        let back = m.read_cap(0x2000_0010).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.bounds(), c.bounds());
        // The raw word view agrees with the cached view.
        assert_eq!(m.read_cap_word(0x2000_0010).unwrap(), (c.to_word(), true));
    }

    #[test]
    fn dirty_tracking_marks_exactly_the_touched_pages() {
        let mut m = Sram::new(0x2000_0000, 0x4000); // 4 pages
        let mut snap = Sram::new(0x2000_0000, 0x4000);
        m.capture_into(&mut snap);
        assert_eq!(m.dirty_pages(), 0);
        m.write_scalar(0x2000_0004, 1, 0xaa).unwrap();
        assert_eq!(m.dirty_pages(), 1);
        assert!(m.page_is_dirty(0x2000_0004));
        assert!(!m.page_is_dirty(0x2000_1000));
        m.write_cap_word(0x2000_2000, 1, true).unwrap();
        assert_eq!(m.dirty_pages(), 2);
        // A zero spanning the page-1/page-2 boundary dirties both.
        m.zero_range(0x2000_1ff8, 16).unwrap();
        assert_eq!(m.dirty_pages(), 3);
        assert!(m.page_is_dirty(0x2000_1ff8));
    }

    #[test]
    fn dirty_tracking_never_under_reports() {
        // Restore correctness under targeted single-page stores: every
        // store path must mark its page, or the page-wise restore would
        // silently keep the new bytes. Restoring after each kind of store
        // must reproduce the snapshot content exactly.
        let c = Capability::root_mem_rw()
            .with_address(0x2000_0100)
            .set_bounds(64)
            .unwrap();
        type Store = Box<dyn Fn(&mut Sram)>;
        let stores: Vec<Store> = vec![
            Box::new(|s| s.write_scalar(0x2000_0abc, 4, 0xdead_beef).unwrap()),
            Box::new(|s| s.write_scalar(0x2000_1fff, 1, 0x55).unwrap()),
            Box::new(|s| s.write_cap_word(0x2000_2ff8, 0x0123, true).unwrap()),
            Box::new(move |s| s.write_cap(0x2000_3008, c).unwrap()),
            Box::new(|s| s.zero_range(0x2000_0ff0, 0x20).unwrap()),
            Box::new(|s| {
                s.write_bytes(0x2000_0ffc, &[1, 2, 3, 4, 5, 6, 7, 8])
                    .unwrap()
            }),
        ];
        for store in &stores {
            let mut m = Sram::new(0x2000_0000, 0x4000);
            // Pre-populate so zeroing/overwrites actually change content.
            for a in (0x2000_0000u32..0x2000_4000).step_by(64) {
                m.write_cap_word(a, u64::from(a), true).unwrap();
            }
            let mut snap = Sram::new(0x2000_0000, 0x4000);
            m.capture_into(&mut snap);
            store(&mut m);
            let dirty = m.dirty_pages();
            assert!(dirty > 0, "store path failed to mark any page");
            assert_eq!(m.restore_page_wise(&snap).pages, dirty);
            assert!(m.content_eq(&snap), "restore missed a dirtied page");
        }
    }

    #[test]
    fn page_wise_restore_copies_only_dirty_pages() {
        let mut m = Sram::new(0x2000_0000, 0x8000); // 8 pages
        m.write_cap_word(0x2000_4000, 7, true).unwrap();
        let mut snap = Sram::new(0x2000_0000, 0x8000);
        let first = m.capture_into(&mut snap);
        assert_eq!(
            first.pages, 8,
            "first capture into a fresh bank is a full transfer"
        );
        m.write_scalar(0x2000_0000, 4, 1).unwrap();
        m.write_scalar(0x2000_7ffc, 4, 2).unwrap();
        assert_eq!(m.restore_page_wise(&snap).pages, 2);
        assert!(m.content_eq(&snap));
        assert!(m.tag_at(0x2000_4000));
        // Re-capture with no divergence transfers nothing, keeps lineage.
        assert_eq!(m.capture_into(&mut snap).pages, 0);
        // A foreign bank has no lineage: full transfer.
        let mut other = Sram::new(0x2000_0000, 0x8000);
        assert_eq!(other.restore_page_wise(&snap).pages, 8);
        assert!(other.content_eq(&snap));
    }

    #[test]
    fn side_cache_coherent_after_page_wise_restore() {
        let c = Capability::root_mem_rw()
            .with_address(0x2000_0040)
            .set_bounds(32)
            .unwrap();
        let mut m = Sram::new(0x2000_0000, 0x2000);
        m.write_cap(0x2000_0040, c).unwrap();
        let mut snap = Sram::new(0x2000_0000, 0x2000);
        m.capture_into(&mut snap);
        // Overwrite the capability, then restore: the read-back must be
        // the snapshot's capability, not the overwrite or a stale decode.
        m.write_cap_word(0x2000_0040, 0xffff_ffff_ffff_ffff, false)
            .unwrap();
        m.restore_page_wise(&snap);
        let back = m.read_cap(0x2000_0040).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.bounds(), c.bounds());
    }

    #[test]
    fn side_cache_invalidated_by_scalar_and_raw_writes() {
        use cheriot_cap::Capability;
        let mut m = sram();
        let c = Capability::root_mem_rw()
            .with_address(0x2000_0200)
            .set_bounds(32)
            .unwrap();
        m.write_cap(0x2000_0040, c).unwrap();
        // Scalar overwrite: tag drops, and the read-back reflects the new
        // bytes, not the stale cached decode.
        m.write_scalar(0x2000_0040, 4, 0x1234_5678).unwrap();
        let back = m.read_cap(0x2000_0040).unwrap();
        assert!(!back.tag());
        assert_eq!(back.to_word() as u32, 0x1234_5678);
        // Raw word write with tag repopulates lazily on the next read.
        m.write_cap_word(0x2000_0040, c.to_word(), true).unwrap();
        let again = m.read_cap(0x2000_0040).unwrap();
        assert_eq!(again, c);
        assert_eq!(again.bounds(), c.bounds());
    }

    // --- CoW page-store behaviour -----------------------------------------

    #[test]
    fn fresh_bank_shares_one_zero_page_until_written() {
        let mut m = Sram::new(0x2000_0000, 0x4000); // 4 pages
        assert_eq!(m.shared_pages(), 4, "all slots share the zero page");
        m.write_scalar(0x2000_1004, 4, 7).unwrap();
        assert_eq!(m.shared_pages(), 3, "first write unshared its page");
        assert_eq!(m.cow_stats().breaks, 1);
        assert_eq!(m.cow_stats().bytes_copied, PAGE_COPY_BYTES);
        // Writing the same page again is barrier-cheap: no further break.
        m.write_scalar(0x2000_1008, 4, 8).unwrap();
        assert_eq!(m.cow_stats().breaks, 1);
    }

    #[test]
    fn capture_shares_pages_and_write_breaks_them() {
        let mut m = Sram::new(0x2000_0000, 0x4000);
        m.write_cap_word(0x2000_2000, 99, true).unwrap();
        let mut snap = Sram::new(0x2000_0000, 0x4000);
        let cost = m.capture_into(&mut snap);
        assert_eq!(cost.pages, 4);
        assert_eq!(cost.bytes, 4 * PAGE_HANDLE_BYTES, "capture is handle-cost");
        // Machine and snapshot now share every page.
        assert_eq!(m.shared_pages(), 4);
        let breaks_before = m.cow_stats().breaks;
        m.write_scalar(0x2000_2004, 4, 1).unwrap();
        assert_eq!(m.cow_stats().breaks, breaks_before + 1);
        // The snapshot still sees the captured content.
        assert_eq!(snap.read_cap_word(0x2000_2000).unwrap(), (99, true));
        assert_eq!(snap.read_scalar(0x2000_2004, 4).unwrap(), 0);
    }

    #[test]
    fn forked_siblings_are_isolated() {
        let mut image = Sram::new(0x2000_0000, 0x4000);
        for a in (0x2000_0000u32..0x2000_4000).step_by(256) {
            image.write_cap_word(a, u64::from(a), true).unwrap();
        }
        let mut snap = Sram::new(0x2000_0000, 0x4000);
        image.capture_into(&mut snap);
        let mut a = Sram::new(0x2000_0000, 0x4000);
        let mut b = Sram::new(0x2000_0000, 0x4000);
        assert_eq!(a.restore_page_wise(&snap).bytes, 4 * PAGE_HANDLE_BYTES);
        b.restore_page_wise(&snap);
        assert!(a.content_eq(&b));
        // A's writes must not leak into B or the snapshot.
        a.write_scalar(0x2000_0100, 4, 0xdead_beef).unwrap();
        a.zero_range(0x2000_1000, 64).unwrap();
        assert!(b.content_eq(&snap));
        assert_eq!(b.read_scalar(0x2000_0100, 4).unwrap(), 0x2000_0100);
        assert!(b.tag_at(0x2000_1000));
        assert_eq!(a.read_scalar(0x2000_0100, 4).unwrap(), 0xdead_beef);
    }

    #[test]
    fn no_cow_mode_keeps_pages_unique_and_copies_bytes() {
        let mut m = Sram::new(0x2000_0000, 0x4000);
        m.set_cow(false);
        assert_eq!(m.shared_pages(), 0, "set_cow(false) materializes pages");
        m.write_cap_word(0x2000_0000, 5, true).unwrap();
        assert_eq!(m.cow_stats().breaks, 0, "unique pages never break");
        let mut snap = Sram::new(0x2000_0000, 0x4000);
        let cost = m.capture_into(&mut snap);
        assert_eq!(
            cost.bytes,
            4 * PAGE_COPY_BYTES,
            "no-cow capture deep-copies"
        );
        assert_eq!(m.shared_pages(), 0);
        assert!(!snap.cow_enabled(), "snapshot adopts the bank's mode");
        m.write_scalar(0x2000_0008, 4, 1).unwrap();
        let cost = m.restore_page_wise(&snap);
        assert_eq!(cost.pages, 1);
        assert_eq!(cost.bytes, PAGE_COPY_BYTES, "tag bytes are accounted");
        assert!(m.content_eq(&snap));
    }

    #[test]
    fn cow_and_no_cow_banks_stay_content_identical() {
        let ops: &[fn(&mut Sram)] = &[
            |s| s.write_scalar(0x2000_0abc, 4, 0xdead_beef).unwrap(),
            |s| s.write_cap_word(0x2000_1ff8, 0x0123, true).unwrap(),
            |s| s.zero_range(0x2000_0ff0, 0x20).unwrap(),
            |s| s.write_bytes(0x2000_2ffa, &[9; 12]).unwrap(),
        ];
        let mut a = Sram::new(0x2000_0000, 0x4000);
        let mut b = Sram::new(0x2000_0000, 0x4000);
        b.set_cow(false);
        let (mut sa, mut sb) = (
            Sram::new(0x2000_0000, 0x4000),
            Sram::new(0x2000_0000, 0x4000),
        );
        a.capture_into(&mut sa);
        b.capture_into(&mut sb);
        for op in ops {
            op(&mut a);
            op(&mut b);
            assert!(a.content_eq(&b));
        }
        a.restore_page_wise(&sa);
        b.restore_page_wise(&sb);
        assert!(a.content_eq(&b), "restores agree across modes");
    }

    #[test]
    fn running_dirty_count_matches_bitmap() {
        let mut m = Sram::new(0x2000_0000, 0x8000);
        let mut snap = Sram::new(0x2000_0000, 0x8000);
        m.capture_into(&mut snap);
        for (i, a) in (0x2000_0000u32..0x2000_8000).step_by(4096).enumerate() {
            m.write_scalar(a, 4, 1).unwrap();
            m.write_scalar(a + 8, 4, 2).unwrap(); // same page: no recount
            let popcount: u32 = m.dirty.iter().map(|w| w.count_ones()).sum();
            assert_eq!(m.dirty_pages(), popcount);
            assert_eq!(m.dirty_pages(), i as u32 + 1);
        }
        m.restore_page_wise(&snap);
        assert_eq!(m.dirty_pages(), 0);
    }

    #[test]
    fn unique_resident_bytes_tracks_breaks() {
        let mut m = Sram::new(0x2000_0000, 0x4000);
        let mut snap = Sram::new(0x2000_0000, 0x4000);
        m.capture_into(&mut snap);
        assert_eq!(m.unique_resident_bytes(), 0, "fully shared after capture");
        m.write_scalar(0x2000_0000, 4, 1).unwrap();
        assert_eq!(m.unique_resident_bytes(), PAGE_COPY_BYTES);
    }

    #[test]
    fn clone_shares_under_cow_and_isolates_writes() {
        let mut m = Sram::new(0x2000_0000, 0x2000);
        m.write_cap_word(0x2000_0000, 7, true).unwrap();
        let clone = m.clone();
        assert!(m.content_eq(&clone));
        m.write_scalar(0x2000_0004, 4, 0xff).unwrap();
        assert_eq!(clone.read_scalar(0x2000_0004, 4).unwrap(), 0);
        assert!(clone.tag_at(0x2000_0000));
    }
}
