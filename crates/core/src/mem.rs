//! Tagged SRAM.
//!
//! Embedded CHERIoT memory is tightly-coupled SRAM with one out-of-band tag
//! bit per 8-byte (capability-sized) granule. Scalar stores clear the tag of
//! the granule they touch; capability loads/stores move the tag with the
//! data. Capability accesses must be 8-byte aligned.

use crate::trap::TrapCause;

/// Capability-granule size: 8 bytes (a 64-bit capability).
pub const GRANULE: u32 = 8;

/// A bank of byte-addressable tagged SRAM.
#[derive(Clone)]
pub struct Sram {
    base: u32,
    bytes: Vec<u8>,
    tags: Vec<bool>,
}

impl std::fmt::Debug for Sram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sram")
            .field("base", &format_args!("{:#010x}", self.base))
            .field("size", &self.bytes.len())
            .finish()
    }
}

impl Sram {
    /// Creates a zeroed SRAM bank of `size` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `size` is not granule-aligned.
    pub fn new(base: u32, size: u32) -> Sram {
        assert_eq!(base % GRANULE, 0, "SRAM base must be granule-aligned");
        assert_eq!(size % GRANULE, 0, "SRAM size must be granule-aligned");
        Sram {
            base,
            bytes: vec![0; size as usize],
            tags: vec![false; (size / GRANULE) as usize],
        }
    }

    /// Base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// End address (exclusive).
    pub fn end(&self) -> u32 {
        self.base + self.size()
    }

    /// Does this bank contain `[addr, addr+size)`?
    pub fn contains(&self, addr: u32, size: u32) -> bool {
        let a = u64::from(addr);
        a >= u64::from(self.base) && a + u64::from(size) <= u64::from(self.end())
    }

    fn offset(&self, addr: u32) -> usize {
        (addr - self.base) as usize
    }

    fn check(&self, addr: u32, size: u32) -> Result<(), TrapCause> {
        if !self.contains(addr, size) {
            return Err(TrapCause::BusError { addr });
        }
        if !addr.is_multiple_of(size) {
            return Err(TrapCause::Misaligned { addr });
        }
        Ok(())
    }

    /// Reads a scalar of `size` ∈ {1, 2, 4} bytes, little-endian,
    /// zero-extended.
    ///
    /// # Errors
    ///
    /// Bus error outside the bank; misaligned access faults.
    pub fn read_scalar(&self, addr: u32, size: u32) -> Result<u32, TrapCause> {
        self.check(addr, size)?;
        let o = self.offset(addr);
        let mut v = 0u32;
        for i in (0..size as usize).rev() {
            v = (v << 8) | u32::from(self.bytes[o + i]);
        }
        Ok(v)
    }

    /// Writes a scalar of `size` ∈ {1, 2, 4} bytes and clears the granule's
    /// tag (a partial overwrite invalidates any capability stored there).
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn write_scalar(&mut self, addr: u32, size: u32, value: u32) -> Result<(), TrapCause> {
        self.check(addr, size)?;
        let o = self.offset(addr);
        for i in 0..size as usize {
            self.bytes[o + i] = (value >> (8 * i)) as u8;
        }
        self.tags[(addr - self.base) as usize / GRANULE as usize] = false;
        Ok(())
    }

    /// Reads a capability-sized word with its tag. Requires 8-byte
    /// alignment.
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn read_cap_word(&self, addr: u32) -> Result<(u64, bool), TrapCause> {
        self.check(addr, GRANULE)?;
        let o = self.offset(addr);
        let mut v = 0u64;
        for i in (0..GRANULE as usize).rev() {
            v = (v << 8) | u64::from(self.bytes[o + i]);
        }
        Ok((v, self.tags[(addr - self.base) as usize / GRANULE as usize]))
    }

    /// Writes a capability-sized word and its tag. Requires 8-byte
    /// alignment.
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn write_cap_word(&mut self, addr: u32, word: u64, tag: bool) -> Result<(), TrapCause> {
        self.check(addr, GRANULE)?;
        let o = self.offset(addr);
        for i in 0..GRANULE as usize {
            self.bytes[o + i] = (word >> (8 * i)) as u8;
        }
        self.tags[(addr - self.base) as usize / GRANULE as usize] = tag;
        Ok(())
    }

    /// Zeroes `[addr, addr+len)` and clears all covered tags. Used by the
    /// allocator (`free` zeroes memory) and the switcher (stack clearing).
    ///
    /// # Errors
    ///
    /// Bus error if the range leaves the bank.
    pub fn zero_range(&mut self, addr: u32, len: u32) -> Result<(), TrapCause> {
        if len == 0 {
            return Ok(());
        }
        if !self.contains(addr, len) {
            return Err(TrapCause::BusError { addr });
        }
        let o = self.offset(addr);
        self.bytes[o..o + len as usize].fill(0);
        let g0 = (addr - self.base) / GRANULE;
        let g1 = (addr - self.base + len - 1) / GRANULE;
        for g in g0..=g1 {
            self.tags[g as usize] = false;
        }
        Ok(())
    }

    /// Is the tag set for the granule containing `addr`?
    pub fn tag_at(&self, addr: u32) -> bool {
        if !self.contains(addr, 1) {
            return false;
        }
        self.tags[(addr - self.base) as usize / GRANULE as usize]
    }

    /// Count of set tags in `[addr, addr+len)` — used by sweeps and tests.
    pub fn count_tags(&self, addr: u32, len: u32) -> usize {
        if len == 0 || !self.contains(addr, len) {
            return 0;
        }
        let g0 = (addr - self.base) / GRANULE;
        let g1 = (addr - self.base + len - 1) / GRANULE;
        (g0..=g1).filter(|&g| self.tags[g as usize]).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram() -> Sram {
        Sram::new(0x2000_0000, 0x1000)
    }

    #[test]
    fn scalar_round_trip() {
        let mut m = sram();
        m.write_scalar(0x2000_0010, 4, 0xdead_beef).unwrap();
        assert_eq!(m.read_scalar(0x2000_0010, 4).unwrap(), 0xdead_beef);
        assert_eq!(m.read_scalar(0x2000_0010, 1).unwrap(), 0xef);
        assert_eq!(m.read_scalar(0x2000_0012, 2).unwrap(), 0xdead);
    }

    #[test]
    fn misaligned_faults() {
        let m = sram();
        assert!(matches!(
            m.read_scalar(0x2000_0001, 4),
            Err(TrapCause::Misaligned { .. })
        ));
        assert!(matches!(
            m.read_cap_word(0x2000_0004),
            Err(TrapCause::Misaligned { .. })
        ));
    }

    #[test]
    fn out_of_range_is_bus_error() {
        let m = sram();
        assert!(matches!(
            m.read_scalar(0x2000_1000, 4),
            Err(TrapCause::BusError { .. })
        ));
        assert!(matches!(
            m.read_scalar(0x1fff_fffc, 4),
            Err(TrapCause::BusError { .. })
        ));
    }

    #[test]
    fn cap_word_round_trip_with_tag() {
        let mut m = sram();
        m.write_cap_word(0x2000_0020, 0x0123_4567_89ab_cdef, true)
            .unwrap();
        assert_eq!(
            m.read_cap_word(0x2000_0020).unwrap(),
            (0x0123_4567_89ab_cdef, true)
        );
    }

    #[test]
    fn scalar_store_clears_tag() {
        let mut m = sram();
        m.write_cap_word(0x2000_0020, 42, true).unwrap();
        m.write_scalar(0x2000_0024, 1, 0xff).unwrap();
        let (_, tag) = m.read_cap_word(0x2000_0020).unwrap();
        assert!(!tag, "partial overwrite must detag the granule");
    }

    #[test]
    fn zero_range_clears_data_and_tags() {
        let mut m = sram();
        m.write_cap_word(0x2000_0040, 7, true).unwrap();
        m.write_cap_word(0x2000_0048, 7, true).unwrap();
        // Zeroing a range straddling both granules detags both, even though
        // only part of each granule's data is cleared.
        m.zero_range(0x2000_0044, 8).unwrap();
        let (w0, t0) = m.read_cap_word(0x2000_0040).unwrap();
        let (w1, t1) = m.read_cap_word(0x2000_0048).unwrap();
        assert_eq!(w0, 7); // low half untouched
        assert_eq!(w1, 0);
        assert!(!t0 && !t1);
        assert_eq!(m.count_tags(0x2000_0040, 16), 0);
    }

    #[test]
    fn zero_length_zero_range_is_noop() {
        let mut m = sram();
        m.zero_range(0x2000_0000, 0).unwrap();
        // Even at the very end of the bank.
        m.zero_range(m.end(), 0).unwrap();
    }
}
