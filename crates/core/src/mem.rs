//! Tagged SRAM.
//!
//! Embedded CHERIoT memory is tightly-coupled SRAM with one out-of-band tag
//! bit per 8-byte (capability-sized) granule. Scalar stores clear the tag of
//! the granule they touch; capability loads/stores move the tag with the
//! data. Capability accesses must be 8-byte aligned.
//!
//! Two simulator-only acceleration structures ride alongside the
//! architectural state (neither is architecturally visible):
//!
//! * the tag bits are packed 64 per `u64` word, so sweeps and range
//!   operations use mask arithmetic and popcounts instead of per-granule
//!   loops, and the background revoker can skip whole all-clear words;
//! * a **decoded-capability side cache** keeps the expanded form of the
//!   capability last written to each granule, so a `CLC` that follows a
//!   `CSC` is a copy instead of a bounds re-derivation. Scalar writes, raw
//!   word writes and tag clears invalidate the slot; the raw 64-bit word
//!   plus tag bit remain the source of truth.

use crate::trap::TrapCause;
use cheriot_cap::Capability;
use std::sync::atomic::{AtomicU64, Ordering};

/// Capability-granule size: 8 bytes (a 64-bit capability).
pub const GRANULE: u32 = 8;

/// Dirty-tracking page size: 4 KiB. A page is 512 granules, which is an
/// exact multiple of the 64-granule tag words, so page-wise copies move
/// whole tag words and whole side-cache runs.
pub const PAGE_SIZE: u32 = 4096;

/// Granules per dirty-tracking page.
const PAGE_GRANULES: usize = (PAGE_SIZE / GRANULE) as usize;

/// Globally unique content-identity stamps for snapshot lineage. Never
/// zero (zero means "unstamped").
static CONTENT_IDS: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_content_id() -> u64 {
    CONTENT_IDS.fetch_add(1, Ordering::Relaxed)
}

/// A bank of byte-addressable tagged SRAM.
#[derive(Clone)]
pub struct Sram {
    base: u32,
    bytes: Vec<u8>,
    /// One tag bit per granule: bit `g % 64` of word `g / 64`. Bits past
    /// the last granule are always clear.
    tags: Vec<u64>,
    /// Decoded-capability side cache, one slot per granule. `Some(c)` only
    /// when the granule's tag is set and `c` equals
    /// `Capability::from_word(word, true)` for the granule's current word.
    caps: Vec<Option<Capability>>,
    /// Dirty-page bitmap: bit `p % 64` of word `p / 64` is set when page
    /// `p` may have been written since the last snapshot/restore stamp.
    /// Maintained conservatively on every store/zero path (never on
    /// reads — side-cache fills are derived state), so a clear bit
    /// *guarantees* the page still holds the stamped content.
    dirty: Vec<u64>,
    /// Content-identity stamp the dirty bitmap is relative to: the bank
    /// held exactly the content identified by this id when the bitmap was
    /// last cleared. Zero means unstamped (no lineage; restores fall back
    /// to full copies).
    content: u64,
}

impl std::fmt::Debug for Sram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sram")
            .field("base", &format_args!("{:#010x}", self.base))
            .field("size", &self.bytes.len())
            .finish()
    }
}

impl Sram {
    /// Creates a zeroed SRAM bank of `size` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `size` is not granule-aligned.
    pub fn new(base: u32, size: u32) -> Sram {
        assert_eq!(base % GRANULE, 0, "SRAM base must be granule-aligned");
        assert_eq!(size % GRANULE, 0, "SRAM size must be granule-aligned");
        let granules = (size / GRANULE) as usize;
        let pages = (size as usize).div_ceil(PAGE_SIZE as usize);
        Sram {
            base,
            bytes: vec![0; size as usize],
            tags: vec![0; granules.div_ceil(64)],
            caps: vec![None; granules],
            dirty: vec![0; pages.div_ceil(64)],
            content: 0,
        }
    }

    /// Base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// End address (exclusive). `u64` because a bank ending at the top of
    /// the address space has end `0x1_0000_0000`, which a `u32` cannot
    /// hold (the old `u32` return overflowed for such banks).
    pub fn end(&self) -> u64 {
        u64::from(self.base) + self.bytes.len() as u64
    }

    /// Does this bank contain `[addr, addr+size)`?
    pub fn contains(&self, addr: u32, size: u32) -> bool {
        let a = u64::from(addr);
        a >= u64::from(self.base) && a + u64::from(size) <= self.end()
    }

    fn offset(&self, addr: u32) -> usize {
        (addr - self.base) as usize
    }

    fn granule(&self, addr: u32) -> usize {
        self.offset(addr) / GRANULE as usize
    }

    fn tag_get(&self, g: usize) -> bool {
        self.tags[g >> 6] & (1u64 << (g & 63)) != 0
    }

    fn tag_set(&mut self, g: usize, v: bool) {
        let mask = 1u64 << (g & 63);
        if v {
            self.tags[g >> 6] |= mask;
        } else {
            self.tags[g >> 6] &= !mask;
        }
    }

    /// Marks the page containing byte offset `o` dirty. All aligned
    /// scalar/capability stores stay within one page, so the single-page
    /// form covers every store path except [`Sram::zero_range`].
    #[inline]
    fn mark_dirty(&mut self, o: usize) {
        let p = o / PAGE_SIZE as usize;
        self.dirty[p >> 6] |= 1u64 << (p & 63);
    }

    /// Marks every page overlapping `[o, o+len)` dirty (`len > 0`).
    fn mark_dirty_range(&mut self, o: usize, len: usize) {
        let p0 = o / PAGE_SIZE as usize;
        let p1 = (o + len - 1) / PAGE_SIZE as usize;
        for p in p0..=p1 {
            self.dirty[p >> 6] |= 1u64 << (p & 63);
        }
    }

    fn check(&self, addr: u32, size: u32) -> Result<(), TrapCause> {
        if !self.contains(addr, size) {
            return Err(TrapCause::BusError { addr });
        }
        if !addr.is_multiple_of(size) {
            return Err(TrapCause::Misaligned { addr });
        }
        Ok(())
    }

    /// Reads a scalar of `size` ∈ {1, 2, 4} bytes, little-endian,
    /// zero-extended.
    ///
    /// # Errors
    ///
    /// Bus error outside the bank; misaligned access faults.
    pub fn read_scalar(&self, addr: u32, size: u32) -> Result<u32, TrapCause> {
        self.check(addr, size)?;
        debug_assert!(matches!(size, 1 | 2 | 4));
        let o = self.offset(addr);
        Ok(match size {
            1 => u32::from(self.bytes[o]),
            2 => u32::from(u16::from_le_bytes([self.bytes[o], self.bytes[o + 1]])),
            _ => u32::from_le_bytes(self.bytes[o..o + 4].try_into().unwrap()),
        })
    }

    /// Writes a scalar of `size` ∈ {1, 2, 4} bytes and clears the granule's
    /// tag (a partial overwrite invalidates any capability stored there).
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn write_scalar(&mut self, addr: u32, size: u32, value: u32) -> Result<(), TrapCause> {
        self.check(addr, size)?;
        debug_assert!(matches!(size, 1 | 2 | 4));
        let o = self.offset(addr);
        match size {
            1 => self.bytes[o] = value as u8,
            2 => self.bytes[o..o + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            _ => self.bytes[o..o + 4].copy_from_slice(&value.to_le_bytes()),
        }
        let g = self.granule(addr);
        self.tag_set(g, false);
        self.caps[g] = None;
        self.mark_dirty(o);
        Ok(())
    }

    /// Reads a capability-sized word with its tag. Requires 8-byte
    /// alignment.
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn read_cap_word(&self, addr: u32) -> Result<(u64, bool), TrapCause> {
        self.check(addr, GRANULE)?;
        let o = self.offset(addr);
        let word = u64::from_le_bytes(self.bytes[o..o + GRANULE as usize].try_into().unwrap());
        Ok((word, self.tag_get(self.granule(addr))))
    }

    /// Writes a capability-sized word and its tag. Requires 8-byte
    /// alignment. Invalidates the granule's decoded-capability slot (the
    /// caller supplied a raw word, not a decoded capability).
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn write_cap_word(&mut self, addr: u32, word: u64, tag: bool) -> Result<(), TrapCause> {
        self.check(addr, GRANULE)?;
        let o = self.offset(addr);
        self.bytes[o..o + GRANULE as usize].copy_from_slice(&word.to_le_bytes());
        let g = self.granule(addr);
        self.tag_set(g, tag);
        self.caps[g] = None;
        self.mark_dirty(o);
        Ok(())
    }

    /// Writes a decoded capability (word + tag) and fills the granule's
    /// side-cache slot, so a subsequent [`Sram::read_cap`] is a copy rather
    /// than a bounds re-derivation.
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn write_cap(&mut self, addr: u32, c: Capability) -> Result<(), TrapCause> {
        self.check(addr, GRANULE)?;
        let o = self.offset(addr);
        self.bytes[o..o + GRANULE as usize].copy_from_slice(&c.to_word().to_le_bytes());
        let g = self.granule(addr);
        self.tag_set(g, c.tag());
        self.caps[g] = if c.tag() { Some(c) } else { None };
        self.mark_dirty(o);
        Ok(())
    }

    /// Reads a capability, consulting the decoded side cache. A miss on a
    /// tagged granule decodes the raw word once and fills the slot;
    /// untagged granules never decode (and never populate the cache).
    ///
    /// # Errors
    ///
    /// As [`Sram::read_scalar`].
    pub fn read_cap(&mut self, addr: u32) -> Result<Capability, TrapCause> {
        let (word, tag) = self.read_cap_word(addr)?;
        if !tag {
            return Ok(Capability::from_word(word, false));
        }
        let g = self.granule(addr);
        if let Some(c) = self.caps[g] {
            debug_assert_eq!(c, Capability::from_word(word, tag));
            debug_assert_eq!(c.bounds(), Capability::from_word(word, tag).bounds());
            return Ok(c);
        }
        let c = Capability::from_word(word, true);
        self.caps[g] = Some(c);
        Ok(c)
    }

    /// Zeroes `[addr, addr+len)` and clears all covered tags. Used by the
    /// allocator (`free` zeroes memory) and the switcher (stack clearing).
    ///
    /// # Errors
    ///
    /// Bus error if the range leaves the bank.
    pub fn zero_range(&mut self, addr: u32, len: u32) -> Result<(), TrapCause> {
        if len == 0 {
            return Ok(());
        }
        if !self.contains(addr, len) {
            return Err(TrapCause::BusError { addr });
        }
        let o = self.offset(addr);
        self.bytes[o..o + len as usize].fill(0);
        self.mark_dirty_range(o, len as usize);
        let g0 = o / GRANULE as usize;
        let g1 = (o + len as usize - 1) / GRANULE as usize;
        self.caps[g0..=g1].fill(None);
        let (w0, b0) = (g0 >> 6, g0 & 63);
        let (w1, b1) = (g1 >> 6, g1 & 63);
        let lo = !0u64 << b0;
        let hi = !0u64 >> (63 - b1);
        if w0 == w1 {
            self.tags[w0] &= !(lo & hi);
        } else {
            self.tags[w0] &= !lo;
            self.tags[w0 + 1..w1].fill(0);
            self.tags[w1] &= !hi;
        }
        Ok(())
    }

    /// Copies `[addr, addr+len)` out of the bank (DMA read side). No
    /// alignment requirement; tags are not readable this way (DMA moves
    /// data, never capabilities).
    ///
    /// # Errors
    ///
    /// Bus error if the range leaves the bank.
    pub fn read_bytes(&self, addr: u32, buf: &mut [u8]) -> Result<(), TrapCause> {
        if buf.is_empty() {
            return Ok(());
        }
        if !self.contains(addr, buf.len() as u32) {
            return Err(TrapCause::BusError { addr });
        }
        let o = self.offset(addr);
        buf.copy_from_slice(&self.bytes[o..o + buf.len()]);
        Ok(())
    }

    /// Copies `buf` into `[addr, addr+len)` (DMA write side), clearing
    /// every covered granule's tag and decoded-capability slot — a DMA
    /// store is a raw-byte overwrite, so any capability it touches (even
    /// partially) must die — and marking every covered page dirty so
    /// snapshot/fork never under-copies. No alignment requirement.
    ///
    /// # Errors
    ///
    /// Bus error if the range leaves the bank.
    pub fn write_bytes(&mut self, addr: u32, buf: &[u8]) -> Result<(), TrapCause> {
        if buf.is_empty() {
            return Ok(());
        }
        if !self.contains(addr, buf.len() as u32) {
            return Err(TrapCause::BusError { addr });
        }
        let o = self.offset(addr);
        self.bytes[o..o + buf.len()].copy_from_slice(buf);
        self.mark_dirty_range(o, buf.len());
        let g0 = o / GRANULE as usize;
        let g1 = (o + buf.len() - 1) / GRANULE as usize;
        self.caps[g0..=g1].fill(None);
        let (w0, b0) = (g0 >> 6, g0 & 63);
        let (w1, b1) = (g1 >> 6, g1 & 63);
        let lo = !0u64 << b0;
        let hi = !0u64 >> (63 - b1);
        if w0 == w1 {
            self.tags[w0] &= !(lo & hi);
        } else {
            self.tags[w0] &= !lo;
            self.tags[w0 + 1..w1].fill(0);
            self.tags[w1] &= !hi;
        }
        Ok(())
    }

    /// Is the tag set for the granule containing `addr`?
    pub fn tag_at(&self, addr: u32) -> bool {
        if !self.contains(addr, 1) {
            return false;
        }
        self.tag_get(self.granule(addr))
    }

    /// Count of set tags in `[addr, addr+len)` — used by sweeps and tests.
    pub fn count_tags(&self, addr: u32, len: u32) -> usize {
        if len == 0 || !self.contains(addr, len) {
            return 0;
        }
        let o = self.offset(addr);
        let g0 = o / GRANULE as usize;
        let g1 = (o + len as usize - 1) / GRANULE as usize;
        let (w0, b0) = (g0 >> 6, g0 & 63);
        let (w1, b1) = (g1 >> 6, g1 & 63);
        let lo = !0u64 << b0;
        let hi = !0u64 >> (63 - b1);
        if w0 == w1 {
            (self.tags[w0] & lo & hi).count_ones() as usize
        } else {
            let mut n = (self.tags[w0] & lo).count_ones();
            for w in &self.tags[w0 + 1..w1] {
                n += w.count_ones();
            }
            n += (self.tags[w1] & hi).count_ones();
            n as usize
        }
    }

    /// Length (in granules, capped at `max_granules`) of the run of
    /// *untagged* granules starting at granule-aligned `addr`. Scans the
    /// packed tag words, so an all-clear 64-granule word costs one load —
    /// this is what lets the background revoker batch over untouched
    /// memory. Returns 0 for addresses outside the bank or unaligned.
    pub fn untagged_run(&self, addr: u32, max_granules: u32) -> u32 {
        if max_granules == 0 || !addr.is_multiple_of(GRANULE) || !self.contains(addr, GRANULE) {
            return 0;
        }
        let g0 = self.granule(addr);
        let total = self.bytes.len() / GRANULE as usize;
        let limit = (g0 + max_granules as usize).min(total);
        let mut g = g0;
        while g < limit {
            let masked = self.tags[g >> 6] & (!0u64 << (g & 63));
            if masked != 0 {
                let next_tagged = (g & !63) + masked.trailing_zeros() as usize;
                return (next_tagged.min(limit) - g0) as u32;
            }
            g = (g & !63) + 64;
        }
        (limit - g0) as u32
    }

    /// Number of dirty-tracking pages in the bank.
    pub fn num_pages(&self) -> u32 {
        self.bytes.len().div_ceil(PAGE_SIZE as usize) as u32
    }

    /// Number of pages currently marked dirty (written since the last
    /// snapshot/restore stamp).
    pub fn dirty_pages(&self) -> u32 {
        self.dirty.iter().map(|w| w.count_ones()).sum()
    }

    /// Is the page containing `addr` marked dirty? False outside the bank.
    pub fn page_is_dirty(&self, addr: u32) -> bool {
        if !self.contains(addr, 1) {
            return false;
        }
        let p = self.offset(addr) / PAGE_SIZE as usize;
        self.dirty[p >> 6] & (1u64 << (p & 63)) != 0
    }

    /// Architectural-content equality: same base and identical bytes and
    /// tags. The decoded side cache and dirty bookkeeping are derived
    /// state and deliberately excluded.
    pub fn content_eq(&self, other: &Sram) -> bool {
        self.base == other.base && self.bytes == other.bytes && self.tags == other.tags
    }

    fn clear_dirty(&mut self) {
        self.dirty.fill(0);
    }

    fn same_shape(&self, other: &Sram) -> bool {
        self.base == other.base && self.bytes.len() == other.bytes.len()
    }

    /// Copies page `p` of `src` (bytes and tags) into `self`. Pages start
    /// word-aligned in the tag array (512 granules = 8 tag words), so
    /// whole words move; a partial final page owns the trailing bits of
    /// its last word.
    ///
    /// The decoded-cap side cache is *derived* state: snapshot banks
    /// don't carry one at all, and a restored page just drops its entries
    /// — they re-derive on the next tagged load. Copying them would more
    /// than triple restore traffic for state a single decode rebuilds.
    fn copy_page_from(&mut self, src: &Sram, p: usize) {
        let b0 = p * PAGE_SIZE as usize;
        let b1 = (b0 + PAGE_SIZE as usize).min(self.bytes.len());
        self.bytes[b0..b1].copy_from_slice(&src.bytes[b0..b1]);
        let g0 = p * PAGE_GRANULES;
        let g1 = b1 / GRANULE as usize;
        if !self.caps.is_empty() {
            self.caps[g0..g1].fill(None);
        }
        let w0 = g0 >> 6;
        let w1 = g1.div_ceil(64);
        self.tags[w0..w1].copy_from_slice(&src.tags[w0..w1]);
    }

    /// Captures the bank's current content into `dst`, stamping both with
    /// the content id of the captured state.
    ///
    /// When `dst` already holds this bank's last-stamped content (their
    /// content ids match), only pages dirtied since that stamp are copied
    /// — O(dirty). Otherwise `dst` is overwritten wholesale. Both dirty
    /// bitmaps are cleared; returns the number of pages copied.
    pub(crate) fn capture_into(&mut self, dst: &mut Sram) -> u32 {
        let copied;
        let any_dirty = self.dirty.iter().any(|&w| w != 0);
        if self.content != 0 && dst.content == self.content && self.same_shape(dst) {
            let mut n = 0;
            for wi in 0..self.dirty.len() {
                let mut w = self.dirty[wi];
                while w != 0 {
                    let p = (wi << 6) + w.trailing_zeros() as usize;
                    dst.copy_page_from(self, p);
                    w &= w - 1;
                    n += 1;
                }
            }
            copied = n;
        } else {
            dst.base = self.base;
            dst.bytes.clone_from(&self.bytes);
            dst.tags.clone_from(&self.tags);
            // Snapshot banks never carry the derived side cache (see
            // `copy_page_from`); drop the allocation, not just the entries.
            dst.caps = Vec::new();
            dst.dirty.resize(self.dirty.len(), 0);
            copied = self.num_pages();
        }
        if self.content == 0 || any_dirty {
            self.content = fresh_content_id();
        }
        dst.content = self.content;
        self.clear_dirty();
        dst.clear_dirty();
        copied
    }

    /// Restores the bank to the content of `src` (a snapshot's bank).
    ///
    /// When this bank's last stamp matches `src`'s content id, every page
    /// not marked dirty is *guaranteed* unchanged since that stamp, so
    /// only dirty pages are copied back — O(dirty). Without a lineage
    /// match the whole bank is copied. Clears the dirty bitmap and adopts
    /// `src`'s content id; returns the number of pages copied.
    ///
    /// # Panics
    ///
    /// Panics if the banks have different bases or sizes.
    pub(crate) fn restore_page_wise(&mut self, src: &Sram) -> u32 {
        assert!(
            self.same_shape(src),
            "snapshot restore across differently-shaped SRAM banks"
        );
        let copied = if src.content != 0 && self.content == src.content {
            let mut n = 0;
            for wi in 0..self.dirty.len() {
                let mut w = self.dirty[wi];
                while w != 0 {
                    let p = (wi << 6) + w.trailing_zeros() as usize;
                    self.copy_page_from(src, p);
                    w &= w - 1;
                    n += 1;
                }
            }
            n
        } else {
            self.bytes.copy_from_slice(&src.bytes);
            self.tags.copy_from_slice(&src.tags);
            self.caps.fill(None);
            self.num_pages()
        };
        self.content = src.content;
        self.clear_dirty();
        copied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram() -> Sram {
        Sram::new(0x2000_0000, 0x1000)
    }

    #[test]
    fn scalar_round_trip() {
        let mut m = sram();
        m.write_scalar(0x2000_0010, 4, 0xdead_beef).unwrap();
        assert_eq!(m.read_scalar(0x2000_0010, 4).unwrap(), 0xdead_beef);
        assert_eq!(m.read_scalar(0x2000_0010, 1).unwrap(), 0xef);
        assert_eq!(m.read_scalar(0x2000_0012, 2).unwrap(), 0xdead);
    }

    #[test]
    fn misaligned_faults() {
        let m = sram();
        assert!(matches!(
            m.read_scalar(0x2000_0001, 4),
            Err(TrapCause::Misaligned { .. })
        ));
        assert!(matches!(
            m.read_cap_word(0x2000_0004),
            Err(TrapCause::Misaligned { .. })
        ));
    }

    #[test]
    fn out_of_range_is_bus_error() {
        let m = sram();
        assert!(matches!(
            m.read_scalar(0x2000_1000, 4),
            Err(TrapCause::BusError { .. })
        ));
        assert!(matches!(
            m.read_scalar(0x1fff_fffc, 4),
            Err(TrapCause::BusError { .. })
        ));
    }

    #[test]
    fn cap_word_round_trip_with_tag() {
        let mut m = sram();
        m.write_cap_word(0x2000_0020, 0x0123_4567_89ab_cdef, true)
            .unwrap();
        assert_eq!(
            m.read_cap_word(0x2000_0020).unwrap(),
            (0x0123_4567_89ab_cdef, true)
        );
    }

    #[test]
    fn scalar_store_clears_tag() {
        let mut m = sram();
        m.write_cap_word(0x2000_0020, 42, true).unwrap();
        m.write_scalar(0x2000_0024, 1, 0xff).unwrap();
        let (_, tag) = m.read_cap_word(0x2000_0020).unwrap();
        assert!(!tag, "partial overwrite must detag the granule");
    }

    #[test]
    fn zero_range_clears_data_and_tags() {
        let mut m = sram();
        m.write_cap_word(0x2000_0040, 7, true).unwrap();
        m.write_cap_word(0x2000_0048, 7, true).unwrap();
        // Zeroing a range straddling both granules detags both, even though
        // only part of each granule's data is cleared.
        m.zero_range(0x2000_0044, 8).unwrap();
        let (w0, t0) = m.read_cap_word(0x2000_0040).unwrap();
        let (w1, t1) = m.read_cap_word(0x2000_0048).unwrap();
        assert_eq!(w0, 7); // low half untouched
        assert_eq!(w1, 0);
        assert!(!t0 && !t1);
        assert_eq!(m.count_tags(0x2000_0040, 16), 0);
    }

    #[test]
    fn zero_length_zero_range_is_noop() {
        let mut m = sram();
        m.zero_range(0x2000_0000, 0).unwrap();
        // Even at the very end of the bank.
        m.zero_range(m.base() + m.size(), 0).unwrap();
    }

    #[test]
    fn bank_ending_at_address_space_top() {
        // Regression: `end()` used to compute base + size in u32, which
        // overflows (panicking in debug builds) for a bank whose exclusive
        // end is 0x1_0000_0000.
        let mut m = Sram::new(0xffff_f000, 0x1000);
        assert_eq!(m.end(), 0x1_0000_0000);
        assert!(m.contains(0xffff_fff8, 8));
        assert!(!m.contains(0xffff_fff8, 16));
        m.write_cap_word(0xffff_fff8, 99, true).unwrap();
        assert_eq!(m.read_cap_word(0xffff_fff8).unwrap(), (99, true));
        assert_eq!(m.count_tags(0xffff_f000, 0x1000), 1);
        m.zero_range(0xffff_fff8, 8).unwrap();
        assert_eq!(m.read_cap_word(0xffff_fff8).unwrap(), (0, false));
    }

    #[test]
    fn count_tags_spanning_many_words() {
        let mut m = sram();
        // One tag every 16 granules across the whole 512-granule bank.
        for g in (0..0x1000 / GRANULE).step_by(16) {
            m.write_cap_word(0x2000_0000 + g * GRANULE, 1, true)
                .unwrap();
        }
        assert_eq!(m.count_tags(0x2000_0000, 0x1000), 32);
        assert_eq!(m.count_tags(0x2000_0000, 16 * GRANULE), 1);
        assert_eq!(m.count_tags(0x2000_0008, 16 * GRANULE), 1);
    }

    #[test]
    fn untagged_run_scans_word_boundaries() {
        let mut m = sram();
        assert_eq!(m.untagged_run(0x2000_0000, 512), 512);
        assert_eq!(m.untagged_run(0x2000_0000, 100), 100);
        // Tag granule 70 (second tag word).
        m.write_cap_word(0x2000_0000 + 70 * 8, 1, true).unwrap();
        assert_eq!(m.untagged_run(0x2000_0000, 512), 70);
        assert_eq!(m.untagged_run(0x2000_0000 + 70 * 8, 512), 0);
        assert_eq!(m.untagged_run(0x2000_0000 + 71 * 8, 512), 512 - 71);
        // Unaligned or out-of-bank addresses yield no run.
        assert_eq!(m.untagged_run(0x2000_0004, 512), 0);
        assert_eq!(m.untagged_run(0x3000_0000, 512), 0);
    }

    #[test]
    fn side_cache_returns_written_capability() {
        use cheriot_cap::Capability;
        let mut m = sram();
        let c = Capability::root_mem_rw()
            .with_address(0x2000_0100)
            .set_bounds(64)
            .unwrap();
        m.write_cap(0x2000_0010, c).unwrap();
        let back = m.read_cap(0x2000_0010).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.bounds(), c.bounds());
        // The raw word view agrees with the cached view.
        assert_eq!(m.read_cap_word(0x2000_0010).unwrap(), (c.to_word(), true));
    }

    #[test]
    fn dirty_tracking_marks_exactly_the_touched_pages() {
        let mut m = Sram::new(0x2000_0000, 0x4000); // 4 pages
        let mut snap = Sram::new(0x2000_0000, 0x4000);
        m.capture_into(&mut snap);
        assert_eq!(m.dirty_pages(), 0);
        m.write_scalar(0x2000_0004, 1, 0xaa).unwrap();
        assert_eq!(m.dirty_pages(), 1);
        assert!(m.page_is_dirty(0x2000_0004));
        assert!(!m.page_is_dirty(0x2000_1000));
        m.write_cap_word(0x2000_2000, 1, true).unwrap();
        assert_eq!(m.dirty_pages(), 2);
        // A zero spanning the page-1/page-2 boundary dirties both.
        m.zero_range(0x2000_1ff8, 16).unwrap();
        assert_eq!(m.dirty_pages(), 3);
        assert!(m.page_is_dirty(0x2000_1ff8));
    }

    #[test]
    fn dirty_tracking_never_under_reports() {
        // Restore correctness under targeted single-page stores: every
        // store path must mark its page, or the page-wise restore would
        // silently keep the new bytes. Restoring after each kind of store
        // must reproduce the snapshot content exactly.
        let c = Capability::root_mem_rw()
            .with_address(0x2000_0100)
            .set_bounds(64)
            .unwrap();
        type Store = Box<dyn Fn(&mut Sram)>;
        let stores: Vec<Store> = vec![
            Box::new(|s| s.write_scalar(0x2000_0abc, 4, 0xdead_beef).unwrap()),
            Box::new(|s| s.write_scalar(0x2000_1fff, 1, 0x55).unwrap()),
            Box::new(|s| s.write_cap_word(0x2000_2ff8, 0x0123, true).unwrap()),
            Box::new(move |s| s.write_cap(0x2000_3008, c).unwrap()),
            Box::new(|s| s.zero_range(0x2000_0ff0, 0x20).unwrap()),
        ];
        for store in &stores {
            let mut m = Sram::new(0x2000_0000, 0x4000);
            // Pre-populate so zeroing/overwrites actually change content.
            for a in (0x2000_0000u32..0x2000_4000).step_by(64) {
                m.write_cap_word(a, u64::from(a), true).unwrap();
            }
            let mut snap = Sram::new(0x2000_0000, 0x4000);
            m.capture_into(&mut snap);
            store(&mut m);
            let dirty = m.dirty_pages();
            assert!(dirty > 0, "store path failed to mark any page");
            assert_eq!(m.restore_page_wise(&snap), dirty);
            assert!(m.content_eq(&snap), "restore missed a dirtied page");
        }
    }

    #[test]
    fn page_wise_restore_copies_only_dirty_pages() {
        let mut m = Sram::new(0x2000_0000, 0x8000); // 8 pages
        m.write_cap_word(0x2000_4000, 7, true).unwrap();
        let mut snap = Sram::new(0x2000_0000, 0x8000);
        let first = m.capture_into(&mut snap);
        assert_eq!(first, 8, "first capture into a fresh bank is a full copy");
        m.write_scalar(0x2000_0000, 4, 1).unwrap();
        m.write_scalar(0x2000_7ffc, 4, 2).unwrap();
        assert_eq!(m.restore_page_wise(&snap), 2);
        assert!(m.content_eq(&snap));
        assert!(m.tag_at(0x2000_4000));
        // Re-capture with no divergence copies nothing and keeps lineage.
        assert_eq!(m.capture_into(&mut snap), 0);
        // A foreign bank has no lineage: full copy.
        let mut other = Sram::new(0x2000_0000, 0x8000);
        assert_eq!(other.restore_page_wise(&snap), 8);
        assert!(other.content_eq(&snap));
    }

    #[test]
    fn side_cache_coherent_after_page_wise_restore() {
        let c = Capability::root_mem_rw()
            .with_address(0x2000_0040)
            .set_bounds(32)
            .unwrap();
        let mut m = Sram::new(0x2000_0000, 0x2000);
        m.write_cap(0x2000_0040, c).unwrap();
        let mut snap = Sram::new(0x2000_0000, 0x2000);
        m.capture_into(&mut snap);
        // Overwrite the capability, then restore: the read-back must be
        // the snapshot's capability, not the overwrite or a stale decode.
        m.write_cap_word(0x2000_0040, 0xffff_ffff_ffff_ffff, false)
            .unwrap();
        m.restore_page_wise(&snap);
        let back = m.read_cap(0x2000_0040).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.bounds(), c.bounds());
    }

    #[test]
    fn side_cache_invalidated_by_scalar_and_raw_writes() {
        use cheriot_cap::Capability;
        let mut m = sram();
        let c = Capability::root_mem_rw()
            .with_address(0x2000_0200)
            .set_bounds(32)
            .unwrap();
        m.write_cap(0x2000_0040, c).unwrap();
        // Scalar overwrite: tag drops, and the read-back reflects the new
        // bytes, not the stale cached decode.
        m.write_scalar(0x2000_0040, 4, 0x1234_5678).unwrap();
        let back = m.read_cap(0x2000_0040).unwrap();
        assert!(!back.tag());
        assert_eq!(back.to_word() as u32, 0x1234_5678);
        // Raw word write with tag repopulates lazily on the next read.
        m.write_cap_word(0x2000_0040, c.to_word(), true).unwrap();
        let again = m.read_cap(0x2000_0040).unwrap();
        assert_eq!(again, c);
        assert_eq!(again.bounds(), c.bounds());
    }
}
