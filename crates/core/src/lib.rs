//! # cheriot-core — the CHERIoT ISA simulator
//!
//! A functional, cycle-modelled simulator for the CHERIoT platform of
//! *CHERIoT: Complete Memory Safety for Embedded Devices* (MICRO 2023):
//!
//! * **[`machine::Machine`]** — the SoC: a CHERIoT hart (RV32E + M +
//!   CHERIoT), tagged SRAM, a machine timer, a debug console, the
//!   memory-mapped revocation bitmap, and the background revoker device.
//! * **[`revocation`]** — the temporal-safety hardware of paper §3.3: the
//!   per-granule revocation bitmap, the pipeline load filter, and the
//!   two-stage background revoker (with main-pipeline store snooping).
//! * **[`pipeline::CoreModel`]** — cycle-cost parameters for the two
//!   evaluated cores (area-optimised Ibex, performance-oriented Flute).
//! * **[`meter::Meter`]** — the charging interface through which
//!   natively-modelled TCB code (the RTOS and allocator) performs memory
//!   accesses at the same per-access costs as guest code.
//! * **[`trace`]** (re-export of `cheriot-trace`) — the structured
//!   tracing/metrics subsystem; install a [`trace::Tracer`] with
//!   [`machine::Machine::set_tracer`] to capture timelines and
//!   per-compartment cycle attribution.
//!
//! ## Example
//!
//! ```
//! use cheriot_core::insn::{Instr, Reg, AluOp};
//! use cheriot_core::machine::{Machine, MachineConfig, ExitReason};
//! use cheriot_core::pipeline::CoreModel;
//!
//! let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
//! let entry = m.load_program(&[
//!     Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 42 },
//!     Instr::Halt,
//! ]);
//! m.set_entry(entry);
//! assert_eq!(m.run(1_000), ExitReason::Halted(42));
//! ```

#![warn(missing_docs)]

pub mod blockcache;
pub mod bus;
pub mod cpu;
pub mod encoding;
pub mod error;
pub mod insn;
pub mod machine;
pub mod mem;
pub mod meter;
pub mod pipeline;
pub mod revocation;
pub mod sched;
pub mod trap;

/// The structured tracing/metrics subsystem (the `cheriot-trace` crate),
/// re-exported so downstream crates can name event and tracer types
/// without a direct dependency.
pub use cheriot_trace as trace;

pub use blockcache::BlockCacheStats;
pub use bus::{BusError, DeviceBus, IrqController, MmioDevice, Uart, INTC_DEV_ID};
pub use encoding::{decode, decode_program, encode, encode_program, DecodeError, EncodeError};
pub use error::{state_dump, SimError};
pub use machine::{
    layout, ExitReason, Machine, MachineConfig, Snapshot, SnapshotStats, Stats, TraceEntry,
};
pub use mem::CowStats;
pub use meter::Meter;
pub use pipeline::{CoreKind, CoreModel};
pub use trap::TrapCause;
