//! Binary instruction encoding.
//!
//! A RISC-V-style 32-bit encoding for the simulator's instruction set:
//! the RV32I/M subset uses the standard opcodes and formats; capability
//! loads/stores ride the LOAD/STORE opcodes at `funct3 = 0b011` (the
//! 64-bit width, as in CHERIoT-Ibex); the remaining CHERI operations live
//! under the custom-2 opcode `0x5B`. `AUIPCC`/`AUICGP` deviate from
//! stock RISC-V in carrying a byte-granular 20-bit signed immediate
//! (this simulator's decoded semantics), and `halt` is a SYSTEM-opcode
//! simulator control; both deviations are local to this codec and are
//! documented here.
//!
//! [`encode_program`] is a small backend pass: instructions whose
//! immediates exceed their field (e.g. `li` of an absolute address) are
//! expanded into `lui`+`addi` pairs and every branch/jump offset is fixed
//! up across the expansion. [`decode_program`] inverts the word stream
//! into runnable decoded instructions, so
//! `run(decode(encode(p))) == run(p)`.

use crate::insn::{AluOp, BranchCond, CapField, CsrId, CsrOp, Instr, MemWidth, MulOp, Reg, ScrId};
use core::fmt;

/// Encoding failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit its field and cannot be expanded.
    ImmediateRange {
        /// Index of the offending instruction.
        index: usize,
        /// The immediate value.
        value: i64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmediateRange { index, value } => {
                write!(f, "immediate {value} out of range at instruction {index}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Decoding failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The word is not a valid instruction.
    Illegal {
        /// The word.
        word: u32,
        /// Its index in the stream.
        index: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Illegal { word, index } => {
                write!(f, "illegal instruction {word:#010x} at index {index}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

// --- field packers -----------------------------------------------------------

fn r(rd: Reg) -> u32 {
    u32::from(rd.0 & 0x1f)
}

fn rtype(op: u32, f3: u32, f7: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    op | (r(rd) << 7) | (f3 << 12) | (r(rs1) << 15) | (r(rs2) << 20) | (f7 << 25)
}

fn itype(op: u32, f3: u32, rd: Reg, rs1: Reg, imm: i32) -> u32 {
    op | (r(rd) << 7) | (f3 << 12) | (r(rs1) << 15) | (((imm as u32) & 0xfff) << 20)
}

fn stype(op: u32, f3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    let i = imm as u32;
    op | ((i & 0x1f) << 7) | (f3 << 12) | (r(rs1) << 15) | (r(rs2) << 20) | ((i >> 5 & 0x7f) << 25)
}

fn btype(op: u32, f3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    let i = imm as u32;
    op | ((i >> 11 & 1) << 7)
        | ((i >> 1 & 0xf) << 8)
        | (f3 << 12)
        | (r(rs1) << 15)
        | (r(rs2) << 20)
        | ((i >> 5 & 0x3f) << 25)
        | ((i >> 12 & 1) << 31)
}

fn utype(op: u32, rd: Reg, imm20: u32) -> u32 {
    op | (r(rd) << 7) | ((imm20 & 0xf_ffff) << 12)
}

fn jtype(op: u32, rd: Reg, imm: i32) -> u32 {
    let i = imm as u32;
    op | (r(rd) << 7)
        | ((i >> 12 & 0xff) << 12)
        | ((i >> 11 & 1) << 20)
        | ((i >> 1 & 0x3ff) << 21)
        | ((i >> 20 & 1) << 31)
}

fn fits_signed(v: i64, bits: u32) -> bool {
    let half = 1i64 << (bits - 1);
    (-half..half).contains(&v)
}

const OP_LUI: u32 = 0x37;
const OP_AUIPCC: u32 = 0x17;
const OP_AUICGP: u32 = 0x7b;
const OP_JAL: u32 = 0x6f;
const OP_JALR: u32 = 0x67;
const OP_BRANCH: u32 = 0x63;
const OP_LOAD: u32 = 0x03;
const OP_STORE: u32 = 0x23;
const OP_IMM: u32 = 0x13;
const OP_OP: u32 = 0x33;
const OP_MISC: u32 = 0x0f;
const OP_SYSTEM: u32 = 0x73;
const OP_CHERI: u32 = 0x5b;

fn csr_addr(c: CsrId) -> u32 {
    match c {
        CsrId::Mcycle => 0xb00,
        CsrId::Mcycleh => 0xb80,
        CsrId::Mcause => 0x342,
        CsrId::Mtval => 0x343,
        CsrId::Mshwm => 0xbc1,
        CsrId::Mshwmb => 0xbc2,
    }
}

fn csr_from_addr(a: u32) -> Option<CsrId> {
    Some(match a {
        0xb00 => CsrId::Mcycle,
        0xb80 => CsrId::Mcycleh,
        0x342 => CsrId::Mcause,
        0x343 => CsrId::Mtval,
        0xbc1 => CsrId::Mshwm,
        0xbc2 => CsrId::Mshwmb,
        _ => return None,
    })
}

/// Encodes one instruction whose immediates are known to fit.
///
/// # Errors
///
/// [`EncodeError::ImmediateRange`] (with index 0) when a field overflows;
/// use [`encode_program`] to get automatic expansion of large immediates.
pub fn encode(instr: &Instr) -> Result<u32, EncodeError> {
    let range_err = |v: i64| EncodeError::ImmediateRange { index: 0, value: v };
    let chk = |v: i32, bits: u32| -> Result<i32, EncodeError> {
        if fits_signed(i64::from(v), bits) {
            Ok(v)
        } else {
            Err(range_err(i64::from(v)))
        }
    };
    Ok(match *instr {
        Instr::Lui { rd, imm } => utype(OP_LUI, rd, imm),
        Instr::Auipcc { rd, imm } => {
            let v = chk(imm, 20)?;
            utype(OP_AUIPCC, rd, v as u32)
        }
        Instr::Auicgp { rd, imm } => {
            let v = chk(imm, 20)?;
            utype(OP_AUICGP, rd, v as u32)
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            let (f3, f7shift) = match op {
                AluOp::Add => (0, None),
                AluOp::Sll => (1, Some(0u32)),
                AluOp::Slt => (2, None),
                AluOp::Sltu => (3, None),
                AluOp::Xor => (4, None),
                AluOp::Srl => (5, Some(0)),
                AluOp::Sra => (5, Some(0x20)),
                AluOp::Or => (6, None),
                AluOp::And => (7, None),
                AluOp::Sub => return Err(range_err(i64::from(imm))), // no subi
            };
            match f7shift {
                Some(f7) => {
                    if !(0..32).contains(&imm) {
                        return Err(range_err(i64::from(imm)));
                    }
                    itype(OP_IMM, f3, rd, rs1, imm | ((f7 as i32) << 5))
                }
                None => itype(OP_IMM, f3, rd, rs1, chk(imm, 12)?),
            }
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            let (f3, f7) = match op {
                AluOp::Add => (0, 0),
                AluOp::Sub => (0, 0x20),
                AluOp::Sll => (1, 0),
                AluOp::Slt => (2, 0),
                AluOp::Sltu => (3, 0),
                AluOp::Xor => (4, 0),
                AluOp::Srl => (5, 0),
                AluOp::Sra => (5, 0x20),
                AluOp::Or => (6, 0),
                AluOp::And => (7, 0),
            };
            rtype(OP_OP, f3, f7, rd, rs1, rs2)
        }
        Instr::MulDiv { op, rd, rs1, rs2 } => {
            let f3 = match op {
                MulOp::Mul => 0,
                MulOp::Mulh => 1,
                MulOp::Mulhu => 3,
                MulOp::Div => 4,
                MulOp::Divu => 5,
                MulOp::Rem => 6,
                MulOp::Remu => 7,
            };
            rtype(OP_OP, f3, 1, rd, rs1, rs2)
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let f3 = match cond {
                BranchCond::Eq => 0,
                BranchCond::Ne => 1,
                BranchCond::Lt => 4,
                BranchCond::Ge => 5,
                BranchCond::Ltu => 6,
                BranchCond::Geu => 7,
            };
            if offset % 2 != 0 || !fits_signed(i64::from(offset), 13) {
                return Err(range_err(i64::from(offset)));
            }
            btype(OP_BRANCH, f3, rs1, rs2, offset)
        }
        Instr::Jal { rd, offset } => {
            if offset % 2 != 0 || !fits_signed(i64::from(offset), 21) {
                return Err(range_err(i64::from(offset)));
            }
            jtype(OP_JAL, rd, offset)
        }
        Instr::Jalr { rd, rs1, offset } => itype(OP_JALR, 0, rd, rs1, chk(offset, 12)?),
        Instr::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => {
            let f3 = match (width, signed) {
                (MemWidth::B, true) => 0,
                (MemWidth::H, true) => 1,
                (MemWidth::W, _) => 2,
                (MemWidth::B, false) => 4,
                (MemWidth::H, false) => 5,
            };
            itype(OP_LOAD, f3, rd, rs1, chk(offset, 12)?)
        }
        Instr::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let f3 = match width {
                MemWidth::B => 0,
                MemWidth::H => 1,
                MemWidth::W => 2,
            };
            stype(OP_STORE, f3, rs1, rs2, chk(offset, 12)?)
        }
        Instr::Clc { rd, rs1, offset } => itype(OP_LOAD, 3, rd, rs1, chk(offset, 12)?),
        Instr::Csc { rs2, rs1, offset } => stype(OP_STORE, 3, rs1, rs2, chk(offset, 12)?),
        Instr::CGet { field, rd, rs1 } => {
            let sel = match field {
                CapField::Perm => 0,
                CapField::Type => 1,
                CapField::Base => 2,
                CapField::Len => 3,
                CapField::Tag => 4,
                CapField::Addr => 5,
                CapField::High => 6,
            };
            rtype(OP_CHERI, 1, 0, rd, rs1, Reg(sel))
        }
        Instr::CMove { rd, rs1 } => rtype(OP_CHERI, 1, 0, rd, rs1, Reg(7)),
        Instr::CClearTag { rd, rs1 } => rtype(OP_CHERI, 1, 0, rd, rs1, Reg(8)),
        Instr::CRoundRepresentableLength { rd, rs1 } => rtype(OP_CHERI, 1, 0, rd, rs1, Reg(9)),
        Instr::CRepresentableAlignmentMask { rd, rs1 } => rtype(OP_CHERI, 1, 0, rd, rs1, Reg(10)),
        Instr::CSetAddr { rd, rs1, rs2 } => rtype(OP_CHERI, 0, 0x01, rd, rs1, rs2),
        Instr::CIncAddr { rd, rs1, rs2 } => rtype(OP_CHERI, 0, 0x02, rd, rs1, rs2),
        Instr::CSetBounds {
            rd,
            rs1,
            rs2,
            exact,
        } => rtype(OP_CHERI, 0, if exact { 0x04 } else { 0x03 }, rd, rs1, rs2),
        Instr::CAndPerm { rd, rs1, rs2 } => rtype(OP_CHERI, 0, 0x05, rd, rs1, rs2),
        Instr::CSeal { rd, rs1, rs2 } => rtype(OP_CHERI, 0, 0x06, rd, rs1, rs2),
        Instr::CUnseal { rd, rs1, rs2 } => rtype(OP_CHERI, 0, 0x07, rd, rs1, rs2),
        Instr::CTestSubset { rd, rs1, rs2 } => rtype(OP_CHERI, 0, 0x08, rd, rs1, rs2),
        Instr::CSetEqualExact { rd, rs1, rs2 } => rtype(OP_CHERI, 0, 0x09, rd, rs1, rs2),
        Instr::CIncAddrImm { rd, rs1, imm } => itype(OP_CHERI, 3, rd, rs1, chk(imm, 12)?),
        Instr::CSetBoundsImm { rd, rs1, imm } => {
            if imm > 0xfff {
                return Err(range_err(i64::from(imm)));
            }
            itype(OP_CHERI, 4, rd, rs1, imm as i32)
        }
        Instr::CSpecialRw { rd, rs1, scr } => {
            let sel = match scr {
                ScrId::Mtcc => 0,
                ScrId::Mtdc => 1,
                ScrId::MScratchC => 2,
                ScrId::Mepcc => 3,
            };
            rtype(OP_CHERI, 2, 0, rd, rs1, Reg(sel))
        }
        Instr::Csr { op, rd, rs1, csr } => {
            let f3 = match op {
                CsrOp::Rw => 1,
                CsrOp::Rs => 2,
                CsrOp::Rc => 3,
            };
            itype(OP_SYSTEM, f3, rd, rs1, csr_addr(csr) as i32)
        }
        Instr::Ecall => itype(OP_SYSTEM, 0, Reg::ZERO, Reg::ZERO, 0),
        Instr::Ebreak => itype(OP_SYSTEM, 0, Reg::ZERO, Reg::ZERO, 1),
        Instr::Mret => itype(OP_SYSTEM, 0, Reg::ZERO, Reg::ZERO, 0x302),
        Instr::Wfi => itype(OP_SYSTEM, 0, Reg::ZERO, Reg::ZERO, 0x105),
        Instr::Halt => itype(OP_SYSTEM, 0, Reg::ZERO, Reg::ZERO, 0x7ff),
        Instr::Fence => itype(OP_MISC, 0, Reg::ZERO, Reg::ZERO, 0),
    })
}

// --- decode -------------------------------------------------------------------

fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

fn reg_at(word: u32, lsb: u32) -> Reg {
    Reg(((word >> lsb) & 0x1f) as u8)
}

/// Decodes one instruction word.
///
/// # Errors
///
/// [`DecodeError::Illegal`] (with index 0) for unrecognized words.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let ill = DecodeError::Illegal { word, index: 0 };
    let op = word & 0x7f;
    let rd = reg_at(word, 7);
    let rs1 = reg_at(word, 15);
    let rs2 = reg_at(word, 20);
    let f3 = (word >> 12) & 7;
    let f7 = word >> 25;
    let iimm = sext(word >> 20, 12);
    Ok(match op {
        OP_LUI => Instr::Lui {
            rd,
            imm: (word >> 12) & 0xf_ffff,
        },
        OP_AUIPCC => Instr::Auipcc {
            rd,
            imm: sext(word >> 12, 20),
        },
        OP_AUICGP => Instr::Auicgp {
            rd,
            imm: sext(word >> 12, 20),
        },
        OP_JAL => {
            let i = (word >> 31 & 1) << 20
                | (word >> 12 & 0xff) << 12
                | (word >> 20 & 1) << 11
                | (word >> 21 & 0x3ff) << 1;
            Instr::Jal {
                rd,
                offset: sext(i, 21),
            }
        }
        OP_JALR if f3 == 0 => Instr::Jalr {
            rd,
            rs1,
            offset: iimm,
        },
        OP_BRANCH => {
            let i = (word >> 31 & 1) << 12
                | (word >> 7 & 1) << 11
                | (word >> 25 & 0x3f) << 5
                | (word >> 8 & 0xf) << 1;
            let cond = match f3 {
                0 => BranchCond::Eq,
                1 => BranchCond::Ne,
                4 => BranchCond::Lt,
                5 => BranchCond::Ge,
                6 => BranchCond::Ltu,
                7 => BranchCond::Geu,
                _ => return Err(ill),
            };
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset: sext(i, 13),
            }
        }
        OP_LOAD => {
            let (width, signed) = match f3 {
                0 => (MemWidth::B, true),
                1 => (MemWidth::H, true),
                2 => (MemWidth::W, false),
                3 => {
                    return Ok(Instr::Clc {
                        rd,
                        rs1,
                        offset: iimm,
                    })
                }
                4 => (MemWidth::B, false),
                5 => (MemWidth::H, false),
                _ => return Err(ill),
            };
            Instr::Load {
                width,
                signed,
                rd,
                rs1,
                offset: iimm,
            }
        }
        OP_STORE => {
            let simm = sext((word >> 25 << 5) | (word >> 7 & 0x1f), 12);
            let width = match f3 {
                0 => MemWidth::B,
                1 => MemWidth::H,
                2 => MemWidth::W,
                3 => {
                    return Ok(Instr::Csc {
                        rs2,
                        rs1,
                        offset: simm,
                    })
                }
                _ => return Err(ill),
            };
            Instr::Store {
                width,
                rs2,
                rs1,
                offset: simm,
            }
        }
        OP_IMM => {
            let opk = match f3 {
                0 => AluOp::Add,
                1 => AluOp::Sll,
                2 => AluOp::Slt,
                3 => AluOp::Sltu,
                4 => AluOp::Xor,
                5 => {
                    if f7 == 0x20 {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    }
                }
                6 => AluOp::Or,
                7 => AluOp::And,
                _ => return Err(ill),
            };
            let imm = if matches!(opk, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                iimm & 0x1f
            } else {
                iimm
            };
            Instr::OpImm {
                op: opk,
                rd,
                rs1,
                imm,
            }
        }
        OP_OP if f7 == 1 => {
            let opk = match f3 {
                0 => MulOp::Mul,
                1 => MulOp::Mulh,
                3 => MulOp::Mulhu,
                4 => MulOp::Div,
                5 => MulOp::Divu,
                6 => MulOp::Rem,
                7 => MulOp::Remu,
                _ => return Err(ill),
            };
            Instr::MulDiv {
                op: opk,
                rd,
                rs1,
                rs2,
            }
        }
        OP_OP => {
            let opk = match (f3, f7) {
                (0, 0) => AluOp::Add,
                (0, 0x20) => AluOp::Sub,
                (1, 0) => AluOp::Sll,
                (2, 0) => AluOp::Slt,
                (3, 0) => AluOp::Sltu,
                (4, 0) => AluOp::Xor,
                (5, 0) => AluOp::Srl,
                (5, 0x20) => AluOp::Sra,
                (6, 0) => AluOp::Or,
                (7, 0) => AluOp::And,
                _ => return Err(ill),
            };
            Instr::Op {
                op: opk,
                rd,
                rs1,
                rs2,
            }
        }
        OP_MISC => Instr::Fence,
        OP_SYSTEM => match f3 {
            0 => match (word >> 20) & 0xfff {
                0 => Instr::Ecall,
                1 => Instr::Ebreak,
                0x302 => Instr::Mret,
                0x105 => Instr::Wfi,
                0x7ff => Instr::Halt,
                _ => return Err(ill),
            },
            1..=3 => {
                let csr = csr_from_addr((word >> 20) & 0xfff).ok_or(ill)?;
                let opk = match f3 {
                    1 => CsrOp::Rw,
                    2 => CsrOp::Rs,
                    _ => CsrOp::Rc,
                };
                Instr::Csr {
                    op: opk,
                    rd,
                    rs1,
                    csr,
                }
            }
            _ => return Err(ill),
        },
        OP_CHERI => match f3 {
            0 => match f7 {
                0x01 => Instr::CSetAddr { rd, rs1, rs2 },
                0x02 => Instr::CIncAddr { rd, rs1, rs2 },
                0x03 => Instr::CSetBounds {
                    rd,
                    rs1,
                    rs2,
                    exact: false,
                },
                0x04 => Instr::CSetBounds {
                    rd,
                    rs1,
                    rs2,
                    exact: true,
                },
                0x05 => Instr::CAndPerm { rd, rs1, rs2 },
                0x06 => Instr::CSeal { rd, rs1, rs2 },
                0x07 => Instr::CUnseal { rd, rs1, rs2 },
                0x08 => Instr::CTestSubset { rd, rs1, rs2 },
                0x09 => Instr::CSetEqualExact { rd, rs1, rs2 },
                _ => return Err(ill),
            },
            1 => {
                let sel = rs2.0;
                match sel {
                    0 => Instr::CGet {
                        field: CapField::Perm,
                        rd,
                        rs1,
                    },
                    1 => Instr::CGet {
                        field: CapField::Type,
                        rd,
                        rs1,
                    },
                    2 => Instr::CGet {
                        field: CapField::Base,
                        rd,
                        rs1,
                    },
                    3 => Instr::CGet {
                        field: CapField::Len,
                        rd,
                        rs1,
                    },
                    4 => Instr::CGet {
                        field: CapField::Tag,
                        rd,
                        rs1,
                    },
                    5 => Instr::CGet {
                        field: CapField::Addr,
                        rd,
                        rs1,
                    },
                    6 => Instr::CGet {
                        field: CapField::High,
                        rd,
                        rs1,
                    },
                    7 => Instr::CMove { rd, rs1 },
                    8 => Instr::CClearTag { rd, rs1 },
                    9 => Instr::CRoundRepresentableLength { rd, rs1 },
                    10 => Instr::CRepresentableAlignmentMask { rd, rs1 },
                    _ => return Err(ill),
                }
            }
            2 => {
                let scr = match rs2.0 {
                    0 => ScrId::Mtcc,
                    1 => ScrId::Mtdc,
                    2 => ScrId::MScratchC,
                    3 => ScrId::Mepcc,
                    _ => return Err(ill),
                };
                Instr::CSpecialRw { rd, rs1, scr }
            }
            3 => Instr::CIncAddrImm { rd, rs1, imm: iimm },
            4 => Instr::CSetBoundsImm {
                rd,
                rs1,
                imm: ((word >> 20) & 0xfff),
            },
            _ => return Err(ill),
        },
        _ => return Err(ill),
    })
}

// --- program-level encode with expansion ---------------------------------------

/// Encodes a program, expanding out-of-range `li`-style immediates into
/// `lui`+`addi` pairs and fixing up every branch/jump offset across the
/// expansion.
///
/// # Errors
///
/// [`EncodeError::ImmediateRange`] when an instruction cannot be encoded
/// even with expansion (e.g. a large immediate added to a non-zero
/// source, or a branch whose fixed-up offset overflows its field).
pub fn encode_program(instrs: &[Instr]) -> Result<Vec<u32>, EncodeError> {
    // Pass 1: how many words does each instruction need?
    let needs_expand = |i: &Instr| -> bool {
        matches!(
            *i,
            Instr::OpImm {
                op: AluOp::Add,
                rs1: Reg::ZERO,
                imm,
                ..
            } if !fits_signed(i64::from(imm), 12)
        )
    };
    let sizes: Vec<u32> = instrs
        .iter()
        .map(|i| if needs_expand(i) { 2 } else { 1 })
        .collect();
    // Map: original index -> word index.
    let mut word_index = Vec::with_capacity(instrs.len() + 1);
    let mut acc = 0u32;
    for s in &sizes {
        word_index.push(acc);
        acc += s;
    }
    word_index.push(acc);

    // Pass 2: emit with offsets rewritten through the map.
    let mut out = Vec::with_capacity(acc as usize);
    for (idx, instr) in instrs.iter().enumerate() {
        let remap = |byte_off: i32| -> i64 {
            let target = idx as i64 + i64::from(byte_off) / 4;
            let t = target.clamp(0, instrs.len() as i64) as usize;
            (i64::from(word_index[t]) - i64::from(word_index[idx])) * 4
        };
        let emit = |out: &mut Vec<u32>, i: &Instr, idx: usize| -> Result<(), EncodeError> {
            match encode(i) {
                Ok(w) => {
                    out.push(w);
                    Ok(())
                }
                Err(EncodeError::ImmediateRange { value, .. }) => {
                    Err(EncodeError::ImmediateRange { index: idx, value })
                }
            }
        };
        match *instr {
            _ if needs_expand(instr) => {
                let Instr::OpImm { rd, imm, .. } = *instr else {
                    unreachable!()
                };
                // lui + addi with the sign-rounding trick.
                let lo = (imm << 20) >> 20; // low 12, sign-extended
                let hi = (imm.wrapping_sub(lo) as u32) >> 12;
                emit(&mut out, &Instr::Lui { rd, imm: hi }, idx)?;
                emit(
                    &mut out,
                    &Instr::OpImm {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        imm: lo,
                    },
                    idx,
                )?;
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let new = remap(offset);
                if !fits_signed(new, 13) {
                    return Err(EncodeError::ImmediateRange {
                        index: idx,
                        value: new,
                    });
                }
                emit(
                    &mut out,
                    &Instr::Branch {
                        cond,
                        rs1,
                        rs2,
                        offset: new as i32,
                    },
                    idx,
                )?;
            }
            Instr::Jal { rd, offset } => {
                let new = remap(offset);
                if !fits_signed(new, 21) {
                    return Err(EncodeError::ImmediateRange {
                        index: idx,
                        value: new,
                    });
                }
                emit(
                    &mut out,
                    &Instr::Jal {
                        rd,
                        offset: new as i32,
                    },
                    idx,
                )?;
            }
            ref other => emit(&mut out, other, idx)?,
        }
    }
    Ok(out)
}

/// Decodes a word stream back into runnable instructions.
///
/// # Errors
///
/// [`DecodeError::Illegal`] with the offending index.
pub fn decode_program(words: &[u32]) -> Result<Vec<Instr>, DecodeError> {
    words
        .iter()
        .enumerate()
        .map(|(index, &w)| {
            decode(w)
                .map_err(|DecodeError::Illegal { word, .. }| DecodeError::Illegal { word, index })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(i: Instr) {
        let w = encode(&i).unwrap_or_else(|e| panic!("{i:?}: {e}"));
        let back = decode(w).unwrap_or_else(|e| panic!("{i:?} -> {w:#x}: {e}"));
        assert_eq!(back, i, "word {w:#010x}");
    }

    #[test]
    fn representative_round_trips() {
        use Instr::*;
        let cases = [
            Lui {
                rd: Reg::A0,
                imm: 0xfffff,
            },
            Auipcc {
                rd: Reg::T0,
                imm: -8,
            },
            Auicgp {
                rd: Reg::T1,
                imm: 256,
            },
            OpImm {
                op: AluOp::Add,
                rd: Reg::A1,
                rs1: Reg::A2,
                imm: -2048,
            },
            OpImm {
                op: AluOp::Sra,
                rd: Reg::A1,
                rs1: Reg::A2,
                imm: 31,
            },
            Op {
                op: AluOp::Sub,
                rd: Reg::S0,
                rs1: Reg::S1,
                rs2: Reg::T2,
            },
            MulDiv {
                op: MulOp::Remu,
                rd: Reg::A3,
                rs1: Reg::A4,
                rs2: Reg::A5,
            },
            Branch {
                cond: BranchCond::Geu,
                rs1: Reg::T0,
                rs2: Reg::T1,
                offset: -4096,
            },
            Branch {
                cond: BranchCond::Eq,
                rs1: Reg::T0,
                rs2: Reg::T1,
                offset: 4094,
            },
            Jal {
                rd: Reg::RA,
                offset: -1048576,
            },
            Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                offset: 0,
            },
            Load {
                width: MemWidth::H,
                signed: false,
                rd: Reg::A0,
                rs1: Reg::SP,
                offset: 2047,
            },
            Store {
                width: MemWidth::B,
                rs2: Reg::A0,
                rs1: Reg::SP,
                offset: -2048,
            },
            Clc {
                rd: Reg::A0,
                rs1: Reg::GP,
                offset: 8,
            },
            Csc {
                rs2: Reg::A0,
                rs1: Reg::GP,
                offset: -16,
            },
            CGet {
                field: CapField::Base,
                rd: Reg::A0,
                rs1: Reg::A1,
            },
            CSetAddr {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            CIncAddrImm {
                rd: Reg::A0,
                rs1: Reg::A1,
                imm: -4,
            },
            CSetBounds {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
                exact: true,
            },
            CSetBoundsImm {
                rd: Reg::A0,
                rs1: Reg::A1,
                imm: 0xfff,
            },
            CSeal {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            CSpecialRw {
                rd: Reg::A0,
                rs1: Reg::A1,
                scr: ScrId::Mepcc,
            },
            Csr {
                op: CsrOp::Rc,
                rd: Reg::A0,
                rs1: Reg::T0,
                csr: CsrId::Mshwmb,
            },
            Ecall,
            Ebreak,
            Mret,
            Wfi,
            Fence,
            Halt,
            Instr::NOP,
        ];
        for c in cases {
            rt(c);
        }
    }

    #[test]
    fn out_of_range_immediates_rejected() {
        assert!(encode(&Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            imm: 4096
        })
        .is_err());
        assert!(encode(&Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 4096
        })
        .is_err());
        assert!(encode(&Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 3 // odd
        })
        .is_err());
    }

    #[test]
    fn li_expansion_preserves_value() {
        let prog = vec![
            Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 0x2000_1234u32 as i32,
            },
            Instr::Halt,
        ];
        let words = encode_program(&prog).unwrap();
        assert_eq!(words.len(), 3, "li expands to lui+addi");
        let decoded = decode_program(&words).unwrap();
        // Execute both and compare a0.
        let run = |p: &[Instr]| {
            let mut m = crate::machine::Machine::new(crate::machine::MachineConfig::new(
                crate::pipeline::CoreModel::ibex(),
            ));
            let e = m.load_program(p);
            m.set_entry(e);
            m.run(100);
            m.cpu.read_int(crate::insn::Reg::A0)
        };
        assert_eq!(run(&prog), 0x2000_1234);
        assert_eq!(run(&decoded), 0x2000_1234);
    }

    #[test]
    fn branch_fixup_across_expansion() {
        // A loop with a large li inside: the back-edge must be remapped.
        let prog = vec![
            Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                imm: 3,
            },
            // loop:
            Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 0x12345678, // expands to 2 words
            },
            Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: -1,
            },
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                offset: -8, // back to loop
            },
            Instr::Halt,
        ];
        let words = encode_program(&prog).unwrap();
        let decoded = decode_program(&words).unwrap();
        let mut m = crate::machine::Machine::new(crate::machine::MachineConfig::new(
            crate::pipeline::CoreModel::ibex(),
        ));
        let e = m.load_program(&decoded);
        m.set_entry(e);
        let r = m.run(1000);
        assert_eq!(
            r,
            crate::machine::ExitReason::Halted(0x12345678),
            "loop must terminate with the expanded constant in a0"
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_0000).is_err()); // opcode 0 is not allocated
    }
}
