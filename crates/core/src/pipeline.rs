//! Cycle-cost models for the two CHERIoT cores (paper §4).
//!
//! * **CHERIoT-Ibex**: an area-optimised 2/3-stage core with a 33-bit data
//!   bus — a capability load or store takes *two* bus beats, and the tag bit
//!   is stored in both halves (ANDed on load). The load filter's
//!   revocation-bit lookup cannot hide in the short pipeline, so filtered
//!   capability loads pay an extra load-to-use cycle.
//! * **CHERIoT-Flute**: a performance-oriented 5-stage core with a 65-bit
//!   bus — capabilities move in one beat and the load filter's lookup fits
//!   in the MEM→WB stage boundary for free (paper Figure 4).
//!
//! The numbers here are microarchitectural *parameters*, exposed as public
//! fields so benches can ablate them; they are calibrated so the relative
//! overheads of Table 3 emerge from the mechanism differences, not fitted
//! per-benchmark.

use crate::insn::{Instr, MemWidth, MulOp};

/// Which core a model describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Area-optimised Ibex-class core.
    Ibex,
    /// Performance-oriented Flute-class core.
    Flute,
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreKind::Ibex => write!(f, "Ibex"),
            CoreKind::Flute => write!(f, "Flute"),
        }
    }
}

/// Cycle-cost parameters for a core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreModel {
    /// Which core this parameterizes.
    pub kind: CoreKind,
    /// Data-bus width in bytes (excluding the tag bit): 4 on Ibex, 8 on
    /// Flute.
    pub bus_bytes: u32,
    /// Cycles for an ALU / branch-not-taken instruction.
    pub alu_cycles: u64,
    /// Extra cycles added to a load beyond its bus beats.
    pub load_base_extra: u64,
    /// Extra cycles added to a store beyond its bus beats.
    pub store_base_extra: u64,
    /// Pipeline refill penalty for a taken branch.
    pub branch_taken_penalty: u64,
    /// Pipeline refill penalty for an unconditional jump.
    pub jump_penalty: u64,
    /// Load-to-use stall when the very next instruction consumes a loaded
    /// scalar.
    pub load_to_use: u64,
    /// Additional load-to-use stall for *capability* loads when the
    /// temporal-safety load filter is enabled (the revocation-bit lookup).
    pub filter_load_to_use: u64,
    /// Cycles for a multiply.
    pub mul_cycles: u64,
    /// Cycles for a divide/remainder.
    pub div_cycles: u64,
}

impl CoreModel {
    /// The CHERIoT-Ibex model (3-stage, 33-bit bus).
    pub const fn ibex() -> CoreModel {
        CoreModel {
            kind: CoreKind::Ibex,
            bus_bytes: 4,
            alu_cycles: 1,
            load_base_extra: 1,
            store_base_extra: 1,
            branch_taken_penalty: 1,
            jump_penalty: 1,
            load_to_use: 0,
            filter_load_to_use: 1,
            mul_cycles: 2,
            div_cycles: 37,
        }
    }

    /// The CHERIoT-Flute model (5-stage, 65-bit bus).
    pub const fn flute() -> CoreModel {
        CoreModel {
            kind: CoreKind::Flute,
            bus_bytes: 8,
            alu_cycles: 1,
            load_base_extra: 0,
            store_base_extra: 0,
            branch_taken_penalty: 2,
            jump_penalty: 1,
            load_to_use: 1,
            filter_load_to_use: 0,
            mul_cycles: 2,
            div_cycles: 33,
        }
    }

    /// Bus beats for an access of `bytes` (a 64-bit capability is 2 beats on
    /// Ibex, 1 on Flute).
    pub fn beats(&self, bytes: u32) -> u64 {
        u64::from(bytes.div_ceil(self.bus_bytes).max(1))
    }

    /// Bus beats for a capability access.
    pub fn cap_beats(&self) -> u64 {
        self.beats(8)
    }

    /// Base cycle cost of an instruction, excluding dynamic penalties
    /// (taken branches, load-to-use stalls) but including bus beats.
    pub fn instr_cycles(&self, i: &Instr) -> u64 {
        match *i {
            Instr::Load { width, .. } => self.load_base_extra + self.beats(width.bytes()),
            Instr::Store { width, .. } => self.store_base_extra + self.beats(width.bytes()),
            Instr::Clc { .. } => self.load_base_extra + self.cap_beats(),
            Instr::Csc { .. } => self.store_base_extra + self.cap_beats(),
            Instr::MulDiv { op, .. } => match op {
                MulOp::Mul | MulOp::Mulh | MulOp::Mulhu => self.mul_cycles,
                _ => self.div_cycles,
            },
            Instr::Wfi => 1,
            _ => self.alu_cycles,
        }
    }

    /// Memory-unit beats an instruction consumes (cycles unavailable to the
    /// background revoker).
    pub fn mem_beats(&self, i: &Instr) -> u64 {
        match *i {
            Instr::Load { width, .. } | Instr::Store { width, .. } => self.beats(width.bytes()),
            Instr::Clc { .. } | Instr::Csc { .. } => self.cap_beats(),
            _ => 0,
        }
    }

    /// Load-to-use penalty for a load of the given kind when its result is
    /// consumed by the immediately following instruction.
    pub fn load_use_penalty(&self, is_cap: bool, load_filter: bool) -> u64 {
        self.load_to_use
            + if is_cap && load_filter {
                self.filter_load_to_use
            } else {
                0
            }
    }

    /// Cycles to zero `len` bytes with a store loop (the compartment
    /// switcher's stack clearing): one max-width store per `bus_bytes`
    /// plus a small loop overhead, amortised 2 instructions per iteration.
    pub fn zeroing_cycles(&self, len: u32) -> u64 {
        if len == 0 {
            return 0;
        }
        let iters = u64::from(len.div_ceil(self.bus_bytes));
        iters * (self.store_base_extra + 1) + iters / 2 + 2
    }
}

/// Convenience: both models, for parameter sweeps.
pub fn all_cores() -> [CoreModel; 2] {
    [CoreModel::flute(), CoreModel::ibex()]
}

/// Width helper re-exported for cost computations.
pub fn width_bytes(w: MemWidth) -> u32 {
    w.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Reg;

    #[test]
    fn cap_access_is_two_beats_on_ibex_one_on_flute() {
        assert_eq!(CoreModel::ibex().cap_beats(), 2);
        assert_eq!(CoreModel::flute().cap_beats(), 1);
    }

    #[test]
    fn clc_costs_more_on_ibex() {
        let clc = Instr::Clc {
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
        };
        let lw = Instr::Load {
            width: MemWidth::W,
            signed: false,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
        };
        let ibex = CoreModel::ibex();
        let flute = CoreModel::flute();
        assert_eq!(ibex.instr_cycles(&clc) - ibex.instr_cycles(&lw), 1);
        assert_eq!(flute.instr_cycles(&clc), flute.instr_cycles(&lw));
    }

    #[test]
    fn filter_penalty_only_on_ibex_cap_loads() {
        let ibex = CoreModel::ibex();
        let flute = CoreModel::flute();
        assert_eq!(ibex.load_use_penalty(true, true), 1);
        assert_eq!(ibex.load_use_penalty(true, false), 0);
        assert_eq!(ibex.load_use_penalty(false, true), 0);
        assert_eq!(flute.load_use_penalty(true, true), 1);
        assert_eq!(flute.load_use_penalty(true, false), 1);
    }

    #[test]
    fn zeroing_scales_with_bus_width() {
        let ibex = CoreModel::ibex();
        let flute = CoreModel::flute();
        // Flute zeroes twice the bytes per beat.
        assert!(flute.zeroing_cycles(1024) < ibex.zeroing_cycles(1024));
        assert_eq!(ibex.zeroing_cycles(0), 0);
    }
}
