//! Fleet scheduling: a chunked work-stealing loop for embarrassingly
//! parallel item lists (campaign seeds, benchmark experiments).
//!
//! The previous fan-outs divided work *statically* — seed striding in the
//! fault campaign, one thread per experiment in the bench harness — so one
//! straggler item (a slow seed, the biggest allocation size) idled a whole
//! thread while its siblings finished. Here workers instead claim items
//! from a shared atomic cursor until the list is drained: no thread goes
//! idle while work remains, and the results still come back in item order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(item_index)` for every index in `0..items` across `threads`
/// worker threads, returning the results in item order.
///
/// Workers claim indices from a shared atomic cursor (work stealing), so
/// uneven item costs never idle a thread while work remains. With
/// `threads <= 1` (or a single item) everything runs inline on the caller.
/// Panics in `f` propagate to the caller after the scope joins.
pub fn work_steal<T, F>(items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    work_steal_with(items, threads, || (), |(), i| f(i))
}

/// [`work_steal`] with per-worker scratch state: each worker thread calls
/// `init` once and threads the resulting state through every item it
/// claims. The fault campaign uses this to keep one reusable machine (and
/// its snapshot buffers) per worker instead of booting per seed.
pub fn work_steal_with<S, T, F, I>(items: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if items == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(items);
    if workers == 1 {
        let mut state = init();
        return (0..items).map(|i| f(&mut state, i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        local.push((i, f(&mut state, i)));
                    }
                    collected.lock().unwrap().extend(local);
                })
            })
            .collect();
        for h in handles {
            // Propagate worker panics (poisoning the results mutex is
            // irrelevant past this point — we unwind out of the scope).
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    });
    let mut results = collected.into_inner().unwrap();
    results.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(results.len(), items);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_item_order() {
        for threads in [1, 2, 4, 7] {
            let out = work_steal(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_oversubscribed_edges() {
        assert!(work_steal(0, 4, |i| i).is_empty());
        assert_eq!(work_steal(1, 16, |i| i + 1), vec![1]);
        assert_eq!(work_steal(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let out = work_steal(100, 4, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Single worker: the counter threads through all items.
        let out = work_steal_with(
            5,
            1,
            || 0u64,
            |state, _| {
                *state += 1;
                *state
            },
        );
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn one_slow_item_does_not_serialize_the_pool() {
        // Long-tailed durations: item 0 sleeps while 999 cheap items
        // remain. With static striding the slow worker would still own a
        // quarter of the list; with stealing its siblings drain the rest,
        // so the slow worker finishes only a small handful.
        let next_id = AtomicUsize::new(0);
        let counts: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        let out = work_steal_with(
            1000,
            4,
            || next_id.fetch_add(1, Ordering::Relaxed),
            |worker, i| {
                counts[*worker].fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                *worker
            },
        );
        assert_eq!(out.len(), 1000);
        let slow_worker = out[0];
        let slow_count = counts[slow_worker].load(Ordering::Relaxed);
        let total: u64 = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 1000, "every item claimed exactly once");
        assert!(
            slow_count < 250,
            "slow worker hoarded {slow_count} of 1000 items — pool serialized behind it"
        );
    }

    #[test]
    fn worker_scratch_is_reused_across_a_thousand_items() {
        // Scratch init must run at most once per worker even across >=1k
        // items: the farm keeps a frame buffer (and the fault campaign a
        // whole machine) in scratch, so re-init per item would wreck the
        // point of the pool.
        let inits = AtomicU64::new(0);
        let out = work_steal_with(
            1500,
            3,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(out.len(), 1500);
        let spawned = inits.load(Ordering::Relaxed);
        assert!(
            (1..=3).contains(&spawned),
            "init ran {spawned} times for 3 workers"
        );
        // Each item observes its worker's running item count, so the
        // values are a union of ranges 1..=k_w (one per worker) summing
        // to 1500. Ranges are prefix-closed: value v+1 can never appear
        // more often than v, and value 1 appears once per active worker.
        let mut freq = std::collections::BTreeMap::new();
        for &v in &out {
            assert!((1..=1500).contains(&v));
            *freq.entry(v).or_insert(0u64) += 1;
        }
        let ones = freq[&1];
        assert!(
            ones <= spawned,
            "{ones} workers started counting but only {spawned} scratches were initialised"
        );
        for (&v, &n) in &freq {
            let next = freq.get(&(v + 1)).copied().unwrap_or(0);
            assert!(
                next <= n,
                "count({}) = {next} > count({v}) = {n}: scratch state was not threaded",
                v + 1
            );
        }
    }

    #[test]
    fn panic_in_the_straggler_tail_propagates() {
        // The panic fires late (after a sleep) in the last item, while
        // sibling workers have already drained and parked: the join loop
        // must still surface it.
        let r = std::panic::catch_unwind(|| {
            work_steal_with(
                64,
                4,
                || 0u64,
                |state, i| {
                    *state += 1;
                    if i == 63 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        panic!("tail boom");
                    }
                    i
                },
            )
        });
        assert!(r.is_err(), "late straggler panic was swallowed");
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            work_steal(8, 2, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(r.is_err());
    }
}
