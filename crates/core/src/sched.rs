//! Fleet scheduling: a chunked work-stealing loop for embarrassingly
//! parallel item lists (campaign seeds, benchmark experiments).
//!
//! The previous fan-outs divided work *statically* — seed striding in the
//! fault campaign, one thread per experiment in the bench harness — so one
//! straggler item (a slow seed, the biggest allocation size) idled a whole
//! thread while its siblings finished. Here workers instead claim items
//! from a shared atomic cursor until the list is drained: no thread goes
//! idle while work remains, and the results still come back in item order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(item_index)` for every index in `0..items` across `threads`
/// worker threads, returning the results in item order.
///
/// Workers claim indices from a shared atomic cursor (work stealing), so
/// uneven item costs never idle a thread while work remains. With
/// `threads <= 1` (or a single item) everything runs inline on the caller.
/// Panics in `f` propagate to the caller after the scope joins.
pub fn work_steal<T, F>(items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    work_steal_with(items, threads, || (), |(), i| f(i))
}

/// [`work_steal`] with per-worker scratch state: each worker thread calls
/// `init` once and threads the resulting state through every item it
/// claims. The fault campaign uses this to keep one reusable machine (and
/// its snapshot buffers) per worker instead of booting per seed.
pub fn work_steal_with<S, T, F, I>(items: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if items == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(items);
    if workers == 1 {
        let mut state = init();
        return (0..items).map(|i| f(&mut state, i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        local.push((i, f(&mut state, i)));
                    }
                    collected.lock().unwrap().extend(local);
                })
            })
            .collect();
        for h in handles {
            // Propagate worker panics (poisoning the results mutex is
            // irrelevant past this point — we unwind out of the scope).
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    });
    let mut results = collected.into_inner().unwrap();
    results.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(results.len(), items);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_item_order() {
        for threads in [1, 2, 4, 7] {
            let out = work_steal(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_oversubscribed_edges() {
        assert!(work_steal(0, 4, |i| i).is_empty());
        assert_eq!(work_steal(1, 16, |i| i + 1), vec![1]);
        assert_eq!(work_steal(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let out = work_steal(100, 4, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Single worker: the counter threads through all items.
        let out = work_steal_with(
            5,
            1,
            || 0u64,
            |state, _| {
                *state += 1;
                *state
            },
        );
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            work_steal(8, 2, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(r.is_err());
    }
}
