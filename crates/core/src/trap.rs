//! Trap causes: CHERI exceptions, RISC-V synchronous exceptions, and
//! interrupts.

use cheriot_cap::CapFault;
use core::fmt;

/// The special register index CHERI trap records use for faults whose
/// offending capability is the PCC rather than one of the 16 general
/// registers (instruction fetch, `mret` with a bad MEPCC, missing
/// system-register permission). Shared by the trap machinery and the
/// trap-dump formatting below.
pub const PCC_REG_INDEX: u8 = 16;

/// Why the CPU trapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapCause {
    /// A capability check failed on an instruction fetch, memory access,
    /// jump, seal or special-register access.
    Cheri {
        /// The underlying capability fault.
        fault: CapFault,
        /// Which register held the offending capability
        /// ([`PCC_REG_INDEX`] means the PCC).
        reg: u8,
    },
    /// Misaligned load/store (capability accesses require 8-byte alignment).
    Misaligned {
        /// The faulting address.
        addr: u32,
    },
    /// Access to an address no device claims.
    BusError {
        /// The faulting address.
        addr: u32,
    },
    /// Instruction not valid in the current state.
    IllegalInstruction,
    /// Environment call (`ecall`).
    EnvironmentCall,
    /// Breakpoint (`ebreak`).
    Breakpoint,
    /// Machine timer interrupt.
    TimerInterrupt,
    /// Background revoker completion interrupt.
    RevokerInterrupt,
    /// External interrupt: a device line latched pending and unmasked in
    /// the interrupt controller ([`crate::bus::IrqController`]).
    ExternalInterrupt,
}

impl TrapCause {
    /// Is this an (asynchronous) interrupt rather than a synchronous
    /// exception?
    pub fn is_interrupt(self) -> bool {
        matches!(
            self,
            TrapCause::TimerInterrupt | TrapCause::RevokerInterrupt | TrapCause::ExternalInterrupt
        )
    }

    /// The `mcause` encoding (interrupt bit in bit 31, as in RISC-V).
    pub fn mcause(self) -> u32 {
        match self {
            TrapCause::Misaligned { .. } => 4,
            TrapCause::BusError { .. } => 5,
            TrapCause::IllegalInstruction => 2,
            TrapCause::EnvironmentCall => 11,
            TrapCause::Breakpoint => 3,
            TrapCause::Cheri { .. } => 0x1c,
            TrapCause::TimerInterrupt => 0x8000_0007,
            TrapCause::RevokerInterrupt => 0x8000_000b,
            TrapCause::ExternalInterrupt => 0x8000_0010,
        }
    }
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCause::Cheri { fault, reg } if *reg == PCC_REG_INDEX => {
                write!(f, "CHERI fault in pcc: {fault}")
            }
            TrapCause::Cheri { fault, reg } => write!(f, "CHERI fault in c{reg}: {fault}"),
            TrapCause::Misaligned { addr } => write!(f, "misaligned access at {addr:#010x}"),
            TrapCause::BusError { addr } => write!(f, "bus error at {addr:#010x}"),
            TrapCause::IllegalInstruction => write!(f, "illegal instruction"),
            TrapCause::EnvironmentCall => write!(f, "environment call"),
            TrapCause::Breakpoint => write!(f, "breakpoint"),
            TrapCause::TimerInterrupt => write!(f, "timer interrupt"),
            TrapCause::RevokerInterrupt => write!(f, "revoker interrupt"),
            TrapCause::ExternalInterrupt => write!(f, "external interrupt"),
        }
    }
}

impl std::error::Error for TrapCause {}

impl From<CapFault> for TrapCause {
    fn from(fault: CapFault) -> TrapCause {
        TrapCause::Cheri { fault, reg: 0xff }
    }
}
