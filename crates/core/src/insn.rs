//! The CHERIoT instruction set, as executed by the simulator.
//!
//! The base ISA is RV32E (16 registers) plus the M extension; the CHERI
//! extension replaces integer addressing with capability addressing and adds
//! the guarded-manipulation instructions of paper §3. Instructions are held
//! in decoded form (the simulator does not model binary instruction
//! encoding; code size accounting uses 4 bytes per instruction, see
//! `cheriot-asm`).

use core::fmt;

/// A register index in the RV32E file (x0–x15). Registers hold capabilities;
/// integer results are untagged capabilities whose address is the value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address / link register (`cra`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer capability (`csp`).
    pub const SP: Reg = Reg(2);
    /// Globals pointer capability (`cgp`).
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporary 0.
    pub const T0: Reg = Reg(5);
    /// Temporary 1.
    pub const T1: Reg = Reg(6);
    /// Temporary 2.
    pub const T2: Reg = Reg(7);
    /// Saved register 0 / frame pointer.
    pub const S0: Reg = Reg(8);
    /// Saved register 1.
    pub const S1: Reg = Reg(9);
    /// Argument/return 0.
    pub const A0: Reg = Reg(10);
    /// Argument/return 1.
    pub const A1: Reg = Reg(11);
    /// Argument 2.
    pub const A2: Reg = Reg(12);
    /// Argument 3.
    pub const A3: Reg = Reg(13);
    /// Argument 4.
    pub const A4: Reg = Reg(14);
    /// Argument 5.
    pub const A5: Reg = Reg(15);
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 16] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5",
        ];
        write!(f, "c{}", NAMES[usize::from(self.0 & 0xf)])
    }
}

/// Integer ALU operation selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AluOp {
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping; register form only).
    Sub,
    /// Shift left logical.
    Sll,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Inclusive or.
    Or,
    /// And.
    And,
}

/// M-extension operation selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MulOp {
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of the signed product.
    Mulh,
    /// High 32 bits of the unsigned product.
    Mulhu,
    /// Signed division (RISC-V semantics for /0 and overflow).
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// Branch comparison selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than, signed.
    Lt,
    /// Greater or equal, signed.
    Ge,
    /// Less than, unsigned.
    Ltu,
    /// Greater or equal, unsigned.
    Geu,
}

/// Width of a scalar memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemWidth {
    /// One byte.
    B,
    /// Two bytes.
    H,
    /// Four bytes.
    W,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
        }
    }
}

/// Capability field selectors for the `CGet*` instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapField {
    /// Architectural permission bits.
    Perm,
    /// Object type field (with the namespace bit folded in as in hardware:
    /// executable otypes read back as their raw field value).
    Type,
    /// Decoded base.
    Base,
    /// Decoded length (saturated to `u32::MAX`).
    Len,
    /// Validity tag (0 or 1).
    Tag,
    /// Address.
    Addr,
    /// High half of the in-memory encoding (metadata word).
    High,
}

/// Special capability registers accessed via `CSpecialRW` (requires the SR
/// permission on PCC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScrId {
    /// Machine trap code capability (trap vector).
    Mtcc,
    /// Machine trap data capability (trusted-stack pointer in the RTOS).
    Mtdc,
    /// Scratch capability.
    MScratchC,
    /// Machine exception PC capability.
    Mepcc,
}

/// CSRs the simulator implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsrId {
    /// Cycle counter (read-only; low 32 bits).
    Mcycle,
    /// Cycle counter high half.
    Mcycleh,
    /// Trap cause.
    Mcause,
    /// Trap value (faulting address / register number).
    Mtval,
    /// Stack high water mark (paper §5.2.1).
    Mshwm,
    /// Stack base for the high water mark.
    Mshwmb,
}

/// CSR access operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsrOp {
    /// Read-write swap.
    Rw,
    /// Read and set bits.
    Rs,
    /// Read and clear bits.
    Rc,
}

/// One decoded CHERIoT instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow the RISC-V conventions
pub enum Instr {
    /// Load upper immediate (integer result).
    Lui { rd: Reg, imm: u32 },
    /// PCC-relative capability derivation (AUIPCC).
    Auipcc { rd: Reg, imm: i32 },
    /// CGP-relative capability derivation (AUICGP) — used for globals.
    Auicgp { rd: Reg, imm: i32 },
    /// Register-immediate ALU operation.
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register-register ALU operation.
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// M-extension multiply/divide.
    MulDiv {
        op: MulOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Conditional branch; offset is relative to this instruction.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Jump and link; the link register receives a return sentry.
    Jal { rd: Reg, offset: i32 },
    /// Jump and link register (CJALR): jumps to a capability, unsealing
    /// sentries and applying their interrupt posture.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Scalar load.
    Load {
        width: MemWidth,
        signed: bool,
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Scalar store.
    Store {
        width: MemWidth,
        rs2: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Capability load (CLC). Subject to the temporal-safety load filter.
    Clc { rd: Reg, rs1: Reg, offset: i32 },
    /// Capability store (CSC).
    Csc { rs2: Reg, rs1: Reg, offset: i32 },
    /// Read a capability field into an integer register.
    CGet { field: CapField, rd: Reg, rs1: Reg },
    /// Replace the address (CSetAddr).
    CSetAddr { rd: Reg, rs1: Reg, rs2: Reg },
    /// Displace the address by a register amount (CIncAddr).
    CIncAddr { rd: Reg, rs1: Reg, rs2: Reg },
    /// Displace the address by an immediate (CIncAddrImm).
    CIncAddrImm { rd: Reg, rs1: Reg, imm: i32 },
    /// Narrow bounds to `[addr, addr+rs2)` (CSetBounds); `exact` demands an
    /// exact encoding (CSetBoundsExact).
    CSetBounds {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        exact: bool,
    },
    /// Narrow bounds by an immediate length (CSetBoundsImm).
    CSetBoundsImm { rd: Reg, rs1: Reg, imm: u32 },
    /// Mask permissions (CAndPerm).
    CAndPerm { rd: Reg, rs1: Reg, rs2: Reg },
    /// Clear the tag (CClearTag).
    CClearTag { rd: Reg, rs1: Reg },
    /// Capability move (preserves tag, unlike ALU ops).
    CMove { rd: Reg, rs1: Reg },
    /// Seal rs1 with the otype addressed by rs2 (CSeal).
    CSeal { rd: Reg, rs1: Reg, rs2: Reg },
    /// Unseal rs1 with authority rs2 (CUnseal).
    CUnseal { rd: Reg, rs1: Reg, rs2: Reg },
    /// Is rs2 a subset of rs1? Integer result (CTestSubset).
    CTestSubset { rd: Reg, rs1: Reg, rs2: Reg },
    /// Bitwise equality including tag (CSetEqualExact).
    CSetEqualExact { rd: Reg, rs1: Reg, rs2: Reg },
    /// Round a requested length to a representable one (CRRL).
    CRoundRepresentableLength { rd: Reg, rs1: Reg },
    /// Alignment mask for a requested length (CRAM).
    CRepresentableAlignmentMask { rd: Reg, rs1: Reg },
    /// Swap a special capability register with a GPR (requires SR).
    CSpecialRw { rd: Reg, rs1: Reg, scr: ScrId },
    /// CSR access.
    Csr {
        op: CsrOp,
        rd: Reg,
        rs1: Reg,
        csr: CsrId,
    },
    /// Environment call.
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Return from machine trap: jumps to MEPCC, restores interrupt state.
    Mret,
    /// Wait for interrupt: idles the core until an interrupt is pending.
    Wfi,
    /// Memory fence (no-op in this in-order, single-core model).
    Fence,
    /// Simulator halt with an exit code taken from `a0`. Stands in for a
    /// platform power-off/exit device; used by bare-metal workloads.
    Halt,
}

impl Instr {
    /// A canonical no-op.
    pub const NOP: Instr = Instr::OpImm {
        op: AluOp::Add,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        imm: 0,
    };

    /// Does this instruction access data memory?
    pub fn is_mem(self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::Clc { .. } | Instr::Csc { .. }
        )
    }

    /// Does this instruction end a predecoded basic block? True for
    /// everything that can redirect control flow, change the interrupt
    /// posture, or observe state the block loop batches (branches, jumps,
    /// sentry jumps, trap returns, environment calls, CSR/SCR accesses,
    /// `wfi`, `fence` as an instruction barrier, and `halt`). The block
    /// cache ([`crate::blockcache`]) decodes forward until one of these.
    pub fn is_block_boundary(self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jal { .. }
                | Instr::Jalr { .. }
                | Instr::Mret
                | Instr::Ecall
                | Instr::Ebreak
                | Instr::Wfi
                | Instr::Fence
                | Instr::Halt
                | Instr::Csr { .. }
                | Instr::CSpecialRw { .. }
        )
    }

    /// Registers this instruction reads (for load-to-use hazard modelling).
    pub fn sources(self) -> [Option<Reg>; 2] {
        use Instr::*;
        match self {
            OpImm { rs1, .. }
            | Load { rs1, .. }
            | Clc { rs1, .. }
            | CGet { rs1, .. }
            | CIncAddrImm { rs1, .. }
            | CSetBoundsImm { rs1, .. }
            | CClearTag { rs1, .. }
            | CMove { rs1, .. }
            | CRoundRepresentableLength { rs1, .. }
            | CRepresentableAlignmentMask { rs1, .. }
            | CSpecialRw { rs1, .. }
            | Csr { rs1, .. }
            | Jalr { rs1, .. } => [Some(rs1), None],
            Op { rs1, rs2, .. }
            | MulDiv { rs1, rs2, .. }
            | Branch { rs1, rs2, .. }
            | Store { rs1, rs2, .. }
            | Csc { rs1, rs2, .. }
            | CSetAddr { rs1, rs2, .. }
            | CIncAddr { rs1, rs2, .. }
            | CSetBounds { rs1, rs2, .. }
            | CAndPerm { rs1, rs2, .. }
            | CSeal { rs1, rs2, .. }
            | CUnseal { rs1, rs2, .. }
            | CTestSubset { rs1, rs2, .. }
            | CSetEqualExact { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            _ => [None, None],
        }
    }
}
