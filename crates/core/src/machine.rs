//! The simulated CHERIoT SoC: CPU + tagged SRAM + revocation hardware +
//! timer + console, with per-instruction cycle accounting driven by a
//! [`CoreModel`].

use crate::blockcache::{
    build_block, Block, BlockCache, BlockCacheStats, PredecodedInsn, SentryIc,
};
use crate::bus::{DeviceBus, Uart};
use crate::cpu::Cpu;
use crate::error::SimError;
use crate::insn::{AluOp, BranchCond, CapField, CsrId, CsrOp, Instr, MulOp, Reg};
use crate::mem::{Sram, GRANULE};
use crate::pipeline::CoreModel;
use crate::revocation::{BackgroundRevoker, RevocationBitmap, RevokerConfig};
use crate::trap::{TrapCause, PCC_REG_INDEX};
use cheriot_cap::bounds::{representable_alignment_mask, representable_length};
use cheriot_cap::{Capability, InterruptPosture, OType, Permissions, SentryKind};
use cheriot_trace::{EventKind, Tracer};
use std::sync::Arc;

/// Physical memory map of the simulated SoC.
pub mod layout {
    /// Base of the instruction region (code is fetch-only).
    pub const CODE_BASE: u32 = 0x1000_0000;
    /// Maximum code region size in bytes.
    pub const CODE_SIZE: u32 = 0x0010_0000;
    /// Base of the tagged data SRAM.
    pub const SRAM_BASE: u32 = 0x2000_0000;
    /// MMIO window of the revocation bitmap (allocator-only by software
    /// convention, enforced by which compartments get a capability to it).
    pub const REV_BITMAP_BASE: u32 = 0x8000_0000;
    /// Machine timer: `+0` mtime lo (RO), `+4` mtime hi (RO), `+8`
    /// mtimecmp lo, `+0xc` mtimecmp hi.
    pub const TIMER_BASE: u32 = 0x8100_0000;
    /// Debug console: a store of a byte to `+0` emits it.
    pub const CONSOLE_BASE: u32 = 0x8200_0000;
    /// Background revoker device (see [`crate::revocation::revoker_reg`]).
    pub const REVOKER_BASE: u32 = 0x8300_0000;
    /// GPIO block: `+0` LED output register (RW bitmask) — the paper's
    /// demo application animates the dev-board LEDs from JavaScript.
    pub const GPIO_BASE: u32 = 0x8400_0000;
    /// External-interrupt controller (see [`crate::bus::IrqController`]):
    /// `+0` pending (R/W1C), `+4` mask, `+8` claim.
    pub const INTC_BASE: u32 = 0x8500_0000;
    /// Size of each MMIO window.
    pub const MMIO_SIZE: u32 = 0x1000;
}

/// Build-time configuration of a [`Machine`].
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Core cost model (Ibex or Flute class).
    pub core: CoreModel,
    /// Data SRAM size in bytes.
    pub sram_size: u32,
    /// Offset of the revocable heap region within SRAM.
    pub heap_offset: u32,
    /// Size of the revocable heap region.
    pub heap_size: u32,
    /// Is the temporal-safety load filter wired into the pipeline?
    pub load_filter: bool,
    /// Is the background hardware revoker present?
    pub hw_revoker: bool,
    /// Microarchitecture of the hardware revoker.
    pub revoker: RevokerConfig,
    /// Are the stack high-water-mark CSRs implemented (paper §5.2.1)?
    pub hwm_enabled: bool,
    /// Is the CHERI extension present? When false the machine behaves as a
    /// plain RV32E+M core: loads, stores and jumps use register *addresses*
    /// with no capability checks (the Table 3 baseline). CHERI instructions
    /// are illegal in this mode.
    pub cheri_enabled: bool,
    /// Execute through the predecoded basic-block cache
    /// ([`crate::blockcache`]): decode-once dispatch with batched fetch
    /// checks. Architecturally invisible — `false` forces the
    /// per-instruction stepwise loop (CLI `--no-block-cache`).
    pub block_cache: bool,
    /// Chain predecoded blocks directly (DESIGN.md §13): successor links
    /// that skip the dispatcher and the PCC fetch re-check, superblocks
    /// across unconditional forward jumps, and sentry inline caches for
    /// `cjalr` call sites. Architecturally invisible — `false` keeps the
    /// PR-4 one-block-per-dispatch loop (CLI `--no-block-chain`). Only
    /// meaningful when `block_cache` is on.
    pub block_chain: bool,
    /// Copy-on-write page store enabled ([`crate::mem::Sram`])? When
    /// false (CLI `--no-cow`) SRAM pages are kept uniquely owned and
    /// every snapshot capture/restore/fork deep-copies bytes — the
    /// pre-CoW cost model, kept as an escape hatch and comparison
    /// baseline. Architecturally invisible either way.
    pub cow: bool,
}

impl MachineConfig {
    /// A full-featured configuration: 512 KiB SRAM with the upper half
    /// revocable heap, load filter, pipelined revoker, and the stack
    /// high-water mark.
    pub fn new(core: CoreModel) -> MachineConfig {
        let sram_size = 512 * 1024;
        MachineConfig {
            core,
            sram_size,
            heap_offset: sram_size / 2,
            heap_size: sram_size / 2,
            load_filter: true,
            hw_revoker: true,
            revoker: RevokerConfig::default(),
            hwm_enabled: true,
            cheri_enabled: true,
            block_cache: true,
            block_chain: true,
            cow: true,
        }
    }

    /// Base address of the heap region.
    pub fn heap_base(&self) -> u32 {
        layout::SRAM_BASE + self.heap_offset
    }

    /// End address (exclusive) of the heap region.
    pub fn heap_end(&self) -> u32 {
        self.heap_base() + self.heap_size
    }
}

/// Execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Instructions retired.
    pub instructions: u64,
    /// Scalar loads.
    pub loads: u64,
    /// Scalar stores.
    pub stores: u64,
    /// Capability loads.
    pub cap_loads: u64,
    /// Capability stores.
    pub cap_stores: u64,
    /// Capability loads whose tag the load filter stripped.
    pub filter_strips: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Synchronous traps taken.
    pub traps: u64,
    /// Interrupts delivered.
    pub interrupts: u64,
    /// Load-to-use stall cycles.
    pub stall_cycles: u64,
    /// Cycles spent in `wfi` idle.
    pub idle_cycles: u64,
}

/// Why [`Machine::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitReason {
    /// The program executed `halt`; payload is `a0`.
    Halted(u32),
    /// An unhandled (double) fault occurred with no trap vector installed.
    Fault(TrapCause),
    /// The cycle budget was exhausted.
    CycleLimit,
    /// `wfi` with no possible wake-up source.
    Idle,
    /// The watchdog instruction budget expired ([`Machine::set_watchdog`]).
    Watchdog,
}

/// The simulated SoC.
#[derive(Debug)]
pub struct Machine {
    /// Configuration (immutable after construction).
    pub cfg: MachineConfig,
    /// CPU architectural state.
    pub cpu: Cpu,
    /// Tagged data SRAM.
    pub sram: Sram,
    /// Revocation bitmap.
    pub bitmap: RevocationBitmap,
    /// Background revoker device.
    pub revoker: BackgroundRevoker,
    /// Cycle counter (also the timebase).
    pub cycles: u64,
    /// Timer compare register.
    pub mtimecmp: u64,
    /// Bytes written to the debug console.
    pub console: Vec<u8>,
    /// Current LED output register (GPIO block).
    pub gpio_out: u32,
    /// Number of writes to the LED register (demo-app statistics).
    pub gpio_writes: u64,
    /// The pluggable device bus ([`crate::bus`]): UART, timers, DMA,
    /// network interfaces, and the external-interrupt controller.
    pub bus: DeviceBus,
    /// Execution statistics.
    pub stats: Stats,
    /// The decoded code region, `Arc`-shared with snapshots and forks
    /// (immutable while shared — [`Machine::try_load_program`] and
    /// [`Machine::patch_code`] unshare via `Arc::make_mut`, the code
    /// region's CoW break).
    code: Arc<Vec<Instr>>,
    /// Content-identity stamp of `code`: refreshed on every mutation
    /// (append, patch), zero only while the code region is empty. Two
    /// machines/snapshots with equal stamps hold identical code, letting
    /// [`Machine::restore_from`] skip the code copy and keep resident
    /// predecoded blocks.
    code_content: u64,
    /// Predecoded basic-block cache over `code` (see [`crate::blockcache`]).
    blocks: BlockCache,
    /// Emit `BlockCompiled`/`BlockInvalidated` trace events? Off by
    /// default so trace output is byte-identical cache-on vs cache-off.
    block_trace: bool,
    halted: Option<ExitReason>,
    pending_use: Option<(Reg, u64)>,
    tracer: Option<Box<Tracer>>,
    /// Absolute retired-instruction count at which the watchdog fires
    /// (`u64::MAX` = disabled, the default).
    wd_limit: u64,
    /// The most recent trap cause taken (synchronous or interrupt).
    last_trap: Option<TrapCause>,
    /// Host-side snapshot/restore counters (not architectural state;
    /// never captured or restored by snapshots).
    snap_stats: SnapshotStats,
    /// Device id of the in-flight bus dispatch, for `DmaTransfer` trace
    /// attribution (set by [`DeviceBus`] before each device call; not
    /// architectural state).
    pub(crate) active_dev: u32,
}

/// Host-side counters for the snapshot/restore engine, exposed via
/// [`Machine::snapshot_stats`]. A rising `pages_copied`-per-restore ratio
/// (or any `full_restores` in a loop that should stay in lineage) flags a
/// regression in dirty-tracking precision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Calls to [`Machine::restore_from`].
    pub restores: u64,
    /// SRAM pages copied across all restores (dirty pages only, when the
    /// lineage fast path applies).
    pub pages_copied: u64,
    /// Restores that fell off the lineage fast path and copied the whole
    /// bank.
    pub full_restores: u64,
    /// Host bytes actually moved by restores: SRAM page transfers
    /// (honestly costed — a deep page copy charges data *and* tag-bitmap
    /// bytes, [`crate::mem::PAGE_COPY_BYTES`]; under CoW an adopted page
    /// is a handle clone charged at [`crate::mem::PAGE_HANDLE_BYTES`])
    /// plus the always-copied console backlog and, when the code region
    /// changed, the adopted code handle. This is the observable fork
    /// cost in bytes — a fleet forking N devices off one warm snapshot
    /// should see O(N · pages) pointer-sized adoptions under CoW, not
    /// `N * Snapshot::bytes()`.
    pub bytes_copied: u64,
}

/// A point-in-time capture of a machine's full architectural state: CPU,
/// SRAM bytes + tags, revocation bitmap, background revoker, timers,
/// console, GPIO, statistics, the code region, and the (Arc-shared)
/// predecoded block table.
///
/// Captured with [`Machine::snapshot`] / [`Machine::snapshot_into`],
/// applied with [`Machine::restore_from`], or turned into an independent
/// machine with [`Snapshot::to_machine`] (a *fork* — the new machine
/// shares the snapshot's decoded blocks but no mutable state). Host-side
/// observers (tracer, block-trace flag, snapshot counters) are not part
/// of a snapshot.
#[derive(Clone)]
pub struct Snapshot {
    cfg: MachineConfig,
    cpu: Cpu,
    sram: Sram,
    bitmap: RevocationBitmap,
    revoker: BackgroundRevoker,
    cycles: u64,
    mtimecmp: u64,
    console: Vec<u8>,
    gpio_out: u32,
    gpio_writes: u64,
    bus: DeviceBus,
    stats: Stats,
    code: Arc<Vec<Instr>>,
    code_content: u64,
    blocks: BlockCache,
    halted: Option<ExitReason>,
    pending_use: Option<(Reg, u64)>,
    wd_limit: u64,
    last_trap: Option<TrapCause>,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("cycles", &self.cycles)
            .field("code_words", &self.code.len())
            .field("sram", &self.sram)
            .finish()
    }
}

impl Snapshot {
    /// An all-default snapshot for `cfg`, used as the initial capture
    /// target (the first [`Machine::snapshot_into`] fills it wholesale).
    fn empty(cfg: MachineConfig) -> Snapshot {
        Snapshot {
            cfg,
            cpu: Cpu::at_reset(),
            // Zero-size bank: the first capture's slow path sizes it to
            // the machine's shape without paying a throwaway allocation
            // (snapshot banks never carry the decoded-cap side cache).
            sram: Sram::new(layout::SRAM_BASE, 0),
            bitmap: RevocationBitmap::new(cfg.heap_base(), cfg.heap_end()),
            revoker: BackgroundRevoker::new(cfg.revoker),
            cycles: 0,
            mtimecmp: u64::MAX,
            console: Vec::new(),
            gpio_out: 0,
            gpio_writes: 0,
            bus: DeviceBus::default(),
            stats: Stats::default(),
            code: Arc::default(),
            code_content: 0,
            blocks: BlockCache::default(),
            halted: None,
            pending_use: None,
            wd_limit: u64::MAX,
            last_trap: None,
        }
    }

    /// Builds an independent machine in this snapshot's state (a fork).
    /// The fork shares the snapshot's predecoded blocks (`Arc`), so it
    /// starts with a warm block cache and re-decodes nothing.
    pub fn to_machine(&self) -> Machine {
        let mut m = Machine::new(self.cfg);
        m.restore_from(self);
        m
    }

    /// Cycle count at capture time.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Approximate resident size of this snapshot in host bytes: the SRAM
    /// bank (data + tags + dirty bookkeeping are dominated by the data
    /// bytes, counted here), the console backlog, and the decoded code
    /// region. The Arc-shared predecoded block table is deliberately
    /// excluded — forks share it, so it costs nothing per instance.
    pub fn bytes(&self) -> u64 {
        u64::from(self.sram.size())
            + self.console.len() as u64
            + (self.code.len() * std::mem::size_of::<Instr>()) as u64
    }
}

/// One retired-instruction trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle count at retire.
    pub cycles: u64,
    /// Program counter.
    pub pc: u32,
    /// The instruction.
    pub instr: Instr,
}

impl Clone for Machine {
    /// Clones the architectural state. The tracer (if any) stays with the
    /// original: a trace is a log of one machine's history, and sinks may
    /// hold non-clonable resources such as open files. The clone starts
    /// with tracing disabled and a cold (empty) block cache — the cache is
    /// pure derived state, rebuilt on demand.
    fn clone(&self) -> Machine {
        Machine {
            cfg: self.cfg,
            cpu: self.cpu.clone(),
            sram: self.sram.clone(),
            bitmap: self.bitmap.clone(),
            revoker: self.revoker.clone(),
            cycles: self.cycles,
            mtimecmp: self.mtimecmp,
            console: self.console.clone(),
            gpio_out: self.gpio_out,
            gpio_writes: self.gpio_writes,
            bus: self.bus.clone(),
            stats: self.stats,
            code: self.code.clone(),
            code_content: self.code_content,
            blocks: BlockCache::default(),
            block_trace: self.block_trace,
            halted: self.halted,
            pending_use: self.pending_use,
            tracer: None,
            wd_limit: self.wd_limit,
            last_trap: self.last_trap,
            snap_stats: SnapshotStats::default(),
            active_dev: crate::bus::INTC_DEV_ID,
        }
    }
}

impl Machine {
    /// Creates a machine with zeroed SRAM and an empty code region.
    pub fn new(cfg: MachineConfig) -> Machine {
        let heap_base = cfg.heap_base();
        let heap_end = cfg.heap_end();
        assert!(heap_end <= layout::SRAM_BASE + cfg.sram_size);
        let mut sram = Sram::new(layout::SRAM_BASE, cfg.sram_size);
        if !cfg.cow {
            sram.set_cow(false);
        }
        Machine {
            cfg,
            cpu: Cpu::at_reset(),
            sram,
            bitmap: RevocationBitmap::new(heap_base, heap_end),
            revoker: BackgroundRevoker::new(cfg.revoker),
            cycles: 0,
            mtimecmp: u64::MAX,
            console: Vec::new(),
            gpio_out: 0,
            gpio_writes: 0,
            bus: DeviceBus::with_defaults(),
            stats: Stats::default(),
            code: Arc::default(),
            code_content: 0,
            blocks: BlockCache::default(),
            block_trace: false,
            halted: None,
            pending_use: None,
            tracer: None,
            wd_limit: u64::MAX,
            last_trap: None,
            snap_stats: SnapshotStats::default(),
            active_dev: crate::bus::INTC_DEV_ID,
        }
    }

    // --- Tracing -------------------------------------------------------------

    /// Installs a [`Tracer`]; subsequent execution emits structured events
    /// through it. Replaces any previously installed tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(Box::new(tracer));
    }

    /// Removes and returns the installed tracer (typically to finish and
    /// export it after a run).
    pub fn take_tracer(&mut self) -> Option<Box<Tracer>> {
        self.tracer.take()
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// Mutable access to the installed tracer (e.g. to register
    /// compartment/thread names in its metrics registry).
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_deref_mut()
    }

    /// Emits one trace event stamped with the current cycle counter. A
    /// no-op (single branch on the tracer `Option`) when tracing is
    /// disabled — this is the only cost every emission site pays.
    #[inline]
    pub fn trace_emit(&mut self, kind: EventKind) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.emit(self.cycles, kind);
        }
    }

    /// Enables the classic execution trace: the last `depth` retired
    /// instructions are kept readable via [`Machine::trace_entries`].
    ///
    /// Compat wrapper over the structured tracing subsystem: installs a
    /// [`Tracer`] in instruction-ring configuration
    /// ([`Tracer::instr_ring`]).
    pub fn enable_trace(&mut self, depth: usize) {
        self.set_tracer(Tracer::instr_ring(depth));
    }

    /// The buffered instruction trace (oldest first). Empty unless a
    /// tracer whose sink records instruction-retire events is installed
    /// ([`Machine::enable_trace`] does).
    ///
    /// Compat wrapper: reconstructs each [`TraceEntry`]'s instruction from
    /// the (immutable) code region by program counter.
    pub fn trace_entries(&self) -> Vec<TraceEntry> {
        let Some(t) = self.tracer.as_deref() else {
            return Vec::new();
        };
        t.events()
            .iter()
            .filter_map(|ev| match ev.kind {
                EventKind::InstrRetired { pc } => {
                    let idx = pc.checked_sub(layout::CODE_BASE)? / 4;
                    self.code.get(idx as usize).map(|&instr| TraceEntry {
                        cycles: ev.cycles,
                        pc,
                        instr,
                    })
                }
                _ => None,
            })
            .collect()
    }

    // --- Program loading ----------------------------------------------------

    /// Appends a program to the code region, returning its start address.
    ///
    /// # Panics
    ///
    /// Panics if the code region overflows; [`Machine::try_load_program`]
    /// is the non-panicking form.
    pub fn load_program(&mut self, instrs: &[Instr]) -> u32 {
        self.try_load_program(instrs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Appends a program to the code region, returning its start address,
    /// or [`SimError::CodeOverflow`] if it does not fit.
    pub fn try_load_program(&mut self, instrs: &[Instr]) -> Result<u32, SimError> {
        let capacity = layout::CODE_SIZE as usize / 4;
        if self.code.len() + instrs.len() > capacity {
            return Err(SimError::CodeOverflow {
                loaded: self.code.len(),
                requested: instrs.len(),
                capacity,
            });
        }
        let start = layout::CODE_BASE + 4 * self.code.len() as u32;
        // The load is the code region's CoW break: unshare from any
        // snapshot/fork still holding the old handle, then append.
        Arc::make_mut(&mut self.code).extend_from_slice(instrs);
        if !instrs.is_empty() {
            self.code_content = crate::mem::fresh_content_id();
            // Blocks truncated at the old end of code must re-extend over
            // the new instructions; the generation bump lets observers see
            // that the cache noticed the load.
            let dropped = self.blocks.on_append(start) as u32;
            if self.block_trace {
                self.trace_emit(EventKind::BlockInvalidated {
                    addr: start,
                    blocks: dropped,
                });
            }
        }
        Ok(start)
    }

    /// Decodes and loads a binary (machine-code) program, returning its
    /// start address.
    ///
    /// # Errors
    ///
    /// [`crate::encoding::DecodeError`] for unrecognized words.
    pub fn load_binary(&mut self, words: &[u32]) -> Result<u32, crate::encoding::DecodeError> {
        let instrs = crate::encoding::decode_program(words)?;
        Ok(self.load_program(&instrs))
    }

    /// End of the currently loaded code (exclusive).
    pub fn code_end(&self) -> u32 {
        layout::CODE_BASE + 4 * self.code.len() as u32
    }

    // --- Block cache & self-modifying code ------------------------------------

    /// The instruction currently loaded at code address `addr`, if any.
    pub fn code_at(&self, addr: u32) -> Option<Instr> {
        if addr < layout::CODE_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        let idx = ((addr - layout::CODE_BASE) / 4) as usize;
        self.code.get(idx).copied()
    }

    /// Overwrites one already-loaded instruction (self-modifying code, or
    /// a fault-injection flip into the code region), returning the
    /// replaced instruction. Every predecoded block covering `addr` is
    /// invalidated and the coherence generation bumped
    /// ([`Machine::code_generation`]), so the next execution of the
    /// patched address re-decodes.
    pub fn patch_code(&mut self, addr: u32, instr: Instr) -> Result<Instr, SimError> {
        let idx = (addr.is_multiple_of(4) && addr >= layout::CODE_BASE)
            .then(|| ((addr - layout::CODE_BASE) / 4) as usize)
            .filter(|&i| i < self.code.len())
            .ok_or(SimError::BadCodePatch {
                addr,
                code_end: self.code_end(),
            })?;
        // The patch is a CoW break for the shared code region: siblings
        // forked from the same snapshot keep the unpatched instructions.
        let old = core::mem::replace(&mut Arc::make_mut(&mut self.code)[idx], instr);
        self.code_content = crate::mem::fresh_content_id();
        let dropped = self.blocks.invalidate_covering(addr) as u32;
        if self.block_trace {
            self.trace_emit(EventKind::BlockInvalidated {
                addr,
                blocks: dropped,
            });
        }
        Ok(old)
    }

    /// Block-cache hit/miss/invalidation counters plus the coherence
    /// generation.
    pub fn block_stats(&self) -> BlockCacheStats {
        self.blocks.stats
    }

    /// The block-cache coherence generation: bumped by every invalidation
    /// event (code patch, program append, flush), whether or not a cached
    /// block was affected. External mutators of code memory (e.g.
    /// `cheriot-fault` code flips) compare generations across their write
    /// to confirm the cache saw it.
    pub fn code_generation(&self) -> u64 {
        self.blocks.stats.generation
    }

    /// Number of predecoded blocks currently resident.
    pub fn blocks_resident(&self) -> usize {
        self.blocks.resident()
    }

    /// Discards every predecoded block. Architecturally invisible —
    /// execution re-decodes on demand.
    pub fn flush_block_cache(&mut self) {
        self.blocks.clear();
    }

    /// Enables emission of [`EventKind::BlockCompiled`] /
    /// [`EventKind::BlockInvalidated`] trace events. Off by default so
    /// trace output is byte-identical with the cache on or off.
    pub fn set_block_trace(&mut self, on: bool) {
        self.block_trace = on;
    }

    // --- Snapshot / fork ------------------------------------------------------

    /// Captures the machine's full architectural state into a fresh
    /// [`Snapshot`]. Prefer [`Machine::snapshot_into`] in loops — it
    /// reuses the snapshot's buffers and copies only pages dirtied since
    /// the previous capture.
    pub fn snapshot(&mut self) -> Snapshot {
        let mut snap = Snapshot::empty(self.cfg);
        self.snapshot_into(&mut snap);
        snap
    }

    /// Re-captures the machine's state into an existing snapshot.
    ///
    /// SRAM moves through the dirty-page engine: when `snap` already holds
    /// this machine's last-stamped SRAM content, only pages written since
    /// that stamp move — O(dirty) — and under CoW each moved page is a
    /// handle adoption (the snapshot shares the machine's page; the
    /// machine's next write to it CoW-breaks). The code region and
    /// (Arc-shared) predecoded block table are only re-adopted when the
    /// code actually changed since `snap` was last captured.
    pub fn snapshot_into(&mut self, snap: &mut Snapshot) {
        snap.cfg = self.cfg;
        snap.cpu = self.cpu.clone();
        self.sram.capture_into(&mut snap.sram);
        snap.bitmap.copy_from(&self.bitmap);
        snap.revoker = self.revoker.clone();
        snap.cycles = self.cycles;
        snap.mtimecmp = self.mtimecmp;
        snap.console.clear();
        snap.console.extend_from_slice(&self.console);
        snap.gpio_out = self.gpio_out;
        snap.gpio_writes = self.gpio_writes;
        snap.bus = self.bus.clone();
        snap.stats = self.stats;
        if snap.code_content != self.code_content {
            // O(1): the snapshot adopts the code handle; the machine's
            // next load/patch unshares it (`Arc::make_mut`).
            snap.code = Arc::clone(&self.code);
            snap.blocks = self.blocks.clone();
            snap.code_content = self.code_content;
        }
        snap.halted = self.halted;
        snap.pending_use = self.pending_use;
        snap.wd_limit = self.wd_limit;
        snap.last_trap = self.last_trap;
    }

    /// Restores the machine to the state captured in `snap`.
    ///
    /// O(dirty): SRAM pages not written since this machine's last
    /// snapshot/restore stamp of the same content are guaranteed unchanged
    /// and skipped; without a lineage match the whole bank moves (and is
    /// counted in [`SnapshotStats::full_restores`]) — under CoW "moves"
    /// means O(pages) handle adoptions, which is what makes a fleet fork
    /// metadata-cost. When the code region
    /// already matches (`code_content` stamps equal), resident predecoded
    /// blocks are left in place, so a run forked after a reference run
    /// inherits its decoded blocks; otherwise the snapshot's Arc-shared
    /// block table is installed alongside the code copy.
    ///
    /// The tracer and `block_trace` flag are host-side observers and are
    /// left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `snap` was captured from a machine with a different SRAM
    /// configuration.
    pub fn restore_from(&mut self, snap: &Snapshot) {
        self.cfg = snap.cfg;
        self.cpu = snap.cpu.clone();
        let pages = self.sram.dirty_pages();
        let cost = self.sram.restore_page_wise(&snap.sram);
        self.bitmap.copy_from(&snap.bitmap);
        self.revoker = snap.revoker.clone();
        self.cycles = snap.cycles;
        self.mtimecmp = snap.mtimecmp;
        self.console.clear();
        self.console.extend_from_slice(&snap.console);
        self.gpio_out = snap.gpio_out;
        self.gpio_writes = snap.gpio_writes;
        self.bus = snap.bus.clone();
        self.stats = snap.stats;
        let code_copied = if self.code_content != snap.code_content {
            // Adopting the snapshot's code handle is O(1); the machine's
            // next load/patch unshares it.
            self.code = Arc::clone(&snap.code);
            self.blocks = snap.blocks.clone();
            self.code_content = snap.code_content;
            std::mem::size_of::<Arc<Vec<Instr>>>() as u64
        } else {
            0
        };
        self.halted = snap.halted;
        self.pending_use = snap.pending_use;
        self.wd_limit = snap.wd_limit;
        self.last_trap = snap.last_trap;
        self.snap_stats.restores += 1;
        self.snap_stats.pages_copied += u64::from(cost.pages);
        self.snap_stats.bytes_copied += cost.bytes + snap.console.len() as u64 + code_copied;
        if cost.pages > pages {
            self.snap_stats.full_restores += 1;
        }
    }

    /// Host-side snapshot/restore counters (see [`SnapshotStats`]).
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.snap_stats
    }

    /// Enables/disables the copy-on-write page store at runtime (the CLI
    /// `--no-cow` escape hatch applies this after construction). Keeps
    /// `cfg.cow` in sync so snapshots and forks inherit the mode.
    /// Disabling materializes currently-shared pages into private copies;
    /// architecturally invisible either way (see [`Sram::set_cow`]).
    pub fn set_cow(&mut self, on: bool) {
        self.cfg.cow = on;
        self.sram.set_cow(on);
    }

    /// An executable capability covering all loaded code, for use as a boot
    /// PCC. Real boot code would narrow this per compartment.
    pub fn boot_pcc(&self, entry: u32) -> Capability {
        Capability::root_executable()
            .with_address(layout::CODE_BASE)
            .set_bounds(u64::from(self.code_end() - layout::CODE_BASE))
            .expect("code region is representable")
            .with_address(entry)
    }

    /// Starts execution at `entry` with the PCC covering all loaded code.
    pub fn set_entry(&mut self, entry: u32) {
        self.cpu.pcc = self.boot_pcc(entry);
    }

    /// Has the machine halted, and why?
    pub fn exit_status(&self) -> Option<ExitReason> {
        self.halted
    }

    /// Resumes after an unvectored `ecall` (no trap vector installed):
    /// clears the halt state and advances the PC past the `ecall`
    /// instruction. This is the semihosting hook — a host-side service
    /// handles the call and the guest continues (see
    /// `cheriot-rtos::semihost`).
    ///
    /// # Panics
    ///
    /// Panics if the machine is not stopped at an environment call;
    /// [`Machine::try_resume_from_syscall`] is the non-panicking form.
    pub fn resume_from_syscall(&mut self) {
        self.try_resume_from_syscall()
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Non-panicking [`Machine::resume_from_syscall`]: fails with
    /// [`SimError::NotAtSyscall`] when the machine is not parked on an
    /// unvectored `ecall`.
    pub fn try_resume_from_syscall(&mut self) -> Result<(), SimError> {
        if self.halted != Some(ExitReason::Fault(TrapCause::EnvironmentCall)) {
            return Err(SimError::NotAtSyscall { state: self.halted });
        }
        self.halted = None;
        let next = self.cpu.pc().wrapping_add(4);
        self.cpu.pcc = self.cpu.pcc.with_address(next);
        Ok(())
    }

    // --- Watchdog -------------------------------------------------------------

    /// Arms (or with `None` disarms) the watchdog: [`Machine::run`] returns
    /// [`ExitReason::Watchdog`] once `budget` further instructions retire
    /// without the guest halting. Costs one integer compare per retired
    /// instruction in the run loop; disabled is the default.
    pub fn set_watchdog(&mut self, budget: Option<u64>) {
        self.wd_limit = match budget {
            Some(b) => self.stats.instructions.saturating_add(b),
            None => u64::MAX,
        };
    }

    /// The most recent trap cause taken (synchronous or interrupt), for
    /// post-mortem dumps.
    pub fn last_trap(&self) -> Option<TrapCause> {
        self.last_trap
    }

    /// The in-flight load-to-use hazard, if any: the destination register
    /// of the last load and the stall penalty the next consumer would pay.
    /// Microarchitectural state that external lockstep comparators (the
    /// differential fuzzer's golden model) must see to prove two engines
    /// are in *identical* states, not merely architecturally equal ones.
    pub fn pending_load_use(&self) -> Option<(Reg, u64)> {
        self.pending_use
    }

    /// Builds the structured [`SimError::Watchdog`] for the current state
    /// (for callers that just observed [`ExitReason::Watchdog`]).
    pub fn watchdog_error(&self) -> SimError {
        SimError::Watchdog {
            pc: self.cpu.pc(),
            cycle: self.cycles,
            instructions: self.stats.instructions,
            last_trap: self.last_trap,
        }
    }

    // --- Cycle accounting ----------------------------------------------------

    /// Advances time by `cycles`, of which `mem_beats` used the load/store
    /// unit; the background revoker consumes the remaining slots. This is
    /// also the charging entry point for natively-modelled (RTOS) code.
    #[inline]
    pub fn advance(&mut self, cycles: u64, mem_beats: u64) {
        self.cycles += cycles;
        if self.cfg.hw_revoker && self.revoker.in_progress() {
            let idle = cycles.saturating_sub(mem_beats);
            self.revoker.step_n(&mut self.sram, &self.bitmap, idle);
            if self.tracer.is_some() && !self.revoker.in_progress() {
                self.emit_revoker_finish();
            }
        }
    }

    /// Emits the sweep-completion event (called from the two places that
    /// step the revoker to completion).
    fn emit_revoker_finish(&mut self) {
        let epoch = self.revoker.epoch();
        let words_invalidated = self.revoker.words_invalidated;
        self.trace_emit(EventKind::RevokerFinish {
            epoch,
            words_invalidated,
        });
    }

    // --- Bus ----------------------------------------------------------------

    fn is_sram(&self, addr: u32, size: u32) -> bool {
        self.sram.contains(addr, size)
    }

    /// Raw scalar bus read (no capability check).
    pub fn bus_read(&mut self, addr: u32, size: u32) -> Result<u32, TrapCause> {
        if self.is_sram(addr, size) {
            return self.sram.read_scalar(addr, size);
        }
        self.mmio_read(addr, size)
    }

    /// Raw scalar bus write (no capability check). Clears the granule tag,
    /// snoops the revoker, and updates the stack high-water mark.
    pub fn bus_write(&mut self, addr: u32, size: u32, value: u32) -> Result<(), TrapCause> {
        if self.cfg.hwm_enabled {
            self.cpu.note_store(addr);
        }
        if self.is_sram(addr, size) {
            self.sram.write_scalar(addr, size, value)?;
            self.revoker.snoop_store(addr);
            return Ok(());
        }
        self.mmio_write(addr, size, value)
    }

    /// Raw capability bus read, applying the load filter and recording the
    /// strip statistic. No capability *authority* check and no LG/LM
    /// attenuation — callers do those.
    ///
    /// Served from the SRAM's decoded side cache when possible, so a load
    /// of a just-stored capability copies the decoded form instead of
    /// re-deriving bounds. The filter still keys off the raw tag: untagged
    /// words skip the base decode entirely (`filter_strips`' tag conjunct
    /// would discard it anyway).
    pub fn bus_read_cap(&mut self, addr: u32) -> Result<Capability, TrapCause> {
        let mut c = self.sram.read_cap(addr)?;
        if self.cfg.load_filter && c.tag() && self.bitmap.filter_strips(true, c.base()) {
            c = c.cleared();
            self.stats.filter_strips += 1;
            self.trace_emit(EventKind::FilterStrip { addr });
        }
        Ok(c)
    }

    /// Raw capability bus write. Fills the SRAM's decoded side cache.
    pub fn bus_write_cap(&mut self, addr: u32, c: Capability) -> Result<(), TrapCause> {
        if self.cfg.hwm_enabled {
            self.cpu.note_store(addr);
        }
        self.sram.write_cap(addr, c)?;
        self.revoker.snoop_store(addr);
        Ok(())
    }

    /// Is `base` one of the hardwired (non-bus) SoC windows? Those are on
    /// hot paths or architecturally entangled with the core and keep their
    /// legacy word-aligned-only access contract.
    fn hardwired_window(base: u32) -> bool {
        matches!(
            base,
            layout::REV_BITMAP_BASE | layout::TIMER_BASE | layout::REVOKER_BASE | layout::GPIO_BASE
        )
    }

    fn mmio_read(&mut self, addr: u32, size: u32) -> Result<u32, TrapCause> {
        let (base, off) = (
            addr & !(layout::MMIO_SIZE - 1),
            addr & (layout::MMIO_SIZE - 1),
        );
        if !Machine::hardwired_window(base) {
            return self.device_read(addr, size);
        }
        if size != 4 || !addr.is_multiple_of(4) {
            return Err(TrapCause::BusError { addr });
        }
        match base {
            layout::REV_BITMAP_BASE => Ok(self.bitmap.read_word32(off / 4)),
            layout::TIMER_BASE => Ok(match off {
                0x0 => self.cycles as u32,
                0x4 => (self.cycles >> 32) as u32,
                0x8 => self.mtimecmp as u32,
                0xc => (self.mtimecmp >> 32) as u32,
                _ => 0,
            }),
            layout::REVOKER_BASE => Ok(self.revoker.mmio_read(off)),
            _ => Ok(if off == 0 { self.gpio_out } else { 0 }),
        }
    }

    fn mmio_write(&mut self, addr: u32, size: u32, value: u32) -> Result<(), TrapCause> {
        let (base, off) = (
            addr & !(layout::MMIO_SIZE - 1),
            addr & (layout::MMIO_SIZE - 1),
        );
        if !Machine::hardwired_window(base) {
            return self.device_write(addr, size, value);
        }
        if size != 4 || !addr.is_multiple_of(4) {
            return Err(TrapCause::BusError { addr });
        }
        match base {
            layout::REV_BITMAP_BASE => self.bitmap.write_word32(off / 4, value),
            layout::TIMER_BASE => match off {
                0x8 => self.mtimecmp = (self.mtimecmp & !0xffff_ffff) | u64::from(value),
                0xc => self.mtimecmp = (self.mtimecmp & 0xffff_ffff) | (u64::from(value) << 32),
                _ => {}
            },
            layout::REVOKER_BASE => {
                let epoch_before = self.revoker.epoch();
                self.revoker.mmio_write(off, value);
                if self.revoker.epoch() != epoch_before {
                    let epoch = self.revoker.epoch();
                    self.trace_emit(EventKind::RevokerStart { epoch });
                }
            }
            _ => {
                if off == 0 {
                    self.gpio_out = value;
                    self.gpio_writes += 1;
                }
            }
        }
        Ok(())
    }

    /// Routes an MMIO read outside the hardwired windows to the device
    /// bus. The bus is detached (`mem::take`) around the device call so
    /// the device can reach the rest of the machine (DMA, console)
    /// without aliasing it; afterwards device IRQ levels are re-sampled
    /// and newly-risen lines latched into the interrupt controller.
    fn device_read(&mut self, addr: u32, size: u32) -> Result<u32, TrapCause> {
        let mut bus = std::mem::take(&mut self.bus);
        let r = bus.read(self, addr, size);
        let newly = bus.poll_irqs();
        self.bus = bus;
        self.note_device_irqs(newly);
        let (dev, value) = r.map_err(|crate::bus::BusError| TrapCause::BusError { addr })?;
        if self.tracer.is_some() {
            self.trace_emit(EventKind::MmioRead { dev, addr, value });
        }
        Ok(value)
    }

    /// Routes an MMIO write outside the hardwired windows to the device
    /// bus (see [`Machine::device_read`] for the detach/latch protocol).
    fn device_write(&mut self, addr: u32, size: u32, value: u32) -> Result<(), TrapCause> {
        let mut bus = std::mem::take(&mut self.bus);
        let r = bus.write(self, addr, size, value);
        let newly = bus.poll_irqs();
        self.bus = bus;
        self.note_device_irqs(newly);
        let dev = r.map_err(|crate::bus::BusError| TrapCause::BusError { addr })?;
        if self.tracer.is_some() {
            self.trace_emit(EventKind::MmioWrite { dev, addr, value });
        }
        Ok(())
    }

    /// Emits one `DeviceIrq` trace event per newly-latched interrupt line.
    fn note_device_irqs(&mut self, newly: u32) {
        if newly == 0 || self.tracer.is_none() {
            return;
        }
        let mut lines = newly;
        while lines != 0 {
            let line = lines.trailing_zeros();
            lines &= lines - 1;
            let dev = self.bus.line_owner(line);
            self.trace_emit(EventKind::DeviceIrq { dev, line });
        }
    }

    /// Re-samples device IRQ levels outside an MMIO access (host-side
    /// mutation: RX injection, fault hooks). Latches rising edges exactly
    /// as a bus access would.
    pub fn poll_device_irqs(&mut self) {
        let newly = self.bus.poll_irqs();
        self.note_device_irqs(newly);
    }

    // --- DMA ------------------------------------------------------------------

    /// A device-initiated read of `buf.len()` bytes from `src`. SRAM
    /// serves raw bytes (tags are *not* readable this way — DMA moves
    /// data, never capabilities); the code region re-encodes loaded
    /// instructions to words (4-aligned ranges only). Anything else is a
    /// bus error.
    ///
    /// # Errors
    ///
    /// Bus error when the range is unmapped or (for code) misaligned.
    pub fn dma_read(&mut self, src: u32, buf: &mut [u8]) -> Result<(), TrapCause> {
        if buf.is_empty() {
            return Ok(());
        }
        if self.sram.contains(src, buf.len() as u32) {
            return self.sram.read_bytes(src, buf);
        }
        let end = u64::from(src) + buf.len() as u64;
        if src >= layout::CODE_BASE
            && end <= u64::from(self.code_end())
            && src.is_multiple_of(4)
            && buf.len().is_multiple_of(4)
        {
            for (i, chunk) in buf.chunks_exact_mut(4).enumerate() {
                let addr = src + 4 * i as u32;
                let instr = self.code_at(addr).ok_or(TrapCause::BusError { addr })?;
                let word =
                    crate::encoding::encode(&instr).map_err(|_| TrapCause::BusError { addr })?;
                chunk.copy_from_slice(&word.to_le_bytes());
            }
            return Ok(());
        }
        Err(TrapCause::BusError { addr: src })
    }

    /// A device-initiated write of `buf` at `dst`, preserving every
    /// memory-safety invariant a DMA master must: SRAM stores clear all
    /// covered capability tags, mark the covered pages dirty for
    /// snapshot/fork, and snoop the in-flight revoker sweep; code-region
    /// stores decode each word and go through [`Machine::patch_code`], so
    /// covering predecoded blocks are invalidated and the coherence
    /// generation bumps (retiring chained successor links). Emits a
    /// `DmaTransfer` trace event attributed to the dispatching device.
    ///
    /// # Errors
    ///
    /// Bus error when the range is unmapped, a code store is misaligned,
    /// or a stored word does not decode to an instruction (the code
    /// region holds predecoded instructions, not bytes).
    pub fn dma_write(&mut self, dst: u32, buf: &[u8]) -> Result<(), TrapCause> {
        if buf.is_empty() {
            return Ok(());
        }
        if self.sram.contains(dst, buf.len() as u32) {
            self.sram.write_bytes(dst, buf)?;
            let mut g = dst & !(GRANULE - 1);
            let end = dst + buf.len() as u32;
            while g < end {
                self.revoker.snoop_store(g);
                g += GRANULE;
            }
            self.emit_dma(dst, buf.len() as u32);
            return Ok(());
        }
        let end = u64::from(dst) + buf.len() as u64;
        if dst >= layout::CODE_BASE
            && end <= u64::from(self.code_end())
            && dst.is_multiple_of(4)
            && buf.len().is_multiple_of(4)
        {
            for (i, chunk) in buf.chunks_exact(4).enumerate() {
                let addr = dst + 4 * i as u32;
                let word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                let instr =
                    crate::encoding::decode(word).map_err(|_| TrapCause::BusError { addr })?;
                self.patch_code(addr, instr)
                    .map_err(|_| TrapCause::BusError { addr })?;
            }
            self.emit_dma(dst, buf.len() as u32);
            return Ok(());
        }
        Err(TrapCause::BusError { addr: dst })
    }

    fn emit_dma(&mut self, dst: u32, len: u32) {
        if self.tracer.is_some() {
            let dev = self.active_dev;
            self.trace_emit(EventKind::DmaTransfer { dev, dst, len });
        }
    }

    // --- Host-side device access ----------------------------------------------

    /// Queues `bytes` into the first attached [`Uart`]'s RX FIFO and
    /// re-samples IRQ levels (so an enabled RX interrupt latches
    /// immediately). Returns `false` when no UART is attached.
    pub fn uart_inject_rx(&mut self, bytes: &[u8]) -> bool {
        match self.bus.device_mut::<Uart>() {
            Some(u) => {
                u.inject_rx(bytes);
                self.poll_device_irqs();
                true
            }
            None => false,
        }
    }

    /// Latches `lines` directly into the interrupt controller's pending
    /// register (spurious-IRQ fault injection, host-raised interrupts).
    pub fn raise_device_irq(&mut self, lines: u32) {
        let newly = lines & !self.bus.intc.pending;
        self.bus.intc.pending |= lines;
        self.note_device_irqs(newly);
    }

    /// Clears pending interrupt lines (dropped-IRQ fault injection).
    pub fn drop_device_irq(&mut self, lines: u32) {
        self.bus.intc.pending &= !lines;
    }

    /// First DMA descriptor anchor advertised by any attached device
    /// (fault-injection target; `None` when no DMA-capable device is
    /// configured).
    pub fn dma_desc_addr(&self) -> Option<u32> {
        self.bus.dma_desc_addr()
    }

    // --- Traps and interrupts -------------------------------------------------

    fn enter_trap(&mut self, cause: TrapCause, epc: u32) {
        self.last_trap = Some(cause);
        if self.tracer.is_some() {
            let kind = if cause.is_interrupt() {
                EventKind::IrqDelivered {
                    pc: epc,
                    mcause: cause.mcause(),
                }
            } else {
                EventKind::Trap {
                    pc: epc,
                    mcause: cause.mcause(),
                }
            };
            self.trace_emit(kind);
        }
        if !self.cpu.mtcc.tag() {
            // No trap vector: unrecoverable.
            self.halted = Some(ExitReason::Fault(cause));
            return;
        }
        if cause.is_interrupt() {
            self.stats.interrupts += 1;
        } else {
            self.stats.traps += 1;
        }
        self.cpu.mepcc = self.cpu.pcc.with_address(epc);
        self.cpu.mcause = cause.mcause();
        self.cpu.mtval = match cause {
            TrapCause::Cheri { reg, .. } => u32::from(reg),
            TrapCause::Misaligned { addr } | TrapCause::BusError { addr } => addr,
            _ => 0,
        };
        self.cpu.prev_interrupts_enabled = self.cpu.interrupts_enabled;
        self.cpu.interrupts_enabled = false;
        if self.cpu.prev_interrupts_enabled {
            self.trace_emit(EventKind::InterruptPosture { enabled: false });
        }
        let target = self.cpu.mtcc.address();
        self.cpu.pcc = self.cpu.mtcc.with_address(target);
        // Trap entry costs a pipeline flush plus the vector fetch.
        let flush = self.cfg.core.branch_taken_penalty + 1;
        self.advance(flush, 0);
    }

    fn pending_interrupt(&mut self) -> Option<TrapCause> {
        if !self.cpu.interrupts_enabled {
            return None;
        }
        if self.cycles >= self.mtimecmp {
            return Some(TrapCause::TimerInterrupt);
        }
        if self.revoker.take_irq() {
            return Some(TrapCause::RevokerInterrupt);
        }
        if self.bus.irq_asserted() {
            // Level-triggered and non-consuming: the guest acks via the
            // interrupt controller's CLAIM/W1C registers. Trap entry
            // disables interrupts, so an unacked level cannot storm.
            return Some(TrapCause::ExternalInterrupt);
        }
        None
    }

    /// Any non-timer IRQ line pending (revoker completion or an unmasked
    /// device line)? The batched dispatch loops use this as the boundary
    /// condition alongside the `mtimecmp` comparison.
    #[inline]
    fn irq_lines_pending(&self) -> bool {
        self.revoker.irq_pending() || self.bus.irq_asserted()
    }

    // --- Execution -------------------------------------------------------------

    /// Runs until halt, fault, idle, or the cycle budget is exhausted.
    ///
    /// Batched event loop: interrupts can only become deliverable when the
    /// cycle counter crosses `mtimecmp`, the revoker completion flag rises
    /// (both only move inside instruction execution), or the interrupt
    /// posture changes (sentry jumps, `mret`, trap entry) — so the inner
    /// loop fetch/executes without the per-instruction
    /// [`Machine::pending_interrupt`] poll of [`Machine::step`] and breaks
    /// only on those events. Delivery happens at exactly the same
    /// instruction boundary (and cycle count) as the stepwise loop.
    pub fn run(&mut self, max_cycles: u64) -> ExitReason {
        let limit = self.cycles.saturating_add(max_cycles);
        while self.halted.is_none()
            && self.cycles < limit
            && self.stats.instructions < self.wd_limit
        {
            if self.deliver_pending_interrupt() {
                continue;
            }
            if self.cfg.block_cache {
                self.run_blocks(limit);
            } else {
                self.run_stepwise(limit);
            }
        }
        self.exit_reason()
    }

    /// Delivers a pending interrupt (if any) at the current PC. One shared
    /// helper so [`Machine::step`] and [`Machine::run`] cannot diverge on
    /// delivery conditions. Returns whether a trap was entered.
    fn deliver_pending_interrupt(&mut self) -> bool {
        match self.pending_interrupt() {
            Some(irq) => {
                let pc = self.cpu.pc();
                self.enter_trap(irq, pc);
                true
            }
            None => false,
        }
    }

    /// The batched-loop boundary check, shared by the stepwise and block
    /// loops: did the last instruction change the interrupt posture, or
    /// (posture permitting) make an interrupt deliverable? Only when this
    /// holds does the run loop re-poll [`Machine::pending_interrupt`].
    #[inline]
    fn irq_boundary(&self, was_enabled: bool) -> bool {
        self.cpu.interrupts_enabled != was_enabled
            || (was_enabled && (self.cycles >= self.mtimecmp || self.irq_lines_pending()))
    }

    /// Why the run loop stopped (shared by both loop bodies).
    fn exit_reason(&self) -> ExitReason {
        self.halted
            .unwrap_or(if self.stats.instructions >= self.wd_limit {
                ExitReason::Watchdog
            } else {
                ExitReason::CycleLimit
            })
    }

    /// The per-instruction inner loop (`block_cache: false`, and the
    /// reference semantics the block loop must match exactly).
    fn run_stepwise(&mut self, limit: u64) {
        let wd = self.wd_limit;
        while self.halted.is_none() && self.cycles < limit && self.stats.instructions < wd {
            let enabled = self.cpu.interrupts_enabled;
            self.step_instr();
            if self.irq_boundary(enabled) {
                return;
            }
        }
    }

    /// The predecoded-block inner loop: dispatches whole cached basic
    /// blocks with no fetch/decode, re-checking the cycle/watchdog budget
    /// and interrupt arrival between instructions at exactly the points
    /// [`Machine::run_stepwise`] would, so delivery boundaries, trap PCs
    /// and cycle counts are identical.
    fn run_blocks(&mut self, limit: u64) {
        let wd = self.wd_limit;
        while self.halted.is_none() && self.cycles < limit && self.stats.instructions < wd {
            let enabled = self.cpu.interrupts_enabled;
            let Some((idx, block)) = self.block_take(self.cpu.pc()) else {
                // Out-of-range/unaligned PCs, PCCs narrower than the whole
                // block, and fetch faults take the exact per-instruction
                // path (including its trap reporting).
                self.step_instr();
                if self.irq_boundary(enabled) {
                    return;
                }
                continue;
            };
            // The block is *moved* out of its cache slot for the duration
            // of its execution and moved back after — no refcount traffic
            // on the hot path. Nothing in between can touch the cache:
            // invalidation only happens through external `Machine` APIs
            // (`patch_code`, `flush_block_cache`, program loads), never
            // from `exec`. `exec_chain` owns the restore: with chaining it
            // keeps dispatching successor blocks until a stop boundary.
            let exit = self.exec_chain(idx, block, limit, wd, enabled);
            if exit == BlockExit::Stop {
                return;
            }
        }
    }

    /// Dispatches one predecoded instruction through the inline fast
    /// arms, mirroring each `exec` arm exactly. Returns whether the
    /// instruction was handled: on `true` nothing trapped, halted or
    /// jumped, no penalty cycles accrued beyond `base_cycles`, and
    /// neither `mtimecmp` nor the revoker IRQ line moved — the guarantees
    /// the chained dispatch loop's register-resident counters and its
    /// unchecked inner loop (DESIGN.md §13) rely on. On `false` nothing
    /// was mutated and the caller re-executes through the general `exec`
    /// path from scratch. `interior` is true when another predecoded
    /// instruction follows in the same block (it gates the chased-jump
    /// arm, whose penalty was folded in at decode).
    #[inline(always)]
    fn exec_fast(&mut self, d: &PredecodedInsn, interior: bool) -> bool {
        match d.instr {
            Instr::Lui { rd, imm } => {
                self.cpu.write_int(rd, imm << 12);
                true
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let a = self.cpu.read_int(rs1);
                self.cpu.write_int(rd, alu(op, a, imm as u32));
                true
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let a = self.cpu.read_int(rs1);
                let b = self.cpu.read_int(rs2);
                self.cpu.write_int(rd, alu(op, a, b));
                true
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.cpu.read_int(rs1);
                let b = self.cpu.read_int(rs2);
                self.cpu.write_int(rd, muldiv(op, a, b));
                true
            }
            // Loads dispatch inline too (a quarter of the CoreMark
            // mix), mirroring their `exec` arms, but bail to the
            // general path for anything unusual: MMIO (the timer
            // reads `self.cycles`, register-resident here),
            // capability faults and bus errors (trap bookkeeping).
            // Bailing re-executes through `exec` from scratch —
            // sound because nothing mutates before the first
            // fallible step.
            Instr::Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let auth = self.cpu.read(rs1);
                let addr = auth.address().wrapping_add(offset as u32);
                if self.is_sram(addr, width.bytes())
                    && (!self.cfg.cheri_enabled
                        || auth
                            .check_access(addr, width.bytes(), Permissions::LD)
                            .is_ok())
                {
                    if let Ok(raw) = self.sram.read_scalar(addr, width.bytes()) {
                        let v = if signed {
                            sign_extend(raw, width.bytes())
                        } else {
                            raw
                        };
                        self.cpu.write_int(rd, v);
                        self.stats.loads += 1;
                        self.pending_use = Some((rd, self.cfg.core.load_to_use));
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            }
            Instr::Clc { rd, rs1, offset } => {
                let auth = self.cpu.read(rs1);
                let addr = auth.address().wrapping_add(offset as u32);
                // `bus_read_cap`'s filter-strip trace event is
                // exact here: with a tracer installed the loop
                // synced `self.cycles` for this instruction above.
                if auth
                    .check_access(addr, GRANULE, Permissions::LD | Permissions::MC)
                    .is_ok()
                {
                    if let Ok(c) = self.bus_read_cap(addr) {
                        self.cpu.write(rd, c.attenuated_on_load(auth));
                        self.stats.cap_loads += 1;
                        self.pending_use = Some((rd, self.cfg.core.load_to_use));
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            }
            // Stores dispatch inline under the same rules as
            // loads: SRAM hit with a passing capability check.
            // MMIO stores (timer compare, revocation bitmap) bail
            // to the general path, which is what lets the loop
            // keep `mtimecmp` register-resident across inline
            // stretches. `write_scalar`/`write_cap` check before
            // mutating, so a bail re-executes from scratch with
            // nothing to undo; the high-water-mark note is
            // idempotent either way.
            Instr::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let auth = self.cpu.read(rs1);
                let addr = auth.address().wrapping_add(offset as u32);
                if self.is_sram(addr, width.bytes())
                    && (!self.cfg.cheri_enabled
                        || auth
                            .check_access(addr, width.bytes(), Permissions::SD)
                            .is_ok())
                {
                    let v = self.cpu.read_int(rs2);
                    if self.sram.write_scalar(addr, width.bytes(), v).is_ok() {
                        if self.cfg.hwm_enabled {
                            self.cpu.note_store(addr);
                        }
                        self.revoker.snoop_store(addr);
                        self.stats.stores += 1;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            }
            Instr::Csc { rs2, rs1, offset } => {
                let auth = self.cpu.read(rs1);
                let addr = auth.address().wrapping_add(offset as u32);
                if auth
                    .check_access(addr, GRANULE, Permissions::SD | Permissions::MC)
                    .is_ok()
                {
                    let c = self.cpu.read(rs2);
                    // Local caps need SL on the authority (the
                    // trapping case bails).
                    if (!c.tag() || c.is_global() || auth.perms().contains(Permissions::SL))
                        && self.sram.write_cap(addr, c).is_ok()
                    {
                        if self.cfg.hwm_enabled {
                            self.cpu.note_store(addr);
                        }
                        self.revoker.snoop_store(addr);
                        self.stats.cap_stores += 1;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            }
            // The pure-register capability ALU: never traps (CHERIoT
            // monotonicity failures detag instead), never jumps,
            // touches no counters or MMIO. Each arm mirrors its
            // `exec` arm exactly. These dominate the capability
            // CoreMark mix (pointer derivation and arithmetic).
            Instr::CGet { field, rd, rs1 } => {
                let c = self.cpu.read(rs1);
                let v = match field {
                    CapField::Perm => u32::from(c.perms().bits()),
                    CapField::Type => u32::from(c.otype().field()),
                    CapField::Base => c.base(),
                    CapField::Len => c.length().min(u64::from(u32::MAX)) as u32,
                    CapField::Tag => u32::from(c.tag()),
                    CapField::Addr => c.address(),
                    CapField::High => (c.to_word() >> 32) as u32,
                };
                self.cpu.write_int(rd, v);
                true
            }
            Instr::CSetAddr { rd, rs1, rs2 } => {
                let c = self.cpu.read(rs1);
                let a = self.cpu.read_int(rs2);
                self.cpu.write(rd, c.with_address(a));
                true
            }
            Instr::CIncAddr { rd, rs1, rs2 } => {
                let c = self.cpu.read(rs1);
                let a = self.cpu.read_int(rs2);
                self.cpu.write(rd, c.incremented(a as i32));
                true
            }
            Instr::CIncAddrImm { rd, rs1, imm } => {
                let c = self.cpu.read(rs1);
                self.cpu.write(rd, c.incremented(imm));
                true
            }
            Instr::CSetBounds {
                rd,
                rs1,
                rs2,
                exact,
            } => {
                let c = self.cpu.read(rs1);
                let len = u64::from(self.cpu.read_int(rs2));
                let out = if exact {
                    c.set_bounds_exact(len)
                } else {
                    c.set_bounds(len)
                };
                self.cpu.write(rd, out.unwrap_or_else(|| c.cleared()));
                true
            }
            Instr::CSetBoundsImm { rd, rs1, imm } => {
                let c = self.cpu.read(rs1);
                let out = c.set_bounds(u64::from(imm));
                self.cpu.write(rd, out.unwrap_or_else(|| c.cleared()));
                true
            }
            Instr::CAndPerm { rd, rs1, rs2 } => {
                let c = self.cpu.read(rs1);
                let mask = Permissions::from_bits(self.cpu.read_int(rs2) as u16);
                self.cpu.write(rd, c.and_perms(mask));
                true
            }
            Instr::CClearTag { rd, rs1 } => {
                let c = self.cpu.read(rs1);
                self.cpu.write(rd, c.cleared());
                true
            }
            Instr::CMove { rd, rs1 } => {
                let c = self.cpu.read(rs1);
                self.cpu.write(rd, c);
                true
            }
            // An *interior* `j` is a chased superblock edge: rd is
            // x0 (no state change), the jump penalty was folded
            // into `base_cycles` at decode, and the next
            // predecoded instruction's `pc` is the target. A `j`
            // in last position was *not* chased and takes the
            // inline exit arm below instead (charging the penalty
            // here and there would double-count it).
            Instr::Jal { rd, .. } if rd == Reg::ZERO && interior => true,
            _ => false,
        }
    }

    /// Executes the predecoded block at slot `idx` (taken by the caller
    /// via [`Machine::block_take`]) and — with chaining enabled — keeps
    /// dispatching successor blocks through the successor-link and
    /// sentry-inline-cache fast paths until a stop boundary, never
    /// returning to the dispatcher in between (DESIGN.md §13). The block
    /// in hand is always returned to its slot before this function
    /// returns. Returns whether the outer run loop should stop (budget,
    /// halt, interrupt boundary) or re-dispatch.
    fn exec_chain(
        &mut self,
        mut idx: usize,
        mut block: Arc<Block>,
        limit: u64,
        wd: u64,
        enabled: bool,
    ) -> BlockExit {
        /// How one block's instruction loop ended.
        #[derive(Clone, Copy)]
        enum BodyExit {
            /// A path inside the loop already synced counters + PCC and
            /// the run must stop (budget boundary, halt, mid-block IRQ).
            Stop,
            /// Fell off the end of the block, or an inline branch/jump
            /// arm resolved the next PC: counters live in locals and the
            /// PCC address is *not* yet written (same bounds, so the
            /// fingerprint is unchanged).
            Fall(u32),
            /// The general `exec` path jumped or trapped: the PCC is
            /// fully installed and `self`'s counters are authoritative.
            Jumped,
            /// The sentry inline cache jumped: the successor slot and the
            /// fingerprint it was fetch-verified under are already known.
            JumpedIc { slot: usize, fp: (u32, u64) },
        }

        let chain = self.cfg.block_chain;
        // Successor links and inline caches embed the generation they
        // were recorded under. It cannot move mid-chain — invalidation
        // only happens through external `Machine` APIs (`patch_code`,
        // program loads, `flush_block_cache`), never from `exec` — so one
        // load covers the whole chain.
        let gen = self.blocks.stats.generation;
        // The PCC address is materialised lazily: the loop reads each
        // instruction's predecoded `pc` and writes the PCC only at stop
        // boundaries and real jumps (every path below that leaves the
        // loop syncs first). Chained fall-through edges keep the stale
        // address: it stays inside the PCC bounds (every chained block
        // was verified under the same fingerprint), so the deferred
        // `with_address` calls are pure address updates and any later
        // out-of-bounds move decodes identically (see
        // `Capability::with_address`).
        let has_tracer = self.tracer.is_some();
        // With no hardware revoker configured, `advance` is a bare
        // cycle bump; hoisting the config load lets the hot arm skip
        // the call entirely. (`cfg.hw_revoker` never changes mid-run.)
        let plain_cycles = !self.cfg.hw_revoker;
        // Register-resident loop state. `cyc`/`ins` are the
        // authoritative cycle/instruction counters inside the loop;
        // they are written back to `self` before every operation that
        // could observe them (tracing, `advance`, the general `exec`
        // path, every exit) and re-read after every operation that
        // could move them. `mtimecmp`/`irq_pend` can only change
        // through general-path instructions (MMIO stores, revoker
        // stepping under `advance`), so they are re-read exactly
        // there; across inline ALU stretches the cached values are
        // exact.
        let mut cyc = self.cycles;
        let mut ins = self.stats.instructions;
        let mut mtimecmp = self.mtimecmp;
        let mut irq_pend = self.irq_lines_pending();
        // Fingerprint of the PCC bounds the held block was fetch-verified
        // under (`block_take` just verified it, so the fingerprint
        // exists; the `else` is defensive). Links are keyed on it: a
        // matching link proves its target block was verified under these
        // exact bounds, which is what makes skipping
        // `verify_block_fetch` on chained edges sound.
        let Some(mut fp) = self.cpu.pcc.fetch_fingerprint() else {
            self.blocks.restore(idx, block);
            return BlockExit::Continue;
        };
        'chain: loop {
            // Pending sentry-inline-cache install: set when the block
            // ends in a `cjalr` that missed the cache, consumed once its
            // successful jump resolves a successor block.
            let mut ic_pending: Option<(u64, Option<bool>)> = None;
            let n = block.insns.len();
            let out = 'body: {
                // Unchecked inner loop (DESIGN.md §13): `block.worst_cycles`
                // bounds what one full non-trapping pass can accrue, so when
                // `cyc + worst_cycles` clears both the budget limit and the
                // timer compare (and the instruction budget covers the whole
                // block, no tracer wants per-instruction events, and cycles
                // are plain bumps), none of the per-instruction boundary
                // checks below can fire — run the block's *fast stream*
                // (chased jumps pre-folded into their successors at decode)
                // without them. Fast arms cannot move `mtimecmp`, the
                // interrupt posture or the halt latch, and without a hardware
                // revoker `irq_pend` is constant across the stretch, so every
                // skipped check would have evaluated false. An element the
                // fast path refuses falls through to the checked loop at its
                // `resume` index with nothing executed twice: `ins`/`cyc` are
                // charged only after `exec_fast` succeeds, and a hazard stall
                // consumed here stays consumed (`pending_use.take()`),
                // matching the stepwise order of charge-then-execute.
                let mut skip = 0usize;
                if plain_cycles
                    && !has_tracer
                    && ins + n as u64 <= wd
                    && cyc.saturating_add(block.worst_cycles) < limit
                    && (!enabled
                        || (!irq_pend && cyc.saturating_add(block.worst_cycles) < mtimecmp))
                {
                    skip = block.fast_end as usize;
                    for f in block.fast.iter() {
                        if f.check_hazard {
                            if let Some((r, penalty)) = self.pending_use.take() {
                                if f.srcs.iter().flatten().any(|&s| s == r) {
                                    self.stats.stall_cycles += penalty;
                                    cyc += penalty;
                                }
                            }
                        }
                        if !self.exec_fast(&f.d, true) {
                            skip = f.resume as usize;
                            break;
                        }
                        ins += u64::from(f.retires);
                        cyc += f.cycles;
                    }
                }
                for (i, d) in block.insns.iter().enumerate().skip(skip) {
                    let pc = d.pc;
                    if i != 0 && (cyc >= limit || ins >= wd) {
                        // Budget boundary mid-block: stop exactly where the
                        // stepwise loop would, PC on the next instruction.
                        self.cycles = cyc;
                        self.stats.instructions = ins;
                        self.finish_jump(pc);
                        break 'body BodyExit::Stop;
                    }
                    // Load-to-use hazard from the previous instruction; only
                    // loads set it, so predecode marks the instructions that
                    // could observe one.
                    if d.check_hazard {
                        if let Some((r, penalty)) = self.pending_use.take() {
                            if d.srcs.iter().flatten().any(|&s| s == r) {
                                self.stats.stall_cycles += penalty;
                                if plain_cycles {
                                    cyc += penalty;
                                } else {
                                    self.cycles = cyc;
                                    self.advance(penalty, 0);
                                    cyc = self.cycles;
                                    irq_pend = self.irq_lines_pending();
                                }
                            }
                        }
                    }
                    ins += 1;
                    if has_tracer {
                        self.cycles = cyc; // event timestamp
                        self.trace_emit(EventKind::InstrRetired { pc });
                    }
                    let fast = self.exec_fast(d, i + 1 < n);
                    if fast {
                        if plain_cycles {
                            cyc += d.base_cycles;
                        } else {
                            self.cycles = cyc;
                            self.advance(d.base_cycles, d.mem_beats);
                            cyc = self.cycles;
                            irq_pend = self.irq_lines_pending();
                        }
                        // Fast arms cannot halt, so only the interrupt-arrival
                        // check applies before the next instruction. (A fast
                        // arm can sit in last position when a block was
                        // truncated at the length cap, hence the `get`.)
                        if enabled && (cyc >= mtimecmp || irq_pend) {
                            let npc = block.insns.get(i + 1).map_or(pc.wrapping_add(4), |x| x.pc);
                            self.cycles = cyc;
                            self.stats.instructions = ins;
                            self.finish_jump(npc);
                            break 'body BodyExit::Stop;
                        }
                        continue;
                    }
                    // Inline block-ender arms: the dominant control-flow exits
                    // dispatch without the general `exec` round trip. Each
                    // replicates its `exec` arm exactly but defers the PCC
                    // address write to the chain boundary.
                    match d.instr {
                        Instr::Branch {
                            cond,
                            rs1,
                            rs2,
                            offset,
                        } => {
                            let a = self.cpu.read_int(rs1);
                            let b = self.cpu.read_int(rs2);
                            let (npc, extra) = if branch_taken(cond, a, b) {
                                self.stats.taken_branches += 1;
                                (
                                    pc.wrapping_add(offset as u32),
                                    self.cfg.core.branch_taken_penalty,
                                )
                            } else {
                                (pc.wrapping_add(4), 0)
                            };
                            if plain_cycles {
                                cyc += d.base_cycles + extra;
                            } else {
                                self.cycles = cyc;
                                self.advance(d.base_cycles + extra, d.mem_beats);
                                cyc = self.cycles;
                                irq_pend = self.irq_lines_pending();
                            }
                            break 'body BodyExit::Fall(npc);
                        }
                        Instr::Jal { rd, offset } if rd == Reg::ZERO => {
                            // A last-position `j` (interior ones were chased
                            // at decode and took the fast arm): the x0 link is
                            // a no-op and nothing can trap.
                            if plain_cycles {
                                cyc += d.base_cycles + self.cfg.core.jump_penalty;
                            } else {
                                self.cycles = cyc;
                                self.advance(
                                    d.base_cycles + self.cfg.core.jump_penalty,
                                    d.mem_beats,
                                );
                                cyc = self.cycles;
                                irq_pend = self.irq_lines_pending();
                            }
                            break 'body BodyExit::Fall(pc.wrapping_add(offset as u32));
                        }
                        Instr::Jalr { rd, rs1, .. } if chain && self.cfg.cheri_enabled => {
                            // Sentry inline cache (DESIGN.md §13): a call
                            // site's `cjalr` keeps seeing the same sentry on
                            // the RTOS cross-call path, and the target's
                            // memory word + tag fully determine the
                            // validation outcome. A word match on a tagged
                            // target replays the jump — link, posture effect,
                            // installed PCC — without re-running it.
                            let target = self.cpu.read(rs1);
                            if target.tag() {
                                if let Some(ic) = self.blocks.ic_lookup(idx, gen, target.to_word())
                                {
                                    self.blocks.stats.sentry_ic_hits += 1;
                                    // Same order as `exec`: the return-sentry
                                    // link can trap, and then nothing else
                                    // must have happened yet.
                                    if let Err(t) = self.link(rd, pc.wrapping_add(4)) {
                                        self.cycles = cyc;
                                        self.stats.instructions = ins;
                                        self.advance(d.base_cycles, 0);
                                        self.finish_jump(pc);
                                        self.enter_trap(t, pc);
                                        cyc = self.cycles;
                                        mtimecmp = self.mtimecmp;
                                        irq_pend = self.irq_lines_pending();
                                        break 'body BodyExit::Jumped;
                                    }
                                    if let Some(en) = ic.posture {
                                        if self.cpu.interrupts_enabled != en {
                                            self.cpu.interrupts_enabled = en;
                                            self.cycles = cyc;
                                            self.trace_emit(EventKind::InterruptPosture {
                                                enabled: en,
                                            });
                                        }
                                    }
                                    if self.block_trace {
                                        self.cycles = cyc;
                                        self.trace_emit(EventKind::SentryIcHit {
                                            pc,
                                            target: ic.target_pcc.address(),
                                        });
                                    }
                                    self.cpu.pcc = ic.target_pcc;
                                    if plain_cycles {
                                        cyc += d.base_cycles + self.cfg.core.jump_penalty;
                                    } else {
                                        self.cycles = cyc;
                                        self.advance(
                                            d.base_cycles + self.cfg.core.jump_penalty,
                                            d.mem_beats,
                                        );
                                        cyc = self.cycles;
                                        irq_pend = self.irq_lines_pending();
                                    }
                                    break 'body BodyExit::JumpedIc {
                                        slot: ic.target_slot as usize,
                                        fp: ic.fp,
                                    };
                                }
                                // Miss: remember the key; the general path
                                // below validates the jump, and its success
                                // installs the cache entry at the chain
                                // boundary.
                                self.blocks.stats.sentry_ic_misses += 1;
                                ic_pending =
                                    Some((target.to_word(), sentry_posture_effect(&target)));
                            }
                        }
                        _ => {}
                    }
                    self.cycles = cyc;
                    self.stats.instructions = ins;
                    match self.exec(d.instr, pc) {
                        Ok((extra, out)) => {
                            if plain_cycles {
                                self.cycles += d.base_cycles + extra;
                            } else {
                                self.advance(d.base_cycles + extra, d.mem_beats);
                            }
                            cyc = self.cycles;
                            mtimecmp = self.mtimecmp;
                            irq_pend = self.irq_lines_pending();
                            match out {
                                PcOutcome::Advance => {}
                                PcOutcome::Jumped => break 'body BodyExit::Jumped,
                                PcOutcome::Stay => {
                                    // `halt`: the PCC parks on the instruction.
                                    self.finish_jump(pc);
                                    break 'body BodyExit::Stop;
                                }
                            }
                        }
                        Err(t) => {
                            // The trap reports the PC of the *offending*
                            // instruction, not the block start. Sync the PCC
                            // first: a double fault halts inside `enter_trap`
                            // and leaves the PCC for post-mortem inspection.
                            self.advance(d.base_cycles, 0);
                            self.finish_jump(pc);
                            self.enter_trap(t, pc);
                            cyc = self.cycles;
                            mtimecmp = self.mtimecmp;
                            irq_pend = self.irq_lines_pending();
                            ic_pending = None;
                            break 'body BodyExit::Jumped;
                        }
                    }
                    let npc = block.insns.get(i + 1).map_or(pc.wrapping_add(4), |x| x.pc);
                    if self.halted.is_some() {
                        // Idle `wfi` with interrupts off: retires, PC advances.
                        self.finish_jump(npc);
                        break 'body BodyExit::Stop;
                    }
                    // Mid-block the posture cannot change (posture-changing
                    // instructions end blocks; traps break out above), so the
                    // boundary check reduces to interrupt arrival.
                    if enabled && (cyc >= mtimecmp || irq_pend) {
                        self.finish_jump(npc);
                        break 'body BodyExit::Stop;
                    }
                }
                BodyExit::Fall(block.end)
            };
            // --- chain boundary ---
            let (next_pc, pcc_synced) = match out {
                BodyExit::Stop => {
                    self.blocks.restore(idx, block);
                    return BlockExit::Stop;
                }
                BodyExit::Fall(npc) => (npc, false),
                BodyExit::Jumped | BodyExit::JumpedIc { .. } => (self.cpu.pc(), true),
            };
            // Locals are current on every non-`Stop` exit (jumped/trapped
            // paths reloaded them), so the interrupt-boundary test the
            // dispatcher would run reads them directly.
            let irq_stop = self.cpu.interrupts_enabled != enabled
                || (enabled && (cyc >= mtimecmp || irq_pend));
            if !chain || irq_stop || self.halted.is_some() || cyc >= limit || ins >= wd {
                self.cycles = cyc;
                self.stats.instructions = ins;
                if !pcc_synced {
                    self.finish_jump(next_pc);
                }
                self.blocks.restore(idx, block);
                return if irq_stop {
                    BlockExit::Stop
                } else {
                    BlockExit::Continue
                };
            }
            // Resolve the successor without returning to the dispatcher:
            // inline-cache target, then the successor links, then the full
            // verified lookup (which also records the missing link).
            if let BodyExit::JumpedIc { slot, fp: nfp } = out {
                // The cache recorded the slot and the fingerprint its
                // block was verified under; the PCC just installed is the
                // capability that fingerprint came from.
                fp = nfp;
                if slot == idx {
                    // Self-call: the held block is its own successor.
                    self.blocks.stats.chain_hits += 1;
                    continue 'chain;
                }
                if let Some(nb) = self.blocks.take(slot) {
                    self.blocks.stats.chain_hits += 1;
                    if self.block_trace {
                        self.cycles = cyc;
                        let (from, to) = (block.start, nb.start);
                        self.trace_emit(EventKind::BlockChained { from, to });
                    }
                    self.blocks.restore(idx, block);
                    idx = slot;
                    block = nb;
                    continue 'chain;
                }
                // Defensive only — under an unmoved generation the slot
                // cannot have been emptied; fall through to the verified
                // lookup.
            } else if matches!(out, BodyExit::Jumped) {
                // The jump installed a fresh PCC whose bounds may differ
                // (cjalr, mret, trap vector). Re-fingerprint; a PCC that
                // cannot fetch at all goes back to the dispatcher for
                // exact per-instruction fault reporting.
                match self.cpu.pcc.fetch_fingerprint() {
                    Some(nfp) => fp = nfp,
                    None => {
                        self.cycles = cyc;
                        self.stats.instructions = ins;
                        self.blocks.restore(idx, block);
                        return BlockExit::Continue;
                    }
                }
            }
            if let Some(slot) = self.blocks.link_lookup(idx, gen, next_pc, fp) {
                // Link hit: the target block was verified for fetch under
                // this exact fingerprint when the link was recorded, so
                // the per-dispatch `verify_block_fetch` is elided.
                if slot == idx {
                    // Self-loop (a one-block spin): the held block is its
                    // own successor.
                    self.blocks.stats.chain_hits += 1;
                    continue 'chain;
                }
                if let Some(nb) = self.blocks.take(slot) {
                    self.blocks.stats.chain_hits += 1;
                    if self.block_trace {
                        self.cycles = cyc;
                        let (from, to) = (block.start, nb.start);
                        self.trace_emit(EventKind::BlockChained { from, to });
                    }
                    self.blocks.restore(idx, block);
                    idx = slot;
                    block = nb;
                    continue 'chain;
                }
            }
            // Link miss: sync the PCC, return the held block, and take
            // the successor through the verified lookup; record the edge
            // (and any pending sentry inline-cache entry) for next time.
            self.cycles = cyc;
            self.stats.instructions = ins;
            if !pcc_synced {
                self.finish_jump(next_pc);
            }
            let from_start = block.start;
            self.blocks.restore(idx, block);
            let Some((nidx, nb)) = self.block_take(next_pc) else {
                return BlockExit::Continue;
            };
            self.blocks.link_insert(idx, gen, next_pc, fp, nidx);
            if let Some((word, posture)) = ic_pending {
                self.blocks.ic_insert(
                    idx,
                    gen,
                    SentryIc {
                        cap_word: word,
                        target_pcc: self.cpu.pcc,
                        posture,
                        target_slot: nidx as u32,
                        fp,
                    },
                );
            }
            if self.block_trace {
                self.trace_emit(EventKind::BlockLinked {
                    from: from_start,
                    to: next_pc,
                });
            }
            idx = nidx;
            block = nb;
        }
    }

    /// The predecoded block starting at `pc`, building and caching it on
    /// first sight. The block is *moved* out of its slot — the caller
    /// executes it and hands it back with `self.blocks.restore(idx, ..)`
    /// — so the hot path pays no `Arc` refcount traffic. `None` sends the
    /// caller to the per-instruction slow path (the slot is always left
    /// populated in that case): PC outside loaded code, misaligned, or a
    /// PCC that does not cover the whole block (the batched fetch check
    /// needs bounds over `[start, end)` — one interval, so checking the
    /// first and last instruction covers every one in between).
    fn block_take(&mut self, pc: u32) -> Option<(usize, Arc<Block>)> {
        if pc < layout::CODE_BASE || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - layout::CODE_BASE) / 4) as usize;
        if idx >= self.code.len() {
            return None;
        }
        if let Some(b) = self.blocks.take(idx) {
            if self.verify_block_fetch(&b) {
                self.blocks.stats.hits += 1;
                return Some((idx, b));
            }
            self.blocks.restore(idx, b);
            return None;
        }
        let block = Arc::new(build_block(
            &self.code,
            idx,
            &self.cfg.core,
            self.cfg.load_filter,
            self.cfg.block_chain,
        ));
        let code_words = self.code.len();
        // The miss path caches a clone and returns the original; after
        // execution `restore` replaces the clone with it (same block).
        self.blocks.insert(idx, Arc::clone(&block), code_words);
        if self.block_trace {
            let (pc, len) = (block.start, block.insns.len() as u32);
            self.trace_emit(EventKind::BlockCompiled { pc, len });
        }
        if self.verify_block_fetch(&block) {
            Some((idx, block))
        } else {
            None
        }
    }

    /// Can the current PCC fetch every instruction of `block`? The single
    /// audit point for batched fetch verification: each covered segment
    /// is one contiguous interval, so checking its first and last
    /// instruction covers every one in between, and the chained dispatch
    /// loop may elide this check entirely on edges recorded under the
    /// same PCC [`Capability::fetch_fingerprint`] — equal fingerprints
    /// give identical answers here (DESIGN.md §13).
    fn verify_block_fetch(&self, block: &Block) -> bool {
        block
            .ranges
            .iter()
            .all(|&(s, e)| self.cpu.pcc.check_fetch_range(s, e.wrapping_sub(4)))
    }

    /// Executes one instruction (or delivers one interrupt).
    pub fn step(&mut self) {
        if self.halted.is_some() {
            return;
        }
        if self.deliver_pending_interrupt() {
            return;
        }
        self.step_instr();
    }

    /// Fetch/execute of one instruction, without the interrupt poll (the
    /// batched [`Machine::run`] loop does that at its break points).
    fn step_instr(&mut self) {
        let pc = self.cpu.pc();
        let instr = match self.fetch(pc) {
            Ok(i) => i,
            Err(t) => {
                self.enter_trap(t, pc);
                return;
            }
        };
        // Load-to-use hazard from the previous instruction.
        if let Some((r, penalty)) = self.pending_use.take() {
            if instr.sources().iter().flatten().any(|&s| s == r) {
                self.stats.stall_cycles += penalty;
                self.advance(penalty, 0);
            }
        }
        self.stats.instructions += 1;
        if let Some(t) = self.tracer.as_deref_mut() {
            t.emit(self.cycles, EventKind::InstrRetired { pc });
        }
        let mut base_cycles = self.cfg.core.instr_cycles(&instr);
        if self.cfg.load_filter {
            // The revocation-bit lookup lengthens capability loads on cores
            // whose pipeline cannot hide it (Ibex; free on Flute's 5-stage).
            if let Instr::Clc { .. } = instr {
                base_cycles += self.cfg.core.filter_load_to_use;
            }
        }
        let mem_beats = self.cfg.core.mem_beats(&instr);
        match self.exec(instr, pc) {
            Ok((extra, out)) => {
                self.advance(base_cycles + extra, mem_beats);
                if out == PcOutcome::Advance {
                    self.finish_jump(pc.wrapping_add(4));
                }
            }
            Err(t) => {
                self.advance(base_cycles, 0);
                self.enter_trap(t, pc);
            }
        }
    }

    fn fetch(&self, pc: u32) -> Result<Instr, TrapCause> {
        self.cpu
            .pcc
            .check_fetch(pc)
            .map_err(|fault| TrapCause::Cheri {
                fault,
                reg: PCC_REG_INDEX,
            })?;
        if pc < layout::CODE_BASE || !pc.is_multiple_of(4) {
            return Err(TrapCause::BusError { addr: pc });
        }
        let idx = ((pc - layout::CODE_BASE) / 4) as usize;
        self.code
            .get(idx)
            .copied()
            .ok_or(TrapCause::BusError { addr: pc })
    }

    /// Executes `instr` at `pc`, returning extra (penalty) cycles and how
    /// the PC moved. On [`PcOutcome::Advance`] the PCC has *not* been
    /// touched — the caller owns the `pc + 4` update, which lets the block
    /// loop batch consecutive updates into one write at the block exit.
    fn exec(&mut self, instr: Instr, pc: u32) -> Result<(u64, PcOutcome), TrapCause> {
        let next = pc.wrapping_add(4);
        let mut extra = 0;
        let mut next_pc = next;
        match instr {
            Instr::Lui { rd, imm } => self.cpu.write_int(rd, imm << 12),
            Instr::Auipcc { rd, imm } => {
                let c = self.cpu.pcc.with_address(pc.wrapping_add(imm as u32));
                self.cpu.write(rd, c);
            }
            Instr::Auicgp { rd, imm } => {
                let gp = self.cpu.read(Reg::GP);
                let c = gp.with_address(gp.address().wrapping_add(imm as u32));
                self.cpu.write(rd, c);
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let a = self.cpu.read_int(rs1);
                self.cpu.write_int(rd, alu(op, a, imm as u32));
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let a = self.cpu.read_int(rs1);
                let b = self.cpu.read_int(rs2);
                self.cpu.write_int(rd, alu(op, a, b));
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.cpu.read_int(rs1);
                let b = self.cpu.read_int(rs2);
                self.cpu.write_int(rd, muldiv(op, a, b));
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.cpu.read_int(rs1);
                let b = self.cpu.read_int(rs2);
                if branch_taken(cond, a, b) {
                    next_pc = pc.wrapping_add(offset as u32);
                    extra += self.cfg.core.branch_taken_penalty;
                    self.stats.taken_branches += 1;
                }
            }
            Instr::Jal { rd, offset } => {
                self.link(rd, next)?;
                next_pc = pc.wrapping_add(offset as u32);
                extra += self.cfg.core.jump_penalty;
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.cpu.read(rs1);
                if !self.cfg.cheri_enabled {
                    // Plain RV32E jalr: the register holds an address.
                    let addr = target.address().wrapping_add(offset as u32) & !1;
                    if rd != Reg::ZERO {
                        self.cpu.write_int(rd, next);
                    }
                    self.cpu.pcc = self.cpu.pcc.with_address(addr);
                    return Ok((extra + self.cfg.core.jump_penalty, PcOutcome::Jumped));
                }
                if !target.tag() {
                    return Err(cheri(rs1, cheriot_cap::CapFault::TagViolation));
                }
                let mut posture = None;
                let tc = if target.is_sealed() {
                    match target.otype().sentry_kind() {
                        Some(kind) if offset == 0 => {
                            posture = Some(match kind {
                                SentryKind::Forward(p) => p,
                                SentryKind::Return(InterruptPosture::Enabled) => {
                                    InterruptPosture::Enabled
                                }
                                SentryKind::Return(_) => InterruptPosture::Disabled,
                            });
                            target.unsealed_for_jump()
                        }
                        _ => {
                            return Err(cheri(rs1, cheriot_cap::CapFault::SealViolation));
                        }
                    }
                } else {
                    target
                };
                if !tc.perms().contains(Permissions::EX) {
                    return Err(cheri(
                        rs1,
                        cheriot_cap::CapFault::PermissionViolation {
                            needed: Permissions::EX,
                        },
                    ));
                }
                self.link(rd, next)?;
                let was_enabled = self.cpu.interrupts_enabled;
                match posture {
                    Some(InterruptPosture::Enabled) => self.cpu.interrupts_enabled = true,
                    Some(InterruptPosture::Disabled) => self.cpu.interrupts_enabled = false,
                    Some(InterruptPosture::Inherit) | None => {}
                }
                if self.cpu.interrupts_enabled != was_enabled {
                    self.trace_emit(EventKind::InterruptPosture {
                        enabled: self.cpu.interrupts_enabled,
                    });
                }
                let addr = tc.address().wrapping_add(offset as u32) & !1;
                self.cpu.pcc = tc.with_address(addr);
                extra += self.cfg.core.jump_penalty;
                return Ok((extra, PcOutcome::Jumped));
            }
            Instr::Load {
                width,
                signed,
                rd,
                rs1,
                offset,
            } => {
                let auth = self.cpu.read(rs1);
                let addr = auth.address().wrapping_add(offset as u32);
                if self.cfg.cheri_enabled {
                    auth.check_access(addr, width.bytes(), Permissions::LD)
                        .map_err(|f| cheri(rs1, f))?;
                }
                let raw = self.bus_read(addr, width.bytes())?;
                let v = if signed {
                    sign_extend(raw, width.bytes())
                } else {
                    raw
                };
                self.cpu.write_int(rd, v);
                self.stats.loads += 1;
                self.pending_use = Some((rd, self.cfg.core.load_to_use));
            }
            Instr::Store {
                width,
                rs2,
                rs1,
                offset,
            } => {
                let auth = self.cpu.read(rs1);
                let addr = auth.address().wrapping_add(offset as u32);
                if self.cfg.cheri_enabled {
                    auth.check_access(addr, width.bytes(), Permissions::SD)
                        .map_err(|f| cheri(rs1, f))?;
                }
                let v = self.cpu.read_int(rs2);
                self.bus_write(addr, width.bytes(), v)?;
                self.stats.stores += 1;
            }
            Instr::Clc { rd, rs1, offset } => {
                let auth = self.cpu.read(rs1);
                let addr = auth.address().wrapping_add(offset as u32);
                auth.check_access(addr, GRANULE, Permissions::LD | Permissions::MC)
                    .map_err(|f| cheri(rs1, f))?;
                let c = self.bus_read_cap(addr)?.attenuated_on_load(auth);
                self.cpu.write(rd, c);
                self.stats.cap_loads += 1;
                self.pending_use = Some((rd, self.cfg.core.load_to_use));
            }
            Instr::Csc { rs2, rs1, offset } => {
                let auth = self.cpu.read(rs1);
                let addr = auth.address().wrapping_add(offset as u32);
                auth.check_access(addr, GRANULE, Permissions::SD | Permissions::MC)
                    .map_err(|f| cheri(rs1, f))?;
                let c = self.cpu.read(rs2);
                if c.tag() && !c.is_global() && !auth.perms().contains(Permissions::SL) {
                    return Err(cheri(
                        rs1,
                        cheriot_cap::CapFault::PermissionViolation {
                            needed: Permissions::SL,
                        },
                    ));
                }
                self.bus_write_cap(addr, c)?;
                self.stats.cap_stores += 1;
            }
            Instr::CGet { field, rd, rs1 } => {
                let c = self.cpu.read(rs1);
                let v = match field {
                    CapField::Perm => u32::from(c.perms().bits()),
                    CapField::Type => u32::from(c.otype().field()),
                    CapField::Base => c.base(),
                    CapField::Len => c.length().min(u64::from(u32::MAX)) as u32,
                    CapField::Tag => u32::from(c.tag()),
                    CapField::Addr => c.address(),
                    CapField::High => (c.to_word() >> 32) as u32,
                };
                self.cpu.write_int(rd, v);
            }
            Instr::CSetAddr { rd, rs1, rs2 } => {
                let c = self.cpu.read(rs1);
                let a = self.cpu.read_int(rs2);
                self.cpu.write(rd, c.with_address(a));
            }
            Instr::CIncAddr { rd, rs1, rs2 } => {
                let c = self.cpu.read(rs1);
                let a = self.cpu.read_int(rs2);
                self.cpu.write(rd, c.incremented(a as i32));
            }
            Instr::CIncAddrImm { rd, rs1, imm } => {
                let c = self.cpu.read(rs1);
                self.cpu.write(rd, c.incremented(imm));
            }
            Instr::CSetBounds {
                rd,
                rs1,
                rs2,
                exact,
            } => {
                let c = self.cpu.read(rs1);
                let len = u64::from(self.cpu.read_int(rs2));
                let out = if exact {
                    c.set_bounds_exact(len)
                } else {
                    c.set_bounds(len)
                };
                self.cpu.write(rd, out.unwrap_or_else(|| c.cleared()));
            }
            Instr::CSetBoundsImm { rd, rs1, imm } => {
                let c = self.cpu.read(rs1);
                let out = c.set_bounds(u64::from(imm));
                self.cpu.write(rd, out.unwrap_or_else(|| c.cleared()));
            }
            Instr::CAndPerm { rd, rs1, rs2 } => {
                let c = self.cpu.read(rs1);
                let mask = Permissions::from_bits(self.cpu.read_int(rs2) as u16);
                self.cpu.write(rd, c.and_perms(mask));
            }
            Instr::CClearTag { rd, rs1 } => {
                let c = self.cpu.read(rs1);
                self.cpu.write(rd, c.cleared());
            }
            Instr::CMove { rd, rs1 } => {
                let c = self.cpu.read(rs1);
                self.cpu.write(rd, c);
            }
            Instr::CSeal { rd, rs1, rs2 } => {
                let c = self.cpu.read(rs1);
                let auth = self.cpu.read(rs2);
                // Non-trapping: failures detag (CHERIoT semantics).
                let out = c.seal_with(auth).unwrap_or_else(|_| c.cleared());
                self.cpu.write(rd, out);
            }
            Instr::CUnseal { rd, rs1, rs2 } => {
                let c = self.cpu.read(rs1);
                let auth = self.cpu.read(rs2);
                let out = c.unseal_with(auth).unwrap_or_else(|_| c.cleared());
                self.cpu.write(rd, out);
            }
            Instr::CTestSubset { rd, rs1, rs2 } => {
                let parent = self.cpu.read(rs1);
                let child = self.cpu.read(rs2);
                self.cpu
                    .write_int(rd, u32::from(child.is_subset_of(parent)));
            }
            Instr::CSetEqualExact { rd, rs1, rs2 } => {
                let a = self.cpu.read(rs1);
                let b = self.cpu.read(rs2);
                let eq = a.to_word() == b.to_word() && a.tag() == b.tag();
                self.cpu.write_int(rd, u32::from(eq));
            }
            Instr::CRoundRepresentableLength { rd, rs1 } => {
                let len = self.cpu.read_int(rs1);
                self.cpu.write_int(
                    rd,
                    representable_length(len).min(u64::from(u32::MAX)) as u32,
                );
            }
            Instr::CRepresentableAlignmentMask { rd, rs1 } => {
                let len = self.cpu.read_int(rs1);
                self.cpu.write_int(rd, representable_alignment_mask(len));
            }
            Instr::CSpecialRw { rd, rs1, scr } => {
                if !self.cpu.pcc.perms().contains(Permissions::SR) {
                    return Err(cheri(
                        PCC_REG_INDEX,
                        cheriot_cap::CapFault::PermissionViolation {
                            needed: Permissions::SR,
                        },
                    ));
                }
                let old = self.cpu.scr(scr);
                if rs1 != Reg::ZERO {
                    let v = self.cpu.read(rs1);
                    self.cpu.set_scr(scr, v);
                }
                self.cpu.write(rd, old);
            }
            Instr::Csr { op, rd, rs1, csr } => {
                let needs_sr = !matches!(csr, CsrId::Mcycle | CsrId::Mcycleh);
                if needs_sr && !self.cpu.pcc.perms().contains(Permissions::SR) {
                    return Err(cheri(
                        PCC_REG_INDEX,
                        cheriot_cap::CapFault::PermissionViolation {
                            needed: Permissions::SR,
                        },
                    ));
                }
                let old = match csr {
                    CsrId::Mcycle => self.cycles as u32,
                    CsrId::Mcycleh => (self.cycles >> 32) as u32,
                    CsrId::Mcause => self.cpu.mcause,
                    CsrId::Mtval => self.cpu.mtval,
                    CsrId::Mshwm => self.cpu.mshwm,
                    CsrId::Mshwmb => self.cpu.mshwmb,
                };
                let operand = self.cpu.read_int(rs1);
                let new = match op {
                    CsrOp::Rw => operand,
                    CsrOp::Rs => old | operand,
                    CsrOp::Rc => old & !operand,
                };
                if rs1 != Reg::ZERO || matches!(op, CsrOp::Rw) {
                    match csr {
                        CsrId::Mcause => self.cpu.mcause = new,
                        CsrId::Mtval => self.cpu.mtval = new,
                        CsrId::Mshwm => self.cpu.mshwm = new,
                        CsrId::Mshwmb => self.cpu.mshwmb = new,
                        CsrId::Mcycle | CsrId::Mcycleh => {}
                    }
                }
                self.cpu.write_int(rd, old);
            }
            Instr::Ecall => return Err(TrapCause::EnvironmentCall),
            Instr::Ebreak => return Err(TrapCause::Breakpoint),
            Instr::Mret => {
                if !self.cpu.pcc.perms().contains(Permissions::SR) {
                    return Err(cheri(
                        PCC_REG_INDEX,
                        cheriot_cap::CapFault::PermissionViolation {
                            needed: Permissions::SR,
                        },
                    ));
                }
                if !self.cpu.mepcc.tag() {
                    return Err(cheri(PCC_REG_INDEX, cheriot_cap::CapFault::TagViolation));
                }
                let was_enabled = self.cpu.interrupts_enabled;
                self.cpu.interrupts_enabled = self.cpu.prev_interrupts_enabled;
                if self.cpu.interrupts_enabled != was_enabled {
                    self.trace_emit(EventKind::InterruptPosture {
                        enabled: self.cpu.interrupts_enabled,
                    });
                }
                self.cpu.pcc = self.cpu.mepcc;
                extra += self.cfg.core.jump_penalty;
                // Load-bearing: `mepcc` may be sealed (installed raw via
                // `CSpecialRw`), and `with_address` on a sealed capability
                // clears the tag, turning the next fetch into a
                // `TagViolation` — exactly the architected behaviour.
                self.finish_jump(self.cpu.pc());
                return Ok((extra, PcOutcome::Jumped));
            }
            Instr::Wfi => {
                self.wait_for_interrupt();
                // Falls through: wfi retires and the PC advances; a pending
                // interrupt (if enabled) is taken before the next
                // instruction.
            }
            Instr::Fence => {}
            Instr::Halt => {
                self.halted = Some(ExitReason::Halted(self.cpu.read_int(Reg::A0)));
                return Ok((0, PcOutcome::Stay));
            }
        }
        if next_pc == next {
            Ok((extra, PcOutcome::Advance))
        } else {
            self.finish_jump(next_pc);
            Ok((extra, PcOutcome::Jumped))
        }
    }

    fn finish_jump(&mut self, next_pc: u32) {
        self.cpu.pcc = self.cpu.pcc.with_address(next_pc);
    }

    fn link(&mut self, rd: Reg, ret: u32) -> Result<(), TrapCause> {
        if rd == Reg::ZERO {
            return Ok(());
        }
        if !self.cfg.cheri_enabled {
            // Plain RV32E: the link register holds an address.
            self.cpu.write_int(rd, ret);
            return Ok(());
        }
        let sentry = OType::return_sentry(self.cpu.interrupts_enabled);
        let link = self
            .cpu
            .pcc
            .with_address(ret)
            .seal_as_sentry(sentry)
            .map_err(|f| cheri(PCC_REG_INDEX, f))?;
        self.cpu.write(rd, link);
        Ok(())
    }

    fn wait_for_interrupt(&mut self) {
        // `wfi` retires immediately if an interrupt is already pending.
        loop {
            if self.cycles >= self.mtimecmp || self.irq_lines_pending() {
                return;
            }
            if self.cfg.hw_revoker && self.revoker.in_progress() {
                // Idle cycles all go to the revoker, batched up to the
                // timer horizon: one cycle per engine slot, plus one for
                // the completion transition (which consumes no slot but
                // took a wfi cycle in the stepwise loop).
                let budget = self.mtimecmp.saturating_sub(self.cycles);
                let used = self.revoker.step_n(&mut self.sram, &self.bitmap, budget);
                let ticks = if self.revoker.in_progress() {
                    used
                } else {
                    used + 1
                };
                self.cycles += ticks;
                self.stats.idle_cycles += ticks;
                if self.tracer.is_some() && !self.revoker.in_progress() {
                    self.emit_revoker_finish();
                }
                continue;
            }
            if self.mtimecmp == u64::MAX {
                // Nothing can ever wake us.
                self.halted = Some(ExitReason::Idle);
                return;
            }
            let skip = self.mtimecmp - self.cycles;
            self.cycles += skip;
            self.stats.idle_cycles += skip;
        }
    }
}

/// How [`Machine::exec`] left the PC. `Advance` means the instruction fell
/// through and the *caller* must move the PCC to `pc + 4` — deferring that
/// write is what lets the block loop touch the PCC once per block instead
/// of once per instruction. `Jumped` means `exec` already installed the
/// target PCC; `Stay` means the PCC must stay on the instruction (`halt`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PcOutcome {
    Advance,
    Jumped,
    Stay,
}

/// How `Machine::exec_chain` left the run loop: `Stop` ends the run
/// (budget, halt, interrupt boundary), `Continue` dispatches the next
/// block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockExit {
    Stop,
    Continue,
}

/// The interrupt-posture effect of jumping to `target` via `cjalr`,
/// mirroring the sentry decoding in `exec`'s `Jalr` arm: `Some(enable)`
/// switches the posture, `None` leaves it alone (unsealed targets and
/// inherit sentries). Only consulted for targets whose jump succeeded —
/// the sentry inline cache never caches faulting jumps.
fn sentry_posture_effect(target: &Capability) -> Option<bool> {
    if !target.is_sealed() {
        return None;
    }
    match target.otype().sentry_kind() {
        Some(SentryKind::Forward(InterruptPosture::Enabled))
        | Some(SentryKind::Return(InterruptPosture::Enabled)) => Some(true),
        Some(SentryKind::Forward(InterruptPosture::Disabled)) | Some(SentryKind::Return(_)) => {
            Some(false)
        }
        Some(SentryKind::Forward(InterruptPosture::Inherit)) | None => None,
    }
}

fn cheri(reg: impl Into<RegIndex>, fault: cheriot_cap::CapFault) -> TrapCause {
    TrapCause::Cheri {
        fault,
        reg: reg.into().0,
    }
}

/// Internal helper so `cheri()` accepts both `Reg` and the PCC pseudo-index
/// 16.
pub struct RegIndex(pub u8);

impl From<Reg> for RegIndex {
    fn from(r: Reg) -> RegIndex {
        RegIndex(r.0)
    }
}

impl From<i32> for RegIndex {
    fn from(v: i32) -> RegIndex {
        RegIndex(v as u8)
    }
}

impl From<u8> for RegIndex {
    fn from(v: u8) -> RegIndex {
        RegIndex(v)
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

fn muldiv(op: MulOp, a: u32, b: u32) -> u32 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
        MulOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        MulOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        MulOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        MulOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn branch_taken(cond: BranchCond, a: u32, b: u32) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i32) < (b as i32),
        BranchCond::Ge => (a as i32) >= (b as i32),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

fn sign_extend(v: u32, bytes: u32) -> u32 {
    match bytes {
        1 => v as u8 as i8 as i32 as u32,
        2 => v as u16 as i16 as i32 as u32,
        _ => v,
    }
}
