//! The memory-mapped device bus: pluggable [`MmioDevice`]s dispatched by
//! 4 KiB base window, plus the interrupt controller that funnels their
//! IRQ lines into the CPU as [`crate::trap::TrapCause::ExternalInterrupt`].
//!
//! The legacy SoC windows (revocation bitmap, machine timer, revoker,
//! GPIO) stay hardwired in [`crate::Machine`]'s MMIO match — they are on
//! hot paths and architecturally entangled with the core (the bitmap
//! backs the load filter, the timer *is* the cycle counter). Everything
//! else dispatches here: a device registers a base window and an optional
//! IRQ line, and the machine routes any word or sub-word access inside
//! that window to it.
//!
//! # Determinism contract
//!
//! Device state mutates **only** inside a device's `read`/`write` (or
//! host-side calls between run slices) — never as a function of wall
//! time. MMIO accesses always take the general (non-fast-path) execution
//! route in every dispatch mode, with the cycle counter synced before
//! dispatch, so all three dispatch loops (stepwise, cached, chained)
//! observe byte-identical device behaviour. A device that wants
//! time-driven behaviour models it *lazily*: derive state from the
//! `now` cycle stamp at access time (see `tick`), never by scheduling
//! work between instructions.
//!
//! # IRQ latching
//!
//! After every bus access the machine re-samples each device's
//! [`MmioDevice::irq_pending`] level and latches newly-risen lines into
//! the controller's pending register. Because levels only move inside
//! bus accesses, latching there is exhaustive — and keeps the chained
//! dispatch loop's register-resident IRQ flag exact.

use crate::machine::Machine;
use std::any::Any;

/// Reserved device id for the interrupt controller itself in trace
/// events and metrics attribution.
pub const INTC_DEV_ID: u32 = 0xffff;

/// An MMIO access no device accepts (unmapped window, bad offset or
/// size). The machine turns it into a bus-error trap at the faulting
/// address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusError;

/// A memory-mapped peripheral. One instance owns one 4 KiB MMIO window.
///
/// `read`/`write` receive the owning [`Machine`] so DMA-capable devices
/// can move memory through [`Machine::dma_read`] / [`Machine::dma_write`]
/// (which preserve the memory-safety invariants: tag clearing, dirty-page
/// tracking, predecoded-block invalidation). While a device method runs,
/// the machine's bus is detached — devices must not recurse into MMIO.
pub trait MmioDevice: Send {
    /// Stable kebab-case device-kind name ("uart", "dma", ...).
    fn kind(&self) -> &'static str;

    /// Handles a read of `size` bytes at `off` within the window.
    /// `Err(BusError)` becomes a bus error trap.
    fn read(&mut self, m: &mut Machine, off: u32, size: u32) -> Result<u32, BusError>;

    /// Handles a write of `size` bytes at `off` within the window.
    /// `Err(BusError)` becomes a bus error trap.
    fn write(&mut self, m: &mut Machine, off: u32, size: u32, value: u32) -> Result<(), BusError>;

    /// Lazy catch-up hook: called with the current cycle count before
    /// each access so time-modelled devices derive their state from it.
    fn tick(&mut self, _now: u64) {}

    /// Current IRQ level. Sampled after every bus access; a rising edge
    /// latches the device's line into the interrupt controller.
    fn irq_pending(&self) -> bool {
        false
    }

    /// Guest-visible DMA descriptor anchor (ring base) in SRAM, if the
    /// device currently has one — the fault injector aims descriptor
    /// corruption here.
    fn dma_desc_addr(&self) -> Option<u32> {
        None
    }

    /// Deep-copies the device (snapshot/fork support: device state
    /// round-trips through [`crate::Snapshot`] by cloning).
    fn clone_box(&self) -> Box<dyn MmioDevice>;

    /// Downcast hook for host-side access (tests, fault hooks, RX
    /// injection).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The external-interrupt controller: 32 level-latched lines behind a
/// mask, exposed to the guest through three registers in its own MMIO
/// window (when mapped):
///
/// | offset | register | semantics |
/// |--------|----------|-----------|
/// | `+0x0` | PENDING  | read: latched lines; write: W1C ack |
/// | `+0x4` | MASK     | read/write: enabled lines |
/// | `+0x8` | CLAIM    | read: claims (clears + returns) the lowest masked pending line, `0xffff_ffff` if none |
///
/// The CPU sees `(pending & mask) != 0` as the external-interrupt level.
/// Reset mask is 0, so devices raise no interrupts until the guest opts
/// in — which keeps device-oblivious guests byte-identical with or
/// without peripherals attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IrqController {
    /// Latched (level-captured) lines, W1C from the guest.
    pub pending: u32,
    /// Enabled lines.
    pub mask: u32,
}

impl IrqController {
    fn read(&mut self, off: u32) -> u32 {
        match off & !3 {
            0x0 => self.pending,
            0x4 => self.mask,
            0x8 => {
                let claimable = self.pending & self.mask;
                if claimable == 0 {
                    u32::MAX
                } else {
                    let line = claimable.trailing_zeros();
                    self.pending &= !(1 << line);
                    line
                }
            }
            _ => 0,
        }
    }

    fn write(&mut self, off: u32, value: u32) {
        match off & !3 {
            0x0 => self.pending &= !value,
            0x4 => self.mask = value,
            _ => {}
        }
    }
}

struct Slot {
    base: u32,
    line: Option<u32>,
    dev: Box<dyn MmioDevice>,
}

/// The device bus: a small table of base-window → device slots plus the
/// [`IrqController`]. Owned by [`Machine`]; cloned wholesale into
/// snapshots so device state round-trips through restore.
#[derive(Default)]
pub struct DeviceBus {
    slots: Vec<Slot>,
    intc_base: Option<u32>,
    /// Interrupt-controller state (pending/mask).
    pub intc: IrqController,
}

impl Clone for DeviceBus {
    fn clone(&self) -> DeviceBus {
        DeviceBus {
            slots: self
                .slots
                .iter()
                .map(|s| Slot {
                    base: s.base,
                    line: s.line,
                    dev: s.dev.clone_box(),
                })
                .collect(),
            intc_base: self.intc_base,
            intc: self.intc,
        }
    }
}

impl std::fmt::Debug for DeviceBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("DeviceBus");
        for s in &self.slots {
            d.field(s.dev.kind(), &format_args!("{:#010x}", s.base));
        }
        d.field("intc", &self.intc).finish()
    }
}

impl DeviceBus {
    /// The default SoC bus: a [`Uart`] on the legacy console window (so
    /// console bytes keep landing in `machine.console`) and the
    /// interrupt controller at [`crate::layout::INTC_BASE`].
    pub fn with_defaults() -> DeviceBus {
        let mut bus = DeviceBus {
            intc_base: Some(crate::machine::layout::INTC_BASE),
            ..DeviceBus::default()
        };
        bus.attach(
            crate::machine::layout::CONSOLE_BASE,
            Some(0),
            Box::new(Uart::new()),
        )
        .expect("default uart window is free");
        bus
    }

    /// Attaches `dev` at `base` (must be `MMIO_SIZE`-aligned and not
    /// collide with a hardwired window, the interrupt controller, or
    /// another device). Returns the device id used in trace events.
    ///
    /// # Errors
    ///
    /// A human-readable description of the conflict.
    pub fn attach(
        &mut self,
        base: u32,
        line: Option<u32>,
        dev: Box<dyn MmioDevice>,
    ) -> Result<u32, String> {
        use crate::machine::layout as l;
        if !base.is_multiple_of(l::MMIO_SIZE) {
            return Err(format!(
                "device `{}` base {base:#010x} is not {:#x}-aligned",
                dev.kind(),
                l::MMIO_SIZE
            ));
        }
        let hardwired = [
            l::REV_BITMAP_BASE,
            l::TIMER_BASE,
            l::REVOKER_BASE,
            l::GPIO_BASE,
        ];
        if hardwired.contains(&base) {
            return Err(format!(
                "device `{}` base {base:#010x} collides with a hardwired SoC window",
                dev.kind()
            ));
        }
        if self.intc_base == Some(base) {
            return Err(format!(
                "device `{}` base {base:#010x} collides with the interrupt controller",
                dev.kind()
            ));
        }
        if let Some(s) = self.slots.iter().find(|s| s.base == base) {
            return Err(format!(
                "device `{}` base {base:#010x} collides with `{}`",
                dev.kind(),
                s.dev.kind()
            ));
        }
        if let Some(n) = line {
            if n >= 32 {
                return Err(format!(
                    "device `{}` irq line {n} out of range (0..32)",
                    dev.kind()
                ));
            }
        }
        self.slots.push(Slot { base, line, dev });
        Ok(self.slots.len() as u32 - 1)
    }

    /// Moves the interrupt-controller window (or unmaps it with `None`).
    ///
    /// # Errors
    ///
    /// When the window collides with an attached device.
    pub fn set_intc_base(&mut self, base: Option<u32>) -> Result<(), String> {
        if let Some(b) = base {
            if self.slots.iter().any(|s| s.base == b) {
                return Err(format!(
                    "interrupt controller base {b:#010x} collides with a device"
                ));
            }
        }
        self.intc_base = base;
        Ok(())
    }

    /// Is any MMIO window (device or interrupt controller) mapped at `base`?
    pub fn maps(&self, base: u32) -> bool {
        self.intc_base == Some(base) || self.slots.iter().any(|s| s.base == base)
    }

    /// `(device id, kind)` of every attached device, plus the interrupt
    /// controller when mapped — for metrics-name registration.
    pub fn device_names(&self) -> Vec<(u32, &'static str)> {
        let mut v: Vec<(u32, &'static str)> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.dev.kind()))
            .collect();
        if self.intc_base.is_some() {
            v.push((INTC_DEV_ID, "intc"));
        }
        v
    }

    /// Dispatches a read. `Ok((device id, value))`, or `Err(BusError)` when no
    /// window is mapped at the address or the device rejected the access.
    pub(crate) fn read(
        &mut self,
        m: &mut Machine,
        addr: u32,
        size: u32,
    ) -> Result<(u32, u32), BusError> {
        let base = addr & !(crate::machine::layout::MMIO_SIZE - 1);
        let off = addr & (crate::machine::layout::MMIO_SIZE - 1);
        if self.intc_base == Some(base) {
            return Ok((INTC_DEV_ID, self.intc.read(off)));
        }
        let (i, slot) = self
            .slots
            .iter_mut()
            .enumerate()
            .find(|(_, s)| s.base == base)
            .ok_or(BusError)?;
        m.active_dev = i as u32;
        slot.dev.tick(m.cycles);
        let value = slot.dev.read(m, off, size)?;
        Ok((i as u32, value))
    }

    /// Dispatches a write. `Ok(device id)`, or `Err(BusError)` when no window
    /// is mapped or the device rejected the access.
    pub(crate) fn write(
        &mut self,
        m: &mut Machine,
        addr: u32,
        size: u32,
        value: u32,
    ) -> Result<u32, BusError> {
        let base = addr & !(crate::machine::layout::MMIO_SIZE - 1);
        let off = addr & (crate::machine::layout::MMIO_SIZE - 1);
        if self.intc_base == Some(base) {
            self.intc.write(off, value);
            return Ok(INTC_DEV_ID);
        }
        let (i, slot) = self
            .slots
            .iter_mut()
            .enumerate()
            .find(|(_, s)| s.base == base)
            .ok_or(BusError)?;
        m.active_dev = i as u32;
        slot.dev.tick(m.cycles);
        slot.dev.write(m, off, size, value)?;
        Ok(i as u32)
    }

    /// Re-samples every device's IRQ level and latches rising edges into
    /// the controller. Returns the newly-latched lines (for trace
    /// attribution).
    pub(crate) fn poll_irqs(&mut self) -> u32 {
        let mut level = 0u32;
        for s in &self.slots {
            if let (Some(line), true) = (s.line, s.dev.irq_pending()) {
                level |= 1 << line;
            }
        }
        let new = level & !self.intc.pending;
        self.intc.pending |= level;
        new
    }

    /// The external-interrupt level the CPU sees.
    #[inline]
    pub fn irq_asserted(&self) -> bool {
        self.intc.pending & self.intc.mask != 0
    }

    /// Device id owning `line`, for trace attribution ([`INTC_DEV_ID`]
    /// when no device claims it — e.g. a spurious injected IRQ).
    pub fn line_owner(&self, line: u32) -> u32 {
        self.slots
            .iter()
            .position(|s| s.line == Some(line))
            .map_or(INTC_DEV_ID, |i| i as u32)
    }

    /// First DMA descriptor anchor reported by any device (fault-injection
    /// target).
    pub fn dma_desc_addr(&self) -> Option<u32> {
        self.slots.iter().find_map(|s| s.dev.dma_desc_addr())
    }

    /// Downcasts the first attached device of concrete type `T`.
    pub fn device_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.slots
            .iter_mut()
            .find_map(|s| s.dev.as_any_mut().downcast_mut::<T>())
    }

    /// Number of attached devices (the interrupt controller not counted).
    pub fn device_count(&self) -> usize {
        self.slots.len()
    }
}

/// The UART that replaces the magic console vector. Register layout
/// (word offsets; sub-word access allowed on TX):
///
/// | offset | register | semantics |
/// |--------|----------|-----------|
/// | `+0x0` | TXDATA / RXDATA | write: emit low byte to `machine.console`; read: pop one RX byte (0 when empty) |
/// | `+0x4` | STATUS   | read-only: bit0 TX-ready (always 1), bit1 RX-available |
/// | `+0x8` | CTRL     | bit0: RX interrupt enable |
///
/// TX keeps the legacy console contract bit-for-bit: a store of any size
/// whose offset rounds to `+0` pushes `value as u8` into
/// [`Machine::console`] — the same observable byte stream the hardcoded
/// console produced, now through one code path. RX bytes are injected
/// host-side ([`Uart::inject_rx`] / [`Machine::uart_inject_rx`]); with
/// CTRL bit0 set, a non-empty RX FIFO raises the UART's IRQ line.
#[derive(Clone, Debug, Default)]
pub struct Uart {
    rx: std::collections::VecDeque<u8>,
    rx_irq_en: bool,
}

impl Uart {
    /// A UART with an empty RX FIFO and RX interrupts disabled.
    pub fn new() -> Uart {
        Uart::default()
    }

    /// Queues bytes for the guest to read from RXDATA.
    pub fn inject_rx(&mut self, bytes: &[u8]) {
        self.rx.extend(bytes.iter().copied());
    }

    /// Bytes currently waiting in the RX FIFO.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }

    /// Mutable view of the RX FIFO (fault injection flips bits in
    /// flight here).
    pub fn rx_fifo_mut(&mut self) -> &mut std::collections::VecDeque<u8> {
        &mut self.rx
    }
}

impl MmioDevice for Uart {
    fn kind(&self) -> &'static str {
        "uart"
    }

    fn read(&mut self, _m: &mut Machine, off: u32, _size: u32) -> Result<u32, BusError> {
        Ok(match off & !3 {
            0x0 => u32::from(self.rx.pop_front().unwrap_or(0)),
            0x4 => 1 | (u32::from(!self.rx.is_empty()) << 1),
            0x8 => u32::from(self.rx_irq_en),
            _ => 0,
        })
    }

    fn write(&mut self, m: &mut Machine, off: u32, _size: u32, value: u32) -> Result<(), BusError> {
        match off & !3 {
            0x0 => m.console.push(value as u8),
            0x8 => self.rx_irq_en = value & 1 != 0,
            _ => {}
        }
        Ok(())
    }

    fn irq_pending(&self) -> bool {
        self.rx_irq_en && !self.rx.is_empty()
    }

    fn clone_box(&self) -> Box<dyn MmioDevice> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
