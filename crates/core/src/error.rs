//! Structured, panic-free simulator errors.
//!
//! The modelled hardware traps on bad guest behaviour; the *simulator*
//! must never fall over on it. Conditions that previously panicked the
//! host process (wedged guests, code-region overflow, resuming a machine
//! that is not parked on an `ecall`) surface as [`SimError`] values that
//! carry enough machine state for a post-mortem dump.

use crate::machine::{ExitReason, Machine};
use crate::trap::TrapCause;
use std::fmt;

/// A non-architectural simulator failure.
///
/// Architectural misbehaviour (bad bounds, stale capabilities, …) traps
/// inside the simulated machine and never produces a `SimError`; these
/// variants cover the cases where the *simulation itself* cannot
/// continue and must exit gracefully instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The watchdog instruction budget expired before the guest halted.
    Watchdog {
        /// Program counter when the budget ran out.
        pc: u32,
        /// Cycle counter when the budget ran out.
        cycle: u64,
        /// Instructions retired (equals the configured budget).
        instructions: u64,
        /// The most recent trap taken before the watchdog fired, if any —
        /// usually the fastest clue to why the guest wedged.
        last_trap: Option<TrapCause>,
    },
    /// A program load would overflow the fixed code region.
    CodeOverflow {
        /// Instruction words already loaded.
        loaded: usize,
        /// Instruction words in the rejected program.
        requested: usize,
        /// Code-region capacity in instruction words.
        capacity: usize,
    },
    /// `try_resume_from_syscall` was called on a machine that is not
    /// parked on an unvectored `ecall`.
    NotAtSyscall {
        /// The machine's actual halt state (`None` = still running).
        state: Option<ExitReason>,
    },
    /// `patch_code` was asked to overwrite an address outside the loaded
    /// (word-aligned) code region.
    BadCodePatch {
        /// The rejected address.
        addr: u32,
        /// End (exclusive) of the currently loaded code.
        code_end: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Watchdog {
                pc,
                cycle,
                instructions,
                last_trap,
            } => {
                write!(
                    f,
                    "watchdog: {instructions} instructions retired without halting \
                     (pc {pc:#010x}, cycle {cycle}, last trap: "
                )?;
                match last_trap {
                    Some(t) => write!(f, "{t:?})"),
                    None => write!(f, "none)"),
                }
            }
            SimError::CodeOverflow {
                loaded,
                requested,
                capacity,
            } => write!(
                f,
                "code region overflow: {loaded} words loaded + {requested} requested \
                 > {capacity} capacity"
            ),
            SimError::NotAtSyscall { state } => write!(
                f,
                "resume_from_syscall: machine is not stopped at an ecall (state: {state:?})"
            ),
            SimError::BadCodePatch { addr, code_end } => write!(
                f,
                "patch_code: {addr:#010x} is not a word-aligned address of loaded code \
                 (code ends at {code_end:#010x})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Renders a post-mortem register/trap-state dump of `m`, suitable for
/// appending to a [`SimError`] report.
pub fn state_dump(m: &Machine) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "machine state: cycle {}  instructions {}  pc {:#010x}",
        m.cycles,
        m.stats.instructions,
        m.cpu.pc()
    );
    let _ = writeln!(
        out,
        "  mcause {:#x}  mtval {:#x}  mepcc {}  last trap: {}",
        m.cpu.mcause,
        m.cpu.mtval,
        m.cpu.mepcc,
        match m.last_trap() {
            Some(t) => format!("{t:?}"),
            None => "none".to_string(),
        }
    );
    let _ = writeln!(out, "  pcc  {}", m.cpu.pcc);
    for i in 0..16u8 {
        let r = crate::insn::Reg(i);
        let _ = writeln!(out, "  {r:?}\t{}", m.cpu.read(r));
    }
    out
}
