//! Temporal-safety hardware: the revocation bitmap, the load filter, and
//! the background pipelined revoker (paper §3.3, Figure 4).
//!
//! Each 8-byte heap granule has a *revocation bit*. `free()` paints the bits
//! for the freed chunk; the **load filter** consults the bit corresponding
//! to the *base* of every capability loaded anywhere in the system and
//! clears the tag if it is set — so no capability to freed memory can ever
//! enter a register. Sweeping revocation (invalidating stale capabilities
//! *in memory*) then reduces to a load-and-store-back loop, implemented
//! either in software (see `cheriot-rtos`) or by the **background revoker**,
//! a small state machine that uses load/store-unit cycles the main pipeline
//! leaves idle.

use crate::mem::{Sram, GRANULE};
use cheriot_cap::Capability;

/// The revocation bitmap: one bit per heap granule.
///
/// Memory-mapped so that (only) the allocator compartment can paint bits;
/// consulted combinationally by the load filter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevocationBitmap {
    heap_base: u32,
    heap_end: u32,
    bits: Vec<u64>,
}

impl RevocationBitmap {
    /// Creates an all-clear bitmap covering `[heap_base, heap_end)`.
    ///
    /// # Panics
    ///
    /// Panics unless both addresses are granule-aligned and ordered.
    pub fn new(heap_base: u32, heap_end: u32) -> RevocationBitmap {
        assert!(heap_base <= heap_end);
        assert_eq!(heap_base % GRANULE, 0);
        assert_eq!(heap_end % GRANULE, 0);
        let granules = (heap_end - heap_base) / GRANULE;
        RevocationBitmap {
            heap_base,
            heap_end,
            bits: vec![0; granules.div_ceil(64) as usize],
        }
    }

    /// Start of the revocable (heap) region.
    pub fn heap_base(&self) -> u32 {
        self.heap_base
    }

    /// End (exclusive) of the revocable region.
    pub fn heap_end(&self) -> u32 {
        self.heap_end
    }

    /// Is `addr` within the revocable region?
    pub fn covers(&self, addr: u32) -> bool {
        addr >= self.heap_base && addr < self.heap_end
    }

    /// Overwrites this bitmap with `src`'s content (snapshot restore).
    /// Allocation-free when both already cover regions of the same size.
    pub fn copy_from(&mut self, src: &RevocationBitmap) {
        self.heap_base = src.heap_base;
        self.heap_end = src.heap_end;
        if self.bits.len() == src.bits.len() {
            self.bits.copy_from_slice(&src.bits);
        } else {
            self.bits.clone_from(&src.bits);
        }
    }

    /// SRAM overhead of the bitmap in bytes (paper: 1/65 ≈ 1.56% of heap).
    pub fn overhead_bytes(&self) -> u32 {
        (self.heap_end - self.heap_base) / GRANULE / 8
    }

    fn index(&self, addr: u32) -> (usize, u32) {
        let g = (addr - self.heap_base) / GRANULE;
        ((g / 64) as usize, g % 64)
    }

    /// Is the granule containing `addr` revoked? Addresses outside the
    /// revocable region are never revoked (code, globals, stacks).
    pub fn is_revoked(&self, addr: u32) -> bool {
        if !self.covers(addr) {
            return false;
        }
        let (w, b) = self.index(addr);
        self.bits[w] >> b & 1 != 0
    }

    /// The word range `[w0..=w1]` with edge masks for the
    /// `len.div_ceil(GRANULE)` granules starting at `addr`'s granule.
    fn word_span(&self, addr: u32, len: u32) -> (usize, usize, u64, u64) {
        let g0 = (addr - self.heap_base) / GRANULE;
        let g1 = g0 + len.div_ceil(GRANULE) - 1;
        let lo = !0u64 << (g0 % 64);
        let hi = !0u64 >> (63 - g1 % 64);
        ((g0 / 64) as usize, (g1 / 64) as usize, lo, hi)
    }

    /// Paints the revocation bits for `[addr, addr+len)` (called by the
    /// allocator on `free`). Whole 64-granule words are painted with one
    /// mask operation each.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the revocable region — the allocator owns
    /// this mapping and never constructs such a range.
    pub fn set_range(&mut self, addr: u32, len: u32) {
        if len == 0 {
            return;
        }
        assert!(self.covers(addr) && self.covers(addr + len - 1));
        let (w0, w1, lo, hi) = self.word_span(addr, len);
        if w0 == w1 {
            self.bits[w0] |= lo & hi;
        } else {
            self.bits[w0] |= lo;
            self.bits[w0 + 1..w1].fill(!0);
            self.bits[w1] |= hi;
        }
    }

    /// Clears the revocation bits for `[addr, addr+len)` (called when a
    /// chunk leaves quarantine after a completed sweep).
    ///
    /// # Panics
    ///
    /// As [`RevocationBitmap::set_range`].
    pub fn clear_range(&mut self, addr: u32, len: u32) {
        if len == 0 {
            return;
        }
        assert!(self.covers(addr) && self.covers(addr + len - 1));
        let (w0, w1, lo, hi) = self.word_span(addr, len);
        if w0 == w1 {
            self.bits[w0] &= !(lo & hi);
        } else {
            self.bits[w0] &= !lo;
            self.bits[w0 + 1..w1].fill(0);
            self.bits[w1] &= !hi;
        }
    }

    /// Reads 32 revocation bits as an MMIO word (`word_index` counts 32-bit
    /// words from the start of the bitmap window).
    pub fn read_word32(&self, word_index: u32) -> u32 {
        let w = (word_index / 2) as usize;
        if w >= self.bits.len() {
            return 0;
        }
        (self.bits[w] >> ((word_index % 2) * 32)) as u32
    }

    /// Writes 32 revocation bits as an MMIO word.
    pub fn write_word32(&mut self, word_index: u32, value: u32) {
        let w = (word_index / 2) as usize;
        if w >= self.bits.len() {
            return;
        }
        let shift = (word_index % 2) * 32;
        self.bits[w] = (self.bits[w] & !(0xffff_ffffu64 << shift)) | (u64::from(value) << shift);
    }

    /// Number of currently painted granules.
    pub fn painted_granules(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// The load filter (paper §3.3.2): given a just-loaded capability word's
    /// decoded base and tag, should the tag be stripped?
    ///
    /// This relies on spatial safety: the allocator bounded the returned
    /// pointer to the object, so every usable derived reference has its
    /// base inside the object.
    pub fn filter_strips(&self, tag: bool, base: u32) -> bool {
        tag && self.is_revoked(base)
    }
}

/// Configuration for the background revoker's microarchitecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RevokerConfig {
    /// Two-stage pipelined engine (paper: fills the load-filter delay slot
    /// with a second in-flight word, doubling throughput). When false, a
    /// naive one-word-at-a-time engine is modelled (ablation).
    pub pipelined: bool,
    /// Raise an interrupt on sweep completion. The production Ibex core
    /// does; the Flute prototype requires software polling (paper §7.2.2
    /// attributes Flute's large-allocation slowdown to this).
    pub interrupt_on_completion: bool,
    /// Skip the second half-word load when the first half's
    /// microarchitectural tag bit is already clear (paper lists this as an
    /// implemented-on-neither optimization; modelled for ablation).
    pub skip_untagged_second_half: bool,
}

impl Default for RevokerConfig {
    fn default() -> RevokerConfig {
        RevokerConfig {
            pipelined: true,
            interrupt_on_completion: true,
            skip_untagged_second_half: false,
        }
    }
}

/// MMIO register offsets of the background revoker device.
pub mod revoker_reg {
    /// Sweep start address (RW).
    pub const START: u32 = 0x0;
    /// Sweep end address, exclusive (RW).
    pub const END: u32 = 0x4;
    /// Epoch counter (RO): odd while a sweep is in progress.
    pub const EPOCH: u32 = 0x8;
    /// Write-only: any write starts a sweep of `[start, end)`; no effect if
    /// one is already underway.
    pub const KICK: u32 = 0xc;
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    addr: u32,
    word: u64,
    tag: bool,
    /// Set by the store snoop: the main pipeline wrote this address while
    /// the word was in flight, so it must be reloaded, not written back.
    stale: bool,
}

/// The background pipelined revoker (paper §3.3.3).
///
/// A state machine that advances through `[start, end)` loading each
/// capability-sized word, consulting the load filter, and writing the word
/// back with its tag cleared if it pointed to freed memory. It only consumes
/// memory cycles the main pipeline leaves idle. Stores from the main
/// pipeline are snooped against the in-flight words to close the §3.3.3
/// race.
#[derive(Clone, Debug)]
pub struct BackgroundRevoker {
    config: RevokerConfig,
    start: u32,
    end: u32,
    epoch: u32,
    cursor: u32,
    /// The in-flight word awaiting its revocation-bit check (the load
    /// filter's one-cycle delay). In the pipelined engine its resolution
    /// overlaps the next word's load within one LSU slot.
    inflight: Option<InFlight>,
    irq_pending: bool,
    /// Total idle slots consumed (statistics).
    pub slots_used: u64,
    /// Total words invalidated (statistics).
    pub words_invalidated: u64,
}

impl BackgroundRevoker {
    /// Creates an idle revoker.
    pub fn new(config: RevokerConfig) -> BackgroundRevoker {
        BackgroundRevoker {
            config,
            start: 0,
            end: 0,
            epoch: 0,
            cursor: 0,
            inflight: None,
            irq_pending: false,
            slots_used: 0,
            words_invalidated: 0,
        }
    }

    /// The published epoch counter. Odd means a sweep is in progress; two
    /// increments bracket each sweep (paper §3.3.2).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Is a sweep currently underway?
    pub fn in_progress(&self) -> bool {
        self.epoch % 2 == 1
    }

    /// Reads an MMIO register.
    pub fn mmio_read(&self, offset: u32) -> u32 {
        match offset {
            revoker_reg::START => self.start,
            revoker_reg::END => self.end,
            revoker_reg::EPOCH => self.epoch,
            _ => 0,
        }
    }

    /// Writes an MMIO register. A write to `KICK` starts a sweep.
    pub fn mmio_write(&mut self, offset: u32, value: u32) {
        match offset {
            revoker_reg::START => self.start = value & !(GRANULE - 1),
            revoker_reg::END => self.end = value & !(GRANULE - 1),
            revoker_reg::KICK => self.kick(),
            _ => {}
        }
    }

    /// Starts a sweep of `[start, end)`; no effect if one is underway.
    pub fn kick(&mut self) {
        if self.in_progress() || self.start >= self.end {
            return;
        }
        self.epoch = self.epoch.wrapping_add(1);
        self.cursor = self.start;
        self.inflight = None;
    }

    /// Takes (and clears) a pending completion interrupt.
    pub fn take_irq(&mut self) -> bool {
        std::mem::take(&mut self.irq_pending)
    }

    /// Is a completion interrupt pending (without consuming it)?
    pub fn irq_pending(&self) -> bool {
        self.irq_pending
    }

    /// Snoops a store from the main pipeline: if it hits an in-flight word,
    /// that word must be reloaded rather than written back (the §3.3.3
    /// race). Stores of any width within the granule count.
    pub fn snoop_store(&mut self, addr: u32) {
        let granule = addr & !(GRANULE - 1);
        if let Some(f) = &mut self.inflight {
            if f.addr == granule {
                f.stale = true;
            }
        }
    }

    /// Advances the engine by one idle load/store-unit slot.
    ///
    /// Returns `true` if the slot was used (for statistics/power modelling).
    /// `sram` is the memory being swept; `bitmap` is consulted through the
    /// same load filter as CPU capability loads.
    pub fn step(&mut self, sram: &mut Sram, bitmap: &RevocationBitmap) -> bool {
        if !self.in_progress() {
            return false;
        }
        // Resolve the in-flight word. The revocation-bit lookup uses its own
        // SRAM port, so in the pipelined engine it overlaps the next load;
        // only a *writeback* (tag needs clearing) or a snoop-forced reload
        // consumes the load/store slot.
        let mut lsu_busy = false;
        if let Some(f) = self.inflight.take() {
            if f.stale {
                // The §3.3.3 race: the main pipeline stored to this address
                // while it was in flight — reload instead of writing back.
                self.cursor = self.cursor.min(f.addr);
                lsu_busy = true;
            } else {
                // Only a tagged word can be stripped, and only tagged words
                // need their base decoded; untagged words skip the expansion
                // (filter_strips' tag conjunct would discard it anyway).
                let strips =
                    f.tag && bitmap.filter_strips(true, Capability::from_word(f.word, true).base());
                if strips {
                    // A single write suffices to clear the tag (the data
                    // word is preserved; only the tag matters).
                    let _ = sram.write_cap_word(f.addr, f.word, false);
                    self.words_invalidated += 1;
                    lsu_busy = true;
                } else if !self.config.pipelined {
                    // The naive engine serializes check and load: the check
                    // occupies this slot even when nothing is written back.
                    lsu_busy = true;
                }
            }
        }
        if !lsu_busy {
            if self.cursor >= self.end {
                if self.inflight.is_none() {
                    self.finish();
                }
                return false;
            }
            let addr = self.cursor;
            self.cursor += GRANULE;
            if let Ok((word, tag)) = sram.read_cap_word(addr) {
                if tag || !self.config.skip_untagged_second_half {
                    self.inflight = Some(InFlight {
                        addr,
                        word,
                        tag,
                        stale: false,
                    });
                }
                // With the skip optimization an untagged first half lets the
                // engine drop the word immediately: no check stage at all.
            }
        }
        self.slots_used += 1;
        true
    }

    /// Advances the engine by up to `slots` idle load/store-unit slots,
    /// returning how many were consumed. Cycle-for-cycle identical to
    /// calling [`BackgroundRevoker::step`] in a loop, but a run of
    /// untagged granules is skipped in bulk using the SRAM's packed tag
    /// words ([`Sram::untagged_run`]): in the pipelined engine each
    /// untagged word costs exactly one slot (its load overlaps the
    /// previous word's vacuous check), so the batch charges `run` slots
    /// and leaves the run's last word in flight — the same boundary state
    /// the stepwise engine reaches, preserving store-snoop semantics.
    pub fn step_n(&mut self, sram: &mut Sram, bitmap: &RevocationBitmap, slots: u64) -> u64 {
        let mut used = 0u64;
        while used < slots && self.in_progress() {
            if self.config.pipelined
                && !self.config.skip_untagged_second_half
                && self.inflight.is_none()
                && self.cursor < self.end
            {
                let max_g = ((self.end - self.cursor) / GRANULE)
                    .min((slots - used).min(u64::from(u32::MAX)) as u32);
                let run = sram.untagged_run(self.cursor, max_g);
                if run > 0 {
                    let last = self.cursor + (run - 1) * GRANULE;
                    if let Ok((word, tag)) = sram.read_cap_word(last) {
                        debug_assert!(!tag);
                        self.inflight = Some(InFlight {
                            addr: last,
                            word,
                            tag,
                            stale: false,
                        });
                        self.cursor = last + GRANULE;
                        self.slots_used += u64::from(run);
                        used += u64::from(run);
                        continue;
                    }
                }
            }
            if !self.step(sram, bitmap) {
                break;
            }
            used += 1;
        }
        used
    }

    fn finish(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.config.interrupt_on_completion {
            self.irq_pending = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheriot_cap::Capability;

    const HEAP: u32 = 0x2000_0000;

    fn setup() -> (Sram, RevocationBitmap) {
        (
            Sram::new(HEAP, 0x1000),
            RevocationBitmap::new(HEAP, HEAP + 0x1000),
        )
    }

    fn obj(base: u32, len: u64) -> Capability {
        Capability::root_mem_rw()
            .with_address(base)
            .set_bounds(len)
            .unwrap()
    }

    #[test]
    fn bitmap_paint_and_clear() {
        let (_, mut b) = setup();
        b.set_range(HEAP + 64, 32);
        assert!(b.is_revoked(HEAP + 64));
        assert!(b.is_revoked(HEAP + 88));
        assert!(!b.is_revoked(HEAP + 96));
        assert!(!b.is_revoked(HEAP + 56));
        assert_eq!(b.painted_granules(), 4);
        b.clear_range(HEAP + 64, 32);
        assert_eq!(b.painted_granules(), 0);
    }

    #[test]
    fn outside_heap_is_never_revoked() {
        let (_, b) = setup();
        assert!(!b.is_revoked(0x1000_0000));
        assert!(!b.is_revoked(HEAP + 0x1000));
    }

    #[test]
    fn overhead_matches_paper() {
        let b = RevocationBitmap::new(HEAP, HEAP + 0x10000);
        // 1 bit per 8 bytes => 1/64 of heap in bits = heap/64/8 bytes... the
        // paper quotes 1/(8*8) = 1.56% counting bits per byte of heap.
        assert_eq!(b.overhead_bytes(), 0x10000 / 64);
        let pct = f64::from(b.overhead_bytes()) / f64::from(0x10000u32) * 100.0;
        assert!((pct - 1.5625).abs() < 1e-9);
    }

    #[test]
    fn load_filter_strips_only_revoked_tagged() {
        let (_, mut b) = setup();
        b.set_range(HEAP + 128, 64);
        assert!(b.filter_strips(true, HEAP + 128));
        assert!(!b.filter_strips(false, HEAP + 128));
        assert!(!b.filter_strips(true, HEAP));
    }

    fn run_sweep(r: &mut BackgroundRevoker, sram: &mut Sram, b: &RevocationBitmap, max_slots: u32) {
        let mut n = 0;
        while r.in_progress() {
            r.step(sram, b);
            n += 1;
            assert!(n < max_slots, "sweep did not terminate");
        }
    }

    #[test]
    fn sweep_invalidates_stale_caps() {
        let (mut sram, mut b) = setup();
        // A capability to [HEAP+256, +32) stored at HEAP+8.
        let c = obj(HEAP + 256, 32);
        sram.write_cap_word(HEAP + 8, c.to_word(), true).unwrap();
        // Another to a live object.
        let live = obj(HEAP + 512, 32);
        sram.write_cap_word(HEAP + 16, live.to_word(), true)
            .unwrap();
        // Free the first object.
        b.set_range(HEAP + 256, 32);

        let mut r = BackgroundRevoker::new(RevokerConfig::default());
        r.mmio_write(revoker_reg::START, HEAP);
        r.mmio_write(revoker_reg::END, HEAP + 0x1000);
        assert_eq!(r.epoch(), 0);
        r.mmio_write(revoker_reg::KICK, 1);
        assert!(r.in_progress());
        run_sweep(&mut r, &mut sram, &b, 100_000);
        assert_eq!(r.epoch(), 2);

        let (_, t_stale) = sram.read_cap_word(HEAP + 8).unwrap();
        let (_, t_live) = sram.read_cap_word(HEAP + 16).unwrap();
        assert!(!t_stale, "stale capability must be invalidated");
        assert!(t_live, "live capability must survive");
        assert_eq!(r.words_invalidated, 1);
    }

    #[test]
    fn kick_during_sweep_is_ignored() {
        let (mut sram, b) = setup();
        let mut r = BackgroundRevoker::new(RevokerConfig::default());
        r.mmio_write(revoker_reg::START, HEAP);
        r.mmio_write(revoker_reg::END, HEAP + 0x1000);
        r.kick();
        let e = r.epoch();
        r.step(&mut sram, &b);
        r.kick(); // must be a no-op
        assert_eq!(r.epoch(), e);
    }

    #[test]
    fn completion_interrupt() {
        let (mut sram, b) = setup();
        let mut r = BackgroundRevoker::new(RevokerConfig::default());
        r.mmio_write(revoker_reg::START, HEAP);
        r.mmio_write(revoker_reg::END, HEAP + 64);
        r.kick();
        run_sweep(&mut r, &mut sram, &b, 10_000);
        assert!(r.take_irq());
        assert!(!r.take_irq(), "irq is edge, consumed once");
    }

    #[test]
    fn polling_config_raises_no_interrupt() {
        let (mut sram, b) = setup();
        let mut r = BackgroundRevoker::new(RevokerConfig {
            interrupt_on_completion: false,
            ..RevokerConfig::default()
        });
        r.mmio_write(revoker_reg::START, HEAP);
        r.mmio_write(revoker_reg::END, HEAP + 64);
        r.kick();
        run_sweep(&mut r, &mut sram, &b, 10_000);
        assert!(!r.take_irq());
    }

    #[test]
    fn store_snoop_prevents_lost_update() {
        let (mut sram, mut b) = setup();
        let stale = obj(HEAP + 256, 32);
        sram.write_cap_word(HEAP + 8, stale.to_word(), true)
            .unwrap();
        b.set_range(HEAP + 256, 32);

        let mut r = BackgroundRevoker::new(RevokerConfig::default());
        r.mmio_write(revoker_reg::START, HEAP);
        r.mmio_write(revoker_reg::END, HEAP + 16);
        r.kick();
        // Load HEAP+0 then HEAP+8 into flight.
        r.step(&mut sram, &b);
        r.step(&mut sram, &b);
        // Main pipeline overwrites HEAP+8 with fresh data mid-flight.
        let fresh = obj(HEAP + 512, 16);
        sram.write_cap_word(HEAP + 8, fresh.to_word(), true)
            .unwrap();
        r.snoop_store(HEAP + 8);
        run_sweep(&mut r, &mut sram, &b, 10_000);
        let (w, t) = sram.read_cap_word(HEAP + 8).unwrap();
        assert!(t, "fresh capability must not be clobbered by the revoker");
        assert_eq!(w, fresh.to_word());
    }

    #[test]
    fn without_snoop_the_race_loses_updates() {
        // Ablation: demonstrates the §3.3.3 race actually exists in the
        // model if snooping is omitted.
        let (mut sram, mut b) = setup();
        let stale = obj(HEAP + 256, 32);
        sram.write_cap_word(HEAP + 8, stale.to_word(), true)
            .unwrap();
        b.set_range(HEAP + 256, 32);

        let mut r = BackgroundRevoker::new(RevokerConfig::default());
        r.mmio_write(revoker_reg::START, HEAP + 8);
        r.mmio_write(revoker_reg::END, HEAP + 16);
        r.kick();
        r.step(&mut sram, &b); // load the stale word into flight
        let fresh = obj(HEAP + 512, 16);
        sram.write_cap_word(HEAP + 8, fresh.to_word(), true)
            .unwrap();
        // NO snoop_store call here.
        run_sweep(&mut r, &mut sram, &b, 10_000);
        let (_, t) = sram.read_cap_word(HEAP + 8).unwrap();
        assert!(!t, "without snooping the fresh store is clobbered");
    }

    #[test]
    fn step_n_matches_stepwise_engine() {
        // A mix of stale-tagged, live-tagged and untagged granules, swept
        // with both engines in interleaved chunks of varying size: every
        // observable (slots, invalidations, epoch, cursor state via the
        // final memory image) must match the one-slot-at-a-time engine.
        for pipelined in [false, true] {
            for skip in [false, true] {
                let (mut sram, mut b) = setup();
                let stale = obj(HEAP + 0x800, 64);
                let live = obj(HEAP + 0x900, 64);
                for g in 0..512u32 {
                    let a = HEAP + g * 8;
                    match g % 7 {
                        0 => sram.write_cap_word(a, stale.to_word(), true).unwrap(),
                        3 => sram.write_cap_word(a, live.to_word(), true).unwrap(),
                        _ => sram.write_scalar(a, 4, g).unwrap(),
                    }
                }
                b.set_range(HEAP + 0x800, 64);
                let cfg = RevokerConfig {
                    pipelined,
                    skip_untagged_second_half: skip,
                    ..RevokerConfig::default()
                };
                let mut r_step = BackgroundRevoker::new(cfg);
                let mut r_batch = BackgroundRevoker::new(cfg);
                let mut s_step = sram.clone();
                let mut s_batch = sram;
                for r in [&mut r_step, &mut r_batch] {
                    r.mmio_write(revoker_reg::START, HEAP);
                    r.mmio_write(revoker_reg::END, HEAP + 0x1000);
                    r.kick();
                }
                let mut chunk = 1u64;
                let mut guard = 0;
                while r_step.in_progress() || r_batch.in_progress() {
                    r_batch.step_n(&mut s_batch, &b, chunk);
                    for _ in 0..chunk {
                        if !r_step.in_progress() {
                            break;
                        }
                        r_step.step(&mut s_step, &b);
                    }
                    assert_eq!(r_step.slots_used, r_batch.slots_used);
                    assert_eq!(r_step.words_invalidated, r_batch.words_invalidated);
                    assert_eq!(r_step.epoch(), r_batch.epoch());
                    chunk = chunk % 13 + 1;
                    guard += 1;
                    assert!(guard < 100_000, "sweep did not terminate");
                }
                for g in 0..512u32 {
                    let a = HEAP + g * 8;
                    assert_eq!(
                        s_step.read_cap_word(a).unwrap(),
                        s_batch.read_cap_word(a).unwrap(),
                        "memory diverged at granule {g} (pipelined={pipelined}, skip={skip})"
                    );
                }
            }
        }
    }

    #[test]
    fn bitmap_word_masking_matches_per_granule_painting() {
        // set_range/clear_range use u64 mask arithmetic; cross-check
        // against a straightforward per-granule reference over ranges that
        // start, end and span at every 64-granule word boundary.
        let (_, mut b) = setup();
        let cases = [
            (HEAP, 8u32),
            (HEAP, 64 * 8),
            (HEAP + 63 * 8, 2 * 8),
            (HEAP + 8, 200 * 8),
            (HEAP + 64 * 8, 64 * 8),
            (HEAP + 120 * 8, 7 * 8),
            (HEAP, 0x1000),
        ];
        for (addr, len) in cases {
            b.set_range(addr, len);
            let mut expected = std::collections::HashSet::new();
            let mut a = addr;
            while a < addr + len {
                expected.insert((a - HEAP) / 8);
                a += 8;
            }
            for g in 0..512u32 {
                assert_eq!(
                    b.is_revoked(HEAP + g * 8),
                    expected.contains(&g),
                    "granule {g} after set_range({addr:#x}, {len})"
                );
            }
            assert_eq!(b.painted_granules() as usize, expected.len());
            b.clear_range(addr, len);
            assert_eq!(b.painted_granules(), 0);
        }
    }

    #[test]
    fn pipelined_uses_fewer_slots_per_word() {
        let (mut sram, mut b) = setup();
        // Fill memory with stale caps so every word needs a writeback.
        let stale = obj(HEAP + 0x800, 64);
        for i in 0..64 {
            sram.write_cap_word(HEAP + i * 8, stale.to_word(), true)
                .unwrap();
        }
        b.set_range(HEAP + 0x800, 64);

        let mut slots = Vec::new();
        for pipelined in [false, true] {
            let mut s = sram.clone();
            let mut r = BackgroundRevoker::new(RevokerConfig {
                pipelined,
                ..RevokerConfig::default()
            });
            r.mmio_write(revoker_reg::START, HEAP);
            r.mmio_write(revoker_reg::END, HEAP + 64 * 8);
            r.kick();
            run_sweep(&mut r, &mut s, &b, 100_000);
            slots.push(r.slots_used);
        }
        assert!(
            slots[1] <= slots[0],
            "pipelined ({}) must not be slower than naive ({})",
            slots[1],
            slots[0]
        );
    }
}
