//! Cycle-charged memory access for natively-modelled TCB code.
//!
//! The RTOS, compartment switcher and heap allocator in this reproduction
//! run as Rust code rather than guest assembly (see DESIGN.md §3). To keep
//! their *costs* faithful, every memory access and every batch of
//! register-register work they perform is charged through this interface at
//! exactly the rates the [`CoreModel`](crate::pipeline::CoreModel) charges
//! guest instructions — including the load filter's strip-on-load, LG/LM
//! attenuation, revoker store snooping, and the stack high-water mark.

use crate::machine::Machine;
use crate::mem::GRANULE;
use crate::trap::TrapCause;
use cheriot_cap::{Capability, Permissions};

/// A cycle-charging view of a [`Machine`] for native TCB code.
///
/// Create with [`Machine::meter`]. All accessors perform full capability
/// checks and return the [`TrapCause`] a guest instruction would raise.
#[derive(Debug)]
pub struct Meter<'a> {
    m: &'a mut Machine,
}

impl Machine {
    /// A cycle-charging accessor for natively-modelled code.
    pub fn meter(&mut self) -> Meter<'_> {
        Meter { m: self }
    }
}

impl<'a> Meter<'a> {
    /// The underlying machine.
    pub fn machine(&mut self) -> &mut Machine {
        self.m
    }

    /// Charges `n` register-register instructions.
    pub fn charge(&mut self, n: u64) {
        let c = self.m.cfg.core.alu_cycles * n;
        self.m.advance(c, 0);
    }

    /// Charges one taken-branch penalty (loop back-edges in native loops).
    pub fn charge_branch(&mut self) {
        let c = self.m.cfg.core.alu_cycles + self.m.cfg.core.branch_taken_penalty;
        self.m.advance(c, 0);
    }

    fn load_cost(&self, bytes: u32) -> (u64, u64) {
        let beats = self.m.cfg.core.beats(bytes);
        (self.m.cfg.core.load_base_extra + beats, beats)
    }

    fn store_cost(&self, bytes: u32) -> (u64, u64) {
        let beats = self.m.cfg.core.beats(bytes);
        (self.m.cfg.core.store_base_extra + beats, beats)
    }

    /// Loads a scalar through `auth`.
    ///
    /// # Errors
    ///
    /// Capability faults and bus errors, exactly as the `lw`/`lh`/`lb`
    /// instructions.
    pub fn load(&mut self, auth: Capability, addr: u32, bytes: u32) -> Result<u32, TrapCause> {
        auth.check_access(addr, bytes, Permissions::LD)?;
        let (cycles, beats) = self.load_cost(bytes);
        self.m.advance(cycles, beats);
        self.m.stats.loads += 1;
        self.m.bus_read(addr, bytes)
    }

    /// Stores a scalar through `auth`.
    ///
    /// # Errors
    ///
    /// As the `sw`/`sh`/`sb` instructions.
    pub fn store(
        &mut self,
        auth: Capability,
        addr: u32,
        bytes: u32,
        value: u32,
    ) -> Result<(), TrapCause> {
        auth.check_access(addr, bytes, Permissions::SD)?;
        let (cycles, beats) = self.store_cost(bytes);
        self.m.advance(cycles, beats);
        self.m.stats.stores += 1;
        self.m.bus_write(addr, bytes, value)
    }

    /// Loads a capability through `auth` (the `clc` instruction): applies
    /// the load filter and LG/LM attenuation, and charges the filter's
    /// load-to-use penalty (TCB code always consumes what it loads).
    ///
    /// # Errors
    ///
    /// As `clc`.
    pub fn load_cap(&mut self, auth: Capability, addr: u32) -> Result<Capability, TrapCause> {
        auth.check_access(addr, GRANULE, Permissions::LD | Permissions::MC)?;
        let beats = self.m.cfg.core.cap_beats();
        let cycles = self.m.cfg.core.load_base_extra
            + beats
            + self
                .m
                .cfg
                .core
                .load_use_penalty(true, self.m.cfg.load_filter);
        self.m.advance(cycles, beats);
        self.m.stats.cap_loads += 1;
        let c = self.m.bus_read_cap(addr)?;
        Ok(c.attenuated_on_load(auth))
    }

    /// Stores a capability through `auth` (the `csc` instruction),
    /// enforcing the Store-Local rule.
    ///
    /// # Errors
    ///
    /// As `csc`.
    pub fn store_cap(
        &mut self,
        auth: Capability,
        addr: u32,
        c: Capability,
    ) -> Result<(), TrapCause> {
        auth.check_access(addr, GRANULE, Permissions::SD | Permissions::MC)?;
        if c.tag() && !c.is_global() && !auth.perms().contains(Permissions::SL) {
            return Err(TrapCause::Cheri {
                fault: cheriot_cap::CapFault::PermissionViolation {
                    needed: Permissions::SL,
                },
                reg: 0xff,
            });
        }
        let beats = self.m.cfg.core.cap_beats();
        let cycles = self.m.cfg.core.store_base_extra + beats;
        self.m.advance(cycles, beats);
        self.m.stats.cap_stores += 1;
        self.m.bus_write_cap(addr, c)
    }

    /// Zeroes `[addr, addr+len)` through `auth` with a store loop, at the
    /// switcher's zeroing bandwidth (one max-width store per bus beat).
    ///
    /// # Errors
    ///
    /// Capability faults as a store; bus error if the range leaves SRAM.
    pub fn zero(&mut self, auth: Capability, addr: u32, len: u32) -> Result<(), TrapCause> {
        if len == 0 {
            return Ok(());
        }
        auth.check_access(addr, len, Permissions::SD)?;
        let cycles = self.m.cfg.core.zeroing_cycles(len);
        let beats = u64::from(len.div_ceil(self.m.cfg.core.bus_bytes));
        self.m.advance(cycles, beats);
        self.m.sram.zero_range(addr, len)?;
        self.m.revoker.snoop_zero_range(addr, len);
        Ok(())
    }

    /// Charges `words` MMIO word accesses (revocation-bitmap painting).
    pub fn charge_mmio_words(&mut self, words: u64) {
        let per = self.m.cfg.core.store_base_extra + 1;
        // Painting is a read-modify-write plus loop overhead.
        self.m.advance(words * (2 * per + 2), words * 2);
    }
}

/// Extension: snooping a zeroed range (used by [`Meter::zero`]).
impl crate::revocation::BackgroundRevoker {
    /// Marks the in-flight word stale if it lies within `[addr, addr+len)`.
    pub fn snoop_zero_range(&mut self, addr: u32, len: u32) {
        let mut a = addr & !(GRANULE - 1);
        let end = addr.saturating_add(len);
        while a < end {
            self.snoop_store(a);
            a += GRANULE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{layout, MachineConfig};
    use crate::pipeline::CoreModel;

    fn machine(core: CoreModel) -> Machine {
        Machine::new(MachineConfig::new(core))
    }

    fn sram_cap() -> Capability {
        Capability::root_mem_rw()
            .with_address(layout::SRAM_BASE)
            .set_bounds(512 * 1024)
            .unwrap()
    }

    #[test]
    fn load_store_round_trip_charges_cycles() {
        let mut m = machine(CoreModel::ibex());
        let auth = sram_cap();
        let c0 = m.cycles;
        m.meter()
            .store(auth, layout::SRAM_BASE + 16, 4, 0xabcd)
            .unwrap();
        let v = m.meter().load(auth, layout::SRAM_BASE + 16, 4).unwrap();
        assert_eq!(v, 0xabcd);
        assert!(m.cycles > c0);
    }

    #[test]
    fn cap_round_trip_is_pricier_on_ibex() {
        let mut spent = Vec::new();
        for core in [CoreModel::flute(), CoreModel::ibex()] {
            let mut m = machine(core);
            let auth = sram_cap();
            let c0 = m.cycles;
            m.meter()
                .store_cap(auth, layout::SRAM_BASE + 32, auth)
                .unwrap();
            let _ = m.meter().load_cap(auth, layout::SRAM_BASE + 32).unwrap();
            spent.push(m.cycles - c0);
        }
        assert!(spent[1] > spent[0], "ibex {} flute {}", spent[1], spent[0]);
    }

    #[test]
    fn meter_rejects_unauthorized_access() {
        let mut m = machine(CoreModel::ibex());
        let narrow = sram_cap().set_bounds(16).unwrap();
        assert!(m.meter().load(narrow, layout::SRAM_BASE + 16, 4).is_err());
        let ro = sram_cap().and_perms(!Permissions::SD);
        assert!(m.meter().store(ro, layout::SRAM_BASE, 4, 0).is_err());
    }

    #[test]
    fn store_local_rule_enforced() {
        let mut m = machine(CoreModel::ibex());
        let auth_no_sl = sram_cap().and_perms(!Permissions::SL);
        let local = sram_cap().and_perms(!Permissions::GL);
        assert!(m
            .meter()
            .store_cap(auth_no_sl, layout::SRAM_BASE, local)
            .is_err());
        // Global caps store fine without SL.
        assert!(m
            .meter()
            .store_cap(auth_no_sl, layout::SRAM_BASE, sram_cap())
            .is_ok());
        // Local caps store fine *with* SL.
        assert!(m
            .meter()
            .store_cap(sram_cap(), layout::SRAM_BASE, local)
            .is_ok());
    }

    #[test]
    fn zeroing_cost_scales_with_length_and_bus() {
        let mut ibex = machine(CoreModel::ibex());
        let mut flute = machine(CoreModel::flute());
        let auth = sram_cap();
        let (a0, b0) = (ibex.cycles, flute.cycles);
        ibex.meter().zero(auth, layout::SRAM_BASE, 4096).unwrap();
        flute.meter().zero(auth, layout::SRAM_BASE, 4096).unwrap();
        assert!(ibex.cycles - a0 > flute.cycles - b0);
    }

    #[test]
    fn load_filter_strips_in_meter_path() {
        let mut m = machine(CoreModel::ibex());
        let auth = sram_cap();
        let heap_obj = Capability::root_mem_rw()
            .with_address(m.cfg.heap_base() + 64)
            .set_bounds(32)
            .unwrap();
        let slot = layout::SRAM_BASE + 128;
        m.meter().store_cap(auth, slot, heap_obj).unwrap();
        m.bitmap.set_range(m.cfg.heap_base() + 64, 32);
        let loaded = m.meter().load_cap(auth, slot).unwrap();
        assert!(!loaded.tag(), "load filter must strip revoked caps");
        assert_eq!(m.stats.filter_strips, 1);
    }
}
