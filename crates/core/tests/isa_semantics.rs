//! Table-driven semantics tests for the executor: every ALU operation,
//! M-extension edge cases (RISC-V division semantics), load widths and
//! sign extension, branch conditions, CSR operations, and the CGet field
//! readers. These pin the ISA against regressions independently of the
//! higher-level workloads.

use cheriot_cap::Capability;
use cheriot_core::insn::{AluOp, BranchCond, CapField, CsrId, CsrOp, Instr, MemWidth, MulOp, Reg};
use cheriot_core::{layout, CoreModel, ExitReason, Machine, MachineConfig};

fn run_binop(mk: impl Fn(Reg, Reg, Reg) -> Instr, a: u32, b: u32) -> u32 {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let prog = vec![mk(Reg::A0, Reg::A1, Reg::A2), Instr::Halt];
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.cpu.write_int(Reg::A1, a);
    m.cpu.write_int(Reg::A2, b);
    match m.run(100) {
        ExitReason::Halted(v) => v,
        other => panic!("{other:?}"),
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    run_binop(|rd, rs1, rs2| Instr::Op { op, rd, rs1, rs2 }, a, b)
}

fn muldiv(op: MulOp, a: u32, b: u32) -> u32 {
    run_binop(|rd, rs1, rs2| Instr::MulDiv { op, rd, rs1, rs2 }, a, b)
}

#[test]
fn alu_semantics() {
    assert_eq!(alu(AluOp::Add, 0xffff_ffff, 1), 0); // wrap
    assert_eq!(alu(AluOp::Sub, 0, 1), 0xffff_ffff);
    assert_eq!(alu(AluOp::Sll, 1, 33), 2); // shift amount mod 32
    assert_eq!(alu(AluOp::Srl, 0x8000_0000, 31), 1);
    assert_eq!(alu(AluOp::Sra, 0x8000_0000, 31), 0xffff_ffff);
    assert_eq!(alu(AluOp::Slt, 0xffff_ffff, 0), 1); // -1 < 0 signed
    assert_eq!(alu(AluOp::Sltu, 0xffff_ffff, 0), 0); // max > 0 unsigned
    assert_eq!(alu(AluOp::Xor, 0xff00, 0x0ff0), 0xf0f0);
    assert_eq!(alu(AluOp::Or, 0xf0, 0x0f), 0xff);
    assert_eq!(alu(AluOp::And, 0xf0, 0x3c), 0x30);
}

#[test]
fn riscv_division_semantics() {
    // Division by zero: quotient all-ones, remainder = dividend.
    assert_eq!(muldiv(MulOp::Div, 42, 0), u32::MAX);
    assert_eq!(muldiv(MulOp::Divu, 42, 0), u32::MAX);
    assert_eq!(muldiv(MulOp::Rem, 42, 0), 42);
    assert_eq!(muldiv(MulOp::Remu, 42, 0), 42);
    // Signed overflow: MIN / -1 = MIN, MIN % -1 = 0.
    assert_eq!(muldiv(MulOp::Div, 0x8000_0000, u32::MAX), 0x8000_0000);
    assert_eq!(muldiv(MulOp::Rem, 0x8000_0000, u32::MAX), 0);
    // Ordinary signed division truncates toward zero.
    assert_eq!(muldiv(MulOp::Div, (-7i32) as u32, 2) as i32, -3);
    assert_eq!(muldiv(MulOp::Rem, (-7i32) as u32, 2) as i32, -1);
    // High halves.
    assert_eq!(muldiv(MulOp::Mulhu, 0xffff_ffff, 0xffff_ffff), 0xffff_fffe);
    assert_eq!(
        muldiv(MulOp::Mulh, (-1i32) as u32, (-1i32) as u32),
        0 // (-1)*(-1) = 1, high half 0
    );
    assert_eq!(muldiv(MulOp::Mul, 0x10000, 0x10000), 0); // low half wraps
}

#[test]
fn load_sign_extension() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let cap = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE)
        .set_bounds(16)
        .unwrap();
    m.meter()
        .store(cap, layout::SRAM_BASE, 4, 0x8081_8283)
        .unwrap();
    let cases: [(MemWidth, bool, i32, u32); 6] = [
        (MemWidth::B, false, 0, 0x83),
        (MemWidth::B, true, 0, 0xffff_ff83),
        (MemWidth::H, false, 0, 0x8283),
        (MemWidth::H, true, 0, 0xffff_8283),
        (MemWidth::W, false, 0, 0x8081_8283),
        (MemWidth::B, true, 3, 0xffff_ff80),
    ];
    for (width, signed, offset, want) in cases {
        let prog = vec![
            Instr::Load {
                width,
                signed,
                rd: Reg::A0,
                rs1: Reg::A1,
                offset,
            },
            Instr::Halt,
        ];
        let mut m2 = m.clone();
        let e = m2.load_program(&prog);
        m2.set_entry(e);
        m2.cpu.write(Reg::A1, cap);
        assert_eq!(
            m2.run(100),
            ExitReason::Halted(want),
            "{width:?} signed={signed} off={offset}"
        );
    }
}

#[test]
fn branch_conditions() {
    let cases: [(BranchCond, u32, u32, bool); 8] = [
        (BranchCond::Eq, 5, 5, true),
        (BranchCond::Ne, 5, 5, false),
        (BranchCond::Lt, (-1i32) as u32, 0, true),
        (BranchCond::Ltu, (-1i32) as u32, 0, false),
        (BranchCond::Ge, 0, (-1i32) as u32, true),
        (BranchCond::Geu, 0, (-1i32) as u32, false),
        (BranchCond::Lt, 3, 3, false),
        (BranchCond::Geu, 3, 3, true),
    ];
    for (cond, a, b, taken) in cases {
        let prog = vec![
            Instr::Branch {
                cond,
                rs1: Reg::A1,
                rs2: Reg::A2,
                offset: 12,
            },
            // fallthrough: a0 = 1
            Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 1,
            },
            Instr::Halt,
            // taken: a0 = 2
            Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::ZERO,
                imm: 2,
            },
            Instr::Halt,
        ];
        let mut m = Machine::new(MachineConfig::new(CoreModel::flute()));
        let e = m.load_program(&prog);
        m.set_entry(e);
        m.cpu.write_int(Reg::A1, a);
        m.cpu.write_int(Reg::A2, b);
        let want = if taken { 2 } else { 1 };
        assert_eq!(
            m.run(100),
            ExitReason::Halted(want),
            "{cond:?} {a:#x} {b:#x}"
        );
    }
}

#[test]
fn cget_fields() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let cap = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE + 0x40)
        .set_bounds(96)
        .unwrap();
    for (field, want) in [
        (CapField::Base, layout::SRAM_BASE + 0x40),
        (CapField::Len, 96),
        (CapField::Tag, 1),
        (CapField::Addr, layout::SRAM_BASE + 0x40),
        (CapField::Perm, u32::from(cap.perms().bits())),
        (CapField::Type, 0),
    ] {
        let prog = vec![
            Instr::CGet {
                field,
                rd: Reg::A0,
                rs1: Reg::A1,
            },
            Instr::Halt,
        ];
        let mut m2 = m.clone();
        let e = m2.load_program(&prog);
        m2.set_entry(e);
        m2.cpu.write(Reg::A1, cap);
        assert_eq!(m2.run(100), ExitReason::Halted(want), "{field:?}");
    }
    let _ = &mut m;
}

#[test]
fn csr_set_and_clear_bits() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let prog = vec![
        // mshwm = 0xf0
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::T0,
            rs1: Reg::ZERO,
            imm: 0xf0,
        },
        Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::ZERO,
            rs1: Reg::T0,
            csr: CsrId::Mshwm,
        },
        // set bits 0x0f
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::T0,
            rs1: Reg::ZERO,
            imm: 0x0f,
        },
        Instr::Csr {
            op: CsrOp::Rs,
            rd: Reg::ZERO,
            rs1: Reg::T0,
            csr: CsrId::Mshwm,
        },
        // clear bits 0x30, read old into a1 then read final into a0
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::T0,
            rs1: Reg::ZERO,
            imm: 0x30,
        },
        Instr::Csr {
            op: CsrOp::Rc,
            rd: Reg::A1,
            rs1: Reg::T0,
            csr: CsrId::Mshwm,
        },
        Instr::Csr {
            op: CsrOp::Rs,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            csr: CsrId::Mshwm,
        },
        Instr::Halt,
    ];
    let e = m.load_program(&prog);
    m.set_entry(e);
    assert_eq!(m.run(100), ExitReason::Halted(0xcf));
    assert_eq!(m.cpu.read_int(Reg::A1), 0xff);
}

#[test]
fn mcycle_reads_do_not_need_sr() {
    // User counters are readable without the SR permission.
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let prog = vec![
        Instr::Csr {
            op: CsrOp::Rs,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            csr: CsrId::Mcycle,
        },
        Instr::Halt,
    ];
    let e = m.load_program(&prog);
    m.set_entry(e);
    // Strip SR from the PCC.
    m.cpu.pcc = m.cpu.pcc.and_perms(!cheriot_cap::Permissions::SR);
    assert!(matches!(m.run(100), ExitReason::Halted(_)));
}

#[test]
fn wfi_with_no_wake_source_is_idle_exit() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let prog = vec![Instr::Wfi, Instr::Halt];
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.cpu.interrupts_enabled = true;
    assert_eq!(m.run(1000), ExitReason::Idle);
}

#[test]
fn wfi_wakes_on_timer() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let prog = vec![Instr::Wfi, Instr::Halt];
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.mtimecmp = 5_000;
    // With interrupts disabled, wfi still wakes when the event is pending
    // (resume-on-event); execution continues to halt.
    assert_eq!(m.run(100_000), ExitReason::Halted(0));
    assert!(m.cycles >= 5_000);
}

#[test]
fn cap_arithmetic_in_guest_matches_cap_crate() {
    // CIncAddr/CSetBounds executed by the CPU behave exactly like the
    // capability crate's methods.
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let root = Capability::root_mem_rw();
    let prog = vec![
        Instr::CSetAddr {
            rd: Reg::A1,
            rs1: Reg::A1,
            rs2: Reg::A2,
        },
        Instr::CSetBounds {
            rd: Reg::A1,
            rs1: Reg::A1,
            rs2: Reg::A3,
            exact: false,
        },
        Instr::CIncAddrImm {
            rd: Reg::A1,
            rs1: Reg::A1,
            imm: 16,
        },
        Instr::CGet {
            field: CapField::Addr,
            rd: Reg::A0,
            rs1: Reg::A1,
        },
        Instr::Halt,
    ];
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.cpu.write(Reg::A1, root);
    m.cpu.write_int(Reg::A2, layout::SRAM_BASE + 0x80);
    m.cpu.write_int(Reg::A3, 64);
    assert_eq!(m.run(100), ExitReason::Halted(layout::SRAM_BASE + 0x90));
    let expected = root
        .with_address(layout::SRAM_BASE + 0x80)
        .set_bounds(64)
        .unwrap()
        .incremented(16);
    assert_eq!(m.cpu.read(Reg::A1), expected);
}

#[test]
fn unknown_mmio_is_a_bus_error() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let rogue = Capability::root_mem_rw().with_address(0x9000_0000);
    assert!(matches!(
        m.meter().load(rogue, 0x9000_0000, 4),
        Err(cheriot_core::TrapCause::BusError { .. })
    ));
    // Sub-word MMIO accesses are rejected (devices are word-granular).
    let timer = Capability::root_mem_rw().with_address(layout::TIMER_BASE);
    assert!(m.meter().load(timer, layout::TIMER_BASE, 2).is_err());
}

#[test]
fn mtimecmp_write_via_mmio_round_trips() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let timer = Capability::root_mem_rw()
        .with_address(layout::TIMER_BASE)
        .set_bounds(u64::from(layout::MMIO_SIZE))
        .unwrap();
    m.meter()
        .store(timer, layout::TIMER_BASE + 8, 4, 0x1234_5678)
        .unwrap();
    m.meter()
        .store(timer, layout::TIMER_BASE + 12, 4, 0x9abc)
        .unwrap();
    assert_eq!(m.mtimecmp, 0x9abc_1234_5678);
    assert_eq!(
        m.meter().load(timer, layout::TIMER_BASE + 8, 4).unwrap(),
        0x1234_5678
    );
}

#[test]
fn trace_buffer_is_bounded_and_ordered() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    m.enable_trace(4);
    let prog: Vec<Instr> = std::iter::repeat_n(Instr::NOP, 10)
        .chain([Instr::Halt])
        .collect();
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.run(1000);
    let t = m.trace_entries();
    assert_eq!(t.len(), 4, "ring buffer depth respected");
    assert!(t.windows(2).all(|w| w[0].cycles <= w[1].cycles));
    assert_eq!(t.last().unwrap().instr, Instr::Halt);
}

#[test]
fn jal_link_is_a_return_sentry_with_posture() {
    use cheriot_cap::OType;
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let prog = vec![
        Instr::Jal {
            rd: Reg::RA,
            offset: 8,
        },
        Instr::Halt, // skipped
        Instr::Halt,
    ];
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.cpu.interrupts_enabled = true;
    m.step();
    let link = m.cpu.read(Reg::RA);
    assert!(link.is_sealed());
    assert_eq!(link.otype(), OType::RETURN_ENABLE);
    assert_eq!(link.address(), e + 4);
}
