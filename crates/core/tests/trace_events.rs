//! Exact-sequence tests for the tracing subsystem's machine-level event
//! emission: trap entry, interrupt delivery and posture changes (trap /
//! `mret` / sentry jumps), load-filter strips, and the ring-buffer compat
//! layer on top of the structured tracer.

use cheriot_cap::{Capability, OType};
use cheriot_core::insn::{AluOp, Instr, MemWidth, Reg};
use cheriot_core::trace::{EventKind, Tracer};
use cheriot_core::{layout, CoreModel, ExitReason, Machine, MachineConfig, TrapCause};

fn machine() -> Machine {
    Machine::new(MachineConfig::new(CoreModel::ibex()))
}

/// Event kinds recorded by the sink, in order (timeline tracers do not
/// buffer `InstrRetired`, so this is the structural event sequence).
fn kinds(m: &Machine) -> Vec<EventKind> {
    m.tracer()
        .expect("tracer installed")
        .events()
        .iter()
        .map(|e| e.kind)
        .collect()
}

#[test]
fn unvectored_ecall_emits_trap_event_only() {
    // No trap vector installed: the ecall is an unrecoverable fault, but
    // the Trap event must still be emitted (the host heap service relies
    // on seeing syscall traps). Interrupts were never enabled, so no
    // posture event accompanies it.
    let mut m = machine();
    m.set_tracer(Tracer::timeline());
    let prog = vec![Instr::Ecall, Instr::Halt];
    let e = m.load_program(&prog);
    m.set_entry(e);
    let ecall_pc = e;
    assert_eq!(m.run(1_000), ExitReason::Fault(TrapCause::EnvironmentCall));
    assert_eq!(
        kinds(&m),
        vec![EventKind::Trap {
            pc: ecall_pc,
            mcause: 11,
        }]
    );
    let t = m.tracer().unwrap();
    assert_eq!(t.metrics.counter("trap"), 1);
    assert_eq!(t.metrics.counter("interrupt_posture"), 0);
}

/// Spin loop + timer handler (handler just bumps `mtimecmp` far out and
/// `mret`s) with a vectored trap handler and interrupts enabled.
fn vectored_timer_machine() -> Machine {
    let mut m = machine();
    let handler = vec![
        // Push mtimecmp past the horizon so the interrupt fires once.
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A3,
            rs1: Reg::ZERO,
            imm: 2047,
        },
        Instr::Store {
            width: MemWidth::W,
            rs2: Reg::A3,
            rs1: Reg::A2,
            offset: 8,
        },
        Instr::Mret,
    ];
    let h = m.load_program(&handler);
    let spin = vec![
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        },
        Instr::Jal {
            rd: Reg::ZERO,
            offset: -4,
        },
    ];
    let e = m.load_program(&spin);
    m.set_entry(e);
    m.cpu.mtcc = m.boot_pcc(h);
    m.cpu.write(
        Reg::A2,
        Capability::root_mem_rw().with_address(layout::TIMER_BASE),
    );
    m.cpu.interrupts_enabled = true;
    m.mtimecmp = 40;
    m
}

#[test]
fn timer_interrupt_emits_delivery_and_posture_pair() {
    let mut m = vectored_timer_machine();
    m.set_tracer(Tracer::timeline());
    m.run(1_500);
    assert!(
        m.stats.interrupts >= 1,
        "test must deliver a timer interrupt"
    );

    let ks = kinds(&m);
    // First three structural events: delivery, posture drop on trap
    // entry, posture restore on mret — in exactly that order.
    assert!(ks.len() >= 3, "expected at least 3 events, got {ks:?}");
    match ks[0] {
        EventKind::IrqDelivered { mcause, .. } => assert_eq!(mcause, 0x8000_0007),
        other => panic!("first event must be IrqDelivered, got {other:?}"),
    }
    assert_eq!(ks[1], EventKind::InterruptPosture { enabled: false });
    assert_eq!(ks[2], EventKind::InterruptPosture { enabled: true });

    // Posture events come in balanced disable/enable pairs and the
    // metrics registry counted every delivery.
    let postures: Vec<bool> = ks
        .iter()
        .filter_map(|k| match k {
            EventKind::InterruptPosture { enabled } => Some(*enabled),
            _ => None,
        })
        .collect();
    assert_eq!(postures.len() % 2, 0);
    for pair in postures.chunks(2) {
        assert_eq!(pair, [false, true]);
    }
    let t = m.tracer().unwrap();
    assert_eq!(t.metrics.counter("irq_delivered"), m.stats.interrupts);
}

#[test]
fn sentry_jump_emits_posture_change() {
    // Jumping to an interrupt-disabling forward sentry flips the posture;
    // the matching event must carry the new (disabled) state. The inherit
    // sentry must stay silent.
    let mut m = machine();
    let target = vec![Instr::Halt];
    let h = m.load_program(&target);
    let prog = vec![
        Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::A1,
            offset: 0,
        },
        Instr::Halt,
    ];
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.cpu.interrupts_enabled = true;
    let sentry = m.boot_pcc(h).seal_as_sentry(OType::SENTRY_DISABLE).unwrap();
    m.cpu.write(Reg::A1, sentry);
    m.set_tracer(Tracer::timeline());
    assert_eq!(m.run(1_000), ExitReason::Halted(0));
    assert!(!m.cpu.interrupts_enabled);
    assert_eq!(
        kinds(&m),
        vec![EventKind::InterruptPosture { enabled: false }]
    );

    // Same jump through an inherit sentry: no posture change, no event.
    let mut m2 = machine();
    let h2 = m2.load_program(&target);
    let e2 = m2.load_program(&prog);
    m2.set_entry(e2);
    m2.cpu.interrupts_enabled = true;
    let inherit = m2
        .boot_pcc(h2)
        .seal_as_sentry(OType::SENTRY_INHERIT)
        .unwrap();
    m2.cpu.write(Reg::A1, inherit);
    m2.set_tracer(Tracer::timeline());
    assert_eq!(m2.run(1_000), ExitReason::Halted(0));
    assert!(m2.cpu.interrupts_enabled);
    assert_eq!(kinds(&m2), vec![]);
}

#[test]
fn load_filter_strip_emits_event_with_address() {
    // Store a heap capability, revoke its referent, reload: the filter
    // strips the tag and the event names the granule address read.
    let mut m = machine();
    let prog = vec![
        Instr::Csc {
            rs2: Reg::A2,
            rs1: Reg::A1,
            offset: 0,
        },
        Instr::Halt,
    ];
    let e = m.load_program(&prog);
    m.set_entry(e);
    let heap_obj = m.cfg.heap_base() + 0x100;
    let granule = layout::SRAM_BASE + 0x40;
    m.cpu.write(
        Reg::A1,
        Capability::root_mem_rw()
            .with_address(granule)
            .set_bounds(8)
            .unwrap(),
    );
    m.cpu.write(
        Reg::A2,
        Capability::root_mem_rw()
            .with_address(heap_obj)
            .set_bounds(32)
            .unwrap(),
    );
    m.set_tracer(Tracer::timeline());
    assert_eq!(m.run(1_000), ExitReason::Halted(0));
    assert_eq!(kinds(&m), vec![], "no strip before revocation");

    m.bitmap.set_range(heap_obj, 32);
    assert!(!m.bus_read_cap(granule).unwrap().tag());
    assert_eq!(kinds(&m), vec![EventKind::FilterStrip { addr: granule }]);
    assert_eq!(m.tracer().unwrap().metrics.counter("filter_strip"), 1);
}

#[test]
fn instr_ring_compat_keeps_last_n_and_counts_all() {
    // The legacy `enable_trace`/`trace_entries` API now rides on the
    // structured tracer: the ring keeps the newest `depth` retires while
    // `recorded()` still counts every event that passed through.
    let mut m = machine();
    let prog = vec![
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            imm: 7,
        },
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        },
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        },
        Instr::Halt,
    ];
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.enable_trace(2);
    assert_eq!(m.run(1_000), ExitReason::Halted(9));

    let entries = m.trace_entries();
    assert_eq!(entries.len(), 2, "ring depth bounds the window");
    assert_eq!(entries.last().unwrap().instr, Instr::Halt);
    assert!(
        entries.windows(2).all(|w| w[0].cycles <= w[1].cycles),
        "entries stay in retirement order"
    );
    let t = m.tracer().unwrap();
    assert_eq!(t.recorded(), 4, "all retires passed through the sink");
    assert_eq!(t.metrics.counter("instr_retired"), 4);
}

#[test]
fn clone_drops_tracer_but_keeps_machine_state() {
    // Machine::clone is used by tests to fork execution; the trace is one
    // machine's history, so the clone starts untraced.
    let mut m = machine();
    let prog = vec![Instr::Halt];
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.set_tracer(Tracer::timeline());
    let fork = m.clone();
    assert!(fork.tracer().is_none());
    assert!(m.tracer().is_some());
}
