//! Copy-on-write aliasing properties.
//!
//! Forked machines share SRAM pages (and the decoded code image) by
//! handle; every mutation path — scalar stores, DMA, tag writes,
//! `patch_code` — must break the sharing for the writer alone, leaving
//! siblings byte-identical to the capture point. And the whole CoW
//! machinery must be architecturally invisible: `--no-cow` runs produce
//! the same machine state in every dispatch mode.

use cheriot_cap::Capability;
use cheriot_core::insn::{AluOp, BranchCond, Instr, MemWidth, Reg};
use cheriot_core::mem::PAGE_SIZE;
use cheriot_core::{layout, CoreModel, ExitReason, Machine, MachineConfig};
use proptest::prelude::*;

/// A store loop: writes `A4` through `A1` and `A2`, then counts `A3`
/// down to zero so block chaining has a back edge to chain.
fn prog() -> Vec<Instr> {
    vec![
        Instr::Store {
            width: MemWidth::W,
            rs2: Reg::A4,
            rs1: Reg::A1,
            offset: 0,
        },
        Instr::Store {
            width: MemWidth::W,
            rs2: Reg::A4,
            rs1: Reg::A2,
            offset: 8,
        },
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A3,
            rs1: Reg::A3,
            imm: -1,
        },
        Instr::Branch {
            cond: BranchCond::Ne,
            rs1: Reg::A3,
            rs2: Reg::ZERO,
            offset: -12,
        },
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 7,
        },
        Instr::Halt,
    ]
}

fn auth(addr: u32) -> Capability {
    Capability::root_mem_rw()
        .with_address(addr)
        .set_bounds(64)
        .unwrap()
}

fn boot(dispatch: (bool, bool), cow: bool) -> Machine {
    let mut mc = MachineConfig::new(CoreModel::ibex());
    mc.block_cache = dispatch.0;
    mc.block_chain = dispatch.1;
    mc.cow = cow;
    let mut m = Machine::new(mc);
    let e = m.load_program(&prog());
    m.set_entry(e);
    m.cpu.write(Reg::A1, auth(layout::SRAM_BASE + 0x100));
    m.cpu.write(Reg::A2, auth(layout::SRAM_BASE + 0x2000));
    m.cpu.write_int(Reg::A3, 4);
    m.cpu.write_int(Reg::A4, 0xdead_beef);
    m
}

/// Two machines forked from one snapshot, sharing every SRAM page.
fn fork_pair() -> (Machine, Machine) {
    let mut m = boot((true, true), true);
    let snap = m.snapshot();
    let a: Machine = snap.to_machine();
    let b: Machine = snap.to_machine();
    assert!(a.sram.shared_pages() > 0, "forks must share pages");
    assert_eq!(a.sram.shared_pages(), b.sram.shared_pages());
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scalar writes after a fork are invisible to the sibling, whatever
    /// page they land on: exactly the touched pages CoW-break in the
    /// writer, and the sibling's copy of the word never moves.
    #[test]
    fn write_after_fork_is_isolated(
        page in 0u32..16,
        offset in 0u32..(PAGE_SIZE / 4),
        value in any::<u32>(),
    ) {
        let (mut a, b) = fork_pair();
        let addr = layout::SRAM_BASE + page * PAGE_SIZE + offset * 4;
        let before = b.sram.read_scalar(addr, 4).unwrap();
        a.sram.write_scalar(addr, 4, value).unwrap();
        prop_assert_eq!(a.sram.read_scalar(addr, 4).unwrap(), value);
        prop_assert_eq!(b.sram.read_scalar(addr, 4).unwrap(), before);
        prop_assert!(a.sram.cow_stats().breaks >= 1, "write must break CoW");
        prop_assert_eq!(b.sram.cow_stats().breaks, 0);
        // Writing the same page again is free: it is already unique.
        let breaks = a.sram.cow_stats().breaks;
        a.sram.write_scalar(addr, 4, !value).unwrap();
        prop_assert_eq!(a.sram.cow_stats().breaks, breaks);
    }

    /// Tag writes alone must also break sharing: flipping a granule's tag
    /// in one fork never changes what the sibling's `tag_at` reports.
    #[test]
    fn tag_write_on_shared_page_is_isolated(
        page in 0u32..16,
        granule in 0u32..(PAGE_SIZE / 8),
        word in any::<u64>(),
    ) {
        let (mut a, b) = fork_pair();
        let addr = layout::SRAM_BASE + page * PAGE_SIZE + granule * 8;
        let before = b.sram.tag_at(addr);
        a.sram.write_cap_word(addr, word, !before).unwrap();
        prop_assert_eq!(a.sram.tag_at(addr), !before);
        prop_assert_eq!(b.sram.tag_at(addr), before);
        prop_assert!(a.sram.cow_stats().breaks >= 1);
        prop_assert_eq!(b.sram.cow_stats().breaks, 0);
    }
}

#[test]
fn dma_store_breaks_shared_page_without_perturbing_sibling() {
    let (mut a, mut b) = fork_pair();
    // Plant a tagged capability in the shared image *before* forking is
    // not possible here, so plant it in `b` only and DMA into `a` at the
    // same address: `b`'s tag and bytes must both survive.
    let addr = layout::SRAM_BASE + 0x2000;
    b.sram.write_cap_word(addr, 0x0123_4567, true).unwrap();
    let b_breaks = b.sram.cow_stats().breaks;
    a.dma_write(addr, &0xa5a5_a5a5u32.to_le_bytes()).unwrap();
    assert!(a.sram.cow_stats().breaks >= 1, "DMA must break CoW");
    assert_eq!(a.sram.read_scalar(addr, 4).unwrap(), 0xa5a5_a5a5);
    assert!(!a.sram.tag_at(addr), "DMA store clears the granule tag");
    assert_eq!(b.sram.read_scalar(addr, 4).unwrap(), 0x0123_4567);
    assert!(b.sram.tag_at(addr), "sibling tag must survive the DMA");
    assert_eq!(b.sram.cow_stats().breaks, b_breaks);
}

#[test]
fn patch_code_on_shared_image_is_isolated() {
    let mut m = boot((true, true), true);
    let snap = m.snapshot();
    let mut a: Machine = snap.to_machine();
    let mut b: Machine = snap.to_machine();
    let addr = layout::CODE_BASE;
    a.patch_code(addr, Instr::Halt).unwrap();
    assert_eq!(a.code_at(addr), Some(Instr::Halt));
    assert_eq!(
        b.code_at(addr),
        Some(prog()[0]),
        "sibling code must not see the patch"
    );
    // The unpatched fork still runs the original program to completion.
    assert_eq!(b.run(10_000), ExitReason::Halted(7));
    // The patched fork halts immediately (a0 is still 0 at entry).
    assert_eq!(a.run(10_000), ExitReason::Halted(0));
}

#[test]
fn sibling_restores_cleanly_after_divergence() {
    let mut m = boot((true, true), true);
    let snap = m.snapshot();
    let mut a: Machine = snap.to_machine();
    let mut b: Machine = snap.to_machine();
    // Diverge `a` hard: run to completion, dirtying pages and breaking CoW.
    assert_eq!(a.run(10_000), ExitReason::Halted(7));
    assert!(a.sram.cow_stats().breaks > 0);
    // `b` is untouched and replays to the identical end state.
    assert_eq!(b.run(10_000), ExitReason::Halted(7));
    assert_eq!(a.cpu, b.cpu);
    assert!(a.sram.content_eq(&b.sram));
    // And `a` can be rewound to the fork point afterwards.
    a.restore_from(&snap);
    let fresh: Machine = snap.to_machine();
    assert_eq!(a.cpu, fresh.cpu);
    assert!(a.sram.content_eq(&fresh.sram));
}

/// CoW on/off is architecturally invisible in every dispatch mode: the
/// same program reaches the same CPU state, SRAM image, cycle count and
/// exit status.
#[test]
fn cow_toggle_is_byte_identical_across_dispatch_modes() {
    let mut reference: Option<Machine> = None;
    for dispatch in [(false, false), (true, false), (true, true)] {
        for cow in [true, false] {
            let mut m = boot(dispatch, cow);
            assert_eq!(
                m.run(10_000),
                ExitReason::Halted(7),
                "dispatch {dispatch:?} cow {cow}"
            );
            if let Some(r) = &reference {
                assert_eq!(r.cpu, m.cpu, "dispatch {dispatch:?} cow {cow}: CPU");
                assert!(
                    r.sram.content_eq(&m.sram),
                    "dispatch {dispatch:?} cow {cow}: SRAM"
                );
                assert_eq!(r.cycles, m.cycles, "dispatch {dispatch:?} cow {cow}");
                assert_eq!(r.exit_status(), m.exit_status());
            } else {
                reference = Some(m);
            }
        }
    }
}

/// Under `--no-cow` a fork deep-copies: no page is ever shared, no break
/// is ever counted, and writes are trivially isolated.
#[test]
fn no_cow_forks_are_unique_and_still_isolated() {
    let mut m = boot((true, true), false);
    let snap = m.snapshot();
    let mut a: Machine = snap.to_machine();
    let b: Machine = snap.to_machine();
    assert_eq!(a.sram.shared_pages(), 0);
    assert_eq!(b.sram.shared_pages(), 0);
    let addr = layout::SRAM_BASE + 0x400;
    let before = b.sram.read_scalar(addr, 4).unwrap();
    a.sram.write_scalar(addr, 4, !before).unwrap();
    assert_eq!(a.sram.read_scalar(addr, 4).unwrap(), !before);
    assert_eq!(b.sram.read_scalar(addr, 4).unwrap(), before);
    assert_eq!(a.sram.cow_stats().breaks, 0, "unique pages never break");
}
