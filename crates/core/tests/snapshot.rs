//! Snapshot/fork engine tests: a restore must be byte-identical to a
//! fresh boot (same program, same entry), page-wise restores must copy
//! only dirty pages, and forks must inherit the predecoded block table.

use cheriot_cap::Capability;
use cheriot_core::insn::{AluOp, Instr, MemWidth, Reg};
use cheriot_core::{layout, CoreModel, ExitReason, Machine, MachineConfig, Snapshot};

fn machine_with(block_cache: bool) -> Machine {
    let mut mc = MachineConfig::new(CoreModel::ibex());
    mc.block_cache = block_cache;
    Machine::new(mc)
}

/// A straight-line program: two word stores through `A1`/`A2` (dirtying
/// whatever pages those point at), an add, then halt with `a0`.
fn store_prog() -> Vec<Instr> {
    vec![
        Instr::Store {
            width: MemWidth::W,
            rs2: Reg::A4,
            rs1: Reg::A1,
            offset: 0,
        },
        Instr::Store {
            width: MemWidth::W,
            rs2: Reg::A4,
            rs1: Reg::A2,
            offset: 8,
        },
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 7,
        },
        Instr::Halt,
    ]
}

fn auth(addr: u32) -> Capability {
    Capability::root_mem_rw()
        .with_address(addr)
        .set_bounds(64)
        .unwrap()
}

/// Boots a machine, loads the store program, and points `A1`/`A2` at two
/// different SRAM pages.
fn boot(block_cache: bool) -> Machine {
    let mut m = machine_with(block_cache);
    let e = m.load_program(&store_prog());
    m.set_entry(e);
    m.cpu.write(Reg::A1, auth(layout::SRAM_BASE + 0x100));
    m.cpu.write(Reg::A2, auth(layout::SRAM_BASE + 0x2000));
    m.cpu.write_int(Reg::A4, 0xdead_beef);
    m
}

/// Full architectural equality, field by field.
fn assert_identical(a: &Machine, b: &Machine, what: &str) {
    assert_eq!(a.cpu, b.cpu, "{what}: CPU state diverged");
    assert!(a.sram.content_eq(&b.sram), "{what}: SRAM content diverged");
    assert_eq!(a.bitmap, b.bitmap, "{what}: revocation bitmap diverged");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles diverged");
    assert_eq!(a.stats, b.stats, "{what}: stats diverged");
    assert_eq!(a.console, b.console, "{what}: console diverged");
    assert_eq!(a.gpio_out, b.gpio_out, "{what}: gpio diverged");
    assert_eq!(a.exit_status(), b.exit_status(), "{what}: halt diverged");
}

#[test]
fn restore_is_byte_identical_to_a_fresh_boot() {
    let mut m = boot(true);
    let snap = m.snapshot();
    assert_eq!(m.run(10_000), ExitReason::Halted(7));
    assert!(m.sram.dirty_pages() >= 2, "the run dirtied two pages");
    m.restore_from(&snap);
    let fresh = boot(true);
    assert_identical(&m, &fresh, "restore vs fresh boot");
    // And the restored machine re-runs to the same end state.
    assert_eq!(m.run(10_000), ExitReason::Halted(7));
    let mut again = boot(true);
    assert_eq!(again.run(10_000), ExitReason::Halted(7));
    assert_identical(&m, &again, "re-run after restore");
}

#[test]
fn restore_replays_identically_in_both_block_cache_modes() {
    for cache in [true, false] {
        let mut m = boot(cache);
        let snap = m.snapshot();
        assert_eq!(m.run(10_000), ExitReason::Halted(7));
        let cycles_first = m.cycles;
        m.restore_from(&snap);
        assert_eq!(m.run(10_000), ExitReason::Halted(7));
        assert_eq!(m.cycles, cycles_first, "cache={cache}: replay cycles");
    }
}

#[test]
fn page_wise_restore_copies_only_dirty_pages() {
    let mut m = boot(true);
    let snap = m.snapshot();
    assert_eq!(m.run(10_000), ExitReason::Halted(7));
    let dirty = m.sram.dirty_pages();
    assert!((2..8).contains(&dirty), "run dirtied a handful of pages");
    m.restore_from(&snap);
    let s = m.snapshot_stats();
    assert_eq!(s.restores, 1);
    assert_eq!(
        s.pages_copied,
        u64::from(dirty),
        "copied exactly the dirty pages"
    );
    assert_eq!(s.full_restores, 0, "lineage fast path applied");
    // Restoring again with nothing dirty copies nothing.
    m.restore_from(&snap);
    assert_eq!(m.snapshot_stats().pages_copied, u64::from(dirty));
}

#[test]
fn snapshot_into_reuses_buffers_and_keeps_lineage() {
    let mut m = boot(true);
    let mut snap = m.snapshot();
    assert_eq!(m.run(10_000), ExitReason::Halted(7));
    // Re-capture the halted state into the same snapshot, then diverge and
    // restore: the round trip must reproduce the halted state exactly.
    m.snapshot_into(&mut snap);
    let halted = m.clone();
    m.restore_from(&snap);
    assert_identical(&m, &halted, "recapture round trip");
}

#[test]
fn fork_inherits_predecoded_blocks_and_matches() {
    let mut m = boot(true);
    assert_eq!(m.run(10_000), ExitReason::Halted(7));
    assert!(m.blocks_resident() > 0, "the run decoded blocks");
    let resident = m.blocks_resident();
    let snap = m.snapshot();
    let mut fork: Machine = snap.to_machine();
    assert_eq!(
        fork.blocks_resident(),
        resident,
        "fork starts with the snapshot's decoded blocks"
    );
    assert_identical(&fork, &m, "fork vs original");
    // Fork and original stay independent: the fork can be restored and
    // re-run without touching the original.
    fork.restore_from(&snap);
    assert_identical(&fork, &m, "fork restored to capture point");
}

#[test]
fn restore_reinstalls_code_after_divergent_patch() {
    let mut m = boot(true);
    let snap = m.snapshot();
    assert_eq!(m.run(10_000), ExitReason::Halted(7));
    // Diverge the code region (what a code-class fault injection does).
    let addr = layout::CODE_BASE;
    m.patch_code(addr, Instr::Halt).unwrap();
    m.restore_from(&snap);
    assert_eq!(
        m.code_at(addr),
        Some(store_prog()[0]),
        "restore must undo the patch"
    );
    assert_eq!(
        m.run(10_000),
        ExitReason::Halted(7),
        "original program runs"
    );
}

#[test]
fn restore_across_unrelated_machines_is_a_full_copy_but_correct() {
    let mut a = boot(true);
    let snap: Snapshot = a.snapshot();
    let mut b = machine_with(true); // never saw `a`'s lineage
    b.restore_from(&snap);
    assert_identical(&b, &a, "cross-machine restore");
    assert_eq!(b.snapshot_stats().full_restores, 1);
    assert_eq!(b.run(10_000), ExitReason::Halted(7));
}
