//! Equivalence tests for the simulator fast paths: the decoded-capability
//! side cache must be invisible to software (CSC/scalar-store/CLC
//! interleavings, load-filter strips), and the batched `run()` event loop
//! must deliver interrupts at exactly the same instruction boundaries and
//! cycle counts as the stepwise `step()` loop.

use cheriot_cap::Capability;
use cheriot_core::insn::{AluOp, Instr, MemWidth, Reg};
use cheriot_core::{layout, CoreModel, ExitReason, Machine, MachineConfig};

fn machine() -> Machine {
    Machine::new(MachineConfig::new(CoreModel::ibex()))
}

#[test]
fn csc_scalar_store_clc_cache_coherence() {
    // CSC then CLC on the same granule must round-trip the capability;
    // a scalar store in between must detag and the following CLC must see
    // the overwritten bytes, not a stale cached decode.
    let mut m = machine();
    let prog = vec![
        Instr::Csc {
            rs2: Reg::A2,
            rs1: Reg::A1,
            offset: 0,
        },
        Instr::Clc {
            rd: Reg::A3,
            rs1: Reg::A1,
            offset: 0,
        },
        Instr::Store {
            width: MemWidth::W,
            rs2: Reg::A4,
            rs1: Reg::A1,
            offset: 0,
        },
        Instr::Clc {
            rd: Reg::A5,
            rs1: Reg::A1,
            offset: 0,
        },
        Instr::Halt,
    ];
    let e = m.load_program(&prog);
    m.set_entry(e);
    let granule = layout::SRAM_BASE + 0x40;
    let auth = Capability::root_mem_rw()
        .with_address(granule)
        .set_bounds(8)
        .unwrap();
    let stored = Capability::root_mem_rw()
        .with_address(layout::SRAM_BASE + 0x100)
        .set_bounds(32)
        .unwrap();
    m.cpu.write(Reg::A1, auth);
    m.cpu.write(Reg::A2, stored);
    m.cpu.write_int(Reg::A4, 0xdead_beef);
    assert_eq!(m.run(1_000), ExitReason::Halted(0));

    let reloaded = m.cpu.read(Reg::A3);
    assert!(reloaded.tag(), "CLC after CSC must return a tagged copy");
    assert_eq!(reloaded, stored);
    assert_eq!(reloaded.bounds(), stored.bounds());

    let clobbered = m.cpu.read(Reg::A5);
    assert!(!clobbered.tag(), "scalar store must detag the granule");
    assert_eq!(
        clobbered.to_word() as u32,
        0xdead_beef,
        "CLC must see the scalar overwrite, not a stale cached decode"
    );
}

#[test]
fn side_cache_does_not_bypass_load_filter() {
    // A capability sits cached in a granule; its referent is then freed
    // (revocation bits painted). The next CLC must still strip the tag —
    // the filter consults the bitmap on every load, cached or not.
    let mut m = machine();
    let prog = vec![
        Instr::Csc {
            rs2: Reg::A2,
            rs1: Reg::A1,
            offset: 0,
        },
        Instr::Halt,
    ];
    let e = m.load_program(&prog);
    m.set_entry(e);
    let heap_obj = m.cfg.heap_base() + 0x200;
    let granule = layout::SRAM_BASE + 0x40;
    let auth = Capability::root_mem_rw()
        .with_address(granule)
        .set_bounds(8)
        .unwrap();
    let stored = Capability::root_mem_rw()
        .with_address(heap_obj)
        .set_bounds(32)
        .unwrap();
    m.cpu.write(Reg::A1, auth);
    m.cpu.write(Reg::A2, stored);
    assert_eq!(m.run(1_000), ExitReason::Halted(0));

    // Warm read: tagged (nothing revoked yet).
    assert!(m.bus_read_cap(granule).unwrap().tag());
    // Free the object, then read again through the same cached granule.
    m.bitmap.set_range(heap_obj, 32);
    let after = m.bus_read_cap(granule).unwrap();
    assert!(
        !after.tag(),
        "filter must strip despite the warm side cache"
    );
    assert_eq!(m.stats.filter_strips, 1);
}

/// Builds a machine whose program spins incrementing `a0` while a timer
/// interrupt handler counts deliveries in `a1` and pushes `mtimecmp`
/// forward, exercising interrupt delivery, trap entry and `mret` under
/// the batched loop.
fn timer_machine() -> Machine {
    let mut m = machine();
    // Handler at code start: a1 += 1; a3 = mtimecmp_lo + period; store it;
    // mret.
    let handler = vec![
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A1,
            rs1: Reg::A1,
            imm: 1,
        },
        Instr::Load {
            width: MemWidth::W,
            signed: false,
            rd: Reg::A3,
            rs1: Reg::A2,
            offset: 8,
        },
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A3,
            rs1: Reg::A3,
            imm: 173,
        },
        Instr::Store {
            width: MemWidth::W,
            rs2: Reg::A3,
            rs1: Reg::A2,
            offset: 8,
        },
        Instr::Mret,
    ];
    let h = m.load_program(&handler);
    let spin = vec![
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        },
        Instr::Jal {
            rd: Reg::ZERO,
            offset: -4,
        },
    ];
    let e = m.load_program(&spin);
    m.set_entry(e);
    m.cpu.mtcc = m.boot_pcc(h);
    m.cpu.write(
        Reg::A2,
        Capability::root_mem_rw().with_address(layout::TIMER_BASE),
    );
    m.cpu.interrupts_enabled = true;
    m.mtimecmp = 97;
    m
}

#[test]
fn batched_run_matches_stepwise_loop_with_timer_interrupts() {
    let mut batched = timer_machine();
    let mut stepwise = timer_machine();

    let exit_b = batched.run(20_000);

    // The reference: the pre-batching `run()` loop, one `step()` at a time.
    let limit = stepwise.cycles + 20_000;
    let exit_s = loop {
        if let Some(r) = stepwise.exit_status() {
            break r;
        }
        if stepwise.cycles >= limit {
            break ExitReason::CycleLimit;
        }
        stepwise.step();
    };

    assert_eq!(exit_b, exit_s);
    assert_eq!(batched.cycles, stepwise.cycles);
    assert_eq!(batched.stats, stepwise.stats);
    assert!(
        batched.stats.interrupts > 10,
        "test must actually deliver interrupts (got {})",
        batched.stats.interrupts
    );
    for i in 0..16u8 {
        let r = Reg(i);
        assert_eq!(
            batched.cpu.read(r),
            stepwise.cpu.read(r),
            "register c{i} diverged"
        );
    }
    assert_eq!(batched.cpu.pc(), stepwise.cpu.pc());
    assert_eq!(batched.mtimecmp, stepwise.mtimecmp);
}

/// `timer_machine` with an explicit dispatch mode: stepwise, block cache
/// without chaining, or the fully chained dispatch loop.
fn timer_machine_mode((block_cache, block_chain): (bool, bool)) -> Machine {
    let mut m = timer_machine();
    m.cfg.block_cache = block_cache;
    m.cfg.block_chain = block_chain;
    m
}

#[test]
fn three_way_dispatch_equivalence_with_timer_interrupts() {
    // The full observable record — cycle counts, retirement counts, every
    // register, interrupt delivery points, trace event streams — must be
    // byte-identical across all three dispatch modes, under live timer
    // interrupts re-armed from the handler (so the run repeatedly crosses
    // trap entry, `mret`, and mid-block interrupt boundaries).
    use cheriot_core::trace::Tracer;
    let modes = [(false, false), (true, false), (true, true)];
    let mut machines: Vec<Machine> = modes
        .iter()
        .map(|&mode| {
            let mut m = timer_machine_mode(mode);
            m.set_tracer(Tracer::timeline());
            m
        })
        .collect();
    let exits: Vec<ExitReason> = machines.iter_mut().map(|m| m.run(20_000)).collect();
    assert_eq!(exits[0], exits[1]);
    assert_eq!(exits[0], exits[2]);
    let (s, rest) = machines.split_first().unwrap();
    assert!(
        s.stats.interrupts > 10,
        "test must actually deliver interrupts (got {})",
        s.stats.interrupts
    );
    for (m, mode) in rest.iter().zip(&modes[1..]) {
        assert_eq!(m.cycles, s.cycles, "mode {mode:?}: cycles diverged");
        assert_eq!(m.stats, s.stats, "mode {mode:?}: stats diverged");
        assert_eq!(m.cpu.pc(), s.cpu.pc(), "mode {mode:?}: PC diverged");
        assert_eq!(m.mtimecmp, s.mtimecmp, "mode {mode:?}: mtimecmp diverged");
        for i in 0..16u8 {
            let r = Reg(i);
            assert_eq!(
                m.cpu.read(r),
                s.cpu.read(r),
                "mode {mode:?}: register c{i} diverged"
            );
        }
        assert_eq!(
            m.tracer().unwrap().events(),
            s.tracer().unwrap().events(),
            "mode {mode:?}: trace event streams diverged"
        );
    }
}

#[test]
fn three_way_dispatch_equivalence_across_sliced_budgets() {
    // Odd budget slices land boundary checks at different points of the
    // dispatch loops (mid-block stops, chain-boundary stops); the final
    // state must not depend on the slicing in any mode.
    for mode in [(false, false), (true, false), (true, true)] {
        let mut whole = timer_machine_mode(mode);
        let mut sliced = timer_machine_mode(mode);
        whole.run(20_000);
        while sliced.cycles < whole.cycles {
            sliced.run((whole.cycles - sliced.cycles).min(117));
        }
        assert_eq!(whole.cycles, sliced.cycles, "mode {mode:?}");
        assert_eq!(whole.stats, sliced.stats, "mode {mode:?}");
        assert_eq!(whole.cpu.pc(), sliced.cpu.pc(), "mode {mode:?}");
    }
}

/// `timer_machine` whose interrupt handler additionally emits a console
/// byte per delivery, so the console stream records IRQ boundaries.
fn console_timer_machine((block_cache, block_chain): (bool, bool)) -> Machine {
    let mut m = machine();
    m.cfg.block_cache = block_cache;
    m.cfg.block_chain = block_chain;
    let handler = vec![
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A1,
            rs1: Reg::A1,
            imm: 1,
        },
        Instr::Store {
            width: MemWidth::B,
            rs2: Reg::A1,
            rs1: Reg::A4,
            offset: 0,
        },
        Instr::Load {
            width: MemWidth::W,
            signed: false,
            rd: Reg::A3,
            rs1: Reg::A2,
            offset: 8,
        },
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A3,
            rs1: Reg::A3,
            imm: 173,
        },
        Instr::Store {
            width: MemWidth::W,
            rs2: Reg::A3,
            rs1: Reg::A2,
            offset: 8,
        },
        Instr::Mret,
    ];
    let h = m.load_program(&handler);
    let spin = vec![
        Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        },
        Instr::Jal {
            rd: Reg::ZERO,
            offset: -4,
        },
    ];
    let e = m.load_program(&spin);
    m.set_entry(e);
    m.cpu.mtcc = m.boot_pcc(h);
    m.cpu.write(
        Reg::A2,
        Capability::root_mem_rw().with_address(layout::TIMER_BASE),
    );
    m.cpu.write(
        Reg::A4,
        Capability::root_mem_rw().with_address(layout::CONSOLE_BASE),
    );
    m.cpu.interrupts_enabled = true;
    m.mtimecmp = 97;
    m
}

#[test]
fn quantum_sliced_execution_is_byte_identical_to_unsliced() {
    // The farm scheduler runs every instance as K slices of a fixed
    // budget B. That schedule must be invisible: cycles, retirement
    // stats, trap state, interrupt delivery points (recorded in the
    // console stream by the handler), registers, and trace events must
    // be byte-identical to one unsliced run of K*B — in all three
    // dispatch modes.
    use cheriot_core::trace::Tracer;
    const K: u64 = 16;
    const B: u64 = 1_250;
    for mode in [(false, false), (true, false), (true, true)] {
        let mut whole = console_timer_machine(mode);
        let mut sliced = console_timer_machine(mode);
        whole.set_tracer(Tracer::timeline());
        sliced.set_tracer(Tracer::timeline());

        assert_eq!(whole.run(K * B), ExitReason::CycleLimit, "mode {mode:?}");
        // A slice may overshoot its budget by a partial instruction, so
        // (as the farm's quantum accounting does) each slice budget is
        // capped by the distance to the common target.
        while sliced.cycles < whole.cycles {
            let budget = (whole.cycles - sliced.cycles).min(B);
            assert_eq!(sliced.run(budget), ExitReason::CycleLimit, "mode {mode:?}");
        }

        assert!(
            whole.stats.interrupts > 10,
            "mode {mode:?}: test must actually deliver interrupts (got {})",
            whole.stats.interrupts
        );
        assert!(
            !whole.console.is_empty(),
            "mode {mode:?}: handler must emit console bytes"
        );
        assert_eq!(whole.cycles, sliced.cycles, "mode {mode:?}: cycles");
        assert_eq!(whole.stats, sliced.stats, "mode {mode:?}: stats");
        assert_eq!(whole.cpu.pc(), sliced.cpu.pc(), "mode {mode:?}: PC");
        assert_eq!(
            whole.last_trap(),
            sliced.last_trap(),
            "mode {mode:?}: trap state"
        );
        assert_eq!(
            whole.mtimecmp, sliced.mtimecmp,
            "mode {mode:?}: timer state"
        );
        assert_eq!(whole.console, sliced.console, "mode {mode:?}: console");
        for i in 0..16u8 {
            let r = Reg(i);
            assert_eq!(
                whole.cpu.read(r),
                sliced.cpu.read(r),
                "mode {mode:?}: register c{i}"
            );
        }
        assert_eq!(
            whole.tracer().unwrap().events(),
            sliced.tracer().unwrap().events(),
            "mode {mode:?}: trace event streams"
        );
    }
}

#[test]
fn batched_run_resumes_across_cycle_limit_slices() {
    // Slicing the budget must not change behavior: many small run() calls
    // land on the same state as one big one.
    let mut whole = timer_machine();
    let mut sliced = timer_machine();
    whole.run(20_000);
    while sliced.cycles < whole.cycles {
        sliced.run((whole.cycles - sliced.cycles).min(117));
    }
    assert_eq!(whole.cycles, sliced.cycles);
    assert_eq!(whole.stats, sliced.stats);
    assert_eq!(whole.cpu.pc(), sliced.cpu.pc());
    assert_eq!(
        whole.cpu.read_int(Reg::A1),
        sliced.cpu.read_int(Reg::A1),
        "interrupt deliveries diverged"
    );
}
