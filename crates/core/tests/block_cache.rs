//! Coherence and exactness tests for the predecoded basic-block cache:
//! self-modifying code (patching an already-executed address, cross-block
//! overwrites, program appends) must invalidate precisely, and execution
//! through the cache must be byte-identical to the stepwise interpreter —
//! same cycles, same registers, same trap PCs, same interrupt delivery
//! points, same trace output.

use cheriot_cap::Capability;
use cheriot_core::insn::{AluOp, BranchCond, Instr, MemWidth, Reg};
use cheriot_core::trace::{EventKind, Tracer};
use cheriot_core::{layout, CoreModel, ExitReason, Machine, MachineConfig};

fn machine_with(block_cache: bool) -> Machine {
    let mut mc = MachineConfig::new(CoreModel::ibex());
    mc.block_cache = block_cache;
    Machine::new(mc)
}

/// The three dispatch modes under test: the stepwise interpreter, the
/// block cache with chaining off, and the fully chained dispatch loop.
const MODES: [(bool, bool); 3] = [(false, false), (true, false), (true, true)];

fn machine_mode((block_cache, block_chain): (bool, bool)) -> Machine {
    let mut mc = MachineConfig::new(CoreModel::ibex());
    mc.block_cache = block_cache;
    mc.block_chain = block_chain;
    Machine::new(mc)
}

fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
    Instr::OpImm {
        op: AluOp::Add,
        rd,
        rs1,
        imm,
    }
}

/// Asserts complete architectural equality of two machines: cycle and
/// retirement counters, PC, every register, and the interrupt posture.
fn assert_same_state(a: &Machine, b: &Machine, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycle counters diverged");
    assert_eq!(a.stats, b.stats, "{what}: stats diverged");
    assert_eq!(a.cpu.pc(), b.cpu.pc(), "{what}: PC diverged");
    assert_eq!(
        a.cpu.interrupts_enabled, b.cpu.interrupts_enabled,
        "{what}: posture diverged"
    );
    for i in 0..16u8 {
        let r = Reg(i);
        assert_eq!(
            a.cpu.read(r),
            b.cpu.read(r),
            "{what}: register c{i} diverged"
        );
    }
}

/// Loads an infinite `a0 += 1; a1 += 1; loop` spin into both machines.
fn spin_pair() -> (Machine, Machine, u32) {
    let prog = vec![
        addi(Reg::A0, Reg::A0, 1),
        addi(Reg::A1, Reg::A1, 1),
        Instr::Jal {
            rd: Reg::ZERO,
            offset: -8,
        },
    ];
    let mut on = machine_with(true);
    let mut off = machine_with(false);
    let e = on.load_program(&prog);
    assert_eq!(off.load_program(&prog), e);
    on.set_entry(e);
    off.set_entry(e);
    (on, off, e)
}

#[test]
fn patch_executed_address_then_reexecute_matches_cache_off() {
    // The canonical self-modifying-code sequence: execute a loop until its
    // block is hot in the cache, overwrite one of its instructions, and
    // keep running. The patched instruction must take effect on the very
    // next iteration, exactly as it does without the cache.
    let (mut on, mut off, e) = spin_pair();
    assert_eq!(on.run(3_000), ExitReason::CycleLimit);
    assert_eq!(off.run(3_000), ExitReason::CycleLimit);
    assert_same_state(&on, &off, "before patch");
    assert!(
        on.block_stats().hits > 0,
        "the loop block must be hot before the patch"
    );

    let old = on.patch_code(e + 4, addi(Reg::A1, Reg::A1, 100)).unwrap();
    assert_eq!(
        old,
        addi(Reg::A1, Reg::A1, 1),
        "patch returns the old instr"
    );
    off.patch_code(e + 4, addi(Reg::A1, Reg::A1, 100)).unwrap();
    assert!(
        on.block_stats().invalidated >= 1,
        "patching a cached address must invalidate its block"
    );

    let a1_before = on.cpu.read_int(Reg::A1);
    assert_eq!(on.run(3_000), ExitReason::CycleLimit);
    assert_eq!(off.run(3_000), ExitReason::CycleLimit);
    assert_same_state(&on, &off, "after patch");
    let grew = on.cpu.read_int(Reg::A1).wrapping_sub(a1_before);
    assert!(
        grew >= 100,
        "re-executed iterations must run the patched instruction (a1 grew {grew})"
    );
    assert!(
        on.block_stats().misses >= 2,
        "the patched block must have been recompiled"
    );
}

#[test]
fn cross_block_overwrite_invalidates_every_covering_block() {
    // Two blocks share a tail: the straight-line block from the entry and
    // the block created by the backward branch into the loop body. A patch
    // to the shared instruction must drop both.
    let prog = vec![
        addi(Reg::A0, Reg::A0, 1), // e+0  block A start
        addi(Reg::A0, Reg::A0, 1), // e+4  block B start
        addi(Reg::A0, Reg::A0, 2), // e+8  shared, patched
        Instr::Branch {
            cond: BranchCond::Lt,
            rs1: Reg::A0,
            rs2: Reg::A3,
            offset: -8,
        }, // e+12 back to e+4
        Instr::Halt,               // e+16
    ];
    let mut m = machine_with(true);
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.cpu.write_int(Reg::A3, 6);
    // e+0: 1,2,4; 4<6 → e+4: 5,7; 7<6 false → halt with a0=7.
    assert_eq!(m.run(1_000), ExitReason::Halted(7));
    assert_eq!(
        m.blocks_resident(),
        3,
        "entry block, branch-target block, halt block"
    );

    let gen = m.code_generation();
    let before = m.block_stats().invalidated;
    m.patch_code(e + 8, addi(Reg::A0, Reg::A0, 4)).unwrap();
    assert_eq!(
        m.block_stats().invalidated - before,
        2,
        "both blocks covering e+8 must be dropped"
    );
    assert_eq!(m.blocks_resident(), 1, "the halt block survives");
    assert!(m.code_generation() > gen);

    // A fresh pair confirms the patched semantics are what both execution
    // modes compute: e+0: 1,2,6; 6<6 false → halt with a0=6.
    for cache in [true, false] {
        let mut m2 = machine_with(cache);
        let e2 = m2.load_program(&prog);
        m2.set_entry(e2);
        m2.cpu.write_int(Reg::A3, 6);
        m2.patch_code(e2 + 8, addi(Reg::A0, Reg::A0, 4)).unwrap();
        assert_eq!(m2.run(1_000), ExitReason::Halted(6), "cache={cache}");
    }
}

#[test]
fn program_append_drops_blocks_truncated_at_old_code_end() {
    // A block that ended exactly at the old end of loaded code may have
    // been truncated there; appending more code must discard it so the
    // longer block can be rebuilt. Blocks ending earlier survive.
    let (mut on, mut off, _) = spin_pair();
    assert_eq!(on.run(500), ExitReason::CycleLimit);
    assert_eq!(off.run(500), ExitReason::CycleLimit);
    assert_eq!(on.blocks_resident(), 1);

    let gen = on.code_generation();
    on.load_program(&[Instr::Halt]);
    off.load_program(&[Instr::Halt]);
    assert_eq!(
        on.blocks_resident(),
        0,
        "the spin block ends at the old code end and must be dropped"
    );
    assert!(on.code_generation() > gen);

    // The appended code is unreachable from the spin; execution continues
    // identically in both modes.
    assert_eq!(on.run(2_000), ExitReason::CycleLimit);
    assert_eq!(off.run(2_000), ExitReason::CycleLimit);
    assert_same_state(&on, &off, "after append");
}

#[test]
fn mid_block_trap_reports_faulting_pc_not_block_start() {
    // The faulting load sits two instructions into its block: the trap
    // event (and the saved mepcc it mirrors) must name the load's own PC,
    // not the PC the block was entered at.
    for cache in [true, false] {
        let mut m = machine_with(cache);
        let prog = vec![
            addi(Reg::A0, Reg::A0, 1),
            addi(Reg::A0, Reg::A0, 1),
            Instr::Load {
                width: MemWidth::W,
                signed: false,
                rd: Reg::A2,
                rs1: Reg::A1, // null capability: tag violation
                offset: 0,
            },
            Instr::Halt,
        ];
        let e = m.load_program(&prog);
        m.set_entry(e);
        m.set_tracer(Tracer::timeline());
        let exit = m.run(1_000);
        assert!(
            matches!(exit, ExitReason::Fault(_)),
            "cache={cache}: expected a fault, got {exit:?}"
        );
        let traps: Vec<u32> = m
            .tracer()
            .unwrap()
            .events()
            .iter()
            .filter_map(|ev| match ev.kind {
                EventKind::Trap { pc, .. } => Some(pc),
                _ => None,
            })
            .collect();
        assert_eq!(
            traps,
            vec![e + 8],
            "cache={cache}: trap must report the faulting instruction's PC"
        );
    }
}

/// Spin loop + timer handler pair (same program in both machines), with a
/// vectored handler that re-arms `mtimecmp`, so interrupts keep firing.
fn timer_pair() -> (Machine, Machine) {
    let build = |cache: bool| {
        let mut m = machine_with(cache);
        let handler = vec![
            addi(Reg::A1, Reg::A1, 1),
            Instr::Load {
                width: MemWidth::W,
                signed: false,
                rd: Reg::A3,
                rs1: Reg::A2,
                offset: 8,
            },
            addi(Reg::A3, Reg::A3, 173),
            Instr::Store {
                width: MemWidth::W,
                rs2: Reg::A3,
                rs1: Reg::A2,
                offset: 8,
            },
            Instr::Mret,
        ];
        let h = m.load_program(&handler);
        let spin = vec![
            addi(Reg::A0, Reg::A0, 1),
            Instr::Jal {
                rd: Reg::ZERO,
                offset: -4,
            },
        ];
        let e = m.load_program(&spin);
        m.set_entry(e);
        m.cpu.mtcc = m.boot_pcc(h);
        m.cpu.write(
            Reg::A2,
            Capability::root_mem_rw().with_address(layout::TIMER_BASE),
        );
        m.cpu.interrupts_enabled = true;
        m.mtimecmp = 97;
        m
    };
    (build(true), build(false))
}

#[test]
fn timer_interrupts_and_trace_output_identical_cache_on_vs_off() {
    // The full observable record — interrupt delivery points, posture
    // flips, cycle stamps — must be byte-identical between the two
    // execution paths, including when the budget is consumed in uneven
    // slices (interrupt checks batch differently at slice edges).
    let (mut on, mut off) = timer_pair();
    on.set_tracer(Tracer::timeline());
    off.set_tracer(Tracer::timeline());

    let exit_on = on.run(20_000);
    let exit_off = off.run(20_000);
    assert_eq!(exit_on, exit_off);
    assert_same_state(&on, &off, "timer run");
    assert_eq!(on.mtimecmp, off.mtimecmp);
    assert!(
        on.stats.interrupts > 10,
        "test must actually deliver interrupts (got {})",
        on.stats.interrupts
    );
    assert!(on.block_stats().hits > 0, "spin must run from the cache");
    assert_eq!(
        on.tracer().unwrap().events(),
        off.tracer().unwrap().events(),
        "trace event streams must be identical"
    );

    // Sliced budgets land on the same state as one big budget.
    let (mut sliced, _) = timer_pair();
    while sliced.cycles < on.cycles {
        sliced.run((on.cycles - sliced.cycles).min(117));
    }
    assert_same_state(&on, &sliced, "sliced run");
}

#[test]
fn watchdog_fires_at_same_instruction_cache_on_vs_off() {
    // An odd watchdog budget lands mid-block; the cached dispatch must
    // stop at exactly the same retirement count as the stepwise loop.
    let (mut on, mut off, _) = spin_pair();
    on.set_watchdog(Some(1_001));
    off.set_watchdog(Some(1_001));
    assert_eq!(on.run(1_000_000), ExitReason::Watchdog);
    assert_eq!(off.run(1_000_000), ExitReason::Watchdog);
    assert_same_state(&on, &off, "watchdog");
    assert_eq!(on.stats.instructions, 1_001);
}

#[test]
fn smc_patch_of_linked_successor_takes_effect_in_all_modes() {
    // Two blocks ping-pong through always-taken branches, so with chaining
    // on the A→B and B→A successor links go hot and dispatch never returns
    // to the dispatcher. Patching an instruction inside the linked
    // successor must still take effect on the very next iteration: the
    // patch bumps the generation, which kills every link at once.
    let prog = vec![
        addi(Reg::A0, Reg::A0, 1), // e+0  block A
        Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A2,
            rs2: Reg::A2,
            offset: 12,
        }, // e+4  always taken → e+16
        Instr::Halt,               // e+8  (dead)
        Instr::Halt,               // e+12 (dead)
        addi(Reg::A1, Reg::A1, 1), // e+16 block B (patched below)
        Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A2,
            rs2: Reg::A2,
            offset: -16,
        }, // e+20 always taken → e+0
    ];
    let run_with_patch = |mode: (bool, bool)| -> Machine {
        let mut m = machine_mode(mode);
        let e = m.load_program(&prog);
        m.set_entry(e);
        assert_eq!(m.run(2_000), ExitReason::CycleLimit);
        if mode == (true, true) {
            let st = m.block_stats();
            assert!(
                st.chain_links >= 2 && st.chain_hits > 10,
                "A↔B must be chained before the patch (links={}, hits={})",
                st.chain_links,
                st.chain_hits
            );
        }
        m.patch_code(e + 16, addi(Reg::A1, Reg::A1, 1000)).unwrap();
        assert_eq!(m.run(2_000), ExitReason::CycleLimit);
        m
    };
    let a1 = run_with_patch(MODES[0]).cpu.read_int(Reg::A1);
    assert!(a1 >= 1000, "patched increment must apply (a1={a1})");
    for mode in [MODES[1], MODES[2]] {
        let m = run_with_patch(mode);
        let s = run_with_patch(MODES[0]);
        assert_same_state(&m, &s, &format!("mode {mode:?} vs stepwise"));
    }
}

#[test]
fn mid_superblock_trap_reports_pc_in_chased_segment() {
    // The faulting load sits *after* a chased `jal x0` — in the second
    // segment of a superblock, and behind a fast-stream element whose
    // folded jump already retired. Every mode must attribute the trap to
    // the load's own PC, with identical cycle and retirement counts.
    let prog = vec![
        addi(Reg::A0, Reg::A0, 1), // e+0
        Instr::Jal {
            rd: Reg::ZERO,
            offset: 8,
        }, // e+4  chased → e+12
        Instr::Halt,               // e+8  (skipped)
        addi(Reg::A0, Reg::A0, 1), // e+12
        Instr::Load {
            width: MemWidth::W,
            signed: false,
            rd: Reg::A2,
            rs1: Reg::A1, // null capability: tag violation
            offset: 0,
        }, // e+16  faults
        Instr::Halt,               // e+20
    ];
    let mut results = Vec::new();
    for mode in MODES {
        let mut m = machine_mode(mode);
        let e = m.load_program(&prog);
        m.set_entry(e);
        m.set_tracer(Tracer::timeline());
        let exit = m.run(1_000);
        assert!(
            matches!(exit, ExitReason::Fault(_)),
            "mode {mode:?}: expected a fault, got {exit:?}"
        );
        let traps: Vec<u32> = m
            .tracer()
            .unwrap()
            .events()
            .iter()
            .filter_map(|ev| match ev.kind {
                EventKind::Trap { pc, .. } => Some(pc),
                _ => None,
            })
            .collect();
        assert_eq!(
            traps,
            vec![e + 16],
            "mode {mode:?}: trap must report the faulting instruction's PC"
        );
        results.push(m);
    }
    let (s, rest) = results.split_first().unwrap();
    for (m, mode) in rest.iter().zip(&MODES[1..]) {
        assert_same_state(m, s, &format!("mode {mode:?} vs stepwise"));
    }
}

#[test]
fn sentry_inline_cache_invalidated_by_target_patch() {
    // A hot `cjalr` call site installs a sentry inline cache; patching the
    // callee's code bumps the generation, so the next call must miss the
    // cache, re-validate, and execute the patched callee — in lockstep
    // with the stepwise interpreter.
    use cheriot_cap::OType;
    let callee = vec![
        addi(Reg::A1, Reg::A1, 7), // h+0 (patched below)
        Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        }, // h+4 return through the return sentry
    ];
    let caller = vec![
        Instr::Jalr {
            rd: Reg::RA,
            rs1: Reg::A5,
            offset: 0,
        }, // e+0 call the forward sentry
        Instr::Jal {
            rd: Reg::ZERO,
            offset: -4,
        }, // e+4 backward (not chased): call again
    ];
    let run_with_patch = |mode: (bool, bool)| -> Machine {
        let mut m = machine_mode(mode);
        let h = m.load_program(&callee);
        let e = m.load_program(&caller);
        m.set_entry(e);
        let sentry = m
            .boot_pcc(h)
            .seal_as_sentry(OType::Executable(1)) // forward, inherit posture
            .unwrap();
        m.cpu.write(Reg::A5, sentry);
        assert_eq!(m.run(2_000), ExitReason::CycleLimit);
        if mode == (true, true) {
            let st = m.block_stats();
            assert!(
                st.sentry_ic_hits > 10,
                "call site must be served by the inline cache (hits={})",
                st.sentry_ic_hits
            );
        }
        let misses_before = m.block_stats().sentry_ic_misses;
        m.patch_code(h, addi(Reg::A1, Reg::A1, 1000)).unwrap();
        assert_eq!(m.run(2_000), ExitReason::CycleLimit);
        if mode == (true, true) {
            assert!(
                m.block_stats().sentry_ic_misses > misses_before,
                "the patch must force an inline-cache re-install"
            );
        }
        m
    };
    let a1 = run_with_patch(MODES[0]).cpu.read_int(Reg::A1);
    assert!(a1 >= 1000, "patched callee must run (a1={a1})");
    for mode in [MODES[1], MODES[2]] {
        let m = run_with_patch(mode);
        let s = run_with_patch(MODES[0]);
        assert_same_state(&m, &s, &format!("mode {mode:?} vs stepwise"));
    }
}

#[test]
fn block_trace_events_are_opt_in_and_accurate() {
    // With the flag set, compilation and invalidation are visible as trace
    // events; with it clear (the default), the trace stays byte-identical
    // to a cache-off machine's (checked by the timer test above).
    let mut m = machine_with(true);
    let prog = vec![
        addi(Reg::A0, Reg::A0, 1),
        addi(Reg::A0, Reg::A0, 1),
        Instr::Halt,
    ];
    let e = m.load_program(&prog);
    m.set_entry(e);
    m.set_block_trace(true);
    m.set_tracer(Tracer::timeline());
    assert_eq!(m.run(1_000), ExitReason::Halted(2));
    let kinds: Vec<EventKind> = m
        .tracer()
        .unwrap()
        .events()
        .iter()
        .map(|ev| ev.kind)
        .collect();
    assert_eq!(kinds, vec![EventKind::BlockCompiled { pc: e, len: 3 }]);

    m.patch_code(e + 4, addi(Reg::A0, Reg::A0, 2)).unwrap();
    let kinds: Vec<EventKind> = m
        .tracer()
        .unwrap()
        .events()
        .iter()
        .map(|ev| ev.kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            EventKind::BlockCompiled { pc: e, len: 3 },
            EventKind::BlockInvalidated {
                addr: e + 4,
                blocks: 1
            },
        ]
    );
}
