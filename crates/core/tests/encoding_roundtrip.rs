//! Property tests for the binary instruction codec: random well-formed
//! instructions round-trip bit-exactly, and decode is total (never panics)
//! over arbitrary words.

use cheriot_core::encoding::{decode, encode, encode_program};
use cheriot_core::insn::{
    AluOp, BranchCond, CapField, CsrId, CsrOp, Instr, MemWidth, MulOp, Reg, ScrId,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg)
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let imm12 = -2048i32..2048;
    prop_oneof![
        (arb_reg(), 0u32..(1 << 20)).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (arb_reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm)| Instr::Auipcc { rd, imm }),
        (arb_reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm)| Instr::Auicgp { rd, imm }),
        (arb_alu(), arb_reg(), arb_reg(), imm12.clone()).prop_map(|(op, rd, rs1, imm)| {
            let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                imm.rem_euclid(32)
            } else {
                imm
            };
            Instr::OpImm { op, rd, rs1, imm }
        }),
        (arb_alu(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::MulDiv {
            op: MulOp::Mulhu,
            rd,
            rs1,
            rs2
        }),
        (arb_reg(), arb_reg(), -2048i32..2047).prop_map(|(rs1, rs2, o)| Instr::Branch {
            cond: BranchCond::Ltu,
            rs1,
            rs2,
            offset: o & !1
        }),
        (arb_reg(), -(1i32 << 20)..(1 << 20)).prop_map(|(rd, o)| Instr::Jal { rd, offset: o & !1 }),
        (arb_reg(), arb_reg(), imm12.clone()).prop_map(|(rd, rs1, offset)| Instr::Jalr {
            rd,
            rs1,
            offset
        }),
        (arb_reg(), arb_reg(), imm12.clone()).prop_map(|(rd, rs1, offset)| Instr::Load {
            width: MemWidth::W,
            signed: false,
            rd,
            rs1,
            offset
        }),
        (arb_reg(), arb_reg(), imm12.clone()).prop_map(|(rs2, rs1, offset)| Instr::Store {
            width: MemWidth::H,
            rs2,
            rs1,
            offset
        }),
        (arb_reg(), arb_reg(), imm12.clone()).prop_map(|(rd, rs1, offset)| Instr::Clc {
            rd,
            rs1,
            offset
        }),
        (arb_reg(), arb_reg(), imm12.clone()).prop_map(|(rs2, rs1, offset)| Instr::Csc {
            rs2,
            rs1,
            offset
        }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::CGet {
            field: CapField::Len,
            rd,
            rs1
        }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs1, rs2)| Instr::CIncAddr {
            rd,
            rs1,
            rs2
        }),
        (arb_reg(), arb_reg(), arb_reg(), any::<bool>()).prop_map(|(rd, rs1, rs2, exact)| {
            Instr::CSetBounds {
                rd,
                rs1,
                rs2,
                exact,
            }
        }),
        (arb_reg(), arb_reg(), imm12).prop_map(|(rd, rs1, imm)| Instr::CIncAddrImm {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), 0u32..4096).prop_map(|(rd, rs1, imm)| Instr::CSetBoundsImm {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::CSpecialRw {
            rd,
            rs1,
            scr: ScrId::Mtdc
        }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::Csr {
            op: CsrOp::Rs,
            rd,
            rs1,
            csr: CsrId::Mshwm
        }),
        Just(Instr::Ecall),
        Just(Instr::Mret),
        Just(Instr::Wfi),
        Just(Instr::Fence),
        Just(Instr::Halt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn round_trip(i in arb_instr()) {
        let w = encode(&i).expect("arbitrary well-formed instruction encodes");
        let back = decode(w).expect("own encodings decode");
        prop_assert_eq!(back, i, "word {:#010x}", w);
    }

    #[test]
    fn decode_never_panics(w in any::<u32>()) {
        let _ = decode(w); // Ok or Err, never panic
    }

    #[test]
    fn decode_encode_decode_stable(w in any::<u32>()) {
        if let Ok(i) = decode(w) {
            let w2 = encode(&i).expect("decoded instructions re-encode");
            let i2 = decode(w2).expect("and decode again");
            prop_assert_eq!(i, i2);
        }
    }

    #[test]
    fn program_expansion_preserves_length_mapping(seed in any::<u64>()) {
        // A program of n instructions with k large immediates encodes to
        // n + k words.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..40usize);
        let mut prog = Vec::new();
        let mut expansions = 0;
        for _ in 0..n {
            if rng.gen_bool(0.2) {
                prog.push(Instr::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::ZERO,
                    imm: rng.gen_range(4096..i32::MAX), // guaranteed large
                });
                expansions += 1;
            } else {
                prog.push(Instr::NOP);
            }
        }
        let words = encode_program(&prog).unwrap();
        prop_assert_eq!(words.len(), n + expansions);
    }
}
