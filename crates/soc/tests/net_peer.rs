//! NetLoopback peer-mode and backpressure tests: the host-side frame
//! hook the farm fabric routes through, and the drop-with-counter
//! contract (`RX_DROPPED`) replacing silent discard on ring overflow.

use cheriot_core::{layout, CoreModel, Machine, MachineConfig};
use cheriot_soc::{
    net_flush_rx, net_host_rx_pending, net_push_rx, net_rx_dropped, net_set_peer, net_take_tx,
    NetLoopback, NET_HOST_QUEUE, NET_MAX_FRAME,
};

const NET: u32 = 0x8800_0000;
const TX_DESC: u32 = layout::SRAM_BASE + 0x1000;
const TX_BUF: u32 = layout::SRAM_BASE + 0x1100;
const RX_DESC: u32 = layout::SRAM_BASE + 0x1200;
const RX_BUF: u32 = layout::SRAM_BASE + 0x1300;

fn machine_with_nic() -> Machine {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    m.bus
        .attach(NET, Some(3), Box::new(NetLoopback::new()))
        .unwrap();
    m
}

fn write_desc(m: &mut Machine, addr: u32, own: bool, buf: u32, len: u32) {
    let mut raw = [0u8; 16];
    raw[0..4].copy_from_slice(&u32::from(own).to_le_bytes());
    raw[4..8].copy_from_slice(&buf.to_le_bytes());
    raw[8..12].copy_from_slice(&len.to_le_bytes());
    m.dma_write(addr, &raw).unwrap();
}

fn desc_status(m: &mut Machine, addr: u32) -> u32 {
    m.bus_read(addr + 0xc, 4).unwrap()
}

/// Programs TX ring (2 descriptors) and RX ring (`rx_descs` hardware-owned
/// descriptors out of 2) through the NIC registers.
fn program_rings(m: &mut Machine, rx_owned: u32) {
    m.bus_write(NET, 4, TX_DESC).unwrap();
    m.bus_write(NET + 0x04, 4, 2).unwrap();
    m.bus_write(NET + 0x08, 4, RX_DESC).unwrap();
    m.bus_write(NET + 0x0c, 4, 2).unwrap();
    for slot in 0..2 {
        write_desc(
            m,
            RX_DESC + slot * 16,
            slot < rx_owned,
            RX_BUF + slot * 64,
            0,
        );
    }
}

fn queue_tx(m: &mut Machine, slot: u32, payload: &[u8]) {
    let buf = TX_BUF + slot * 64;
    m.dma_write(buf, payload).unwrap();
    write_desc(m, TX_DESC + slot * 16, true, buf, payload.len() as u32);
}

#[test]
fn loopback_rx_overflow_drops_with_counter() {
    let mut m = machine_with_nic();
    program_rings(&mut m, 1); // one free RX descriptor, two TX frames
    queue_tx(&mut m, 0, b"first");
    queue_tx(&mut m, 1, b"second");
    m.bus_write(NET + 0x10, 4, 1).unwrap(); // kick

    // First frame landed; second had no RX descriptor: error status on
    // its TX descriptor, counted — never silently discarded.
    assert_eq!(m.bus_read(NET + 0x14, 4).unwrap(), 1, "frames delivered");
    assert_eq!(desc_status(&mut m, TX_DESC), 0b01);
    assert_eq!(desc_status(&mut m, TX_DESC + 16), 0b10);
    assert_eq!(m.bus_read(NET + 0x20, 4).unwrap(), 1, "RX_DROPPED register");
    assert_eq!(net_rx_dropped(&mut m), 1);
    let mut got = [0u8; 5];
    m.dma_read(RX_BUF, &mut got).unwrap();
    assert_eq!(&got, b"first");
}

#[test]
fn peer_mode_routes_tx_to_host_and_host_rx_to_guest() {
    let mut m = machine_with_nic();
    assert!(net_set_peer(&mut m, true));
    program_rings(&mut m, 2);
    queue_tx(&mut m, 0, b"outbound");
    m.bus_write(NET + 0x10, 4, 1).unwrap();

    // TX went to the host mailbox, not the local RX ring.
    let tx = net_take_tx(&mut m);
    assert_eq!(tx, vec![b"outbound".to_vec()]);
    assert!(net_take_tx(&mut m).is_empty(), "mailbox is drained");
    assert_eq!(desc_status(&mut m, TX_DESC), 0b01, "TX always succeeds");
    assert_eq!(
        desc_status(&mut m, RX_DESC),
        0,
        "peer TX must not touch the RX ring"
    );

    // Host-side frame flows the other way, raising the RX event.
    m.bus_write(NET + 0x1c, 4, 1).unwrap(); // EV_ENABLE
    assert!(net_push_rx(&mut m, b"inbound".to_vec()));
    assert_eq!(net_flush_rx(&mut m), 1);
    assert_eq!(desc_status(&mut m, RX_DESC), 0b01);
    assert_eq!(m.bus_read(NET + 0x18, 4).unwrap(), 1, "EV_PENDING");
    let mut got = [0u8; 7];
    m.dma_read(RX_BUF, &mut got).unwrap();
    assert_eq!(&got, b"inbound");
    assert_eq!(net_rx_dropped(&mut m), 0);
}

#[test]
fn host_rx_backpressure_keeps_frames_queued_until_descriptors_return() {
    let mut m = machine_with_nic();
    assert!(net_set_peer(&mut m, true));
    program_rings(&mut m, 1); // a single hardware-owned RX descriptor
    for i in 0..3u8 {
        assert!(net_push_rx(&mut m, vec![i; 8]));
    }

    // Only one descriptor: one frame lands, two wait host-side. Nothing
    // is dropped — backpressure, not loss.
    assert_eq!(net_flush_rx(&mut m), 1);
    assert_eq!(net_host_rx_pending(&mut m), 2);
    assert_eq!(net_rx_dropped(&mut m), 0);

    // The guest returns both descriptors; the queue drains in order.
    write_desc(&mut m, RX_DESC, true, RX_BUF, 0);
    write_desc(&mut m, RX_DESC + 16, true, RX_BUF + 64, 0);
    assert_eq!(net_flush_rx(&mut m), 2);
    assert_eq!(net_host_rx_pending(&mut m), 0);
    let mut got = [0u8; 8];
    m.dma_read(RX_BUF + 64, &mut got).unwrap();
    assert_eq!(got, [1u8; 8], "frames stay in arrival order");
}

#[test]
fn host_queue_overflow_and_oversized_frames_drop_with_counter() {
    let mut m = machine_with_nic();
    assert!(net_set_peer(&mut m, true));
    program_rings(&mut m, 0); // no descriptors: everything queues

    for _ in 0..NET_HOST_QUEUE {
        assert!(net_push_rx(&mut m, vec![0u8; 4]));
    }
    assert!(!net_push_rx(&mut m, vec![0u8; 4]), "queue is bounded");
    assert_eq!(net_rx_dropped(&mut m), 1);
    assert!(
        !net_push_rx(&mut m, vec![0u8; NET_MAX_FRAME as usize + 1]),
        "oversized frames never queue"
    );
    assert_eq!(net_rx_dropped(&mut m), 2);
    assert_eq!(net_host_rx_pending(&mut m), NET_HOST_QUEUE);
    assert_eq!(m.bus_read(NET + 0x20, 4).unwrap(), 2);
}

#[test]
fn helpers_are_noops_without_a_nic() {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    assert!(!net_set_peer(&mut m, true));
    assert!(net_take_tx(&mut m).is_empty());
    assert!(!net_push_rx(&mut m, b"x".to_vec()));
    assert_eq!(net_flush_rx(&mut m), 0);
    assert_eq!(net_rx_dropped(&mut m), 0);
    assert_eq!(net_host_rx_pending(&mut m), 0);
}
