//! End-to-end tests of the declarative SoC platform: manifest parsing,
//! booting every bundled manifest through the guest driver, dispatch-mode
//! and snapshot equivalence with live devices, DMA coherence properties
//! (tag clearing, dirty tracking, block-cache invalidation), and
//! interrupt delivery through the UART → interrupt-controller path.

use cheriot_core::insn::{AluOp, Instr, Reg};
use cheriot_core::{layout, CoreKind, CoreModel, ExitReason, Machine, MachineConfig};
use cheriot_soc::{MachineSpec, NetLoopback};
use cheriot_workloads::soc_demo::{run_soc_demo, SocDemoLayout};
use proptest::prelude::*;

/// Capability-granule size in bytes.
const GRANULE: u32 = 8;

fn layout_of(spec: &MachineSpec) -> SocDemoLayout {
    SocDemoLayout::from_devices(spec.devices.iter().map(|d| (d.kind.as_str(), d.base)))
}

fn bundled_manifests() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/manifests");
    let mut out: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("bundled manifest directory")
        .map(|e| {
            let p = e.unwrap().path();
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).unwrap(),
            )
        })
        .collect();
    out.sort();
    assert!(
        out.len() >= 3,
        "expected the bundled default/iot/net manifests, found {out:?}"
    );
    out
}

// ---------------------------------------------------------------- manifests

#[test]
fn toml_manifest_parses_fields_and_devices() {
    let spec = MachineSpec::parse(
        "# platform\n\
         [machine]\n\
         core = \"flute\"\n\
         sram = 0x4_0000\n\
         intc = 0x8500_0000\n\
         \n\
         [[device]]\n\
         kind = \"uart\"\n\
         base = 0x8200_0000\n\
         irq = 0\n\
         \n\
         [[device]]\n\
         kind = \"dma\"\n\
         base = 0x8700_0000\n",
    )
    .unwrap();
    assert_eq!(spec.core, CoreKind::Flute);
    assert_eq!(spec.sram_size, Some(0x4_0000));
    assert_eq!(spec.intc_base, Some(0x8500_0000));
    assert_eq!(spec.devices.len(), 2);
    assert_eq!(spec.devices[0].kind, "uart");
    assert_eq!(spec.devices[0].irq, Some(0));
    assert_eq!(spec.devices[1].kind, "dma");
    assert_eq!(spec.devices[1].base, 0x8700_0000);
    assert_eq!(spec.devices[1].irq, None);
}

#[test]
fn json_manifest_parses_numbers_and_hex_strings() {
    let spec = MachineSpec::parse(
        r#"{"machine": {"core": "ibex", "sram": 262144},
            "devices": [{"kind": "net", "base": "0x88000000", "irq": 3}]}"#,
    )
    .unwrap();
    assert_eq!(spec.core, CoreKind::Ibex);
    assert_eq!(spec.sram_size, Some(262_144));
    assert_eq!(spec.devices.len(), 1);
    assert_eq!(spec.devices[0].base, 0x8800_0000);
    assert_eq!(spec.devices[0].irq, Some(3));
}

#[test]
fn manifest_errors_are_reported_with_context() {
    // Unknown device kind surfaces at build time.
    let spec = MachineSpec::parse("[[device]]\nkind = \"gpu\"\nbase = 0x8200_0000\n").unwrap();
    let err = spec.build().unwrap_err();
    assert!(err.msg.contains("gpu"), "{err}");

    // Bad TOML carries a line number.
    let err = MachineSpec::parse("[machine]\ncore = \n").unwrap_err();
    assert_eq!(err.line, Some(2), "{err}");

    // Colliding windows are rejected.
    let spec = MachineSpec::parse(
        "[[device]]\nkind = \"uart\"\nbase = 0x8200_0000\n\
         [[device]]\nkind = \"dma\"\nbase = 0x8200_0000\n",
    )
    .unwrap();
    assert!(spec.build().is_err());
}

// ------------------------------------------------------------------- boot

#[test]
fn every_bundled_manifest_boots_and_passes_the_guest_driver() {
    for (name, text) in bundled_manifests() {
        let spec = MachineSpec::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut m = spec.build().unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = run_soc_demo(&mut m, &layout_of(&spec));
        assert!(report.passed(), "{name}: {report:?}");
    }
}

#[test]
fn default_manifest_is_byte_identical_to_plain_machine() {
    let text = include_str!("../manifests/default.toml");
    let spec = MachineSpec::parse(text).unwrap();
    let mut from_manifest = spec.build().unwrap();
    let mut plain = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let layout = layout_of(&spec);
    let a = run_soc_demo(&mut from_manifest, &layout);
    let b = run_soc_demo(&mut plain, &layout);
    assert_eq!(a, b);
    assert_eq!(from_manifest.cycles, plain.cycles);
    assert_eq!(from_manifest.stats, plain.stats);
}

// ---------------------------------------------------- dispatch equivalence

fn iot_machine(mode: (bool, bool)) -> (Machine, SocDemoLayout) {
    let spec = MachineSpec::parse(include_str!("../manifests/iot.toml")).unwrap();
    let mut m = spec.build().unwrap();
    m.cfg.block_cache = mode.0;
    m.cfg.block_chain = mode.1;
    (m, layout_of(&spec))
}

#[test]
fn three_mode_dispatch_equivalence_with_active_devices() {
    use cheriot_core::trace::Tracer;
    let modes = [(false, false), (true, false), (true, true)];
    let mut runs = Vec::new();
    for &mode in &modes {
        let (mut m, layout) = iot_machine(mode);
        m.set_tracer(Tracer::timeline());
        let report = run_soc_demo(&mut m, &layout);
        assert!(report.passed(), "mode {mode:?}: {report:?}");
        runs.push((m, report));
    }
    let (s, s_report) = &runs[0];
    for ((m, report), mode) in runs[1..].iter().zip(&modes[1..]) {
        assert_eq!(report, s_report, "mode {mode:?}: report diverged");
        assert_eq!(m.cycles, s.cycles, "mode {mode:?}: cycles diverged");
        assert_eq!(m.stats, s.stats, "mode {mode:?}: stats diverged");
        assert_eq!(m.cpu.pc(), s.cpu.pc(), "mode {mode:?}: PC diverged");
        for i in 0..16u8 {
            let r = Reg(i);
            assert_eq!(
                m.cpu.read(r),
                s.cpu.read(r),
                "mode {mode:?}: register c{i} diverged"
            );
        }
        assert_eq!(
            m.tracer().unwrap().events(),
            s.tracer().unwrap().events(),
            "mode {mode:?}: trace event streams diverged"
        );
    }
}

// ------------------------------------------------------------- snapshots

#[test]
fn snapshot_roundtrip_preserves_live_device_state() {
    let (mut m, layout) = iot_machine((true, true));

    // Park state in every device: console bytes, a pending UART RX FIFO,
    // latched interrupt lines, and a completed net loopback (frame
    // counter, ring pointers).
    let baseline = run_soc_demo(&mut m, &layout);
    assert!(baseline.passed(), "{baseline:?}");
    assert!(m.uart_inject_rx(b"pending"));
    m.raise_device_irq(0b1010);

    let snap = m.snapshot();

    // Perturb everything the snapshot should roll back.
    m.console.extend_from_slice(b"garbage");
    assert_eq!(m.bus_read(layout.uart, 4).unwrap(), u32::from(b'p'));
    m.bus_write(layout::INTC_BASE + 4, 4, 0b1010).unwrap(); // unmask
    m.bus_read(layout::INTC_BASE + 8, 4).unwrap(); // claim a line
    m.restore_from(&snap);

    // Console and interrupt-controller state rolled back.
    assert_eq!(m.console, cheriot_workloads::soc_demo::SOC_DEMO_CONSOLE);
    assert_eq!(m.bus.intc.pending, 0b1010);
    assert_eq!(m.bus.intc.mask, 0);
    // The RX FIFO is intact: the byte consumed after the snapshot is back.
    assert_eq!(m.bus_read(layout.uart + 4, 4).unwrap() & 0b10, 0b10);
    assert_eq!(m.bus_read(layout.uart, 4).unwrap(), u32::from(b'p'));
    // The net device's frame counter survived.
    let net = layout.net.unwrap();
    assert_eq!(m.bus_read(net + 0x14, 4).unwrap(), 1);
}

#[test]
fn mid_run_snapshot_resumes_to_identical_final_state() {
    for mode in [(false, false), (true, false), (true, true)] {
        let (mut m, layout) = iot_machine(mode);
        let entry = m.load_program(&cheriot_workloads::soc_demo_program(&layout));
        m.set_entry(entry);

        // Run partway in small slices, snapshot, then finish.
        while m.cycles < 40 && m.exit_status().is_none() {
            m.run(10);
        }
        let snap = m.snapshot();
        let exit_a = m.run(1_000_000);
        let (cycles_a, console_a, a0_a) = (m.cycles, m.console.clone(), m.cpu.read_int(Reg::A0));

        // Restore and replay: the continuation must be byte-identical.
        m.restore_from(&snap);
        let exit_b = m.run(1_000_000);
        assert_eq!(exit_a, exit_b, "mode {mode:?}");
        assert_eq!(m.cycles, cycles_a, "mode {mode:?}");
        assert_eq!(m.console, console_a, "mode {mode:?}");
        assert_eq!(m.cpu.read_int(Reg::A0), a0_a, "mode {mode:?}");
        assert_eq!(
            exit_a,
            ExitReason::Halted(cheriot_workloads::expected_checksum(&layout)),
            "mode {mode:?}"
        );
    }
}

// ------------------------------------------------------- DMA coherence

/// Plants a capability on every granule of a window, DMA-writes `len`
/// bytes at `off` into it, and checks the three coherence obligations:
/// exactly the overlapped granules lose their tags, every covered page is
/// dirty, and the bytes land.
fn dma_window_check(off: u32, len: usize) {
    let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
    let window = layout::SRAM_BASE + 0x8000;
    let granules = 40u32;
    for g in 0..granules {
        let a = window + g * GRANULE;
        m.sram
            .write_cap(a, cheriot_cap::Capability::root_mem_rw().with_address(a))
            .unwrap();
    }
    let dst = window + off;
    let buf: Vec<u8> = (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
        .collect();
    m.dma_write(dst, &buf).unwrap();

    for g in 0..granules {
        let a = window + g * GRANULE;
        let overlaps = a < dst + len as u32 && dst < a + GRANULE;
        assert_eq!(
            m.sram.tag_at(a),
            !overlaps,
            "granule {a:#010x} (dst {dst:#010x} len {len}): tag must be cleared iff overlapped"
        );
    }
    let mut got = vec![0u8; len];
    m.dma_read(dst, &mut got).unwrap();
    assert_eq!(got, buf);
    let mut page = dst & !(4096 - 1);
    while page < dst + len as u32 {
        assert!(
            m.sram.page_is_dirty(page),
            "page {page:#010x} covering the DMA write must be dirty"
        );
        page += 4096;
    }
}

proptest! {
    #[test]
    fn dma_writes_clear_overlapping_tags_and_mark_dirty(
        off in 0u32..256,
        len in 1usize..128,
    ) {
        dma_window_check(off, len);
    }
}

#[test]
fn dma_into_forked_soc_machine_leaves_sibling_untouched() {
    // Every SoC device stores through `Machine::dma_write`, so this is
    // the one CoW break point device traffic can take: a DMA store into
    // one fork of a shared boot image must not perturb its sibling.
    let spec = MachineSpec::parse(include_str!("../manifests/iot.toml")).unwrap();
    let mut m = spec.build().unwrap();
    let snap = m.snapshot();
    let mut a = snap.to_machine();
    let mut b = snap.to_machine();
    assert!(a.sram.shared_pages() > 0, "forks must share the boot image");
    let dst = layout::SRAM_BASE + 0x8000;
    let buf: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(13)).collect();
    a.dma_write(dst, &buf).unwrap();
    assert!(a.sram.cow_stats().breaks >= 1, "DMA must break CoW");
    assert!(
        a.sram.shared_pages() < b.sram.shared_pages(),
        "only the written fork loses sharing"
    );
    let mut got = vec![0u8; buf.len()];
    a.dma_read(dst, &mut got).unwrap();
    assert_eq!(got, buf);
    // The sibling is still byte-identical to the capture point...
    let fresh = snap.to_machine();
    assert!(b.sram.content_eq(&fresh.sram), "sibling diverged");
    assert_eq!(b.sram.cow_stats().breaks, 0);
    // ...and still boots through the full guest demo with live devices.
    let report = run_soc_demo(&mut b, &layout_of(&spec));
    assert!(report.passed(), "{report:?}");
}

#[test]
fn dma_store_into_executed_code_invalidates_covering_blocks() {
    // A spin loop runs hot (cached/chained blocks built), then DMA
    // rewrites its increment instruction mid-run. Every dispatch mode
    // must observe the new instruction on the next iteration — the
    // stepwise loop is the reference the cached modes must match.
    let patched = Instr::OpImm {
        op: AluOp::Add,
        rd: Reg::A0,
        rs1: Reg::A0,
        imm: 100,
    };
    let word = cheriot_core::encode(&patched).unwrap();
    let mut finals = Vec::new();
    for mode in [(false, false), (true, false), (true, true)] {
        let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
        m.cfg.block_cache = mode.0;
        m.cfg.block_chain = mode.1;
        let entry = m.load_program(&[
            Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 1,
            },
            Instr::Jal {
                rd: Reg::ZERO,
                offset: -4,
            },
        ]);
        m.set_entry(entry);
        assert_eq!(m.run(1_000), ExitReason::CycleLimit);

        let gen0 = m.code_generation();
        m.dma_write(entry, &word.to_le_bytes()).unwrap();
        assert!(
            m.code_generation() > gen0,
            "mode {mode:?}: DMA into code must bump the block-cache generation"
        );
        assert_eq!(m.code_at(entry), Some(patched), "mode {mode:?}");

        assert_eq!(m.run(1_000), ExitReason::CycleLimit);
        finals.push((m.cycles, m.cpu.read_int(Reg::A0), m.cpu.pc()));
    }
    assert_eq!(
        finals[0], finals[1],
        "cached dispatch diverged from stepwise"
    );
    assert_eq!(
        finals[0], finals[2],
        "chained dispatch diverged from stepwise"
    );
    // The patched opcode must actually have taken effect: with 100-per-2
    // cycles the counter is far beyond what the original +1 loop reaches.
    assert!(
        finals[0].1 > 10_000,
        "patched increment not observed (a0 = {})",
        finals[0].1
    );
}

// ------------------------------------------------------------ interrupts

#[test]
fn uart_rx_interrupt_delivered_through_the_intc() {
    use cheriot_asm::Asm;
    let modes = [(false, false), (true, false), (true, true)];
    let mut finals = Vec::new();
    for &mode in &modes {
        let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
        m.cfg.block_cache = mode.0;
        m.cfg.block_chain = mode.1;

        // Handler: drain the RX byte first (the UART's level drops), then
        // claim — claiming before draining would let the still-high level
        // re-latch the line and re-enter the handler after mret.
        let mut h = Asm::new();
        h.lw(Reg::A3, 0, Reg::A2); // RXDATA
        h.lw(Reg::A1, 8, Reg::S1); // CLAIM
        h.mret();
        let hv = m.load_program(&h.assemble());

        // Main: point s1 at the intc and a2 at the UART, enable the RX
        // interrupt (UART CTRL bit0, intc mask line 0), then spin.
        let mut a = Asm::new();
        a.li(Reg::A5, layout::INTC_BASE as i32);
        a.csetaddr(Reg::S1, Reg::T0, Reg::A5);
        a.li(Reg::A5, layout::CONSOLE_BASE as i32);
        a.csetaddr(Reg::A2, Reg::T0, Reg::A5);
        a.li(Reg::A5, 1);
        a.sw(Reg::A5, 8, Reg::A2); // UART CTRL: RX irq enable
        a.sw(Reg::A5, 4, Reg::S1); // intc MASK: line 0
        let spin = a.label();
        a.bind(spin);
        a.addi(Reg::A0, Reg::A0, 1);
        a.j(spin);
        let entry = m.load_program(&a.assemble());
        m.set_entry(entry);
        m.cpu.mtcc = m.boot_pcc(hv);
        m.cpu.interrupts_enabled = true;

        assert_eq!(m.run(200), ExitReason::CycleLimit);
        assert!(m.uart_inject_rx(b"Z"));
        assert_eq!(m.run(200), ExitReason::CycleLimit);

        assert_eq!(m.cpu.read_int(Reg::A1), 0, "claim must return line 0");
        assert_eq!(m.cpu.read_int(Reg::A3), u32::from(b'Z'));
        assert_eq!(m.bus.intc.pending, 0, "level dropped after RX drain");
        assert!(
            m.stats.interrupts >= 1,
            "mode {mode:?}: external interrupt not delivered"
        );
        finals.push((m.cycles, m.cpu.pc(), m.cpu.read_int(Reg::A0), m.stats));
    }
    assert_eq!(finals[0], finals[1], "cached mode diverged");
    assert_eq!(finals[0], finals[2], "chained mode diverged");
}

#[test]
fn masked_devices_leave_oblivious_guests_untouched() {
    // A guest that never programs the intc must run byte-identically with
    // and without extra devices latching interrupt levels.
    let (mut with_devices, _) = iot_machine((true, true));
    let mut plain = Machine::new(MachineConfig::new(CoreModel::ibex()));
    plain.cfg.block_cache = true;
    plain.cfg.block_chain = true;
    with_devices.uart_inject_rx(b"x"); // UART CTRL off: level stays low
    with_devices.raise_device_irq(0b100); // latched, but mask = 0

    for m in [&mut with_devices, &mut plain] {
        let entry = m.load_program(&[
            Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 3,
            },
            Instr::Jal {
                rd: Reg::ZERO,
                offset: -4,
            },
        ]);
        m.set_entry(entry);
        m.run(5_000);
    }
    assert_eq!(with_devices.cycles, plain.cycles);
    assert_eq!(with_devices.stats, plain.stats);
    assert_eq!(
        with_devices.cpu.read_int(Reg::A0),
        plain.cpu.read_int(Reg::A0)
    );
}

#[test]
fn net_loopback_reports_descriptor_anchor_for_fault_injection() {
    let (mut m, layout) = iot_machine((true, true));
    assert_eq!(m.dma_desc_addr(), None);
    let net = layout.net.unwrap();
    m.bus_write(net, 4, layout::SRAM_BASE + 0x3000).unwrap();
    m.bus_write(net + 4, 4, 1).unwrap();
    assert_eq!(m.dma_desc_addr(), Some(layout::SRAM_BASE + 0x3000));
    assert!(m.bus.device_mut::<NetLoopback>().is_some());
}
