//! Manifest-driven machine configuration: parse a small TOML or JSON
//! document declaring the core, SRAM size, and device placements, and
//! build a [`Machine`] with exactly those devices on its bus.
//!
//! The build environment is offline, so both formats are hand-rolled
//! subsets (the same policy as the in-tree `rand`/`proptest` compat
//! crates): enough TOML for `[machine]` + repeated `[[device]]` tables
//! of scalar keys, and enough JSON for the equivalent object shape.
//!
//! # TOML manifest
//!
//! ```toml
//! [machine]
//! core = "ibex"          # "ibex" | "flute"
//! sram = 0x80000         # bytes (optional, default 512 KiB)
//! intc = 0x85000000      # interrupt-controller window (optional)
//!
//! [[device]]
//! kind = "uart"          # "uart" | "timer" | "dma" | "net"
//! base = 0x82000000      # 4 KiB-aligned MMIO window
//! irq  = 0               # interrupt line (optional)
//! ```
//!
//! # JSON manifest
//!
//! ```json
//! {"machine": {"core": "ibex"},
//!  "devices": [{"kind": "uart", "base": "0x82000000", "irq": 0}]}
//! ```
//!
//! (Integers may be JSON numbers or `"0x"`-prefixed strings — JSON has
//! no hex literals and MMIO bases are unreadable in decimal.)

use crate::devices::{DmaEngine, LiteTimer, NetLoopback};
use cheriot_core::bus::{DeviceBus, MmioDevice, Uart};
use cheriot_core::machine::{layout, Machine, MachineConfig};
use cheriot_core::pipeline::CoreModel;
use cheriot_core::CoreKind;
use std::fmt;

/// A manifest error: what went wrong and (for parse errors) on which
/// line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestError {
    /// Human-readable description.
    pub msg: String,
    /// 1-based source line, when the error is tied to one.
    pub line: Option<usize>,
}

impl ManifestError {
    fn new(msg: impl Into<String>) -> ManifestError {
        ManifestError {
            msg: msg.into(),
            line: None,
        }
    }

    fn at(line: usize, msg: impl Into<String>) -> ManifestError {
        ManifestError {
            msg: msg.into(),
            line: Some(line),
        }
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "manifest line {n}: {}", self.msg),
            None => write!(f, "manifest: {}", self.msg),
        }
    }
}

impl std::error::Error for ManifestError {}

/// One declared device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Device kind: `uart`, `timer`, `dma`, or `net`.
    pub kind: String,
    /// MMIO window base (4 KiB aligned).
    pub base: u32,
    /// Interrupt line, if the device is wired to one.
    pub irq: Option<u32>,
}

/// A parsed machine manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineSpec {
    /// Core model (Ibex or Flute class).
    pub core: CoreKind,
    /// SRAM size override in bytes (manifest `sram`).
    pub sram_size: Option<u32>,
    /// Interrupt-controller window base (`None` = the default
    /// [`layout::INTC_BASE`]).
    pub intc_base: Option<u32>,
    /// Devices to attach, in declaration order (bus ids follow it).
    pub devices: Vec<DeviceSpec>,
}

impl Default for MachineSpec {
    /// The default platform: an Ibex-class core with the UART on the
    /// legacy console window — the same machine [`Machine::new`] builds.
    fn default() -> MachineSpec {
        MachineSpec {
            core: CoreKind::Ibex,
            sram_size: None,
            intc_base: None,
            devices: vec![DeviceSpec {
                kind: "uart".to_string(),
                base: layout::CONSOLE_BASE,
                irq: Some(0),
            }],
        }
    }
}

impl MachineSpec {
    /// Parses a manifest, sniffing the format: a document whose first
    /// non-whitespace byte is `{` is JSON, anything else is TOML.
    ///
    /// # Errors
    ///
    /// Syntax errors (with line numbers for TOML), unknown keys or
    /// sections, and non-scalar values.
    pub fn parse(text: &str) -> Result<MachineSpec, ManifestError> {
        if text.trim_start().starts_with('{') {
            MachineSpec::parse_json(text)
        } else {
            MachineSpec::parse_toml(text)
        }
    }

    /// Builds the machine: core config, SRAM sizing (heap in the upper
    /// half, as [`MachineConfig::new`] lays it out), and a bus populated
    /// with exactly the declared devices.
    ///
    /// # Errors
    ///
    /// Unknown device kinds and bus conflicts (misaligned bases,
    /// overlapping windows, out-of-range IRQ lines).
    pub fn build(&self) -> Result<Machine, ManifestError> {
        let core = match self.core {
            CoreKind::Ibex => CoreModel::ibex(),
            CoreKind::Flute => CoreModel::flute(),
        };
        let mut cfg = MachineConfig::new(core);
        if let Some(sram) = self.sram_size {
            cfg.sram_size = sram;
            cfg.heap_offset = sram / 2;
            cfg.heap_size = sram / 2;
        }
        let mut m = Machine::new(cfg);
        let mut bus = DeviceBus::default();
        bus.set_intc_base(Some(self.intc_base.unwrap_or(layout::INTC_BASE)))
            .map_err(ManifestError::new)?;
        for d in &self.devices {
            let dev: Box<dyn MmioDevice> = match d.kind.as_str() {
                "uart" => Box::new(Uart::new()),
                "timer" => Box::new(LiteTimer::new()),
                "dma" => Box::new(DmaEngine::new()),
                "net" => Box::new(NetLoopback::new()),
                other => {
                    return Err(ManifestError::new(format!(
                        "unknown device kind `{other}` (expected uart, timer, dma, or net)"
                    )))
                }
            };
            bus.attach(d.base, d.irq, dev).map_err(ManifestError::new)?;
        }
        m.bus = bus;
        Ok(m)
    }

    // --- TOML ---------------------------------------------------------------

    fn parse_toml(text: &str) -> Result<MachineSpec, ManifestError> {
        #[derive(PartialEq)]
        enum Section {
            Top,
            Machine,
            Device,
        }
        let mut spec = MachineSpec {
            core: CoreKind::Ibex,
            sram_size: None,
            intc_base: None,
            devices: Vec::new(),
        };
        let mut section = Section::Top;
        for (i, raw) in text.lines().enumerate() {
            let n = i + 1;
            let line = match raw.split_once('#') {
                // A '#' inside a quoted string would be a comment here;
                // the manifest vocabulary has no string values containing
                // '#', so the simple split is fine.
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                match name.trim() {
                    "device" => {
                        section = Section::Device;
                        spec.devices.push(DeviceSpec {
                            kind: String::new(),
                            base: 0,
                            irq: None,
                        });
                    }
                    other => return Err(ManifestError::at(n, format!("unknown table `{other}`"))),
                }
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                match name.trim() {
                    "machine" => section = Section::Machine,
                    other => {
                        return Err(ManifestError::at(n, format!("unknown section `{other}`")))
                    }
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| ManifestError::at(n, format!("expected `key = value`: `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            match section {
                Section::Top => {
                    return Err(ManifestError::at(
                        n,
                        format!("key `{key}` outside a [machine] or [[device]] section"),
                    ))
                }
                Section::Machine => match key {
                    "core" => {
                        spec.core = parse_core(&parse_toml_string(value, n)?)
                            .map_err(|e| ManifestError::at(n, e))?;
                    }
                    "sram" => {
                        spec.sram_size =
                            Some(parse_int(value).map_err(|e| ManifestError::at(n, e))?)
                    }
                    "intc" => {
                        spec.intc_base =
                            Some(parse_int(value).map_err(|e| ManifestError::at(n, e))?)
                    }
                    other => {
                        return Err(ManifestError::at(
                            n,
                            format!("unknown machine key `{other}`"),
                        ))
                    }
                },
                Section::Device => {
                    let dev = spec.devices.last_mut().expect("section implies a device");
                    match key {
                        "kind" => dev.kind = parse_toml_string(value, n)?,
                        "base" => {
                            dev.base = parse_int(value).map_err(|e| ManifestError::at(n, e))?
                        }
                        "irq" => {
                            dev.irq = Some(parse_int(value).map_err(|e| ManifestError::at(n, e))?)
                        }
                        other => {
                            return Err(ManifestError::at(
                                n,
                                format!("unknown device key `{other}`"),
                            ))
                        }
                    }
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    // --- JSON ---------------------------------------------------------------

    fn parse_json(text: &str) -> Result<MachineSpec, ManifestError> {
        let value = json::parse(text).map_err(ManifestError::new)?;
        let obj = value.as_object("manifest")?;
        let mut spec = MachineSpec {
            core: CoreKind::Ibex,
            sram_size: None,
            intc_base: None,
            devices: Vec::new(),
        };
        for (key, v) in obj {
            match key.as_str() {
                "machine" => {
                    for (mk, mv) in v.as_object("machine")? {
                        match mk.as_str() {
                            "core" => {
                                spec.core = parse_core(mv.as_str("machine.core")?)
                                    .map_err(ManifestError::new)?
                            }
                            "sram" => spec.sram_size = Some(mv.as_u32("machine.sram")?),
                            "intc" => spec.intc_base = Some(mv.as_u32("machine.intc")?),
                            other => {
                                return Err(ManifestError::new(format!(
                                    "unknown machine key `{other}`"
                                )))
                            }
                        }
                    }
                }
                "devices" => {
                    for dv in v.as_array("devices")? {
                        let mut dev = DeviceSpec {
                            kind: String::new(),
                            base: 0,
                            irq: None,
                        };
                        for (dk, dvv) in dv.as_object("device")? {
                            match dk.as_str() {
                                "kind" => dev.kind = dvv.as_str("device.kind")?.to_string(),
                                "base" => dev.base = dvv.as_u32("device.base")?,
                                "irq" => dev.irq = Some(dvv.as_u32("device.irq")?),
                                other => {
                                    return Err(ManifestError::new(format!(
                                        "unknown device key `{other}`"
                                    )))
                                }
                            }
                        }
                        spec.devices.push(dev);
                    }
                }
                other => return Err(ManifestError::new(format!("unknown key `{other}`"))),
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), ManifestError> {
        for d in &self.devices {
            if d.kind.is_empty() {
                return Err(ManifestError::new("device missing `kind`"));
            }
            if d.base == 0 {
                return Err(ManifestError::new(format!(
                    "device `{}` missing `base`",
                    d.kind
                )));
            }
        }
        Ok(())
    }
}

fn parse_core(s: &str) -> Result<CoreKind, String> {
    match s {
        "ibex" => Ok(CoreKind::Ibex),
        "flute" => Ok(CoreKind::Flute),
        other => Err(format!("unknown core `{other}` (expected ibex or flute)")),
    }
}

/// Parses a decimal or `0x`-prefixed integer (with optional `_`
/// separators, as TOML allows).
fn parse_int(s: &str) -> Result<u32, String> {
    let clean = s.replace('_', "");
    let parsed = match clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        Some(hex) => u32::from_str_radix(hex, 16),
        None => clean.parse(),
    };
    parsed.map_err(|_| format!("expected an integer, got `{s}`"))
}

fn parse_toml_string(value: &str, line: usize) -> Result<String, ManifestError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| ManifestError::at(line, format!("expected a quoted string, got `{value}`")))
}

/// A minimal JSON reader: objects, arrays, strings (no escapes beyond
/// `\"` and `\\`), unsigned integers, booleans, null. Exactly the shape
/// space manifests need.
mod json {
    use super::ManifestError;

    /// A parsed JSON value.
    pub enum Value {
        /// Object, in source order.
        Object(Vec<(String, Value)>),
        /// Array.
        Array(Vec<Value>),
        /// String.
        Str(String),
        /// Unsigned integer.
        Int(u64),
        /// true/false/null (unused by manifests, accepted for
        /// completeness).
        Other,
    }

    impl Value {
        pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], ManifestError> {
            match self {
                Value::Object(o) => Ok(o),
                _ => Err(ManifestError::new(format!("{what}: expected an object"))),
            }
        }

        pub fn as_array(&self, what: &str) -> Result<&[Value], ManifestError> {
            match self {
                Value::Array(a) => Ok(a),
                _ => Err(ManifestError::new(format!("{what}: expected an array"))),
            }
        }

        pub fn as_str(&self, what: &str) -> Result<&str, ManifestError> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(ManifestError::new(format!("{what}: expected a string"))),
            }
        }

        /// An integer, from a number or a `"0x"`-string.
        pub fn as_u32(&self, what: &str) -> Result<u32, ManifestError> {
            match self {
                Value::Int(n) => u32::try_from(*n)
                    .map_err(|_| ManifestError::new(format!("{what}: {n} out of u32 range"))),
                Value::Str(s) => {
                    super::parse_int(s).map_err(|e| ManifestError::new(format!("{what}: {e}")))
                }
                _ => Err(ManifestError::new(format!("{what}: expected an integer"))),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = string(b, pos)?;
                    expect(b, pos, b':')?;
                    fields.push((key, value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(c) if c.is_ascii_digit() => {
                let start = *pos;
                while *pos < b.len() && b[*pos].is_ascii_digit() {
                    *pos += 1;
                }
                std::str::from_utf8(&b[start..*pos])
                    .expect("ascii digits")
                    .parse()
                    .map(Value::Int)
                    .map_err(|_| format!("bad number at byte {start}"))
            }
            _ => {
                for lit in ["true", "false", "null"] {
                    if b[*pos..].starts_with(lit.as_bytes()) {
                        *pos += lit.len();
                        return Ok(Value::Other);
                    }
                }
                Err(format!("unexpected input at byte {pos}"))
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected a string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => match b.get(*pos) {
                    Some(&e @ (b'"' | b'\\')) => {
                        out.push(e as char);
                        *pos += 1;
                    }
                    _ => return Err(format!("unsupported escape at byte {pos}")),
                },
                c => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }
}
