//! The bundled MMIO devices: a LiteX-style 32-bit timer, a DMA engine,
//! and a loopback network interface with TX/RX descriptor rings in SRAM.
//!
//! (The UART lives in `cheriot-core` — it backs the legacy console
//! window and the core must be able to construct it without this crate.)
//!
//! All devices follow the bus determinism contract
//! (`cheriot_core::bus`): state mutates only inside `read`/`write`
//! dispatches or is derived lazily from the cycle stamp `tick` delivers,
//! never from host wall time, so all three dispatch modes observe
//! byte-identical device behaviour.

use cheriot_core::bus::{BusError, MmioDevice};
use cheriot_core::machine::Machine;
use std::any::Any;

/// Largest single DMA copy the engine accepts, bounding host memory for
/// the staging buffer. Transfers above this set the error bit.
pub const DMA_MAX_LEN: u32 = 64 * 1024;

/// Largest network frame the loopback interface moves per descriptor.
pub const NET_MAX_FRAME: u32 = 2048;

/// Size of one network descriptor in SRAM (see [`NetLoopback`]).
pub const NET_DESC_SIZE: u32 = 16;

// --- LiteX-style timer -------------------------------------------------------

/// A LiteX-`timer0`-style 32-bit countdown timer, modelled *lazily*: the
/// current value and the zero-event count are pure functions of the
/// enable-time cycle stamp and the cycle counter at access time, so the
/// device carries no per-cycle state.
///
/// | offset | register | semantics |
/// |--------|-----------|-----------|
/// | `+0x00` | LOAD        | start value loaded when EN rises |
/// | `+0x04` | RELOAD      | periodic reload value (0 = one-shot) |
/// | `+0x08` | EN          | bit0: enable (rising edge latches LOAD) |
/// | `+0x0c` | UPDATE      | write 1: latch current value into VALUE |
/// | `+0x10` | VALUE       | last latched counter value (RO) |
/// | `+0x14` | EV_STATUS   | bit0: zero event level (RO) |
/// | `+0x18` | EV_PENDING  | bit0: zero event, W1C |
/// | `+0x1c` | EV_ENABLE   | bit0: route the event to the IRQ line |
///
/// The zero event is latched into the interrupt controller at the first
/// bus access after the wrap (device IRQ levels are only re-sampled on
/// bus accesses — the determinism contract). Guests needing exact-cycle
/// wakeups use the hardwired machine timer; this device is for polled
/// timing and rate measurement.
#[derive(Clone, Debug, Default)]
pub struct LiteTimer {
    load: u32,
    reload: u32,
    en: bool,
    /// Cycle stamp when EN last rose.
    en_since: u64,
    /// Latched VALUE register.
    value: u32,
    /// Zero-wraps acknowledged via EV_PENDING W1C.
    acked_wraps: u64,
    ev_enable: bool,
    /// Cycle stamp of the most recent `tick`.
    now: u64,
}

impl LiteTimer {
    /// A disabled timer with all registers zero.
    pub fn new() -> LiteTimer {
        LiteTimer::default()
    }

    /// Counter value at cycle `now`.
    fn value_at(&self, now: u64) -> u32 {
        if !self.en {
            return self.load;
        }
        let elapsed = now.saturating_sub(self.en_since);
        let start = u64::from(self.load);
        if elapsed <= start {
            return (start - elapsed) as u32;
        }
        if self.reload == 0 {
            return 0;
        }
        let period = u64::from(self.reload) + 1;
        (u64::from(self.reload) - (elapsed - start - 1) % period) as u32
    }

    /// Zero events since EN rose, at cycle `now`.
    fn wraps_at(&self, now: u64) -> u64 {
        if !self.en {
            return 0;
        }
        let elapsed = now.saturating_sub(self.en_since);
        let start = u64::from(self.load);
        if elapsed < start {
            return 0;
        }
        if self.reload == 0 {
            1
        } else {
            1 + (elapsed - start) / (u64::from(self.reload) + 1)
        }
    }

    fn ev_pending(&self) -> bool {
        self.wraps_at(self.now) > self.acked_wraps
    }
}

impl MmioDevice for LiteTimer {
    fn kind(&self) -> &'static str {
        "timer"
    }

    fn tick(&mut self, now: u64) {
        self.now = now;
    }

    fn read(&mut self, _m: &mut Machine, off: u32, _size: u32) -> Result<u32, BusError> {
        Ok(match off & !3 {
            0x00 => self.load,
            0x04 => self.reload,
            0x08 => u32::from(self.en),
            0x10 => self.value,
            0x14 => u32::from(self.ev_pending()),
            0x18 => u32::from(self.ev_pending()),
            0x1c => u32::from(self.ev_enable),
            _ => 0,
        })
    }

    fn write(
        &mut self,
        _m: &mut Machine,
        off: u32,
        _size: u32,
        value: u32,
    ) -> Result<(), BusError> {
        match off & !3 {
            0x00 => self.load = value,
            0x04 => self.reload = value,
            0x08 => {
                let en = value & 1 != 0;
                if en && !self.en {
                    self.en_since = self.now;
                    self.acked_wraps = 0;
                }
                self.en = en;
            }
            0x0c if value & 1 != 0 => self.value = self.value_at(self.now),
            0x18 if value & 1 != 0 => self.acked_wraps = self.wraps_at(self.now),
            0x1c => self.ev_enable = value & 1 != 0,
            _ => {}
        }
        Ok(())
    }

    fn irq_pending(&self) -> bool {
        self.ev_enable && self.ev_pending()
    }

    fn clone_box(&self) -> Box<dyn MmioDevice> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// --- DMA engine --------------------------------------------------------------

/// A single-channel memory-to-memory DMA engine. Transfers complete
/// synchronously inside the kicking MMIO write (the guest observes an
/// instantaneous engine; latency modelling belongs to the cycle model,
/// not device state).
///
/// | offset | register | semantics |
/// |--------|-----------|-----------|
/// | `+0x00` | SRC        | source address |
/// | `+0x04` | DST        | destination address |
/// | `+0x08` | LEN        | transfer length in bytes |
/// | `+0x0c` | CTRL       | write 1: start the copy |
/// | `+0x10` | STATUS     | bit0 done, bit1 error (RO) |
/// | `+0x14` | EV_PENDING | bit0: completion event, W1C |
/// | `+0x18` | EV_ENABLE  | bit0: route completion to the IRQ line |
///
/// Every store goes through [`Machine::dma_write`], so the engine cannot
/// forge capabilities (tags are cleared), cannot desync snapshots (pages
/// are dirtied), and cannot leave stale predecoded blocks behind (code
/// stores invalidate and bump the coherence generation). A transfer that
/// faults (unmapped range, oversized, undecodable code store) sets the
/// error bit instead of completing.
#[derive(Clone, Debug, Default)]
pub struct DmaEngine {
    src: u32,
    dst: u32,
    len: u32,
    done: bool,
    error: bool,
    ev_pending: bool,
    ev_enable: bool,
}

impl DmaEngine {
    /// An idle DMA engine.
    pub fn new() -> DmaEngine {
        DmaEngine::default()
    }

    fn kick(&mut self, m: &mut Machine) {
        self.done = false;
        self.error = false;
        if self.len > DMA_MAX_LEN {
            self.error = true;
            self.ev_pending = true;
            return;
        }
        let mut buf = vec![0u8; self.len as usize];
        let ok = m.dma_read(self.src, &mut buf).is_ok() && m.dma_write(self.dst, &buf).is_ok();
        self.done = ok;
        self.error = !ok;
        self.ev_pending = true;
    }
}

impl MmioDevice for DmaEngine {
    fn kind(&self) -> &'static str {
        "dma"
    }

    fn read(&mut self, _m: &mut Machine, off: u32, _size: u32) -> Result<u32, BusError> {
        Ok(match off & !3 {
            0x00 => self.src,
            0x04 => self.dst,
            0x08 => self.len,
            0x10 => u32::from(self.done) | u32::from(self.error) << 1,
            0x14 => u32::from(self.ev_pending),
            0x18 => u32::from(self.ev_enable),
            _ => 0,
        })
    }

    fn write(&mut self, m: &mut Machine, off: u32, _size: u32, value: u32) -> Result<(), BusError> {
        match off & !3 {
            0x00 => self.src = value,
            0x04 => self.dst = value,
            0x08 => self.len = value,
            0x0c if value & 1 != 0 => self.kick(m),
            0x14 if value & 1 != 0 => self.ev_pending = false,
            0x18 => self.ev_enable = value & 1 != 0,
            _ => {}
        }
        Ok(())
    }

    fn irq_pending(&self) -> bool {
        self.ev_enable && self.ev_pending
    }

    fn clone_box(&self) -> Box<dyn MmioDevice> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// --- Loopback network interface ----------------------------------------------

/// A loopback network interface with TX/RX descriptor rings in guest
/// SRAM: kicked TX frames are delivered straight into the RX ring (the
/// wire is a mirror). The descriptor layout is the classic 16-byte DMA
/// NIC shape:
///
/// ```text
/// +0x0  flags   bit0 OWN: the descriptor (and its buffer) belong to hw
/// +0x4  buf     frame buffer address in SRAM
/// +0x8  len     TX: frame length; RX: written by hw on delivery
/// +0xc  status  written by hw: bit0 done, bit1 error
/// ```
///
/// | offset | register | semantics |
/// |--------|-----------|-----------|
/// | `+0x00` | TX_BASE    | TX descriptor ring base (SRAM) |
/// | `+0x04` | TX_COUNT   | descriptors in the TX ring |
/// | `+0x08` | RX_BASE    | RX descriptor ring base (SRAM) |
/// | `+0x0c` | RX_COUNT   | descriptors in the RX ring |
/// | `+0x10` | CTRL       | write 1: process owned TX descriptors |
/// | `+0x14` | FRAMES     | frames delivered, cumulative (RO) |
/// | `+0x18` | EV_PENDING | bit0: RX delivery event, W1C |
/// | `+0x1c` | EV_ENABLE  | bit0: route RX delivery to the IRQ line |
/// | `+0x20` | RX_DROPPED | frames dropped for lack of an RX descriptor or queue space (RO) |
///
/// Processing walks the TX ring from the last position: each OWN'd
/// descriptor's frame is copied through [`Machine::dma_read`] /
/// [`Machine::dma_write`] into the next OWN'd RX descriptor's buffer,
/// statuses are written back, and OWN is returned to software on both
/// sides. A frame with no free RX descriptor, an oversized length, or a
/// faulting buffer gets an error status and is *dropped with a counter*:
/// the `RX_DROPPED` register (and the `net_rx_dropped` metric derived
/// from it) make backpressure loss observable instead of silent.
///
/// ## Peer mode
///
/// With [`NetLoopback::set_peer`] the wire stops being a mirror:
/// transmitted frames are collected host-side ([`NetLoopback::take_tx`])
/// and frames from elsewhere are queued with
/// [`NetLoopback::push_host_rx`], then delivered into the guest RX ring
/// by [`NetLoopback::flush_host_rx`] between run slices. The host queue
/// exerts backpressure: delivery stops at the first software-owned RX
/// descriptor and the remaining frames stay queued (bounded by
/// [`NET_HOST_QUEUE`]; overflow drops-with-counter). This is the hook the
/// farm's `NetFabric` hub uses to route frames across device instances.
#[derive(Clone, Debug, Default)]
pub struct NetLoopback {
    tx_base: u32,
    tx_count: u32,
    rx_base: u32,
    rx_count: u32,
    tx_head: u32,
    rx_head: u32,
    frames: u32,
    ev_pending: bool,
    ev_enable: bool,
    rx_dropped: u32,
    /// Peer mode: TX frames go to `peer_out` instead of the local RX ring.
    peer: bool,
    /// Host-side mailbox of transmitted frames (peer mode only).
    peer_out: Vec<Vec<u8>>,
    /// Host-side queue of inbound frames awaiting RX descriptors.
    host_in: std::collections::VecDeque<Vec<u8>>,
}

/// Bound on the host-side inbound frame queue per interface; pushes past
/// this drop-with-counter (`RX_DROPPED`).
pub const NET_HOST_QUEUE: usize = 256;

/// One descriptor, decoded from its 16 SRAM bytes.
struct Desc {
    flags: u32,
    buf: u32,
    len: u32,
}

impl NetLoopback {
    /// An unconfigured interface (no rings).
    pub fn new() -> NetLoopback {
        NetLoopback::default()
    }

    fn read_desc(m: &mut Machine, addr: u32) -> Result<Desc, BusError> {
        let mut raw = [0u8; NET_DESC_SIZE as usize];
        m.dma_read(addr, &mut raw).map_err(|_| BusError)?;
        let word = |i: usize| u32::from_le_bytes(raw[i..i + 4].try_into().expect("4 bytes"));
        Ok(Desc {
            flags: word(0),
            buf: word(4),
            len: word(8),
        })
    }

    /// Writes back a processed descriptor: OWN cleared, `len` and
    /// `status` updated.
    fn retire_desc(
        m: &mut Machine,
        addr: u32,
        d: &Desc,
        len: u32,
        status: u32,
    ) -> Result<(), BusError> {
        let mut raw = [0u8; NET_DESC_SIZE as usize];
        raw[0..4].copy_from_slice(&(d.flags & !1).to_le_bytes());
        raw[4..8].copy_from_slice(&d.buf.to_le_bytes());
        raw[8..12].copy_from_slice(&len.to_le_bytes());
        raw[12..16].copy_from_slice(&status.to_le_bytes());
        m.dma_write(addr, &raw).map_err(|_| BusError)
    }

    /// Delivers `frame` into the next hardware-owned RX descriptor.
    /// `Ok(false)` means the RX ring had no free descriptor.
    fn deliver(&mut self, m: &mut Machine, frame: &[u8]) -> Result<bool, BusError> {
        for _ in 0..self.rx_count {
            let slot = self.rx_head % self.rx_count;
            let addr = self.rx_base + slot * NET_DESC_SIZE;
            let d = NetLoopback::read_desc(m, addr)?;
            if d.flags & 1 == 0 {
                return Ok(false);
            }
            self.rx_head = (self.rx_head + 1) % self.rx_count;
            if m.dma_write(d.buf, frame).is_err() {
                NetLoopback::retire_desc(m, addr, &d, 0, 0b10)?;
                continue;
            }
            NetLoopback::retire_desc(m, addr, &d, frame.len() as u32, 0b01)?;
            return Ok(true);
        }
        Ok(false)
    }

    fn kick(&mut self, m: &mut Machine) {
        if self.tx_count == 0 {
            return;
        }
        for _ in 0..self.tx_count {
            let slot = self.tx_head % self.tx_count;
            let addr = self.tx_base + slot * NET_DESC_SIZE;
            let Ok(d) = NetLoopback::read_desc(m, addr) else {
                return;
            };
            if d.flags & 1 == 0 {
                return;
            }
            self.tx_head = (self.tx_head + 1) % self.tx_count;
            if d.len > NET_MAX_FRAME {
                let _ = NetLoopback::retire_desc(m, addr, &d, d.len, 0b10);
                continue;
            }
            let mut frame = vec![0u8; d.len as usize];
            if m.dma_read(d.buf, &mut frame).is_err() {
                let _ = NetLoopback::retire_desc(m, addr, &d, d.len, 0b10);
                continue;
            }
            let status = if self.peer {
                // Peer mode: hand the frame to the host fabric. TX always
                // succeeds — congestion shows up at the receiver's ring.
                self.peer_out.push(frame);
                self.frames = self.frames.wrapping_add(1);
                0b01
            } else {
                match self.deliver(m, &frame) {
                    Ok(true) => {
                        self.frames = self.frames.wrapping_add(1);
                        self.ev_pending = true;
                        0b01
                    }
                    Ok(false) => {
                        // RX ring full: drop with a counter, never silently.
                        self.rx_dropped = self.rx_dropped.wrapping_add(1);
                        0b10
                    }
                    Err(_) => 0b10,
                }
            };
            let _ = NetLoopback::retire_desc(m, addr, &d, d.len, status);
        }
    }

    /// Switches between mirror loopback (`false`, the default) and peer
    /// mode (`true`), where the host routes frames (see type docs).
    pub fn set_peer(&mut self, on: bool) {
        self.peer = on;
    }

    /// Frames dropped for lack of an RX descriptor (loopback mode) or
    /// host queue space (peer mode). Mirrors the `RX_DROPPED` register.
    pub fn rx_dropped(&self) -> u32 {
        self.rx_dropped
    }

    /// Takes all frames transmitted since the last call (peer mode).
    pub fn take_tx(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.peer_out)
    }

    /// Queues an inbound frame for delivery into the guest RX ring at the
    /// next [`NetLoopback::flush_host_rx`]. Returns `false` (and counts
    /// the drop) when the queue is full or the frame is oversized.
    pub fn push_host_rx(&mut self, frame: Vec<u8>) -> bool {
        if frame.len() > NET_MAX_FRAME as usize || self.host_in.len() >= NET_HOST_QUEUE {
            self.rx_dropped = self.rx_dropped.wrapping_add(1);
            return false;
        }
        self.host_in.push_back(frame);
        true
    }

    /// Inbound frames still queued host-side (not yet in the RX ring).
    pub fn host_rx_pending(&self) -> usize {
        self.host_in.len()
    }

    /// Delivers queued inbound frames into the guest RX ring, stopping at
    /// the first software-owned descriptor (backpressure: the rest stay
    /// queued). Returns the number delivered. The caller must hold the
    /// device *outside* the machine's bus (the same detach protocol MMIO
    /// dispatch uses) — see `cheriot_soc::net_flush_rx` for the safe
    /// wrapper.
    pub fn flush_host_rx(&mut self, m: &mut Machine) -> u32 {
        let mut delivered = 0;
        while let Some(frame) = self.host_in.pop_front() {
            match self.deliver(m, &frame) {
                Ok(true) => {
                    self.ev_pending = true;
                    delivered += 1;
                }
                Ok(false) => {
                    // No free descriptor: keep the frame for the next
                    // flush rather than dropping mid-queue.
                    self.host_in.push_front(frame);
                    break;
                }
                Err(_) => {
                    // Misprogrammed ring (descriptor outside SRAM): the
                    // frame cannot land; count it and keep draining.
                    self.rx_dropped = self.rx_dropped.wrapping_add(1);
                }
            }
        }
        delivered
    }
}

impl MmioDevice for NetLoopback {
    fn kind(&self) -> &'static str {
        "net"
    }

    fn read(&mut self, _m: &mut Machine, off: u32, _size: u32) -> Result<u32, BusError> {
        Ok(match off & !3 {
            0x00 => self.tx_base,
            0x04 => self.tx_count,
            0x08 => self.rx_base,
            0x0c => self.rx_count,
            0x14 => self.frames,
            0x18 => u32::from(self.ev_pending),
            0x1c => u32::from(self.ev_enable),
            0x20 => self.rx_dropped,
            _ => 0,
        })
    }

    fn write(&mut self, m: &mut Machine, off: u32, _size: u32, value: u32) -> Result<(), BusError> {
        match off & !3 {
            0x00 => self.tx_base = value,
            0x04 => {
                self.tx_count = value;
                self.tx_head = 0;
            }
            0x08 => self.rx_base = value,
            0x0c => {
                self.rx_count = value;
                self.rx_head = 0;
            }
            0x10 if value & 1 != 0 => self.kick(m),
            0x18 if value & 1 != 0 => self.ev_pending = false,
            0x1c => self.ev_enable = value & 1 != 0,
            _ => {}
        }
        Ok(())
    }

    fn irq_pending(&self) -> bool {
        self.ev_enable && self.ev_pending
    }

    fn dma_desc_addr(&self) -> Option<u32> {
        (self.tx_count > 0).then_some(self.tx_base)
    }

    fn clone_box(&self) -> Box<dyn MmioDevice> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
