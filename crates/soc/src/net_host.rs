//! Host-side access to a machine's [`NetLoopback`] interface.
//!
//! The farm's network fabric lives outside the guest: between run slices
//! it collects transmitted frames from one instance and queues them at
//! another. The device sits *inside* `machine.bus`, and delivering into
//! the RX ring needs `&mut Machine` for DMA — so these helpers use the
//! same bus-detach protocol the CPU's MMIO dispatch uses
//! (`std::mem::take` the bus, operate, re-attach, re-sample IRQ levels).
//! Everything here mutates device state only between run slices, which
//! keeps the bus determinism contract intact: a sliced run with fabric
//! activity at slice boundaries is still reproducible from the slice
//! schedule alone.

use crate::devices::NetLoopback;
use cheriot_core::machine::Machine;

/// Puts the first network interface on `m`'s bus into peer mode (or back
/// to mirror loopback). Returns `false` when the machine has no NIC.
pub fn net_set_peer(m: &mut Machine, on: bool) -> bool {
    match m.bus.device_mut::<NetLoopback>() {
        Some(net) => {
            net.set_peer(on);
            true
        }
        None => false,
    }
}

/// Takes all frames the guest transmitted since the last call (peer
/// mode). Empty when the machine has no NIC or nothing was sent.
pub fn net_take_tx(m: &mut Machine) -> Vec<Vec<u8>> {
    m.bus
        .device_mut::<NetLoopback>()
        .map(NetLoopback::take_tx)
        .unwrap_or_default()
}

/// Queues an inbound frame on the NIC's host-side RX queue. Returns
/// `false` if it was dropped (no NIC, oversized, or queue full — the
/// device counts the drop in `RX_DROPPED`).
pub fn net_push_rx(m: &mut Machine, frame: Vec<u8>) -> bool {
    m.bus
        .device_mut::<NetLoopback>()
        .map(|net| net.push_host_rx(frame))
        .unwrap_or(false)
}

/// Delivers queued inbound frames into the guest RX ring (stopping at
/// the first software-owned descriptor), then re-samples device IRQ
/// levels so an enabled RX event reaches the interrupt controller before
/// the next run slice. Returns the number of frames delivered.
pub fn net_flush_rx(m: &mut Machine) -> u32 {
    // Detach the bus so the device can DMA through &mut Machine — the
    // exact protocol `Machine::device_read`/`device_write` use.
    let mut bus = std::mem::take(&mut m.bus);
    let delivered = bus
        .device_mut::<NetLoopback>()
        .map(|net| net.flush_host_rx(m))
        .unwrap_or(0);
    m.bus = bus;
    m.poll_device_irqs();
    delivered
}

/// Frames dropped by the NIC so far (RX ring full, queue overflow, or
/// undeliverable). Zero when the machine has no NIC.
pub fn net_rx_dropped(m: &mut Machine) -> u32 {
    m.bus
        .device_mut::<NetLoopback>()
        .map(|net| net.rx_dropped())
        .unwrap_or(0)
}

/// Inbound frames still waiting host-side for RX descriptors.
pub fn net_host_rx_pending(m: &mut Machine) -> usize {
    m.bus
        .device_mut::<NetLoopback>()
        .map(|net| net.host_rx_pending())
        .unwrap_or(0)
}
