//! # cheriot-soc — the declarative SoC platform
//!
//! The paper's target is a whole SoC, not a bare core: the IoT
//! evaluation (§7.2) runs network/TLS/MQTT compartments against real
//! peripherals. This crate turns the simulator's machine into that
//! platform: a manifest (TOML or JSON, [`MachineSpec`]) declares the
//! core, SRAM size, and a set of MMIO devices at chosen base addresses,
//! and [`MachineSpec::build`] produces a `Machine` whose device bus
//! (`cheriot_core::bus`) dispatches to exactly those peripherals.
//!
//! Bundled devices:
//!
//! * **UART** (`cheriot_core::bus::Uart`) — replaces the magic console
//!   vector; TX bytes still land in `machine.console`.
//! * **[`LiteTimer`]** — a LiteX-style 32-bit countdown timer, modelled
//!   lazily from the cycle counter.
//! * **[`DmaEngine`]** — memory-to-memory copies through the machine's
//!   tag-clearing, dirty-tracking, block-invalidating DMA path.
//! * **[`NetLoopback`]** — a network interface with TX/RX descriptor
//!   rings in SRAM; transmitted frames are delivered back into the RX
//!   ring.
//!
//! Manifest files ship under `crates/soc/manifests/`; run one with
//! `cheriot-sim run --machine crates/soc/manifests/iot.toml prog.asm`.

#![warn(missing_docs)]

pub mod devices;
pub mod manifest;
pub mod net_host;

pub use devices::{
    DmaEngine, LiteTimer, NetLoopback, DMA_MAX_LEN, NET_DESC_SIZE, NET_HOST_QUEUE, NET_MAX_FRAME,
};
pub use manifest::{DeviceSpec, MachineSpec, ManifestError};
pub use net_host::{
    net_flush_rx, net_host_rx_pending, net_push_rx, net_rx_dropped, net_set_peer, net_take_tx,
};
