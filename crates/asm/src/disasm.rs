//! Disassembler: renders decoded instructions (or raw words) in the
//! conventional RISC-V/CHERIoT mnemonic syntax. Round-trips with the
//! binary codec for debugging and the objdump-style examples.

use cheriot_core::encoding::decode;
use cheriot_core::insn::{AluOp, BranchCond, CapField, CsrId, CsrOp, Instr, MemWidth, MulOp, Reg};

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
    }
}

fn mul_name(op: MulOp) -> &'static str {
    match op {
        MulOp::Mul => "mul",
        MulOp::Mulh => "mulh",
        MulOp::Mulhu => "mulhu",
        MulOp::Div => "div",
        MulOp::Divu => "divu",
        MulOp::Rem => "rem",
        MulOp::Remu => "remu",
    }
}

fn branch_name(c: BranchCond) -> &'static str {
    match c {
        BranchCond::Eq => "beq",
        BranchCond::Ne => "bne",
        BranchCond::Lt => "blt",
        BranchCond::Ge => "bge",
        BranchCond::Ltu => "bltu",
        BranchCond::Geu => "bgeu",
    }
}

fn width_suffix(w: MemWidth, signed: bool) -> &'static str {
    match (w, signed) {
        (MemWidth::B, true) => "lb",
        (MemWidth::B, false) => "lbu",
        (MemWidth::H, true) => "lh",
        (MemWidth::H, false) => "lhu",
        (MemWidth::W, _) => "lw",
    }
}

fn csr_name(c: CsrId) -> &'static str {
    match c {
        CsrId::Mcycle => "mcycle",
        CsrId::Mcycleh => "mcycleh",
        CsrId::Mcause => "mcause",
        CsrId::Mtval => "mtval",
        CsrId::Mshwm => "mshwm",
        CsrId::Mshwmb => "mshwmb",
    }
}

/// Renders one instruction as assembly text.
pub fn disassemble(i: &Instr) -> String {
    use Instr::*;
    match *i {
        Lui { rd, imm } => format!("lui {rd:?}, {imm:#x}"),
        Auipcc { rd, imm } => format!("auipcc {rd:?}, {imm}"),
        Auicgp { rd, imm } => format!("auicgp {rd:?}, {imm}"),
        OpImm {
            op: AluOp::Add,
            rd,
            rs1: Reg::ZERO,
            imm,
        } => format!("li {rd:?}, {imm}"),
        OpImm { op, rd, rs1, imm } => format!("{}i {rd:?}, {rs1:?}, {imm}", alu_name(op)),
        Op { op, rd, rs1, rs2 } => format!("{} {rd:?}, {rs1:?}, {rs2:?}", alu_name(op)),
        MulDiv { op, rd, rs1, rs2 } => format!("{} {rd:?}, {rs1:?}, {rs2:?}", mul_name(op)),
        Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            format!("{} {rs1:?}, {rs2:?}, .{offset:+}", branch_name(cond))
        }
        Jal { rd, offset } => format!("jal {rd:?}, .{offset:+}"),
        Jalr { rd, rs1, offset } => format!("cjalr {rd:?}, {offset}({rs1:?})"),
        Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => {
            format!("{} {rd:?}, {offset}({rs1:?})", width_suffix(width, signed))
        }
        Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let n = match width {
                MemWidth::B => "sb",
                MemWidth::H => "sh",
                MemWidth::W => "sw",
            };
            format!("{n} {rs2:?}, {offset}({rs1:?})")
        }
        Clc { rd, rs1, offset } => format!("clc {rd:?}, {offset}({rs1:?})"),
        Csc { rs2, rs1, offset } => format!("csc {rs2:?}, {offset}({rs1:?})"),
        CGet { field, rd, rs1 } => {
            let n = match field {
                CapField::Perm => "cgetperm",
                CapField::Type => "cgettype",
                CapField::Base => "cgetbase",
                CapField::Len => "cgetlen",
                CapField::Tag => "cgettag",
                CapField::Addr => "cgetaddr",
                CapField::High => "cgethigh",
            };
            format!("{n} {rd:?}, {rs1:?}")
        }
        CSetAddr { rd, rs1, rs2 } => format!("csetaddr {rd:?}, {rs1:?}, {rs2:?}"),
        CIncAddr { rd, rs1, rs2 } => format!("cincaddr {rd:?}, {rs1:?}, {rs2:?}"),
        CIncAddrImm { rd, rs1, imm } => format!("cincaddrimm {rd:?}, {rs1:?}, {imm}"),
        CSetBounds {
            rd,
            rs1,
            rs2,
            exact: false,
        } => {
            format!("csetbounds {rd:?}, {rs1:?}, {rs2:?}")
        }
        CSetBounds {
            rd,
            rs1,
            rs2,
            exact: true,
        } => {
            format!("csetboundsexact {rd:?}, {rs1:?}, {rs2:?}")
        }
        CSetBoundsImm { rd, rs1, imm } => format!("csetboundsimm {rd:?}, {rs1:?}, {imm}"),
        CAndPerm { rd, rs1, rs2 } => format!("candperm {rd:?}, {rs1:?}, {rs2:?}"),
        CClearTag { rd, rs1 } => format!("ccleartag {rd:?}, {rs1:?}"),
        CMove { rd, rs1 } => format!("cmove {rd:?}, {rs1:?}"),
        CSeal { rd, rs1, rs2 } => format!("cseal {rd:?}, {rs1:?}, {rs2:?}"),
        CUnseal { rd, rs1, rs2 } => format!("cunseal {rd:?}, {rs1:?}, {rs2:?}"),
        CTestSubset { rd, rs1, rs2 } => format!("ctestsubset {rd:?}, {rs1:?}, {rs2:?}"),
        CSetEqualExact { rd, rs1, rs2 } => format!("csetequalexact {rd:?}, {rs1:?}, {rs2:?}"),
        CRoundRepresentableLength { rd, rs1 } => format!("crrl {rd:?}, {rs1:?}"),
        CRepresentableAlignmentMask { rd, rs1 } => format!("cram {rd:?}, {rs1:?}"),
        CSpecialRw { rd, rs1, scr } => format!("cspecialrw {rd:?}, {scr:?}, {rs1:?}"),
        Csr { op, rd, rs1, csr } => {
            let n = match op {
                CsrOp::Rw => "csrrw",
                CsrOp::Rs => "csrrs",
                CsrOp::Rc => "csrrc",
            };
            format!("{n} {rd:?}, {}, {rs1:?}", csr_name(csr))
        }
        Ecall => "ecall".into(),
        Ebreak => "ebreak".into(),
        Mret => "mret".into(),
        Wfi => "wfi".into(),
        Fence => "fence".into(),
        Halt => "halt".into(),
    }
}

/// Disassembles a binary word stream into an objdump-style listing
/// (address, word, mnemonic). Illegal words render as `.word`.
pub fn disassemble_words(base: u32, words: &[u32]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = base + 4 * i as u32;
        match decode(w) {
            Ok(instr) => {
                let _ = writeln!(out, "{addr:#010x}: {w:08x}  {}", disassemble(&instr));
            }
            Err(_) => {
                let _ = writeln!(out, "{addr:#010x}: {w:08x}  .word {w:#x}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;

    #[test]
    fn mnemonics_look_right() {
        assert_eq!(
            disassemble(&Instr::Clc {
                rd: Reg::A0,
                rs1: Reg::GP,
                offset: 8
            }),
            "clc ca0, 8(cgp)"
        );
        assert_eq!(
            disassemble(&Instr::OpImm {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                imm: 42
            }),
            "li ct0, 42"
        );
        assert_eq!(disassemble(&Instr::Halt), "halt");
    }

    #[test]
    fn listing_round_trips_through_the_codec() {
        let mut a = Asm::new();
        a.li(Reg::T0, 5);
        let top = a.here();
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.halt();
        let words = a.assemble_binary().unwrap();
        let listing = disassemble_words(0x1000_0000, &words);
        assert!(listing.contains("li ct0, 5"));
        assert!(listing.contains("bne ct0, czero"));
        assert!(listing.contains("halt"));
        assert_eq!(listing.lines().count(), words.len());
    }

    #[test]
    fn illegal_words_render_as_data() {
        let listing = disassemble_words(0, &[0xffff_ffff]);
        assert!(listing.contains(".word"));
    }
}
