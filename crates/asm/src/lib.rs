//! # cheriot-asm — program builder for the CHERIoT simulator
//!
//! A small assembler: mnemonic methods append decoded instructions, labels
//! are two-phase (create with [`Asm::label`], place with [`Asm::bind`]) and
//! branch/jump offsets are resolved at [`Asm::assemble`] time. This is the
//! substrate on which the CoreMark-like workloads and the guest-code test
//! suites are written, standing in for the CHERI LLVM toolchain (see
//! DESIGN.md §3).
//!
//! ## Example
//!
//! ```
//! use cheriot_asm::Asm;
//! use cheriot_core::insn::Reg;
//! use cheriot_core::{Machine, MachineConfig, CoreModel, ExitReason};
//!
//! // Sum 1..=10 into a0.
//! let mut a = Asm::new();
//! a.li(Reg::T0, 10);
//! a.li(Reg::A0, 0);
//! let top = a.label();
//! a.bind(top);
//! a.add(Reg::A0, Reg::A0, Reg::T0);
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bnez(Reg::T0, top);
//! a.halt();
//!
//! let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
//! let entry = m.load_program(&a.assemble());
//! m.set_entry(entry);
//! assert_eq!(m.run(10_000), ExitReason::Halted(55));
//! ```

#![warn(missing_docs)]

pub mod disasm;

pub use disasm::{disassemble, disassemble_words};

use cheriot_core::insn::{
    AluOp, BranchCond, CapField, CsrId, CsrOp, Instr, MemWidth, MulOp, Reg, ScrId,
};

/// A label: an index into the assembler's label table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Clone, Copy, Debug)]
enum Pending {
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: Label,
    },
    Jal {
        rd: Reg,
        target: Label,
    },
    /// `li rd, (label address)` — materialise a label's *byte offset from
    /// program start* (the caller combines it with a base capability).
    LaOffset {
        rd: Reg,
        target: Label,
    },
    /// `auipcc rd, (label - here)` — a PCC-derived capability to a label
    /// (trap vectors, sentry targets), resolved like a branch offset.
    Auipcc {
        rd: Reg,
        target: Label,
    },
}

/// The program builder.
///
/// Instruction methods are named after their mnemonics and append one
/// instruction each; pseudo-instructions (`li`, `mv`, `bnez`, …) may expand
/// to more than one.
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<Instr>,
    fixups: Vec<(usize, Pending)>,
    labels: Vec<Option<usize>>,
}

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Creates a new, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len());
    }

    /// Creates a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// The instruction index a bound label points at, if bound.
    pub fn position(&self, label: Label) -> Option<usize> {
        self.labels[label.0]
    }

    /// The byte offset of a bound label from program start.
    pub fn byte_offset(&self, label: Label) -> Option<u32> {
        self.position(label).map(|i| (i * 4) as u32)
    }

    /// Resolves all fixups and returns the finished instruction sequence.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound.
    pub fn assemble(mut self) -> Vec<Instr> {
        for (at, pending) in std::mem::take(&mut self.fixups) {
            let resolve = |l: Label| -> i32 {
                let pos = self.labels[l.0].expect("unbound label");
                (pos as i32 - at as i32) * 4
            };
            self.code[at] = match pending {
                Pending::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset: resolve(target),
                },
                Pending::Jal { rd, target } => Instr::Jal {
                    rd,
                    offset: resolve(target),
                },
                Pending::LaOffset { rd, target } => {
                    let pos = self.labels[target.0].expect("unbound label");
                    // Absolute byte offset of the label from program start.
                    Instr::OpImm {
                        op: AluOp::Add,
                        rd,
                        rs1: Reg::ZERO,
                        imm: (pos * 4) as i32,
                    }
                }
                Pending::Auipcc { rd, target } => Instr::Auipcc {
                    rd,
                    imm: resolve(target),
                },
            };
        }
        self.code
    }

    /// Resolves fixups and encodes to machine code (expanding large
    /// immediates and fixing up offsets — see
    /// [`cheriot_core::encoding::encode_program`]).
    ///
    /// # Errors
    ///
    /// Encoding errors for unencodable immediates.
    pub fn assemble_binary(self) -> Result<Vec<u32>, cheriot_core::encoding::EncodeError> {
        cheriot_core::encoding::encode_program(&self.assemble())
    }

    /// Emits a raw instruction.
    pub fn raw(&mut self, i: Instr) -> &mut Asm {
        self.code.push(i);
        self
    }

    // --- integer ---------------------------------------------------------

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.raw(Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        })
    }

    /// `li rd, value` — load immediate (one instruction in this decoded
    /// model).
    pub fn li(&mut self, rd: Reg, value: i32) -> &mut Asm {
        self.addi(rd, Reg::ZERO, value)
    }

    /// `mv rd, rs` — integer move (drops capability tags, as an ALU op).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.addi(rd, rs, 0)
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::Op {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }

    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::Op {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        })
    }

    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::Op {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        })
    }

    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::Op {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        })
    }

    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.raw(Instr::OpImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        })
    }

    /// `ori rd, rs1, imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.raw(Instr::OpImm {
            op: AluOp::Or,
            rd,
            rs1,
            imm,
        })
    }

    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.raw(Instr::OpImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
        })
    }

    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Asm {
        self.raw(Instr::OpImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Asm {
        self.raw(Instr::OpImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `srai rd, rs1, shamt`
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Asm {
        self.raw(Instr::OpImm {
            op: AluOp::Sra,
            rd,
            rs1,
            imm: shamt,
        })
    }

    /// `sltu rd, rs1, rs2`
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::Op {
            op: AluOp::Sltu,
            rd,
            rs1,
            rs2,
        })
    }

    /// `slt rd, rs1, rs2`
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::Op {
            op: AluOp::Slt,
            rd,
            rs1,
            rs2,
        })
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::MulDiv {
            op: MulOp::Mul,
            rd,
            rs1,
            rs2,
        })
    }

    /// `divu rd, rs1, rs2`
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::MulDiv {
            op: MulOp::Divu,
            rd,
            rs1,
            rs2,
        })
    }

    /// `remu rd, rs1, rs2`
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::MulDiv {
            op: MulOp::Remu,
            rd,
            rs1,
            rs2,
        })
    }

    /// `lui rd, imm20` (shifted left 12 by hardware).
    pub fn lui(&mut self, rd: Reg, imm: u32) -> &mut Asm {
        self.raw(Instr::Lui { rd, imm })
    }

    // --- control flow ------------------------------------------------------

    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        let at = self.code.len();
        self.code.push(Instr::NOP);
        self.fixups.push((
            at,
            Pending::Branch {
                cond,
                rs1,
                rs2,
                target,
            },
        ));
        self
    }

    /// `beq rs1, rs2, target`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchCond::Eq, rs1, rs2, target)
    }

    /// `bne rs1, rs2, target`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchCond::Ne, rs1, rs2, target)
    }

    /// `blt rs1, rs2, target`
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchCond::Lt, rs1, rs2, target)
    }

    /// `bge rs1, rs2, target`
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchCond::Ge, rs1, rs2, target)
    }

    /// `bltu rs1, rs2, target`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchCond::Ltu, rs1, rs2, target)
    }

    /// `bgeu rs1, rs2, target`
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Asm {
        self.branch(BranchCond::Geu, rs1, rs2, target)
    }

    /// `bnez rs, target`
    pub fn bnez(&mut self, rs: Reg, target: Label) -> &mut Asm {
        self.bne(rs, Reg::ZERO, target)
    }

    /// `beqz rs, target`
    pub fn beqz(&mut self, rs: Reg, target: Label) -> &mut Asm {
        self.beq(rs, Reg::ZERO, target)
    }

    /// `j target` (jal zero)
    pub fn j(&mut self, target: Label) -> &mut Asm {
        self.jal(Reg::ZERO, target)
    }

    /// `jal rd, target`
    pub fn jal(&mut self, rd: Reg, target: Label) -> &mut Asm {
        let at = self.code.len();
        self.code.push(Instr::NOP);
        self.fixups.push((at, Pending::Jal { rd, target }));
        self
    }

    /// `cjalr rd, rs1` — capability jump-and-link (sentry-aware).
    pub fn cjalr(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Jalr { rd, rs1, offset: 0 })
    }

    /// `cjr rs1` — capability jump.
    pub fn cjr(&mut self, rs1: Reg) -> &mut Asm {
        self.cjalr(Reg::ZERO, rs1)
    }

    /// `cret` — return through the sentry in `cra`.
    pub fn cret(&mut self) -> &mut Asm {
        self.cjr(Reg::RA)
    }

    // --- memory -------------------------------------------------------------

    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Load {
            width: MemWidth::W,
            signed: false,
            rd,
            rs1,
            offset,
        })
    }

    /// `lbu rd, offset(rs1)`
    pub fn lbu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Load {
            width: MemWidth::B,
            signed: false,
            rd,
            rs1,
            offset,
        })
    }

    /// `lhu rd, offset(rs1)`
    pub fn lhu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Load {
            width: MemWidth::H,
            signed: false,
            rd,
            rs1,
            offset,
        })
    }

    /// `lb rd, offset(rs1)` (sign-extending)
    pub fn lb(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Load {
            width: MemWidth::B,
            signed: true,
            rd,
            rs1,
            offset,
        })
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Store {
            width: MemWidth::W,
            rs2,
            rs1,
            offset,
        })
    }

    /// `sh rs2, offset(rs1)`
    pub fn sh(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Store {
            width: MemWidth::H,
            rs2,
            rs1,
            offset,
        })
    }

    /// `sb rs2, offset(rs1)`
    pub fn sb(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Store {
            width: MemWidth::B,
            rs2,
            rs1,
            offset,
        })
    }

    /// `clc rd, offset(rs1)` — capability load.
    pub fn clc(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Clc { rd, rs1, offset })
    }

    /// `csc rs2, offset(rs1)` — capability store.
    pub fn csc(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Csc { rs2, rs1, offset })
    }

    // --- CHERI --------------------------------------------------------------

    /// `cgetaddr rd, cs1`
    pub fn cgetaddr(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.raw(Instr::CGet {
            field: CapField::Addr,
            rd,
            rs1,
        })
    }

    /// `cgettag rd, cs1`
    pub fn cgettag(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.raw(Instr::CGet {
            field: CapField::Tag,
            rd,
            rs1,
        })
    }

    /// `cgetbase rd, cs1`
    pub fn cgetbase(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.raw(Instr::CGet {
            field: CapField::Base,
            rd,
            rs1,
        })
    }

    /// `cgetlen rd, cs1`
    pub fn cgetlen(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.raw(Instr::CGet {
            field: CapField::Len,
            rd,
            rs1,
        })
    }

    /// `cgetperm rd, cs1`
    pub fn cgetperm(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.raw(Instr::CGet {
            field: CapField::Perm,
            rd,
            rs1,
        })
    }

    /// `csetaddr cd, cs1, rs2`
    pub fn csetaddr(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::CSetAddr { rd, rs1, rs2 })
    }

    /// `cincaddr cd, cs1, rs2`
    pub fn cincaddr(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::CIncAddr { rd, rs1, rs2 })
    }

    /// `cincaddrimm cd, cs1, imm`
    pub fn cincaddrimm(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.raw(Instr::CIncAddrImm { rd, rs1, imm })
    }

    /// `csetbounds cd, cs1, rs2`
    pub fn csetbounds(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::CSetBounds {
            rd,
            rs1,
            rs2,
            exact: false,
        })
    }

    /// `csetboundsexact cd, cs1, rs2`
    pub fn csetboundsexact(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::CSetBounds {
            rd,
            rs1,
            rs2,
            exact: true,
        })
    }

    /// `csetboundsimm cd, cs1, len`
    pub fn csetboundsimm(&mut self, rd: Reg, rs1: Reg, imm: u32) -> &mut Asm {
        self.raw(Instr::CSetBoundsImm { rd, rs1, imm })
    }

    /// `candperm cd, cs1, rs2`
    pub fn candperm(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::CAndPerm { rd, rs1, rs2 })
    }

    /// `ccleartag cd, cs1`
    pub fn ccleartag(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.raw(Instr::CClearTag { rd, rs1 })
    }

    /// `cmove cd, cs1`
    pub fn cmove(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.raw(Instr::CMove { rd, rs1 })
    }

    /// `cseal cd, cs1, cs2`
    pub fn cseal(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::CSeal { rd, rs1, rs2 })
    }

    /// `cunseal cd, cs1, cs2`
    pub fn cunseal(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::CUnseal { rd, rs1, rs2 })
    }

    /// `ctestsubset rd, cs1, cs2`
    pub fn ctestsubset(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.raw(Instr::CTestSubset { rd, rs1, rs2 })
    }

    /// `crrl rd, rs1`
    pub fn crrl(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.raw(Instr::CRoundRepresentableLength { rd, rs1 })
    }

    /// `cram rd, rs1`
    pub fn cram(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.raw(Instr::CRepresentableAlignmentMask { rd, rs1 })
    }

    /// `cspecialrw cd, scr, cs1`
    pub fn cspecialrw(&mut self, rd: Reg, scr: ScrId, rs1: Reg) -> &mut Asm {
        self.raw(Instr::CSpecialRw { rd, rs1, scr })
    }

    /// `auipcc cd, byte_offset` (byte-granular in this decoded model).
    pub fn auipcc(&mut self, rd: Reg, imm: i32) -> &mut Asm {
        self.raw(Instr::Auipcc { rd, imm })
    }

    /// `auicgp cd, byte_offset`
    pub fn auicgp(&mut self, rd: Reg, imm: i32) -> &mut Asm {
        self.raw(Instr::Auicgp { rd, imm })
    }

    /// `auipcc cd, (label - here)` — derives a PCC-bounded capability whose
    /// address is a bound label (trap-vector installation, sentry-call
    /// targets); the byte offset is resolved at [`Asm::assemble`] time.
    pub fn auipcc_to(&mut self, rd: Reg, target: Label) -> &mut Asm {
        let at = self.code.len();
        self.code.push(Instr::NOP);
        self.fixups.push((at, Pending::Auipcc { rd, target }));
        self
    }

    // --- system ---------------------------------------------------------------

    /// `csrrw rd, csr, rs1`
    pub fn csrrw(&mut self, rd: Reg, csr: CsrId, rs1: Reg) -> &mut Asm {
        self.raw(Instr::Csr {
            op: CsrOp::Rw,
            rd,
            rs1,
            csr,
        })
    }

    /// `csrr rd, csr`
    pub fn csrr(&mut self, rd: Reg, csr: CsrId) -> &mut Asm {
        self.raw(Instr::Csr {
            op: CsrOp::Rs,
            rd,
            rs1: Reg::ZERO,
            csr,
        })
    }

    /// `ecall`
    pub fn ecall(&mut self) -> &mut Asm {
        self.raw(Instr::Ecall)
    }

    /// `mret`
    pub fn mret(&mut self) -> &mut Asm {
        self.raw(Instr::Mret)
    }

    /// `wfi`
    pub fn wfi(&mut self) -> &mut Asm {
        self.raw(Instr::Wfi)
    }

    /// `nop`
    pub fn nop(&mut self) -> &mut Asm {
        self.raw(Instr::NOP)
    }

    /// Simulator halt (exit code in `a0`).
    pub fn halt(&mut self) -> &mut Asm {
        self.raw(Instr::Halt)
    }

    /// Materialises a label's byte offset from program start into `rd`
    /// (combine with `csetaddr`/`cincaddr` against a code capability).
    pub fn la_offset(&mut self, rd: Reg, target: Label) -> &mut Asm {
        let at = self.code.len();
        self.code.push(Instr::NOP);
        self.fixups.push((at, Pending::LaOffset { rd, target }));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheriot_core::{CoreModel, ExitReason, Machine, MachineConfig};

    fn run(a: Asm) -> ExitReason {
        let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
        let entry = m.load_program(&a.assemble());
        m.set_entry(entry);
        m.run(1_000_000)
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Asm::new();
        a.li(Reg::T0, 5);
        a.li(Reg::A0, 0);
        let top = a.here();
        a.add(Reg::A0, Reg::A0, Reg::T0);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        let done = a.label();
        a.beqz(Reg::ZERO, done); // always taken, forward
        a.li(Reg::A0, 99); // skipped
        a.bind(done);
        a.halt();
        assert_eq!(run(a), ExitReason::Halted(15));
    }

    #[test]
    fn jal_links_and_returns() {
        let mut a = Asm::new();
        let f = a.label();
        a.li(Reg::A0, 1);
        a.jal(Reg::RA, f);
        a.addi(Reg::A0, Reg::A0, 10);
        a.halt();
        a.bind(f);
        a.addi(Reg::A0, Reg::A0, 100);
        a.cret();
        assert_eq!(run(a), ExitReason::Halted(111));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.j(l);
        let _ = a.assemble();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }
}
