//! End-to-end tests of the *guest-code* compartment switcher: real
//! cross-compartment calls executed instruction by instruction on the
//! simulated CPU, with sealed export entries, a trusted stack through
//! MTDC, stack chopping/zeroing driven by the high-water mark, and
//! interrupt posture carried by sentries.

use cheriot_asm::Asm;
use cheriot_cap::{Capability, Permissions};
use cheriot_core::insn::Reg;
use cheriot_core::{layout, CoreModel, ExitReason, Machine, MachineConfig};
use cheriot_rtos::guest_switcher::{guest_compartment, GuestSwitcher};

const TCB_BASE: u32 = layout::SRAM_BASE + 0x200;
const A_GLOBALS: u32 = layout::SRAM_BASE + 0x1000;
const B_GLOBALS: u32 = layout::SRAM_BASE + 0x1100;
const C_GLOBALS: u32 = layout::SRAM_BASE + 0x1200;
const STACK_BASE: u32 = layout::SRAM_BASE + 0x2000;
const STACK_TOP: u32 = STACK_BASE + 0x200;

fn machine() -> Machine {
    Machine::new(MachineConfig::new(CoreModel::ibex()))
}

fn globals_cap(base: u32) -> Capability {
    Capability::root_mem_rw()
        .with_address(base)
        .set_bounds(0x100)
        .unwrap()
}

fn stack_cap() -> Capability {
    Capability::root_mem_rw()
        .with_address(STACK_BASE)
        .set_bounds(u64::from(STACK_TOP - STACK_BASE))
        .unwrap()
        .and_perms(!Permissions::GL) // stacks are local
        .with_address(STACK_TOP)
}

/// Prepares thread state: stack pointer, HWM CSRs, interrupts on.
fn setup_thread(m: &mut Machine) {
    m.cpu.write(Reg::SP, stack_cap());
    m.cpu.mshwmb = STACK_BASE;
    m.cpu.mshwm = STACK_TOP;
    m.cpu.interrupts_enabled = true;
}

/// Builds the canonical two-compartment image:
/// A(entry): a0 += 1; call B; a0 += 100; halt.
/// B(entry): a0 = (a0 + B.global[0]) * 2; cret.
fn build_a_calls_b(m: &mut Machine) -> GuestSwitcher {
    let mut sw = GuestSwitcher::install(m, TCB_BASE, 512);

    // B's code.
    let mut b = Asm::new();
    b.lw(Reg::T0, 0, Reg::GP); // B's private global (7)
    b.add(Reg::A0, Reg::A0, Reg::T0);
    b.slli(Reg::A0, Reg::A0, 1);
    // Dirty B's stack with a "secret" to check return-path zeroing.
    b.li(Reg::T1, 0x5ec2e7);
    b.sw(Reg::T1, -8, Reg::SP);
    b.cret();
    let b_prog = b.assemble();
    let b_base = m.load_program(&b_prog);
    let b_comp = guest_compartment(b_base, 4 * b_prog.len() as u32, globals_cap(B_GLOBALS));
    let b_export = sw.make_export(m, &b_comp, 0);

    // A's code.
    let mut a = Asm::new();
    a.clc(Reg::T0, 0, Reg::GP); // sealed export entry for B
    a.clc(Reg::T1, 8, Reg::GP); // switcher call sentry
    a.addi(Reg::A0, Reg::A0, 1);
    a.cjalr(Reg::RA, Reg::T1);
    a.addi(Reg::A0, Reg::A0, 100);
    a.halt();
    let a_prog = a.assemble();
    let a_base = m.load_program(&a_prog);
    let a_comp = guest_compartment(a_base, 4 * a_prog.len() as u32, globals_cap(A_GLOBALS));

    // Link: A's globals hold its import table.
    let root = Capability::root_mem_rw();
    m.meter()
        .store_cap(
            root.with_address(A_GLOBALS).set_bounds(16).unwrap(),
            A_GLOBALS,
            b_export,
        )
        .unwrap();
    m.meter()
        .store_cap(
            root.with_address(A_GLOBALS + 8).set_bounds(8).unwrap(),
            A_GLOBALS + 8,
            sw.call_sentry,
        )
        .unwrap();
    // B's private global.
    m.meter()
        .store(
            root.with_address(B_GLOBALS).set_bounds(4).unwrap(),
            B_GLOBALS,
            4,
            7,
        )
        .unwrap();

    // Start in A.
    m.cpu.pcc = a_comp.code.with_address(a_base);
    m.cpu.write(Reg::GP, a_comp.globals);
    setup_thread(m);
    sw
}

#[test]
fn cross_compartment_call_round_trip() {
    let mut m = machine();
    let sw = build_a_calls_b(&mut m);
    m.cpu.write_int(Reg::A0, 5);
    let r = m.run(100_000);
    // A: 5+1=6; B: (6+7)*2 = 26; A: +100 = 126.
    assert_eq!(r, ExitReason::Halted(126), "stats: {:?}", m.stats);
    // Posture preserved across the whole call chain.
    assert!(m.cpu.interrupts_enabled);
    // Trusted stack fully popped: cursor back to the header.
    assert_eq!(m.cpu.mtdc.address(), TCB_BASE + 24);
    // Paper: the switcher is a few hundred hand-written instructions.
    assert!(
        sw.instruction_count < 150,
        "ours is a subset of the real ~300: {}",
        sw.instruction_count
    );
}

#[test]
fn callee_stack_residue_is_destroyed() {
    let mut m = machine();
    build_a_calls_b(&mut m);
    m.cpu.write_int(Reg::A0, 5);
    assert_eq!(m.run(100_000), ExitReason::Halted(126));
    // B wrote 0x5ec2e7 at STACK_TOP-8; the switcher must have zeroed it.
    let mut addr = STACK_BASE;
    while addr < STACK_TOP {
        let (word, tag) = m.sram.read_cap_word(addr).unwrap();
        assert_eq!(word, 0, "secret residue at {addr:#x}");
        assert!(!tag);
        addr += 8;
    }
    // And the high-water mark is back at the caller's sp.
    assert_eq!(m.cpu.mshwm, STACK_TOP);
}

#[test]
fn callee_cannot_see_caller_frame() {
    let mut m = machine();
    let mut sw = GuestSwitcher::install(&mut m, TCB_BASE, 512);

    // B returns the length of the stack it was given.
    let mut b = Asm::new();
    b.cgetlen(Reg::A0, Reg::SP);
    b.cret();
    let b_prog = b.assemble();
    let b_base = m.load_program(&b_prog);
    let b_comp = guest_compartment(b_base, 4 * b_prog.len() as u32, globals_cap(B_GLOBALS));
    let b_export = sw.make_export(&mut m, &b_comp, 0);

    // A dirties 64 bytes of stack (moving sp down) before calling.
    let mut a = Asm::new();
    a.clc(Reg::T0, 0, Reg::GP);
    a.clc(Reg::T1, 8, Reg::GP);
    a.cincaddrimm(Reg::SP, Reg::SP, -64);
    a.sw(Reg::ZERO, 0, Reg::SP);
    a.cjalr(Reg::RA, Reg::T1);
    a.halt();
    let a_prog = a.assemble();
    let a_base = m.load_program(&a_prog);
    let a_comp = guest_compartment(a_base, 4 * a_prog.len() as u32, globals_cap(A_GLOBALS));

    let root = Capability::root_mem_rw();
    m.meter()
        .store_cap(
            root.with_address(A_GLOBALS).set_bounds(16).unwrap(),
            A_GLOBALS,
            b_export,
        )
        .unwrap();
    m.meter()
        .store_cap(
            root.with_address(A_GLOBALS + 8).set_bounds(8).unwrap(),
            A_GLOBALS + 8,
            sw.call_sentry,
        )
        .unwrap();
    m.cpu.pcc = a_comp.code.with_address(a_base);
    m.cpu.write(Reg::GP, a_comp.globals);
    setup_thread(&mut m);

    let r = m.run(100_000);
    // The callee's stack view is exactly the unused part: full size minus
    // the caller's 64 dirty bytes.
    let expect = (STACK_TOP - STACK_BASE) - 64;
    assert_eq!(r, ExitReason::Halted(expect));
}

#[test]
fn forged_export_is_rejected() {
    let mut m = machine();
    let mut sw = GuestSwitcher::install(&mut m, TCB_BASE, 512);

    // A presents an *unsealed* fake export entry.
    let mut a = Asm::new();
    a.clc(Reg::T1, 8, Reg::GP); // switcher sentry
    a.cmove(Reg::T0, Reg::GP); // "export": just some data cap
    a.cjalr(Reg::RA, Reg::T1);
    a.halt();
    let a_prog = a.assemble();
    let a_base = m.load_program(&a_prog);
    let a_comp = guest_compartment(a_base, 4 * a_prog.len() as u32, globals_cap(A_GLOBALS));
    let root = Capability::root_mem_rw();
    m.meter()
        .store_cap(
            root.with_address(A_GLOBALS + 8).set_bounds(8).unwrap(),
            A_GLOBALS + 8,
            sw.call_sentry,
        )
        .unwrap();
    // Also exercise the seal-authority privacy: a compartment cannot mint
    // its own export entries (no SE authority for the export otype).
    let fake_seal = a_comp.globals.with_address(1);
    assert!(a_comp.globals.seal_with(fake_seal).is_err());

    m.cpu.pcc = a_comp.code.with_address(a_base);
    m.cpu.write(Reg::GP, a_comp.globals);
    setup_thread(&mut m);
    let r = m.run(100_000);
    // The switcher rejects the forgery and returns -1 to the caller, which
    // halts with it — the system call failed, the system did not.
    assert_eq!(
        r,
        ExitReason::Halted(u32::MAX),
        "switcher must reject the forgery with an error return"
    );
    assert!(m.cpu.interrupts_enabled, "caller posture restored");
    let _ = &mut sw;
}

#[test]
fn faulting_guest_callee_is_unwound_to_caller() {
    // The full §2.2 story in guest code: B walks off the end of its
    // globals, traps, and the switcher's fault path unwinds the trusted
    // stack and returns -1 to A — which keeps running.
    let mut m = machine();
    let mut sw = GuestSwitcher::install(&mut m, TCB_BASE, 512);

    // B: dirty the stack, then do an out-of-bounds store and never return.
    let mut b = Asm::new();
    b.li(Reg::T1, 0x5ec2e7);
    b.sw(Reg::T1, -8, Reg::SP); // residue the unwind must destroy
    b.lw(Reg::T0, 0x100, Reg::GP); // OOB: globals are 0x100 long... load at +0x100
    b.cret(); // never reached
    let b_prog = b.assemble();
    let b_base = m.load_program(&b_prog);
    let b_comp = guest_compartment(b_base, 4 * b_prog.len() as u32, globals_cap(B_GLOBALS));
    let b_export = sw.make_export(&mut m, &b_comp, 0);

    // A: call B; then prove it is still alive by doing real work after
    // receiving the error.
    let mut a = Asm::new();
    a.clc(Reg::T0, 0, Reg::GP);
    a.clc(Reg::T1, 8, Reg::GP);
    a.li(Reg::S0, 7);
    a.cjalr(Reg::RA, Reg::T1);
    // a0 == -1 (error); package proof-of-life: a0 = a0 + s0 + 10 = 16.
    a.add(Reg::A0, Reg::A0, Reg::S0);
    a.addi(Reg::A0, Reg::A0, 10);
    a.halt();
    let a_prog = a.assemble();
    let a_base = m.load_program(&a_prog);
    let a_comp = guest_compartment(a_base, 4 * a_prog.len() as u32, globals_cap(A_GLOBALS));

    let root = Capability::root_mem_rw();
    m.meter()
        .store_cap(
            root.with_address(A_GLOBALS).set_bounds(16).unwrap(),
            A_GLOBALS,
            b_export,
        )
        .unwrap();
    m.meter()
        .store_cap(
            root.with_address(A_GLOBALS + 8).set_bounds(8).unwrap(),
            A_GLOBALS + 8,
            sw.call_sentry,
        )
        .unwrap();
    m.cpu.pcc = a_comp.code.with_address(a_base);
    m.cpu.write(Reg::GP, a_comp.globals);
    setup_thread(&mut m);

    let r = m.run(200_000);
    // -1 + 7 + 10 = 16: A survived B's crash and did arithmetic with its
    // preserved callee-saved register.
    assert_eq!(r, ExitReason::Halted(16), "stats: {:?}", m.stats);
    assert_eq!(m.stats.traps, 1, "exactly one CHERI fault");
    assert_eq!(m.cpu.mtdc.address(), TCB_BASE + 24, "frame unwound");
    assert!(m.cpu.interrupts_enabled, "caller posture restored");
    // B's stack residue was destroyed by the unwind.
    let mut addr = STACK_BASE;
    while addr < STACK_TOP {
        let (word, _) = m.sram.read_cap_word(addr).unwrap();
        assert_eq!(word, 0, "residue at {addr:#x}");
        addr += 8;
    }
}

#[test]
fn nested_calls_a_b_c() {
    let mut m = machine();
    let mut sw = GuestSwitcher::install(&mut m, TCB_BASE, 1024);

    // C: a0 *= 3; cret.
    let mut c = Asm::new();
    c.li(Reg::T0, 3);
    c.mul(Reg::A0, Reg::A0, Reg::T0);
    c.cret();
    let c_prog = c.assemble();
    let c_base = m.load_program(&c_prog);
    let c_comp = guest_compartment(c_base, 4 * c_prog.len() as u32, globals_cap(C_GLOBALS));
    let c_export = sw.make_export(&mut m, &c_comp, 0);

    // B: a0 += 10; call C; a0 += 1; cret. Like any compiled function, B
    // saves its return capability (the return-to-switcher sentry) on its
    // stack across its own outgoing call.
    let mut b = Asm::new();
    b.cincaddrimm(Reg::SP, Reg::SP, -16);
    b.csc(Reg::RA, 0, Reg::SP);
    b.clc(Reg::T0, 0, Reg::GP);
    b.clc(Reg::T1, 8, Reg::GP);
    b.addi(Reg::A0, Reg::A0, 10);
    b.cjalr(Reg::RA, Reg::T1);
    b.addi(Reg::A0, Reg::A0, 1);
    b.clc(Reg::RA, 0, Reg::SP);
    b.cincaddrimm(Reg::SP, Reg::SP, 16);
    b.cret();
    let b_prog = b.assemble();
    let b_base = m.load_program(&b_prog);
    let b_comp = guest_compartment(b_base, 4 * b_prog.len() as u32, globals_cap(B_GLOBALS));
    let b_export = sw.make_export(&mut m, &b_comp, 0);

    // A: call B; halt.
    let mut a = Asm::new();
    a.clc(Reg::T0, 0, Reg::GP);
    a.clc(Reg::T1, 8, Reg::GP);
    a.cjalr(Reg::RA, Reg::T1);
    a.halt();
    let a_prog = a.assemble();
    let a_base = m.load_program(&a_prog);
    let a_comp = guest_compartment(a_base, 4 * a_prog.len() as u32, globals_cap(A_GLOBALS));

    let root = Capability::root_mem_rw();
    let store_pair = |m: &mut Machine, base: u32, exp: Capability, sentry: Capability| {
        m.meter()
            .store_cap(root.with_address(base).set_bounds(16).unwrap(), base, exp)
            .unwrap();
        m.meter()
            .store_cap(
                root.with_address(base + 8).set_bounds(8).unwrap(),
                base + 8,
                sentry,
            )
            .unwrap();
    };
    store_pair(&mut m, A_GLOBALS, b_export, sw.call_sentry);
    store_pair(&mut m, B_GLOBALS, c_export, sw.call_sentry);

    m.cpu.pcc = a_comp.code.with_address(a_base);
    m.cpu.write(Reg::GP, a_comp.globals);
    setup_thread(&mut m);
    m.cpu.write_int(Reg::A0, 4);
    let r = m.run(200_000);
    // A(4) -> B: 14 -> C: 42 -> B: 43 -> A halts with 43.
    assert_eq!(r, ExitReason::Halted(43));
    assert_eq!(m.cpu.mtdc.address(), TCB_BASE + 24, "both frames popped");
}

#[test]
fn interrupts_stay_off_inside_the_switcher() {
    // Arm the timer to fire mid-switch: the interrupt must be deferred
    // until the callee (whose entry sentry re-enables) begins.
    let mut m = machine();
    let sw = build_a_calls_b(&mut m);
    m.cpu.write_int(Reg::A0, 5);
    // Install a trap vector so the interrupt is survivable; it bumps
    // mtimecmp and returns.
    let mut h = Asm::new();
    h.li(Reg::T0, -1);
    // Timer MMIO is reachable via a dedicated cap in ct2... keep it
    // simple: the handler just parks mtimecmp by spinning cycles is not
    // possible — so instead verify via posture snooping below, with the
    // timer never actually armed.
    h.mret();
    let h_prog = h.assemble();
    let h_base = m.load_program(&h_prog);
    m.cpu.mtcc = m.boot_pcc(h_base);

    // Snoop posture at every step: whenever the PC is inside the switcher
    // region, interrupts must be disabled.
    let sw_lo = sw.code_base;
    let sw_hi = sw.code_base + sw.code_size;
    let mut checked = 0;
    while m.exit_status().is_none() && m.cycles < 100_000 {
        let pc = m.cpu.pc();
        if (sw_lo..sw_hi).contains(&pc) {
            assert!(
                !m.cpu.interrupts_enabled,
                "interrupts enabled inside the switcher at pc {pc:#x}"
            );
            checked += 1;
        }
        m.step();
    }
    assert!(checked > 50, "switcher instructions observed: {checked}");
    assert_eq!(m.exit_status(), Some(ExitReason::Halted(126)));
}

#[test]
fn guest_switcher_cost_validates_native_model() {
    // The natively-modelled switcher (crate::switcher) charges costs that
    // should match the instruction-accurate guest implementation within a
    // small factor — this pins the Table 4 cost model to real code.
    let mut m = machine();
    build_a_calls_b(&mut m);
    m.cpu.write_int(Reg::A0, 5);
    let t0 = m.cycles;
    assert_eq!(m.run(100_000), ExitReason::Halted(126));
    let guest_cycles = m.cycles - t0;

    // Native model: one cross-compartment call with a clean 512-byte
    // stack and a small callee frame, on the same core.
    let mut rtos = cheriot_rtos::Rtos::new(
        Machine::new(MachineConfig::new(CoreModel::ibex())),
        cheriot_alloc::TemporalPolicy::None,
    );
    let app = rtos.add_compartment("app", 64);
    let t = rtos.spawn_thread(1, 512, app);
    // Warm-up (resets HWM bookkeeping like the guest's fresh stack).
    rtos.cross_call(t, app, 16, |_| ()).unwrap();
    let c0 = rtos.machine.cycles;
    rtos.cross_call(t, app, 16, |_| ()).unwrap();
    let native_cycles = rtos.machine.cycles - c0;

    let ratio = guest_cycles as f64 / native_cycles as f64;
    assert!(
        (0.3..3.0).contains(&ratio),
        "guest {guest_cycles} vs native {native_cycles} (ratio {ratio:.2})"
    );
}
