//! Property-based invariants for the RTOS primitives: the switcher's
//! stack discipline under arbitrary thread states, and the message queue
//! against a reference model.

use cheriot_alloc::TemporalPolicy;
use cheriot_cap::Capability;
use cheriot_core::{layout, CoreModel, Machine, MachineConfig};
use cheriot_rtos::compartment::CompartmentId;
use cheriot_rtos::thread::{Thread, ThreadId};
use cheriot_rtos::{MessageQueue, QueueError, Rtos, Switcher};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any call/return sequence from any dirty-stack state, the
    /// high-water mark equals the stack pointer and everything below sp is
    /// zero — the switcher never leaks and never loses track.
    #[test]
    fn switcher_stack_discipline(
        dirty in 0u32..1024,
        callee_use in 0u32..512,
        hwm_enabled in any::<bool>(),
    ) {
        let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
        let stack_base = layout::SRAM_BASE + 0x1000;
        let stack_top = stack_base + 1024;
        let mut t = Thread::new(
            ThreadId::from_raw(0),
            1,
            stack_base,
            stack_top,
            CompartmentId::from_raw(0),
        );
        // Pre-dirty the stack region with junk (as prior calls would).
        let dirty = dirty & !7;
        if dirty > 0 {
            for off in (0..dirty).step_by(8) {
                m.sram
                    .write_cap_word(stack_top - 8 - off, 0xdead_beef, false)
                    .unwrap();
            }
            t.touch_stack(dirty);
        }
        let mut s = Switcher::default();
        s.on_call(&mut m, &mut t, hwm_enabled).unwrap();
        prop_assert_eq!(t.hwm, t.sp, "call resets the mark");
        // Callee dirties some stack.
        t.touch_stack(callee_use);
        s.on_return(&mut m, &mut t, hwm_enabled).unwrap();
        prop_assert_eq!(t.hwm, t.sp, "return resets the mark");
        // Everything below sp is zero, tags clear.
        let mut addr = stack_base;
        while addr < t.sp {
            let (w, tag) = m.sram.read_cap_word(addr).unwrap();
            prop_assert_eq!(w, 0, "residue at {:#x}", addr);
            prop_assert!(!tag);
            addr += 8;
        }
    }

    /// The message queue behaves exactly like a bounded VecDeque of
    /// capabilities under arbitrary operation sequences.
    #[test]
    fn queue_matches_reference_model(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut m = Machine::new(MachineConfig::new(CoreModel::ibex()));
        let ring = Capability::root_mem_rw()
            .with_address(layout::SRAM_BASE + 0x80)
            .set_bounds(6 * 8)
            .unwrap();
        let mut q = MessageQueue::new(ring, 6);
        let mut model: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        let mut next_tag = 0u32;
        for send in ops {
            if send {
                let payload = Capability::root_mem_rw()
                    .with_address(layout::SRAM_BASE + 0x1000 + next_tag * 8)
                    .set_bounds(8)
                    .unwrap();
                match q.try_send(&mut m, payload) {
                    Ok(()) => {
                        prop_assert!(model.len() < 6);
                        model.push_back(next_tag);
                    }
                    Err(QueueError::Full) => prop_assert_eq!(model.len(), 6),
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
                next_tag += 1;
            } else {
                match q.try_recv(&mut m) {
                    Ok(got) => {
                        let want = model.pop_front();
                        prop_assert!(want.is_some(), "model empty but queue delivered");
                        let want_base = layout::SRAM_BASE + 0x1000 + want.unwrap() * 8;
                        prop_assert_eq!(got.base(), want_base);
                        prop_assert!(got.tag());
                    }
                    Err(QueueError::Empty) => prop_assert!(model.is_empty()),
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
            prop_assert_eq!(q.len() as usize, model.len());
        }
    }

    /// Allocation quotas never go negative and `used` never exceeds
    /// `limit` under arbitrary malloc/free interleavings.
    #[test]
    fn quota_accounting_invariants(ops in proptest::collection::vec(any::<bool>(), 1..80)) {
        let mut r = Rtos::new(
            Machine::new(MachineConfig::new(CoreModel::ibex())),
            TemporalPolicy::None,
        );
        let app = r.add_compartment("app", 64);
        let t = r.spawn_thread(1, 512, app);
        r.set_allocation_quota(app, 4096);
        let mut held = Vec::new();
        for alloc in ops {
            if alloc {
                match r.malloc(t, 128) {
                    Ok(c) => held.push(c),
                    Err(cheriot_alloc::AllocError::QuotaExceeded) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            } else if let Some(c) = held.pop() {
                prop_assert!(r.free(t, c).is_ok());
            }
            let q = r.quota(app).unwrap();
            prop_assert!(q.used <= q.limit, "{:?}", q);
        }
        for c in held {
            prop_assert!(r.free(t, c).is_ok());
        }
        prop_assert_eq!(r.quota(app).unwrap().used, 0);
    }
}
