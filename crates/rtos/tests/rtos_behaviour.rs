//! RTOS behavioural tests: cross-compartment call semantics, scoped
//! delegation (§5.2), scheduler behaviour, and switcher cost shape.

use cheriot_alloc::{RevokerKind, TemporalPolicy};
use cheriot_cap::{Capability, Permissions};
use cheriot_core::{CoreModel, Machine, MachineConfig};
use cheriot_rtos::{Rtos, Slice, ThreadBody, ThreadId};

fn rtos(core: CoreModel) -> Rtos {
    Rtos::new(
        Machine::new(MachineConfig::new(core)),
        TemporalPolicy::Quarantine(RevokerKind::Hardware),
    )
}

#[test]
fn malloc_via_compartment_costs_more_than_direct() {
    // The cross-compartment call is the dominant cost for small
    // allocations (paper §7.2.2).
    let mut r = rtos(CoreModel::ibex());
    let app = r.add_compartment("app", 64);
    let t = r.spawn_thread(1, 2048, app);

    let c0 = r.machine.cycles;
    let cap = r.malloc(t, 32).unwrap();
    let with_switch = r.machine.cycles - c0;

    let c1 = r.machine.cycles;
    let cap2 = r.heap.malloc(&mut r.machine, 32).unwrap();
    let direct = r.machine.cycles - c1;

    assert!(
        with_switch > direct + 100,
        "switcher overhead missing: {with_switch} vs {direct}"
    );
    r.free(t, cap).unwrap();
    r.heap.free(&mut r.machine, cap2).unwrap();
}

#[test]
fn ephemeral_delegation_cannot_be_captured() {
    // §5.2: a caller strips GL from an argument; the callee can hold it in
    // registers and on the (SL) stack but cannot store it to its globals.
    let mut r = rtos(CoreModel::ibex());
    let victim = r.add_compartment("victim", 64);
    let evil = r.add_compartment("evil", 64);
    let _ = victim;
    let t = r.spawn_thread(1, 2048, victim);

    let obj = r.malloc(t, 64).unwrap();
    let delegated = obj.and_perms(!Permissions::GL); // ephemeral
    assert!(delegated.tag());

    let result = r
        .cross_call(t, evil, 64, |env| {
            let globals = env.cgp;
            let gaddr = globals.base();
            // Attempt to capture the delegated capability in globals.
            let captured = env.machine.meter().store_cap(globals, gaddr, delegated);
            // Storing to the stack is fine (scoped)...
            let saddr = env.stack_cap.address() - 16;
            let stack_ok = env
                .machine
                .meter()
                .store_cap(env.stack_cap, saddr, delegated);
            (captured, stack_ok)
        })
        .unwrap();
    assert!(result.0.is_err(), "globals capture must fault (no SL)");
    assert!(result.1.is_ok(), "stack storage is permitted");

    // After return, the switcher zeroed the callee's stack: the stack copy
    // is destroyed.
    let thread_stack = r.thread(t).stack_cap;
    let saddr = r.thread(t).sp - 16 - cheriot_rtos::ALLOC_STACK_USE.next_multiple_of(16);
    let _ = saddr;
    // Check that no tagged word with the delegated base survives anywhere
    // in the stack region.
    let (base, top) = (r.thread(t).stack_base, r.thread(t).stack_top);
    let mut survivors = 0;
    let mut a = base;
    while a < top {
        let (word, tag) = r.machine.sram.read_cap_word(a).unwrap();
        if tag && Capability::from_word(word, tag).base() == delegated.base() {
            survivors += 1;
        }
        a += 8;
    }
    assert_eq!(survivors, 0, "ephemeral delegation must not survive return");
    let _ = thread_stack;
}

#[test]
fn callee_cannot_see_caller_stack() {
    let mut r = rtos(CoreModel::ibex());
    let app = r.add_compartment("app", 64);
    let t = r.spawn_thread(1, 2048, app);
    // The caller "uses" some stack below the top.
    let sp_before = r.thread(t).sp;
    let res = r
        .cross_call(t, app, 64, |env| {
            // The chopped stack must not reach the caller's frame.
            (env.stack_cap.top(), env.stack_cap.base())
        })
        .unwrap();
    assert!(res.0 <= u64::from(sp_before));
    assert_eq!(res.1, r.thread(t).stack_base);
}

#[test]
fn nested_calls_unwind_correctly() {
    let mut r = rtos(CoreModel::ibex());
    let a = r.add_compartment("a", 64);
    let b = r.add_compartment("b", 64);
    let c = r.add_compartment("c", 64);
    let t = r.spawn_thread(1, 4096, a);

    let depth: Result<u32, _> = r
        .cross_call(t, b, 64, |_env| 1)
        .and_then(|x| r.cross_call(t, c, 64, move |_env| x + 1));
    assert_eq!(depth.unwrap(), 2);
    assert_eq!(r.thread(t).frames.len(), 0);
    assert_eq!(r.thread(t).compartment, a);
    assert_eq!(r.thread(t).sp, r.thread(t).stack_top);
}

struct Worker {
    runs: u32,
    period: u64,
    done_at: u32,
}

impl ThreadBody for Worker {
    fn run_slice(&mut self, rtos: &mut Rtos, me: ThreadId) -> Slice {
        self.runs += 1;
        // Do some chargeable work.
        rtos.machine.meter().charge(500);
        let _ = me;
        if self.runs >= self.done_at {
            Slice::Done
        } else {
            Slice::Sleep(self.period)
        }
    }
}

#[test]
fn scheduler_runs_periodic_thread_and_idles() {
    let mut r = rtos(CoreModel::ibex());
    let app = r.add_compartment("app", 64);
    let t = r.spawn_thread(1, 1024, app);
    let mut bodies: Vec<(ThreadId, Box<dyn ThreadBody>)> = vec![(
        t,
        Box::new(Worker {
            runs: 0,
            period: 100_000,
            done_at: 10,
        }),
    )];
    r.run_threads(&mut bodies, 5_000_000);
    let stats = r.sched;
    assert!(stats.idle_cycles > stats.busy_cycles * 10, "{stats:?}");
    let load = stats.cpu_load();
    assert!(load > 0.0 && load < 0.1, "load={load}");
}

#[test]
fn higher_priority_thread_runs_first() {
    let mut r = rtos(CoreModel::ibex());
    let app = r.add_compartment("app", 64);
    let lo = r.spawn_thread(1, 1024, app);
    let hi = r.spawn_thread(5, 1024, app);

    struct Tag(
        std::rc::Rc<std::cell::RefCell<Vec<&'static str>>>,
        &'static str,
    );
    impl ThreadBody for Tag {
        fn run_slice(&mut self, rtos: &mut Rtos, _me: ThreadId) -> Slice {
            rtos.machine.meter().charge(10);
            self.0.borrow_mut().push(self.1);
            Slice::Done
        }
    }
    let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut bodies: Vec<(ThreadId, Box<dyn ThreadBody>)> = vec![
        (lo, Box::new(Tag(order.clone(), "lo"))),
        (hi, Box::new(Tag(order.clone(), "hi"))),
    ];
    r.run_threads(&mut bodies, 1_000_000);
    assert_eq!(*order.borrow(), vec!["hi", "lo"]);
}

#[test]
fn hwm_makes_repeat_calls_cheaper() {
    // A hot call path touches little stack: with HWM the second call's
    // zeroing is exactly the callee's frame, not the whole stack.
    let mut cycles = Vec::new();
    for hwm in [true, false] {
        let mut cfg = MachineConfig::new(CoreModel::ibex());
        cfg.hwm_enabled = hwm;
        let mut r = Rtos::new(
            Machine::new(cfg),
            TemporalPolicy::Quarantine(RevokerKind::Hardware),
        );
        let app = r.add_compartment("app", 64);
        let t = r.spawn_thread(1, 8192, app);
        // Warm-up call.
        r.cross_call(t, app, 64, |_| ()).unwrap();
        let c0 = r.machine.cycles;
        for _ in 0..10 {
            r.cross_call(t, app, 64, |_| ()).unwrap();
        }
        cycles.push(r.machine.cycles - c0);
    }
    assert!(
        cycles[0] * 3 < cycles[1],
        "hwm={} no-hwm={}",
        cycles[0],
        cycles[1]
    );
}

#[test]
fn switcher_stats_accumulate() {
    let mut r = rtos(CoreModel::flute());
    let app = r.add_compartment("app", 64);
    let t = r.spawn_thread(1, 2048, app);
    for _ in 0..5 {
        r.cross_call(t, app, 32, |_| ()).unwrap();
    }
    assert_eq!(r.switcher.stats.calls, 5);
    assert!(r.switcher.stats.cycles > 0);
    assert!(r.switcher.stats.zeroed_bytes > 0);
}

#[test]
fn allocation_quotas_enforced_per_compartment() {
    let mut r = rtos(CoreModel::ibex());
    let greedy = r.add_compartment("greedy", 64);
    let other = r.add_compartment("other", 64);
    let tg = r.spawn_thread(1, 1024, greedy);
    let to = r.spawn_thread(1, 1024, other);
    r.set_allocation_quota(greedy, 1024);

    // The greedy compartment can allocate until its budget runs out...
    let mut held = Vec::new();
    loop {
        match r.malloc(tg, 200) {
            Ok(c) => held.push(c),
            Err(cheriot_alloc::AllocError::QuotaExceeded) => break,
            Err(e) => panic!("unexpected {e}"),
        }
        assert!(held.len() < 50, "quota never enforced");
    }
    assert!(!held.is_empty());
    let q = r.quota(greedy).unwrap();
    assert!(q.used <= q.limit);

    // ...while the unquota'd compartment is unaffected.
    let big = r.malloc(to, 4096).expect("no quota on `other`");
    r.free(to, big).unwrap();

    // Freeing returns budget.
    let used_before = r.quota(greedy).unwrap().used;
    let c = held.pop().unwrap();
    r.free(tg, c).unwrap();
    assert!(r.quota(greedy).unwrap().used < used_before);
    // And the compartment can allocate again.
    let again = r.malloc(tg, 200).expect("budget returned");
    r.free(tg, again).unwrap();
    for c in held {
        r.free(tg, c).unwrap();
    }
    assert_eq!(r.quota(greedy).unwrap().used, 0);
}

#[test]
fn quota_rollback_leaves_heap_consistent() {
    let mut r = rtos(CoreModel::ibex());
    let app = r.add_compartment("app", 64);
    let t = r.spawn_thread(1, 1024, app);
    r.set_allocation_quota(app, 64);
    assert!(matches!(
        r.malloc(t, 4096),
        Err(cheriot_alloc::AllocError::QuotaExceeded)
    ));
    r.heap.check_consistency(&r.machine).unwrap();
    assert_eq!(r.heap.live_allocations(), 0, "rolled back");
}
