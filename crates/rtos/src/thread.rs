//! Threads: preemptible execution contexts, orthogonal to compartments
//! (paper §2.6).
//!
//! Each thread owns a stack region. Stack capabilities are *local* (no GL)
//! and are the only capabilities with Store-Local permission, so references
//! to a stack can live only in registers and on that stack — the foundation
//! of scoped delegation (§5.2).

use crate::compartment::CompartmentId;
use cheriot_cap::{Capability, Permissions};

/// Identifies a thread within a [`crate::Rtos`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub(crate) usize);

impl ThreadId {
    /// Constructs an id from a raw index (see
    /// [`crate::compartment::CompartmentId::from_raw`]).
    pub fn from_raw(index: usize) -> ThreadId {
        ThreadId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Scheduler state of a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable.
    Ready,
    /// Sleeping until the given cycle count.
    Sleeping {
        /// Absolute machine cycle at which the thread becomes ready.
        until: u64,
    },
    /// The thread body returned `Done`.
    Finished,
}

/// A trusted-stack activation frame, pushed by the switcher on every
/// cross-compartment call.
#[derive(Clone, Copy, Debug)]
pub struct Frame {
    /// Compartment to return to.
    pub caller: CompartmentId,
    /// Caller's stack pointer at the time of the call.
    pub sp_at_call: u32,
    /// Interrupt posture to restore.
    pub interrupts_at_call: bool,
}

/// A thread's control block.
#[derive(Clone, Debug)]
pub struct Thread {
    /// Identifier.
    pub id: ThreadId,
    /// Priority: higher runs first.
    pub priority: u8,
    /// Lowest address of the stack region.
    pub stack_base: u32,
    /// One past the highest address of the stack region.
    pub stack_top: u32,
    /// Current stack pointer (grows downward).
    pub sp: u32,
    /// The stack high water mark: lowest address stored to since last reset
    /// (mirrors the `mshwm` CSR for this thread; saved/restored on context
    /// switch).
    pub hwm: u32,
    /// Scheduler state.
    pub state: ThreadState,
    /// Compartment currently executing.
    pub compartment: CompartmentId,
    /// Trusted stack of activation frames (switcher-private).
    pub frames: Vec<Frame>,
    /// Cycles this thread has been charged.
    pub busy_cycles: u64,
    /// The thread's stack capability template: local (no GL), Store-Local.
    pub stack_cap: Capability,
}

impl Thread {
    /// Creates a thread with a stack over `[stack_base, stack_top)`,
    /// starting in `compartment`.
    pub fn new(
        id: ThreadId,
        priority: u8,
        stack_base: u32,
        stack_top: u32,
        compartment: CompartmentId,
    ) -> Thread {
        let stack_cap = Capability::root_mem_rw()
            .with_address(stack_base)
            .set_bounds(u64::from(stack_top - stack_base))
            .expect("stack region must be representable")
            .and_perms(!Permissions::GL); // stacks are local, keep SL
        debug_assert!(stack_cap.perms().contains(Permissions::SL));
        debug_assert!(!stack_cap.perms().contains(Permissions::GL));
        Thread {
            id,
            priority,
            stack_base,
            stack_top,
            sp: stack_top,
            hwm: stack_top,
            state: ThreadState::Ready,
            compartment,
            frames: Vec::new(),
            busy_cycles: 0,
            stack_cap,
        }
    }

    /// Records that execution dirtied the stack down to `sp - bytes`
    /// (the hardware HWM update of paper §5.2.1, driven here by native
    /// compartment code declaring its frame usage).
    pub fn touch_stack(&mut self, bytes: u32) {
        let low = self.sp.saturating_sub(bytes).max(self.stack_base);
        self.hwm = self.hwm.min(low & !0x7);
    }

    /// Bytes of stack currently dirty below the stack pointer.
    pub fn dirty_below_sp(&self) -> u32 {
        self.sp.saturating_sub(self.hwm)
    }

    /// Derives the chopped stack capability handed to a callee:
    /// `[stack_base, sp)`, local, with SL (paper §5.2).
    pub fn chopped_stack(&self) -> Capability {
        self.stack_cap
            .with_address(self.stack_base)
            .set_bounds(u64::from(self.sp - self.stack_base))
            .expect("chopped stack within region")
            .with_address(self.sp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread() -> Thread {
        Thread::new(ThreadId(0), 1, 0x2000_1000, 0x2000_2000, CompartmentId(0))
    }

    #[test]
    fn stack_cap_is_local_with_sl() {
        let t = thread();
        assert!(t.stack_cap.perms().contains(Permissions::SL));
        assert!(!t.stack_cap.perms().contains(Permissions::GL));
    }

    #[test]
    fn hwm_tracks_lowest_touch() {
        let mut t = thread();
        assert_eq!(t.dirty_below_sp(), 0);
        t.touch_stack(128);
        assert_eq!(t.dirty_below_sp(), 128);
        t.touch_stack(64); // higher than current hwm: no change
        assert_eq!(t.dirty_below_sp(), 128);
    }

    #[test]
    fn chopped_stack_excludes_used_part() {
        let mut t = thread();
        t.sp -= 256;
        let chopped = t.chopped_stack();
        assert_eq!(chopped.base(), t.stack_base);
        assert_eq!(chopped.top(), u64::from(t.sp));
        assert!(chopped.tag());
        assert!(chopped.perms().contains(Permissions::SL));
    }

    #[test]
    fn touch_clamps_to_stack_base() {
        let mut t = thread();
        t.touch_stack(1 << 20);
        assert_eq!(t.hwm, t.stack_base);
    }
}
